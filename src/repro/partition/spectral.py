"""Spectral bipartitioning baseline.

The classic pre-multilevel comparator (EIG of Hagen--Kahng lineage): the
Fiedler vector of the clique-expansion Laplacian orders the vertices,
and a balance-legal sweep cut over that order yields the bipartition.
Fixed vertices are honoured by pinning them first and sweeping only the
movable vertices, with the fixed loads pre-charged to their sides.

Used in tests and ablations as a qualitatively different baseline: it
sees global structure that flat FM's local moves miss, but it has no
notion of the fixed-terminals gain anchoring the paper studies.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

try:
    import numpy as np
    from scipy.sparse import coo_matrix
    from scipy.sparse.linalg import eigsh
except ImportError as _exc:  # pragma: no cover - depends on environment
    raise ImportError(
        "the spectral baseline requires numpy and scipy, which are an "
        "optional extra of this package; install them with "
        "`pip install repro[spectral]` (or `pip install numpy scipy`). "
        "All other engines are pure-stdlib and unaffected."
    ) from _exc

from repro.hypergraph.hypergraph import Hypergraph
from repro.partition.balance import BalanceConstraint
from repro.partition.solution import (
    FREE,
    Bipartition,
    cut_size,
    validate_fixture,
)


def clique_laplacian(graph: Hypergraph) -> "coo_matrix":
    """Sparse Laplacian of the weighted clique expansion.

    Each net of size ``s`` and weight ``w`` contributes ``w / (s - 1)``
    to every pin pair.
    """
    n = graph.num_vertices
    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    degree = np.zeros(n)
    for e in range(graph.num_nets):
        pins = list(graph.net_pins(e))
        s = len(pins)
        if s < 2:
            continue
        share = graph.net_weight(e) / (s - 1)
        if share == 0:
            continue
        for i in range(s):
            for j in range(i + 1, s):
                u, v = pins[i], pins[j]
                rows.extend((u, v))
                cols.extend((v, u))
                vals.extend((-share, -share))
                degree[u] += share
                degree[v] += share
    rows.extend(range(n))
    cols.extend(range(n))
    vals.extend(degree)
    return coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()


def fiedler_vector(
    graph: Hypergraph, seed: int = 0
) -> np.ndarray:
    """Second-smallest eigenvector of the clique-expansion Laplacian.

    Uses shift-invert Lanczos; disconnected graphs are handled by the
    small diagonal regularisation (components then separate by the
    near-null eigenvectors, which still produce a usable ordering).
    """
    n = graph.num_vertices
    if n < 3:
        return np.arange(n, dtype=float)
    laplacian = clique_laplacian(graph).asfptype()
    laplacian = laplacian + 1e-9 * np.max(laplacian.diagonal() + 1.0) * (
        _identity(n)
    )
    rng = np.random.default_rng(seed)
    v0 = rng.standard_normal(n)
    k = min(2, n - 1)
    _, vectors = eigsh(laplacian, k=k, sigma=0, which="LM", v0=v0)
    return vectors[:, -1]


def _identity(n: int):
    from scipy.sparse import identity

    return identity(n, format="csr")


def sweep_cut(
    graph: Hypergraph,
    order: Sequence[int],
    balance: BalanceConstraint,
    fixture: Optional[Sequence[int]] = None,
) -> Tuple[List[int], int]:
    """Best balance-legal prefix cut over ``order``.

    ``order`` lists the *movable* vertices; the prefix goes to side 0.
    Fixed loads/pins are accounted before the sweep.  Returns the best
    feasible assignment (or the least-unbalanced one when no prefix is
    feasible) and its cut.
    """
    n = graph.num_vertices
    if fixture is None:
        fixture = [FREE] * n
    validate_fixture(fixture, n, 2)

    parts = [1] * n
    loads = [0.0, 0.0]
    for v in range(n):
        if fixture[v] != FREE:
            parts[v] = fixture[v]
            loads[fixture[v]] += graph.area(v)
        else:
            loads[1] += graph.area(v)

    # Incremental cut maintenance over prefix moves 1 -> 0.
    cnt0 = [0] * graph.num_nets
    sizes = [graph.net_size(e) for e in range(graph.num_nets)]
    cut = 0
    for e in range(graph.num_nets):
        c0 = sum(1 for v in graph.net_pins(e) if parts[v] == 0)
        cnt0[e] = c0
        if 0 < c0 < sizes[e]:
            cut += graph.net_weight(e)

    best_key: Optional[Tuple[int, float, float]] = None
    best_prefix = -1
    best_cut = cut

    def key_of(current_cut: int) -> Tuple[int, float, float]:
        violation = balance.violation(loads)
        if violation == 0.0:
            return (0, float(current_cut), abs(loads[0] - loads[1]))
        return (1, violation, float(current_cut))

    candidates = [(-1, key_of(cut), cut)]
    for i, v in enumerate(order):
        if fixture[v] != FREE:
            raise ValueError(f"order contains fixed vertex {v}")
        parts[v] = 0
        loads[1] -= graph.area(v)
        loads[0] += graph.area(v)
        for e in graph.vertex_nets(v):
            was_cut = 0 < cnt0[e] < sizes[e]
            cnt0[e] += 1
            now_cut = 0 < cnt0[e] < sizes[e]
            if was_cut and not now_cut:
                cut -= graph.net_weight(e)
            elif not was_cut and now_cut:
                cut += graph.net_weight(e)
        candidates.append((i, key_of(cut), cut))

    for prefix, key, c in candidates:
        if best_key is None or key < best_key:
            best_key = key
            best_prefix = prefix
            best_cut = c

    for i, v in enumerate(order):
        parts[v] = 0 if i <= best_prefix else 1
    return parts, best_cut


def spectral_plus_fm(
    graph: Hypergraph,
    balance: BalanceConstraint,
    fixture: Optional[Sequence[int]] = None,
    seed: int = 0,
) -> Bipartition:
    """Spectral construction refined by flat CLIP FM.

    The historically strong combination: the sweep cut supplies global
    structure, FM repairs its local mistakes.  Useful as a mid-strength
    baseline between raw spectral and the multilevel engine.
    """
    from repro.partition.fm import FMBipartitioner, FMConfig

    seed_solution = spectral_bipartition(
        graph, balance, fixture=fixture, seed=seed
    )
    engine = FMBipartitioner(
        graph, balance, fixture=fixture, config=FMConfig(policy="clip")
    )
    return engine.run(seed_solution.parts).solution


def spectral_bipartition(
    graph: Hypergraph,
    balance: BalanceConstraint,
    fixture: Optional[Sequence[int]] = None,
    seed: int = 0,
) -> Bipartition:
    """Fiedler-order sweep bipartitioning.

    Fixed vertices keep their sides; movable vertices are sorted by
    their Fiedler coordinate and the best balance-legal sweep prefix is
    taken.  Both sweep directions are tried (the eigenvector's sign is
    arbitrary and the fixture breaks its symmetry).
    """
    if balance.num_parts != 2:
        raise ValueError("spectral baseline is strictly 2-way")
    n = graph.num_vertices
    if fixture is None:
        fixture = [FREE] * n
    validate_fixture(fixture, n, 2)

    values = fiedler_vector(graph, seed=seed)
    movable = [v for v in range(n) if fixture[v] == FREE]
    forward = sorted(movable, key=lambda v: (values[v], v))
    best: Optional[Tuple[List[int], int]] = None
    for order in (forward, list(reversed(forward))):
        parts, _ = sweep_cut(graph, order, balance, fixture)
        exact = cut_size(graph, parts)
        if best is None or exact < best[1]:
            best = (parts, exact)
    assert best is not None
    return Bipartition(parts=best[0], cut=best[1])
