"""Balance constraints for partitioning.

The paper's experiments use a 2% deviation from exact bisection on actual
cell areas.  Section IV additionally proposes benchmark formats with
*absolute* capacity semantics and *multi-balanced* problems where every
vertex carries ``k > 1`` resources (area, pin count, power, ...), each of
which must be balanced.  All three styles are modelled here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class BalanceConstraint:
    """Per-block load windows for one resource.

    ``min_loads[i] <= load(block i) <= max_loads[i]`` must hold for a
    solution to be feasible.
    """

    min_loads: Sequence[float]
    max_loads: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.min_loads) != len(self.max_loads):
            raise ValueError("min/max load vectors differ in length")
        for i, (lo, hi) in enumerate(zip(self.min_loads, self.max_loads)):
            if lo > hi:
                raise ValueError(
                    f"block {i}: min load {lo} exceeds max load {hi}"
                )
            if hi < 0:
                raise ValueError(f"block {i}: negative max load {hi}")

    @property
    def num_parts(self) -> int:
        """Number of blocks."""
        return len(self.min_loads)

    def is_feasible(self, loads: Sequence[float]) -> bool:
        """Whether ``loads`` satisfies every block window."""
        return all(
            lo <= load <= hi
            for lo, load, hi in zip(self.min_loads, loads, self.max_loads)
        )

    def violation(self, loads: Sequence[float]) -> float:
        """Total amount by which ``loads`` exceeds the windows (0 when
        feasible); a useful objective for balance-repair moves."""
        total = 0.0
        for lo, load, hi in zip(self.min_loads, loads, self.max_loads):
            if load < lo:
                total += lo - load
            elif load > hi:
                total += load - hi
        return total

    def allows_move(
        self,
        loads: Sequence[float],
        weight: float,
        source: int,
        target: int,
    ) -> bool:
        """Whether moving ``weight`` from block ``source`` to ``target``
        keeps (or restores) feasibility for those two blocks.

        A move is also allowed when it strictly reduces the violation of
        an infeasible block pair -- FM needs this to escape an unbalanced
        initial solution.
        """
        if source == target:
            return True
        new_src = loads[source] - weight
        new_tgt = loads[target] + weight
        src_ok = self.min_loads[source] <= new_src <= self.max_loads[source]
        tgt_ok = self.min_loads[target] <= new_tgt <= self.max_loads[target]
        if src_ok and tgt_ok:
            return True
        before = self._pair_violation(loads[source], source) + (
            self._pair_violation(loads[target], target)
        )
        after = self._pair_violation(new_src, source) + (
            self._pair_violation(new_tgt, target)
        )
        return after < before

    def _pair_violation(self, load: float, block: int) -> float:
        lo, hi = self.min_loads[block], self.max_loads[block]
        if load < lo:
            return lo - load
        if load > hi:
            return load - hi
        return 0.0


def relative_bipartition_balance(
    total: float, tolerance: float
) -> BalanceConstraint:
    """The paper's constraint: each side within ``tolerance`` (e.g. 0.02)
    of exact bisection of ``total``."""
    if not 0 <= tolerance < 1:
        raise ValueError("tolerance must lie in [0, 1)")
    half = total / 2.0
    slack = half * tolerance
    return BalanceConstraint(
        min_loads=(half - slack, half - slack),
        max_loads=(half + slack, half + slack),
    )


def relative_balance(
    total: float, num_parts: int, tolerance: float
) -> BalanceConstraint:
    """Equal targets for ``num_parts`` blocks with relative tolerance."""
    if num_parts < 1:
        raise ValueError("need at least one block")
    if not 0 <= tolerance < 1:
        raise ValueError("tolerance must lie in [0, 1)")
    share = total / num_parts
    slack = share * tolerance
    return BalanceConstraint(
        min_loads=[share - slack] * num_parts,
        max_loads=[share + slack] * num_parts,
    )


def absolute_balance(
    capacities: Sequence[float], slack: float = 0.0
) -> BalanceConstraint:
    """Absolute capacity semantics: block i holds at most
    ``capacities[i] + slack`` and has no lower bound."""
    return BalanceConstraint(
        min_loads=[0.0] * len(capacities),
        max_loads=[c + slack for c in capacities],
    )


@dataclass(frozen=True)
class MultiBalanceConstraint:
    """One :class:`BalanceConstraint` per resource type.

    The paper's proposed multi-area benchmarks require each of ``k``
    resources (area, pins, power, ...) to be evenly distributed, so a
    solution is feasible only when *every* per-resource constraint holds.
    """

    constraints: Sequence[BalanceConstraint]

    def __post_init__(self) -> None:
        if not self.constraints:
            raise ValueError("need at least one resource constraint")
        parts = {c.num_parts for c in self.constraints}
        if len(parts) != 1:
            raise ValueError(
                "all resource constraints must cover the same blocks"
            )

    @property
    def num_parts(self) -> int:
        """Number of blocks."""
        return self.constraints[0].num_parts

    @property
    def num_resources(self) -> int:
        """Number of balanced resource types."""
        return len(self.constraints)

    def is_feasible(self, loads_per_resource: Sequence[Sequence[float]]) -> bool:
        """``loads_per_resource[r][i]`` is block i's load of resource r."""
        if len(loads_per_resource) != len(self.constraints):
            raise ValueError("loads/constraints resource-count mismatch")
        return all(
            c.is_feasible(loads)
            for c, loads in zip(self.constraints, loads_per_resource)
        )

    def allows_move(
        self,
        loads_per_resource: Sequence[List[float]],
        weights: Sequence[float],
        source: int,
        target: int,
    ) -> bool:
        """Move is allowed only if allowed for every resource."""
        return all(
            c.allows_move(loads, w, source, target)
            for c, loads, w in zip(
                self.constraints, loads_per_resource, weights
            )
        )
