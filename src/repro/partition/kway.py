"""Recursive-bisection k-way partitioning with fixed vertices.

Top-down placement quadrisects or bisects recursively; the paper's
Section V asks "whether multiway partitioning is as affected by fixed
terminals".  This module provides k-way partitioning by recursive
bisection: blocks ``0..k-1`` are split by bit, fixed vertices are routed
to the sub-block their mandated block belongs to, and each bisection is
solved by the multilevel engine.  Powers of two split evenly; other k
split proportionally.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.hypergraph.hypergraph import (
    Hypergraph,
    vertex_induced_subhypergraph,
)
from repro.partition.balance import BalanceConstraint, relative_balance
from repro.partition.multilevel import (
    MultilevelBipartitioner,
    MultilevelConfig,
)
from repro.partition.solution import FREE, cut_size, validate_fixture


@dataclass
class KWayResult:
    """A k-way solution: block per vertex and its (cut-nets) cost."""

    parts: List[int]
    num_parts: int
    cut: int


def recursive_bisection(
    graph: Hypergraph,
    num_parts: int,
    tolerance: float = 0.02,
    fixture: Optional[Sequence[int]] = None,
    config: Optional[MultilevelConfig] = None,
    seed: int = 0,
) -> KWayResult:
    """Partition ``graph`` into ``num_parts`` blocks.

    ``fixture[v]`` may name any target block in ``0..num_parts-1`` (or
    ``FREE``).  The per-level balance budget splits the global tolerance
    evenly across levels, the standard recursive-bisection discipline.
    """
    if num_parts < 1:
        raise ValueError("num_parts must be positive")
    n = graph.num_vertices
    if fixture is None:
        fixture = [FREE] * n
    validate_fixture(fixture, n, num_parts)

    parts = [0] * n
    rng = random.Random(seed)
    _split(
        graph,
        list(range(n)),
        list(fixture),
        0,
        num_parts,
        tolerance,
        config,
        parts,
        rng,
    )
    return KWayResult(
        parts=parts, num_parts=num_parts, cut=cut_size(graph, parts)
    )


def _split(
    graph: Hypergraph,
    vertices: List[int],
    fixture: List[int],
    base_block: int,
    num_parts: int,
    tolerance: float,
    config: Optional[MultilevelConfig],
    parts: List[int],
    rng: random.Random,
) -> None:
    """Assign blocks ``base_block..base_block+num_parts-1`` to
    ``vertices`` (ids in the original graph) by recursive bisection."""
    if num_parts == 1:
        for v in vertices:
            parts[v] = base_block
        return

    left_parts = num_parts // 2
    right_parts = num_parts - left_parts
    sub, order = vertex_induced_subhypergraph(graph, vertices)

    # Fixed vertices whose target block falls in the left half go to
    # side 0 of this bisection, the rest to side 1.
    boundary = base_block + left_parts
    sub_fixture = []
    for v in order:
        f = fixture[v]
        if f == FREE:
            sub_fixture.append(FREE)
        else:
            sub_fixture.append(0 if f < boundary else 1)

    total = sub.total_area
    left_share = left_parts / num_parts
    # Asymmetric targets for odd splits; the window width follows the
    # global tolerance so leaves end up within it of their fair share.
    left_target = total * left_share
    slack = total * tolerance / 2.0
    balance = BalanceConstraint(
        min_loads=(left_target - slack, (total - left_target) - slack),
        max_loads=(left_target + slack, (total - left_target) + slack),
    )
    engine = MultilevelBipartitioner(
        sub, balance=balance, fixture=sub_fixture, config=config
    )
    solution = engine.run(seed=rng.getrandbits(32)).solution

    left = [order[i] for i, p in enumerate(solution.parts) if p == 0]
    right = [order[i] for i, p in enumerate(solution.parts) if p == 1]
    _split(
        graph, left, fixture, base_block, left_parts,
        tolerance, config, parts, rng,
    )
    _split(
        graph, right, fixture, boundary, right_parts,
        tolerance, config, parts, rng,
    )


def kway_balance_check(
    graph: Hypergraph,
    result: KWayResult,
    tolerance: float,
) -> bool:
    """Whether every block's area is within ``tolerance`` of fair share.

    Recursive bisection compounds per-level deviations, so callers
    wanting a strict guarantee should verify with a slightly widened
    tolerance (two bisection levels each within t/2 can compound to ~t).
    """
    constraint = relative_balance(
        graph.total_area, result.num_parts, tolerance
    )
    loads = [0.0] * result.num_parts
    for v in range(graph.num_vertices):
        loads[result.parts[v]] += graph.area(v)
    return constraint.is_feasible(loads)
