"""FM under generalized per-net costs (placement-specific objectives).

Section IV's benchmark proposal includes "flexible assignment of fixed
terminals to partitions, which enables study of placement-specific
partitioning objectives -- for example, based on net bounding boxes and
Steiner tree estimators" (the Huang--Kahng "exact objective" lineage).
The plain min-cut objective charges every cut net the same; a placement
objective charges each net by where its pins would land.

This engine optimises a three-state cost per net of a bipartition:

* ``cost0[e]``  -- all movable pins of ``e`` on side 0;
* ``cost1[e]``  -- all movable pins on side 1;
* ``cost_cut[e]`` -- pins on both sides.

Classic min-cut is ``cost0 = cost1 = 0, cost_cut = w``; a terminal-
propagation objective derives the three values from net bounding boxes
(see :mod:`repro.placement.objective`).  Costs must be non-negative
integers (gain buckets are integer-keyed).

Moves are selected FM-style from gain buckets; because a 3-state cost
breaks the elegant delta rules of pure min-cut, gains of all vertices
on a moved vertex's nets are recomputed exactly after each move --
simpler, still O(pins-around-v) per move, and safe for any cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.hypergraph.hypergraph import Hypergraph
from repro.partition.balance import BalanceConstraint
from repro.partition.fm import _HARD_PASS_CAP
from repro.partition.gainbucket import GainBucket
from repro.partition.solution import FREE, validate_fixture


@dataclass(frozen=True)
class NetCostModel:
    """Three-state costs for every net of a hypergraph.

    Nets whose movable pins are empty always sit in a fixed state; their
    cost is a constant offset the engine ignores.
    """

    cost0: Sequence[int]
    cost1: Sequence[int]
    cost_cut: Sequence[int]

    def __post_init__(self) -> None:
        if not (
            len(self.cost0) == len(self.cost1) == len(self.cost_cut)
        ):
            raise ValueError("cost vectors differ in length")
        for name, vec in (
            ("cost0", self.cost0),
            ("cost1", self.cost1),
            ("cost_cut", self.cost_cut),
        ):
            for e, c in enumerate(vec):
                if c < 0 or c != int(c):
                    raise ValueError(
                        f"{name}[{e}] = {c}; costs must be "
                        "non-negative integers"
                    )

    @property
    def num_nets(self) -> int:
        """Number of nets covered."""
        return len(self.cost0)

    def state_cost(self, e: int, cnt0: int, cnt1: int) -> int:
        """Cost of net ``e`` given per-side pin counts."""
        if cnt0 > 0 and cnt1 > 0:
            return self.cost_cut[e]
        if cnt0 > 0:
            return self.cost0[e]
        if cnt1 > 0:
            return self.cost1[e]
        return 0  # no pins at all


def min_cut_cost_model(graph: Hypergraph) -> NetCostModel:
    """The classic objective expressed in the generalized form."""
    zeros = [0] * graph.num_nets
    return NetCostModel(
        cost0=list(zeros),
        cost1=list(zeros),
        cost_cut=list(graph.net_weights),
    )


def total_cost(
    graph: Hypergraph, model: NetCostModel, parts: Sequence[int]
) -> int:
    """Objective value of an assignment."""
    total = 0
    for e in range(graph.num_nets):
        cnt0 = sum(1 for v in graph.net_pins(e) if parts[v] == 0)
        cnt1 = graph.net_size(e) - cnt0
        total += model.state_cost(e, cnt0, cnt1)
    return total


@dataclass(frozen=True)
class CostFMConfig:
    """Tuning knobs (same semantics as :class:`FMConfig`)."""

    max_passes: int = -1
    pass_move_limit_fraction: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.pass_move_limit_fraction <= 1.0:
            raise ValueError("pass_move_limit_fraction must be in (0, 1]")
        if self.max_passes == 0:
            raise ValueError("max_passes must be nonzero (or negative)")


@dataclass
class CostFMResult:
    """Outcome of a generalized-cost FM run."""

    parts: List[int]
    cost: int
    initial_cost: int
    num_passes: int = 0
    total_moves: int = 0
    pass_costs: List[int] = field(default_factory=list)


class CostFMBipartitioner:
    """2-way FM optimising a :class:`NetCostModel`."""

    def __init__(
        self,
        graph: Hypergraph,
        balance: BalanceConstraint,
        model: NetCostModel,
        fixture: Optional[Sequence[int]] = None,
        config: Optional[CostFMConfig] = None,
    ) -> None:
        if balance.num_parts != 2:
            raise ValueError("CostFMBipartitioner is strictly 2-way")
        if model.num_nets != graph.num_nets:
            raise ValueError(
                f"cost model covers {model.num_nets} nets, graph has "
                f"{graph.num_nets}"
            )
        self.graph = graph
        self.balance = balance
        self.model = model
        self.config = config or CostFMConfig()
        n = graph.num_vertices
        if fixture is None:
            fixture = [FREE] * n
        validate_fixture(fixture, n, 2)
        self.fixture = list(fixture)

        self._vnets: List[List[int]] = [
            list(graph.vertex_nets(v)) for v in range(n)
        ]
        self._epins: List[List[int]] = [
            list(graph.net_pins(e)) for e in range(graph.num_nets)
        ]
        self._areas: List[float] = list(graph.areas)
        self._movable: List[int] = [
            v for v in range(n) if self.fixture[v] == FREE
        ]
        # Max |gain| of a single move: sum over incident nets of the
        # largest pairwise cost difference.
        self._max_gain = 0
        for v in self._movable:
            bound = 0
            for e in self._vnets[v]:
                costs = (
                    model.cost0[e],
                    model.cost1[e],
                    model.cost_cut[e],
                )
                bound += max(costs) - min(costs)
            self._max_gain = max(self._max_gain, bound)
        self._escape_slack = min(
            (
                self._areas[v]
                for v in self._movable
                if self._areas[v] > 0
            ),
            default=0.0,
        )

    # ------------------------------------------------------------------
    def run(self, initial_parts: Sequence[int]) -> CostFMResult:
        """Improve ``initial_parts`` under the cost model."""
        graph = self.graph
        n = graph.num_vertices
        if len(initial_parts) != n:
            raise ValueError("initial_parts length mismatch")
        parts = [
            f if f != FREE else int(p)
            for p, f in zip(initial_parts, self.fixture)
        ]
        for v, p in enumerate(parts):
            if p not in (0, 1):
                raise ValueError(f"vertex {v} assigned to invalid side {p}")

        loads = [0.0, 0.0]
        for v in range(n):
            loads[parts[v]] += self._areas[v]
        cost = total_cost(graph, self.model, parts)
        result = CostFMResult(
            parts=parts, cost=cost, initial_cost=cost
        )
        if not self._movable:
            return result

        max_passes = self.config.max_passes
        if max_passes < 0:
            max_passes = _HARD_PASS_CAP
        while result.num_passes < max_passes:
            key_before = self._progress_key(cost, loads)
            cost, moves = self._run_pass(
                parts, loads, cost, result.num_passes
            )
            result.num_passes += 1
            result.total_moves += moves
            result.pass_costs.append(cost)
            if not self._progress_key(cost, loads) < key_before:
                break
        result.parts = parts
        result.cost = cost
        return result

    # ------------------------------------------------------------------
    def _progress_key(
        self, cost: int, loads: Sequence[float]
    ) -> Tuple[int, float]:
        violation = self.balance.violation(loads)
        if violation == 0.0:
            return (0, float(cost))
        return (1, violation)

    def _quality_key(
        self, cost: int, loads: Sequence[float]
    ) -> Tuple[int, float, float]:
        violation = self.balance.violation(loads)
        if violation == 0.0:
            return (0, float(cost), abs(loads[0] - loads[1]))
        return (1, violation, float(cost))

    def _move_allowed(
        self, loads: List[float], weight: float, source: int, target: int
    ) -> bool:
        if self.balance.allows_move(loads, weight, source, target):
            return True
        if loads[source] < loads[target]:
            return False
        after = [
            loads[0] - weight if source == 0 else loads[0] + weight,
            loads[1] - weight if source == 1 else loads[1] + weight,
        ]
        return self.balance.violation(after) <= self._escape_slack

    def _gain_of(
        self, v: int, parts: List[int], cnt: List[List[int]]
    ) -> int:
        """Exact cost reduction of flipping ``v``."""
        s = parts[v]
        t = 1 - s
        gain = 0
        for e in self._vnets[v]:
            c0, c1 = cnt[e]
            before = self.model.state_cost(e, c0, c1)
            if s == 0:
                after = self.model.state_cost(e, c0 - 1, c1 + 1)
            else:
                after = self.model.state_cost(e, c0 + 1, c1 - 1)
            gain += before - after
        return gain

    def _run_pass(
        self,
        parts: List[int],
        loads: List[float],
        cost: int,
        pass_index: int,
    ) -> Tuple[int, int]:
        graph = self.graph
        num_nets = graph.num_nets
        cnt = [[0, 0] for _ in range(num_nets)]
        for e in range(num_nets):
            c = cnt[e]
            for v in self._epins[e]:
                c[parts[v]] += 1

        buckets = (
            GainBucket(graph.num_vertices, self._max_gain),
            GainBucket(graph.num_vertices, self._max_gain),
        )
        for v in self._movable:
            buckets[parts[v]].insert(v, self._gain_of(v, parts, cnt))

        movable_count = len(self._movable)
        if pass_index == 0 or self.config.pass_move_limit_fraction >= 1.0:
            move_limit = movable_count
        else:
            move_limit = max(
                1,
                int(self.config.pass_move_limit_fraction * movable_count),
            )

        move_log: List[int] = []
        best_prefix = 0
        best_cost = cost
        best_key = self._quality_key(cost, loads)

        while len(move_log) < move_limit:
            v = self._select_move(buckets, loads)
            if v is None:
                break
            s = parts[v]
            t = 1 - s
            gain = buckets[s].key_of(v)
            buckets[s].remove(v)
            cost -= gain
            for e in self._vnets[v]:
                cnt[e][s] -= 1
                cnt[e][t] += 1
            parts[v] = t
            loads[s] -= self._areas[v]
            loads[t] += self._areas[v]
            # Recompute gains of unlocked pins of the affected nets;
            # exact (no delta rules) because the cost has three states.
            touched = set()
            for e in self._vnets[v]:
                for u in self._epins[e]:
                    if u != v and u not in touched:
                        touched.add(u)
                        bucket = buckets[parts[u]]
                        if u in bucket:
                            bucket.update(
                                u, self._gain_of(u, parts, cnt)
                            )
            move_log.append(v)
            key = self._quality_key(cost, loads)
            if key < best_key:
                best_key = key
                best_cost = cost
                best_prefix = len(move_log)

        for v in reversed(move_log[best_prefix:]):
            t = parts[v]
            s = 1 - t
            parts[v] = s
            loads[t] -= self._areas[v]
            loads[s] += self._areas[v]
        return best_cost, len(move_log)

    def _select_move(
        self,
        buckets: Tuple[GainBucket, GainBucket],
        loads: List[float],
    ) -> Optional[int]:
        areas = self._areas
        best_v: Optional[int] = None
        best_side = -1
        best_key = 0
        for side in (0, 1):
            bucket = buckets[side]
            for v in bucket.iter_descending():
                key = bucket.key_of(v)
                if best_v is not None and key < best_key:
                    break
                if self._move_allowed(loads, areas[v], side, 1 - side):
                    if (
                        best_v is None
                        or key > best_key
                        or (key == best_key and loads[side] > loads[best_side])
                    ):
                        best_v, best_side, best_key = v, side, key
                    break
        return best_v
