"""Array-based gain bucket structure for FM.

The classic Fiduccia--Mattheyses bucket list: one doubly-linked list per
integer gain value, a moving max-gain pointer, O(1) insert/remove/update.
Everything is flat integer arrays indexed by vertex id -- no node objects
-- because the FM inner loop performs millions of these operations.

The same structure serves LIFO FM (pop the most recently inserted vertex
of the best bucket), FIFO FM (pop the oldest) and CLIP (keys are gain
*updates* rather than gains, so the key range doubles; see
:meth:`GainBucket.adjust` for why ``2 * max_gain`` is a hard bound).

Buckets are built to be *reused*: an FM engine allocates one bucket per
side once, then calls :meth:`GainBucket.reset` at the start of every
pass, which costs O(members) rather than O(num_vertices + key range).
"""

from __future__ import annotations

from typing import Iterator, List, Optional

_NIL = -2
"""Link terminator distinct from any vertex id and from 'not present'."""
_ABSENT = -1


class GainBucket:
    """Bucket array over integer keys in ``[-limit, +limit]``.

    Vertices are small non-negative integers below ``num_vertices``.
    """

    __slots__ = (
        "_limit",
        "_head",
        "_tail",
        "_prev",
        "_next",
        "_key",
        "_present",
        "_max_index",
        "_count",
    )

    def __init__(self, num_vertices: int, limit: int) -> None:
        if limit < 0:
            raise ValueError("gain limit must be non-negative")
        self._limit = limit
        size = 2 * limit + 1
        self._head: List[int] = [_NIL] * size
        self._tail: List[int] = [_NIL] * size
        self._prev: List[int] = [_NIL] * num_vertices
        self._next: List[int] = [_NIL] * num_vertices
        self._key: List[int] = [0] * num_vertices
        self._present: List[bool] = [False] * num_vertices
        self._max_index = -1  # index into bucket arrays; -1 == empty
        self._count = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    def __contains__(self, vertex: int) -> bool:
        return self._present[vertex]

    @property
    def limit(self) -> int:
        """Maximum key magnitude this bucket accepts."""
        return self._limit

    def key_of(self, vertex: int) -> int:
        """Current key of ``vertex`` (undefined if absent)."""
        return self._key[vertex]

    def max_key(self) -> Optional[int]:
        """Largest key present, or ``None`` when empty."""
        if self._count == 0:
            return None
        return self._max_index - self._limit

    # ------------------------------------------------------------------
    def insert(self, vertex: int, key: int) -> None:
        """Insert ``vertex`` at the *head* of its bucket (LIFO position)."""
        if self._present[vertex]:
            raise ValueError(f"vertex {vertex} already in bucket")
        if not -self._limit <= key <= self._limit:
            raise ValueError(
                f"key {key} outside [-{self._limit}, {self._limit}]"
            )
        idx = key + self._limit
        old_head = self._head[idx]
        self._next[vertex] = old_head
        self._prev[vertex] = _NIL
        if old_head != _NIL:
            self._prev[old_head] = vertex
        else:
            self._tail[idx] = vertex
        self._head[idx] = vertex
        self._key[vertex] = key
        self._present[vertex] = True
        self._count += 1
        if idx > self._max_index:
            self._max_index = idx

    def remove(self, vertex: int) -> None:
        """Unlink ``vertex`` from its bucket."""
        if not self._present[vertex]:
            raise ValueError(f"vertex {vertex} not in bucket")
        idx = self._key[vertex] + self._limit
        p, n = self._prev[vertex], self._next[vertex]
        if p != _NIL:
            self._next[p] = n
        else:
            self._head[idx] = n
        if n != _NIL:
            self._prev[n] = p
        else:
            self._tail[idx] = p
        self._present[vertex] = False
        self._count -= 1
        if self._count == 0:
            self._max_index = -1
        elif idx == self._max_index and self._head[idx] == _NIL:
            while self._max_index >= 0 and self._head[self._max_index] == _NIL:
                self._max_index -= 1

    def update(self, vertex: int, new_key: int) -> None:
        """Move ``vertex`` to the bucket for ``new_key``."""
        self.remove(vertex)
        self.insert(vertex, new_key)

    def adjust(self, vertex: int, delta: int) -> None:
        """Shift ``vertex``'s key by ``delta``, saturating at the limit.

        For plain FM the key is the vertex's actual gain, which is
        bounded by the vertex's total incident net weight, so a key
        never leaves ``[-limit, limit]``.  For CLIP the key is the
        *accumulated update* since pass start.  Because every delta is
        applied to the key and the actual gain together, the key always
        equals ``gain_now - gain_at_insert``, and both terms are bounded
        by the vertex's total incident net weight ``S_v``; hence
        ``|key| <= 2 * S_v <= 2 * max_gain``, which is exactly the CLIP
        bucket limit the FM engines allocate.  The saturation below can
        therefore never fire for a correctly-driven engine -- it exists
        so that a caller that breaks the invariant degrades to a
        slightly-wrong priority instead of a crash deep inside a pass.
        """
        new_key = self._key[vertex] + delta
        limit = self._limit
        if new_key > limit:
            new_key = limit
        elif new_key < -limit:
            new_key = -limit
        self.remove(vertex)
        self.insert(vertex, new_key)

    # ------------------------------------------------------------------
    def peek_max(self, fifo: bool = False) -> Optional[int]:
        """Best-bucket vertex without removal.

        ``fifo=False`` returns the most recently inserted vertex of the
        max bucket (LIFO); ``fifo=True`` the oldest.
        """
        if self._count == 0:
            return None
        idx = self._max_index
        return self._tail[idx] if fifo else self._head[idx]

    def pop_max(self, fifo: bool = False) -> Optional[int]:
        """Remove and return the best-bucket vertex (or ``None``)."""
        v = self.peek_max(fifo=fifo)
        if v is not None:
            self.remove(v)
        return v

    def iter_bucket(self, key: int, fifo: bool = False) -> Iterator[int]:
        """Iterate the vertices holding ``key`` in pop order."""
        idx = key + self._limit
        v = self._tail[idx] if fifo else self._head[idx]
        link = self._prev if fifo else self._next
        while v != _NIL:
            yield v
            v = link[v]

    def iter_descending(self, fifo: bool = False) -> Iterator[int]:
        """Iterate all vertices, best key first, pop order within a key.

        The FM engine uses this to find the best *feasible* move when the
        top vertex is blocked by the balance constraint.
        """
        idx = self._max_index
        while idx >= 0:
            if self._head[idx] != _NIL:
                yield from self.iter_bucket(idx - self._limit, fifo=fifo)
            idx -= 1

    def clear(self) -> None:
        """Empty the structure in O(members + occupied key range).

        Instead of rewriting the full ``_present``/``_head``/``_tail``
        arrays (O(num_vertices + 2*limit+1), the historical behaviour),
        walk downward from the max-gain pointer, unlinking the members
        of each occupied bucket, and stop as soon as every member has
        been dropped -- all buckets below the lowest occupied one are
        already empty.  This is what makes per-pass bucket reuse in the
        FM kernels cheaper than allocating fresh buckets.
        """
        head = self._head
        tail = self._tail
        nxt = self._next
        present = self._present
        remaining = self._count
        idx = self._max_index
        while remaining and idx >= 0:
            v = head[idx]
            if v != _NIL:
                while v != _NIL:
                    present[v] = False
                    remaining -= 1
                    v = nxt[v]
                head[idx] = _NIL
                tail[idx] = _NIL
            idx -= 1
        self._count = 0
        self._max_index = -1

    def reset(self) -> None:
        """Prepare the bucket for reuse (the FM per-pass entry point).

        Semantically identical to :meth:`clear`; the separate name marks
        the supported reuse pattern: one bucket per engine, ``reset()``
        at the start of every pass instead of a fresh allocation.
        """
        self.clear()

    def resize(self, num_vertices: int, limit: int) -> None:
        """Re-shape the bucket for a different vertex count / key range.

        The engine-pool entry point: an FM engine rebound to a new graph
        keeps its bucket objects and resizes them instead of allocating
        fresh ones.  The structure is emptied first (``clear`` leaves
        every ``_head``/``_tail`` slot at ``_NIL`` and every ``_present``
        flag False, so surviving prefixes need no rewriting); the arrays
        are then grown or truncated in place.
        """
        if limit < 0:
            raise ValueError("gain limit must be non-negative")
        self.clear()
        self._limit = limit
        size = 2 * limit + 1
        for arr, fill in (
            (self._head, _NIL),
            (self._tail, _NIL),
        ):
            if len(arr) > size:
                del arr[size:]
            elif len(arr) < size:
                arr.extend([fill] * (size - len(arr)))
        for arr, fill in (
            (self._prev, _NIL),
            (self._next, _NIL),
            (self._key, 0),
            (self._present, False),
        ):
            if len(arr) > num_vertices:
                del arr[num_vertices:]
            elif len(arr) < num_vertices:
                arr.extend([fill] * (num_vertices - len(arr)))
