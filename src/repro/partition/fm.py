"""Flat Fiduccia--Mattheyses bipartitioning with fixed vertices.

This is the paper's workhorse: pass-based iterative improvement where
every movable vertex moves at most once per pass, the best prefix of the
move sequence is restored at pass end, and passes repeat until one fails
to improve.  Three selection policies are provided:

* ``lifo``  -- classic FM; the most recently inserted vertex of the best
  gain bucket moves first;
* ``fifo``  -- the oldest vertex of the best bucket moves first;
* ``clip``  -- CLIP (Dutt--Deng): buckets are keyed by accumulated gain
  *updates* since the start of the pass, so cells adjacent to recent
  moves float to the top, sweeping out clusters.

Fixed vertices (the paper's subject) never enter the buckets but still
contribute to net pin counts, so they anchor the gains of their
neighbours exactly as propagated terminals do in top-down placement.
Section III's pass-cutoff heuristic is the ``pass_move_limit_fraction``
knob: every pass after the first stops once that fraction of the movable
vertices has moved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.hypergraph.hypergraph import Hypergraph
from repro.partition.balance import BalanceConstraint
from repro.partition.gainbucket import GainBucket
from repro.partition.solution import (
    FREE,
    Bipartition,
    cut_size,
    validate_fixture,
)

POLICIES = ("lifo", "fifo", "clip")

_HARD_PASS_CAP = 200
"""Safety bound on passes per run when ``max_passes < 0``.

FM converges in well under 20 passes on every instance in the
literature (the paper's Table II reports ~6); the cap only guards
against pathological non-termination.
"""


@dataclass(frozen=True)
class FMConfig:
    """Tuning knobs of the flat FM engine.

    ``pass_move_limit_fraction`` below 1.0 enables the paper's Section III
    cutoff: passes after the first stop once ``fraction * movable`` moves
    have been made.  ``max_passes < 0`` means "until no improvement".
    """

    policy: str = "lifo"
    max_passes: int = -1
    pass_move_limit_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r}; expected one of {POLICIES}"
            )
        if not 0.0 < self.pass_move_limit_fraction <= 1.0:
            raise ValueError("pass_move_limit_fraction must be in (0, 1]")
        if self.max_passes == 0:
            raise ValueError("max_passes must be nonzero (or negative)")


@dataclass(frozen=True)
class PassRecord:
    """Statistics of one FM pass (the raw material of Table II)."""

    pass_index: int
    movable: int
    moves_made: int
    best_prefix: int
    cut_before: int
    cut_after: int
    feasible_after: bool

    @property
    def moved_fraction(self) -> float:
        """Moves made / movable vertices (0 when nothing is movable)."""
        return self.moves_made / self.movable if self.movable else 0.0

    @property
    def wasted_moves(self) -> int:
        """Moves undone by the end-of-pass rollback."""
        return self.moves_made - self.best_prefix

    @property
    def best_prefix_fraction(self) -> float:
        """Position of the restored best solution within the pass."""
        return self.best_prefix / self.moves_made if self.moves_made else 0.0


@dataclass
class FMResult:
    """Outcome of an FM run."""

    solution: Bipartition
    passes: List[PassRecord] = field(default_factory=list)
    initial_cut: int = 0

    @property
    def num_passes(self) -> int:
        """Passes executed (including the final non-improving one)."""
        return len(self.passes)

    @property
    def total_moves(self) -> int:
        """Moves attempted across all passes."""
        return sum(p.moves_made for p in self.passes)


# Lexicographic solution-quality key: a feasible solution always beats an
# infeasible one; among feasible ones lower cut wins, then tighter
# balance; among infeasible ones lower violation wins (so FM repairs
# balance first), then lower cut.
_QualityKey = Tuple[int, float, float]


class FMBipartitioner:
    """Reusable FM engine bound to one (graph, balance, fixture) triple."""

    def __init__(
        self,
        graph: Hypergraph,
        balance: BalanceConstraint,
        fixture: Optional[Sequence[int]] = None,
        config: Optional[FMConfig] = None,
    ) -> None:
        if balance.num_parts != 2:
            raise ValueError("FMBipartitioner is strictly 2-way")
        self.graph = graph
        self.balance = balance
        self.config = config or FMConfig()
        n = graph.num_vertices
        if fixture is None:
            fixture = [FREE] * n
        validate_fixture(fixture, n, 2)
        self.fixture = list(fixture)

        # Flatten adjacency into plain lists once; the inner loop must not
        # pay slice/reconstruction costs on every access.
        self._vnets: List[List[int]] = [
            list(graph.vertex_nets(v)) for v in range(n)
        ]
        self._epins: List[List[int]] = [
            list(graph.net_pins(e)) for e in range(graph.num_nets)
        ]
        self._eweight: List[int] = list(graph.net_weights)
        self._areas: List[float] = list(graph.areas)
        self._movable: List[int] = [
            v for v in range(n) if self.fixture[v] == FREE
        ]
        self._max_gain = max(
            (
                sum(self._eweight[e] for e in self._vnets[v])
                for v in self._movable
            ),
            default=0,
        )
        # Escape slack for balance windows narrower than one cell: the
        # smallest positive movable area is the quantum by which loads
        # can change, so transient violations up to it must be passable
        # or FM deadlocks on tight tolerances (e.g. 2% of a tiny block).
        self._escape_slack = min(
            (
                self._areas[v]
                for v in self._movable
                if self._areas[v] > 0
            ),
            default=0.0,
        )

    @property
    def num_movable(self) -> int:
        """Number of free vertices."""
        return len(self._movable)

    # ------------------------------------------------------------------
    def run(self, initial_parts: Sequence[int]) -> FMResult:
        """Improve ``initial_parts`` and return the best solution found.

        Fixed vertices are forced onto their mandated side before the
        first pass, so any initial assignment for them is tolerated.
        """
        graph = self.graph
        n = graph.num_vertices
        if len(initial_parts) != n:
            raise ValueError("initial_parts length mismatch")
        parts = [
            f if f != FREE else int(p)
            for p, f in zip(initial_parts, self.fixture)
        ]
        for v, p in enumerate(parts):
            if p not in (0, 1):
                raise ValueError(f"vertex {v} assigned to invalid side {p}")

        loads = [0.0, 0.0]
        for v in range(n):
            loads[parts[v]] += self._areas[v]
        cut = cut_size(graph, parts)
        result = FMResult(
            solution=Bipartition(parts=parts, cut=cut), initial_cut=cut
        )
        if not self._movable:
            return result

        max_passes = self.config.max_passes
        if max_passes < 0:
            max_passes = _HARD_PASS_CAP
        pass_index = 0
        while pass_index < max_passes:
            key_before = self._progress_key(cut, loads)
            record, cut = self._run_pass(parts, loads, cut, pass_index)
            result.passes.append(record)
            pass_index += 1
            # Another pass is justified only by a cut improvement (or a
            # violation reduction while infeasible).  Imbalance alone is
            # a within-pass tie-breaker: chaining passes on epsilon
            # imbalance gains could run for an astronomically long time
            # without ever touching the cut.
            if not self._progress_key(cut, loads) < key_before:
                break
        result.solution = Bipartition(parts=parts, cut=cut)
        return result

    # ------------------------------------------------------------------
    def _run_pass(
        self,
        parts: List[int],
        loads: List[float],
        cut: int,
        pass_index: int,
    ) -> Tuple[PassRecord, int]:
        """One FM pass; leaves ``parts``/``loads`` at the best prefix."""
        graph = self.graph
        epins = self._epins
        eweight = self._eweight
        vnets = self._vnets
        areas = self._areas
        clip = self.config.policy == "clip"
        fifo = self.config.policy == "fifo"

        # Net pin counts per side.
        num_nets = graph.num_nets
        cnt = [[0, 0] for _ in range(num_nets)]
        for e in range(num_nets):
            c = cnt[e]
            for v in epins[e]:
                c[parts[v]] += 1

        # Actual gains of all movable vertices.
        gain = [0] * graph.num_vertices
        for v in self._movable:
            s = parts[v]
            g = 0
            for e in vnets[v]:
                c = cnt[e]
                w = eweight[e]
                if c[s] == 1:
                    g += w
                if c[1 - s] == 0:
                    g -= w
            gain[v] = g

        limit = 2 * self._max_gain if clip else self._max_gain
        buckets = (
            GainBucket(graph.num_vertices, limit),
            GainBucket(graph.num_vertices, limit),
        )
        if clip:
            # CLIP keys start at 0; insert in ascending actual-gain order
            # so the LIFO head of the zero bucket pops best-gain-first.
            for v in sorted(self._movable, key=lambda u: gain[u]):
                buckets[parts[v]].insert(v, 0)
        else:
            for v in self._movable:
                buckets[parts[v]].insert(v, gain[v])

        movable_count = len(self._movable)
        if pass_index == 0 or self.config.pass_move_limit_fraction >= 1.0:
            move_limit = movable_count
        else:
            move_limit = max(
                1, int(self.config.pass_move_limit_fraction * movable_count)
            )

        cut_before = cut
        move_log: List[int] = []
        best_prefix = 0
        best_cut = cut
        best_key = self._quality_key(cut, loads)

        while len(move_log) < move_limit:
            v = self._select_move(buckets, loads, fifo)
            if v is None:
                break
            s = parts[v]
            t = 1 - s
            buckets[s].remove(v)  # lock v for the rest of the pass
            cut -= gain[v]

            # Standard FM delta-gain propagation around each net of v.
            # ``v`` itself is locked (absent from the buckets) so the
            # bulk update skips it; the single-pin update must skip it
            # explicitly because parts[v] is stale until after the loop.
            for e in vnets[v]:
                c = cnt[e]
                w = eweight[e]
                if w:
                    if c[t] == 0:
                        self._bump_all_free(e, w, gain, buckets, parts)
                    elif c[t] == 1:
                        self._bump_single(e, t, -w, gain, buckets, parts, v)
                c[s] -= 1
                c[t] += 1
                if w:
                    if c[s] == 0:
                        self._bump_all_free(e, -w, gain, buckets, parts)
                    elif c[s] == 1:
                        self._bump_single(e, s, w, gain, buckets, parts, v)

            parts[v] = t
            loads[s] -= areas[v]
            loads[t] += areas[v]
            move_log.append(v)

            key = self._quality_key(cut, loads)
            if key < best_key:
                best_key = key
                best_cut = cut
                best_prefix = len(move_log)

        moves_made = len(move_log)
        for v in reversed(move_log[best_prefix:]):
            t = parts[v]
            s = 1 - t
            parts[v] = s
            loads[t] -= areas[v]
            loads[s] += areas[v]
        cut = best_cut

        record = PassRecord(
            pass_index=pass_index,
            movable=movable_count,
            moves_made=moves_made,
            best_prefix=best_prefix,
            cut_before=cut_before,
            cut_after=cut,
            feasible_after=self.balance.is_feasible(loads),
        )
        return record, cut

    # ------------------------------------------------------------------
    def _quality_key(self, cut: int, loads: Sequence[float]) -> _QualityKey:
        violation = self.balance.violation(loads)
        if violation == 0.0:
            return (0, float(cut), abs(loads[0] - loads[1]))
        return (1, violation, float(cut))

    def _progress_key(
        self, cut: int, loads: Sequence[float]
    ) -> Tuple[int, float]:
        """Coarser key deciding whether another pass is worthwhile:
        imbalance tie-breaking is dropped (see the run loop)."""
        violation = self.balance.violation(loads)
        if violation == 0.0:
            return (0, float(cut))
        return (1, violation)

    def _select_move(
        self,
        buckets: Tuple[GainBucket, GainBucket],
        loads: List[float],
        fifo: bool,
    ) -> Optional[int]:
        """Best feasible move across both sides.

        Each side's buckets are scanned in descending key order for the
        first vertex whose move the balance constraint allows; the second
        side's scan prunes once its keys drop below the first side's
        candidate.  Gain ties go to the heavier side.
        """
        areas = self._areas
        best_v: Optional[int] = None
        best_side = -1
        best_key = 0
        for side in (0, 1):
            bucket = buckets[side]
            for v in bucket.iter_descending(fifo=fifo):
                key = bucket.key_of(v)
                if best_v is not None and key < best_key:
                    break
                if self._move_allowed(loads, areas[v], side, 1 - side):
                    if (
                        best_v is None
                        or key > best_key
                        or (key == best_key and loads[side] > loads[best_side])
                    ):
                        best_v, best_side, best_key = v, side, key
                    break
        return best_v

    def _move_allowed(
        self, loads: List[float], weight: float, source: int, target: int
    ) -> bool:
        """Balance gate for one move.

        Strictly feasible or violation-reducing moves are always allowed
        (see :meth:`BalanceConstraint.allows_move`).  Additionally, a
        move off the heavier (or equal) side whose resulting violation
        stays within the escape slack is allowed: with a balance window
        narrower than one cell, *every* move transiently violates the
        window, and without this hatch FM would deadlock at the first
        tight bisection.  The pass rollback still restores the best
        *feasible* prefix, so final solutions never rely on the hatch.
        """
        if self.balance.allows_move(loads, weight, source, target):
            return True
        if loads[source] < loads[target]:
            return False
        after = [
            load - weight if i == source else
            load + weight if i == target else load
            for i, load in enumerate(loads)
        ]
        return self.balance.violation(after) <= self._escape_slack

    def _bump_all_free(
        self,
        e: int,
        delta: int,
        gain: List[int],
        buckets: Tuple[GainBucket, GainBucket],
        parts: List[int],
    ) -> None:
        """Apply ``delta`` to every unlocked free pin of net ``e``."""
        for u in self._epins[e]:
            bucket = buckets[parts[u]]
            if u in bucket:
                gain[u] += delta
                bucket.adjust(u, delta)

    def _bump_single(
        self,
        e: int,
        side: int,
        delta: int,
        gain: List[int],
        buckets: Tuple[GainBucket, GainBucket],
        parts: List[int],
        moving: int,
    ) -> None:
        """Apply ``delta`` to the unique pin of net ``e`` on ``side``
        (skipping the vertex currently being moved, whose side marker is
        stale), if that pin is free and unlocked."""
        for u in self._epins[e]:
            if u != moving and parts[u] == side:
                bucket = buckets[side]
                if u in bucket:
                    gain[u] += delta
                    bucket.adjust(u, delta)
                return
