"""Flat Fiduccia--Mattheyses bipartitioning with fixed vertices.

This is the paper's workhorse: pass-based iterative improvement where
every movable vertex moves at most once per pass, the best prefix of the
move sequence is restored at pass end, and passes repeat until one fails
to improve.  Three selection policies are provided:

* ``lifo``  -- classic FM; the most recently inserted vertex of the best
  gain bucket moves first;
* ``fifo``  -- the oldest vertex of the best bucket moves first;
* ``clip``  -- CLIP (Dutt--Deng): buckets are keyed by accumulated gain
  *updates* since the start of the pass, so cells adjacent to recent
  moves float to the top, sweeping out clusters.

Fixed vertices (the paper's subject) never enter the buckets but still
contribute to net pin counts, so they anchor the gains of their
neighbours exactly as propagated terminals do in top-down placement.
Section III's pass-cutoff heuristic is the ``pass_move_limit_fraction``
knob: every pass after the first stops once that fraction of the movable
vertices has moved.

Kernel layout
-------------

The inner loop is a flat-array kernel.  The engine owns persistent
:mod:`array`-module typed buffers -- per-side net pin counts
(``_cnt0/_cnt1``), per-side pin-id sums (``_ids0/_ids1``), per-side
unlocked-free-pin counts (``_uf0/_uf1``) and the per-vertex exact gains
(``_gain``) -- plus one reusable :class:`GainBucket` per side.  The
invariants:

* Between passes, ``cnt``/``ids``/``uf`` and ``gain`` are exact with
  respect to ``parts``.  A pass mutates them move by move and the
  end-of-pass rollback restores them *incrementally* by replaying the
  undone moves backwards with the same delta-gain formulas, so pass
  setup is O(movable) bucket inserts instead of the historical
  O(pins) count-and-gain rebuild.
* ``ids0[e]``/``ids1[e]`` hold the sum of pin ids of net ``e`` on each
  side; when a side's pin count is 1 the id sum *is* the unique pin, so
  the single-pin gain update is O(1) instead of a scan of ``epins[e]``.
* ``uf0[e]``/``uf1[e]`` count net ``e``'s movable, not-yet-moved pins
  per side; when both are zero a whole-net gain update can skip all
  bucket bookkeeping (the locked pins only need their gain scalar kept
  current for the next pass).

The kernel preserves the *exact* move sequence of the straightforward
implementation retained in :mod:`repro.partition.fm_reference`: same
moves in the same order, same pass records, same cuts, bit for bit.
``tests/partition/test_fm_kernel_differential.py`` enforces this and
``benchmarks/fm_kernel.py`` measures the speedup.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.hypergraph.hypergraph import Hypergraph
from repro.partition.balance import BalanceConstraint
from repro.partition.gainbucket import GainBucket
from repro.runtime.observe import recorder as _observe
from repro.partition.solution import (
    FREE,
    Bipartition,
    cut_size,
    validate_fixture,
)

POLICIES = ("lifo", "fifo", "clip")

_HARD_PASS_CAP = 200
"""Safety bound on passes per run when ``max_passes < 0``.

FM converges in well under 20 passes on every instance in the
literature (the paper's Table II reports ~6); the cap only guards
against pathological non-termination.
"""

_NIL = -2
"""GainBucket link terminator, mirrored here for the inlined hot loop."""


@dataclass(frozen=True)
class FMConfig:
    """Tuning knobs of the flat FM engine.

    ``pass_move_limit_fraction`` below 1.0 enables the paper's Section III
    cutoff: passes after the first stop once ``fraction * movable`` moves
    have been made.  ``max_passes < 0`` means "until no improvement".
    ``record_moves`` keeps the full per-pass move sequence on the result
    (used by the differential tests and the kernel benchmark).
    """

    policy: str = "lifo"
    max_passes: int = -1
    pass_move_limit_fraction: float = 1.0
    record_moves: bool = False

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r}; expected one of {POLICIES}"
            )
        if not 0.0 < self.pass_move_limit_fraction <= 1.0:
            raise ValueError("pass_move_limit_fraction must be in (0, 1]")
        if self.max_passes == 0:
            raise ValueError("max_passes must be nonzero (or negative)")


@dataclass(frozen=True)
class PassRecord:
    """Statistics of one FM pass (the raw material of Table II)."""

    pass_index: int
    movable: int
    moves_made: int
    best_prefix: int
    cut_before: int
    cut_after: int
    feasible_after: bool

    @property
    def moved_fraction(self) -> float:
        """Moves made / movable vertices (0 when nothing is movable)."""
        return self.moves_made / self.movable if self.movable else 0.0

    @property
    def wasted_moves(self) -> int:
        """Moves undone by the end-of-pass rollback."""
        return self.moves_made - self.best_prefix

    @property
    def best_prefix_fraction(self) -> float:
        """Position of the restored best solution within the pass."""
        return self.best_prefix / self.moves_made if self.moves_made else 0.0


@dataclass
class FMResult:
    """Outcome of an FM run."""

    solution: Bipartition
    passes: List[PassRecord] = field(default_factory=list)
    initial_cut: int = 0
    move_logs: List[List[int]] = field(default_factory=list)
    """Per-pass move sequences (pre-rollback); filled only when the
    config sets ``record_moves``."""

    @property
    def num_passes(self) -> int:
        """Passes executed (including the final non-improving one)."""
        return len(self.passes)

    @property
    def total_moves(self) -> int:
        """Moves attempted across all passes."""
        return sum(p.moves_made for p in self.passes)


# Lexicographic solution-quality key: a feasible solution always beats an
# infeasible one; among feasible ones lower cut wins, then tighter
# balance; among infeasible ones lower violation wins (so FM repairs
# balance first), then lower cut.
_QualityKey = Tuple[int, float, float]


def _resize_zq(arr: array, length: int) -> None:
    """Resize a signed-64 array in place, zero-filling any growth."""
    cur = len(arr)
    if cur > length:
        del arr[length:]
    elif cur < length:
        arr.extend(array("q", bytes(8 * (length - cur))))


def _record_fm_run(recorder, span, config: FMConfig, result: FMResult) -> None:
    """Emit the trace of one completed FM run (enabled recorders only).

    Everything here is read off the result's pass records, so the
    kernel's hot loop carries zero instrumentation.  Bucket traffic is
    derived rather than counted in the loop: each pass inserts every
    movable vertex once and each executed move pops one entry.  A pass
    "triggers the cutoff" when its move count reached the Section III
    limit while movable vertices remained.
    """
    span.set(
        initial_cut=result.initial_cut,
        final_cut=result.solution.cut,
        passes=result.num_passes,
    )
    recorder.count("fm.runs")
    recorder.count("fm.passes", result.num_passes)
    recorder.count("fm.moves", result.total_moves)
    fraction = config.pass_move_limit_fraction
    for record in result.passes:
        recorder.event(
            "fm.pass",
            pass_index=record.pass_index,
            movable=record.movable,
            moves_made=record.moves_made,
            best_prefix=record.best_prefix,
            cut_before=record.cut_before,
            cut_after=record.cut_after,
            feasible_after=record.feasible_after,
        )
        recorder.count("fm.best_prefix_moves", record.best_prefix)
        recorder.count("fm.wasted_moves", record.wasted_moves)
        recorder.count("fm.bucket.inserts", record.movable)
        recorder.count("fm.bucket.pops", record.moves_made)
        recorder.hist("fm.pass.moves", record.moves_made)
        recorder.hist("fm.pass.best_prefix", record.best_prefix)
        if (
            record.pass_index > 0
            and fraction < 1.0
            and record.moves_made < record.movable
            and record.moves_made == max(1, int(fraction * record.movable))
        ):
            recorder.count("fm.cutoff_triggers")


class FMBipartitioner:
    """Reusable FM engine bound to one (graph, balance, fixture) triple.

    The engine carries persistent pass state (see the module docstring);
    every :meth:`run` re-derives that state from its initial assignment,
    so one engine instance can serve any number of runs -- including
    interleaved runs from multistart drivers -- as long as they are
    sequential.
    """

    def __init__(
        self,
        graph: Hypergraph,
        balance: BalanceConstraint,
        fixture: Optional[Sequence[int]] = None,
        config: Optional[FMConfig] = None,
    ) -> None:
        if balance.num_parts != 2:
            raise ValueError("FMBipartitioner is strictly 2-way")
        self.balance = balance
        self.config = config or FMConfig()

        # Persistent typed buffers.  _bind sizes them to the bound graph;
        # rebind() re-shapes them in place instead of reallocating, which
        # is what makes one engine serve a whole multilevel hierarchy.
        self._zero_nets = array("q")
        self._cnt0 = array("q")
        self._cnt1 = array("q")
        self._ids0 = array("q")
        self._ids1 = array("q")
        self._uf0 = array("q")
        self._uf1 = array("q")
        self._gain = array("q")
        self._snap_cnt0 = array("q")
        self._snap_cnt1 = array("q")
        self._snap_ids0 = array("q")
        self._snap_ids1 = array("q")
        self._snap_uf0 = array("q")
        self._snap_uf1 = array("q")
        self._snap_gain = array("q")
        self._snap_parts: List[int] = []
        self._buckets: Optional[Tuple[GainBucket, GainBucket]] = None

        self.graph: Optional[Hypergraph] = None
        self.fixture: Optional[List[int]] = None
        self._bind(graph, fixture)

    def rebind(
        self,
        graph: Hypergraph,
        fixture: Optional[Sequence[int]] = None,
    ) -> "FMBipartitioner":
        """Re-target the engine at a new ``(graph, fixture)`` pair.

        All graph-derived state is recomputed, but every typed buffer and
        both gain buckets are resized in place rather than reallocated --
        the engine-pool fast path for multilevel drivers that refine a
        stack of similarly-shaped graphs.  Returns ``self``.
        """
        new_fixture = (
            list(fixture)
            if fixture is not None
            else [FREE] * graph.num_vertices
        )
        if graph is self.graph and new_fixture == self.fixture:
            return self
        self._bind(graph, new_fixture)
        return self

    def _bind(
        self,
        graph: Hypergraph,
        fixture: Optional[Sequence[int]],
    ) -> None:
        """Derive all per-graph state; reuse buffer allocations."""
        n = graph.num_vertices
        if fixture is None:
            fixture = [FREE] * n
        validate_fixture(fixture, n, 2)
        self.graph = graph
        self.fixture = list(fixture)

        # Flatten adjacency into plain lists once; the inner loop must not
        # pay slice/reconstruction costs on every access.
        self._vnets: List[List[int]] = [
            list(graph.vertex_nets(v)) for v in range(n)
        ]
        self._epins: List[List[int]] = [
            list(graph.net_pins(e)) for e in range(graph.num_nets)
        ]
        self._eweight: List[int] = list(graph.net_weights)
        self._areas: List[float] = list(graph.areas)
        self._movable: List[int] = [
            v for v in range(n) if self.fixture[v] == FREE
        ]
        self._free_mask: List[bool] = [f == FREE for f in self.fixture]
        self._max_gain = max(
            (
                sum(self._eweight[e] for e in self._vnets[v])
                for v in self._movable
            ),
            default=0,
        )
        # Escape slack for balance windows narrower than one cell: the
        # smallest positive movable area is the quantum by which loads
        # can change, so transient violations up to it must be passable
        # or FM deadlocks on tight tolerances (e.g. 2% of a tiny block).
        self._escape_slack = min(
            (
                self._areas[v]
                for v in self._movable
                if self._areas[v] > 0
            ),
            default=0.0,
        )

        # Kernel buffers, resized in place.  cnt/ids are fully rewritten
        # by _init_run_state and gain is set per movable vertex, so stale
        # tails from a previous binding are never read; _zero_nets is the
        # uf reset template and must stay all-zero, which _resize_zq's
        # truncate/zero-extend preserves.
        num_nets = graph.num_nets
        _resize_zq(self._zero_nets, num_nets)
        _resize_zq(self._cnt0, num_nets)
        _resize_zq(self._cnt1, num_nets)
        _resize_zq(self._ids0, num_nets)
        _resize_zq(self._ids1, num_nets)
        _resize_zq(self._uf0, num_nets)
        _resize_zq(self._uf1, num_nets)
        _resize_zq(self._gain, n)

        # Pass-start snapshots for the cheaper-direction restore: when a
        # pass keeps fewer moves than it undoes, restoring the snapshot
        # (C-speed slice copies) and replaying the kept prefix forward
        # beats replaying the undone suffix backwards.
        _resize_zq(self._snap_cnt0, num_nets)
        _resize_zq(self._snap_cnt1, num_nets)
        _resize_zq(self._snap_ids0, num_nets)
        _resize_zq(self._snap_ids1, num_nets)
        _resize_zq(self._snap_uf0, num_nets)
        _resize_zq(self._snap_uf1, num_nets)
        _resize_zq(self._snap_gain, n)
        if len(self._snap_parts) != n:
            self._snap_parts = [0] * n

        # One reusable bucket per side; reset() per pass instead of two
        # fresh allocations.  CLIP keys are accumulated updates, whose
        # magnitude is bounded by 2 * max_gain (see GainBucket.adjust).
        limit = (
            2 * self._max_gain
            if self.config.policy == "clip"
            else self._max_gain
        )
        if self._buckets is None:
            self._buckets = (GainBucket(n, limit), GainBucket(n, limit))
        else:
            self._buckets[0].resize(n, limit)
            self._buckets[1].resize(n, limit)
        self._bucket_limit = limit

    @property
    def num_movable(self) -> int:
        """Number of free vertices."""
        return len(self._movable)

    # ------------------------------------------------------------------
    def run(
        self,
        initial_parts: Sequence[int],
        initial_cut: Optional[int] = None,
    ) -> FMResult:
        """Improve ``initial_parts`` and return the best solution found.

        Fixed vertices are forced onto their mandated side before the
        first pass, so any initial assignment for them is tolerated.
        ``initial_cut`` lets a caller that already knows the exact cut of
        ``initial_parts`` (e.g. the multilevel driver, whose projections
        preserve the cut) skip the O(pins) ``cut_size`` evaluation; it is
        trusted, so it must be exact.

        With a :mod:`repro.runtime.observe` recorder active, the run is
        wrapped in an ``fm.run`` span carrying one ``fm.pass`` event per
        pass -- emitted *after* the kernel returns, from the pass records
        it produces anyway, so the move sequence is untouched and traced
        runs stay bit-identical to untraced ones.
        """
        recorder = _observe.active()
        if not recorder.enabled:
            return self._run(initial_parts, initial_cut)
        with recorder.span(
            "fm.run",
            policy=self.config.policy,
            movable=len(self._movable),
        ) as span:
            result = self._run(initial_parts, initial_cut)
            _record_fm_run(recorder, span, self.config, result)
        return result

    def _run(
        self,
        initial_parts: Sequence[int],
        initial_cut: Optional[int] = None,
    ) -> FMResult:
        """The uninstrumented engine (see :meth:`run`)."""
        graph = self.graph
        n = graph.num_vertices
        if len(initial_parts) != n:
            raise ValueError("initial_parts length mismatch")
        parts = [
            f if f != FREE else int(p)
            for p, f in zip(initial_parts, self.fixture)
        ]
        for v, p in enumerate(parts):
            if p not in (0, 1):
                raise ValueError(f"vertex {v} assigned to invalid side {p}")

        loads = [0.0, 0.0]
        for v in range(n):
            loads[parts[v]] += self._areas[v]
        cut = cut_size(graph, parts) if initial_cut is None else initial_cut
        result = FMResult(
            solution=Bipartition(parts=parts, cut=cut), initial_cut=cut
        )
        if not self._movable:
            return result

        self._init_run_state(parts)

        max_passes = self.config.max_passes
        if max_passes < 0:
            max_passes = _HARD_PASS_CAP
        record_moves = self.config.record_moves
        pass_index = 0
        while pass_index < max_passes:
            key_before = self._progress_key(cut, loads)
            record, cut, move_log = self._run_pass(
                parts, loads, cut, pass_index
            )
            result.passes.append(record)
            if record_moves:
                result.move_logs.append(move_log)
            pass_index += 1
            # Another pass is justified only by a cut improvement (or a
            # violation reduction while infeasible).  Imbalance alone is
            # a within-pass tie-breaker: chaining passes on epsilon
            # imbalance gains could run for an astronomically long time
            # without ever touching the cut.
            if not self._progress_key(cut, loads) < key_before:
                break
        result.solution = Bipartition(parts=parts, cut=cut)
        return result

    # ------------------------------------------------------------------
    def _init_run_state(self, parts: List[int]) -> None:
        """Derive cnt/ids/uf/gain from ``parts`` (once per run).

        Subsequent passes keep these buffers exact incrementally: moves
        update them forward, the rollback replays the undone moves
        backwards, so no per-pass rebuild is needed.
        """
        cnt0 = self._cnt0
        cnt1 = self._cnt1
        ids0 = self._ids0
        ids1 = self._ids1
        epins = self._epins
        for e in range(len(epins)):
            c0 = 0
            s0 = 0
            c1 = 0
            s1 = 0
            for v in epins[e]:
                if parts[v]:
                    c1 += 1
                    s1 += v
                else:
                    c0 += 1
                    s0 += v
            cnt0[e] = c0
            cnt1[e] = c1
            ids0[e] = s0
            ids1[e] = s1

        uf0 = self._uf0
        uf1 = self._uf1
        uf0[:] = self._zero_nets
        uf1[:] = self._zero_nets
        vnets = self._vnets
        eweight = self._eweight
        gain = self._gain
        for v in self._movable:
            vn = vnets[v]
            g = 0
            if parts[v]:
                for e in vn:
                    uf1[e] += 1
                    w = eweight[e]
                    if cnt1[e] == 1:
                        g += w
                    if cnt0[e] == 0:
                        g -= w
            else:
                for e in vn:
                    uf0[e] += 1
                    w = eweight[e]
                    if cnt0[e] == 1:
                        g += w
                    if cnt1[e] == 0:
                        g -= w
            gain[v] = g

    # ------------------------------------------------------------------
    def _run_pass(
        self,
        parts: List[int],
        loads: List[float],
        cut: int,
        pass_index: int,
    ) -> Tuple[PassRecord, int, List[int]]:
        """One FM pass; leaves ``parts``/``loads`` at the best prefix.

        This is the kernel: bucket links, pin counts and gains are
        manipulated through pre-bound local references, and the
        single-pin / whole-net gain updates use the id-sum and
        unlocked-count buffers described in the module docstring.
        """
        epins = self._epins
        eweight = self._eweight
        vnets = self._vnets
        areas = self._areas
        gain = self._gain
        free = self._free_mask
        cnt0 = self._cnt0
        cnt1 = self._cnt1
        ids0 = self._ids0
        ids1 = self._ids1
        uf0 = self._uf0
        uf1 = self._uf1
        clip = self.config.policy == "clip"
        fifo = self.config.policy == "fifo"

        # Snapshot the pass-start net/gain state (C-speed slice copies).
        # The end-of-pass restore then picks the cheaper direction:
        # replay the undone suffix backwards, or restore the snapshot
        # and replay the kept prefix forwards.  Final passes keep
        # nothing, so their restore collapses to the copies alone.
        snap_cnt0 = self._snap_cnt0
        snap_cnt1 = self._snap_cnt1
        snap_ids0 = self._snap_ids0
        snap_ids1 = self._snap_ids1
        snap_uf0 = self._snap_uf0
        snap_uf1 = self._snap_uf1
        snap_gain = self._snap_gain
        snap_parts = self._snap_parts
        snap_cnt0[:] = cnt0
        snap_cnt1[:] = cnt1
        snap_ids0[:] = ids0
        snap_ids1[:] = ids1
        snap_uf0[:] = uf0
        snap_uf1[:] = uf1
        snap_gain[:] = gain
        snap_parts[:] = parts

        b0, b1 = self._buckets
        b0.reset()
        b1.reset()

        # Local views of the bucket internals for the inlined hot loop.
        # Writes go through these shared lists; the scalar max/count
        # state lives in the two small lists below and is written back
        # to the bucket objects before returning.
        limit = self._bucket_limit
        h0, t0, p0, n0 = b0._head, b0._tail, b0._prev, b0._next
        k0, pr0 = b0._key, b0._present
        h1, t1, p1, n1 = b1._head, b1._tail, b1._prev, b1._next
        k1, pr1 = b1._key, b1._present
        maxi = [-1, -1]
        counts = [0, 0]
        NIL = _NIL

        # Pass-start inserts, inlined (fresh LIFO head pushes into the
        # just-reset buckets).  CLIP keys start at 0, inserted in
        # ascending actual-gain order so the LIFO head of the zero
        # bucket pops best-gain-first.
        if clip:
            order = sorted(self._movable, key=gain.__getitem__)
        else:
            order = self._movable
        c0 = 0
        c1 = 0
        for v in order:
            if clip:
                key = 0
                idx = limit
            else:
                key = gain[v]
                idx = key + limit
            if parts[v]:
                oh = h1[idx]
                n1[v] = oh
                p1[v] = NIL
                if oh != NIL:
                    p1[oh] = v
                else:
                    t1[idx] = v
                h1[idx] = v
                k1[v] = key
                pr1[v] = True
                c1 += 1
                if idx > maxi[1]:
                    maxi[1] = idx
            else:
                oh = h0[idx]
                n0[v] = oh
                p0[v] = NIL
                if oh != NIL:
                    p0[oh] = v
                else:
                    t0[idx] = v
                h0[idx] = v
                k0[v] = key
                pr0[v] = True
                c0 += 1
                if idx > maxi[0]:
                    maxi[0] = idx
        counts[0] = c0
        counts[1] = c1

        movable_count = len(self._movable)
        if pass_index == 0 or self.config.pass_move_limit_fraction >= 1.0:
            move_limit = movable_count
        else:
            move_limit = max(
                1, int(self.config.pass_move_limit_fraction * movable_count)
            )

        balance = self.balance
        mn0, mn1 = balance.min_loads[0], balance.min_loads[1]
        mx0, mx1 = balance.max_loads[0], balance.max_loads[1]

        slack = self._escape_slack
        start0 = t0 if fifo else h0
        start1 = t1 if fifo else h1
        nav0 = p0 if fifo else n0
        nav1 = p1 if fifo else n1

        cut_before = cut
        move_log: List[int] = []
        log_append = move_log.append
        nmoves = 0
        best_prefix = 0
        best_cut = cut
        # Scalar-decomposed _QualityKey of the best prefix so far (the
        # per-move comparison avoids tuple allocation).
        bk_state, bk_a, bk_b = self._quality_key(cut, loads)
        l0 = loads[0]
        l1 = loads[1]

        while nmoves < move_limit:
            # ---- selection (inlined _select_move) -------------------
            # The balance gate is fully inlined: strict feasibility,
            # then violation reduction (the "before" pair violation is
            # loop-invariant per side and hoisted), then the escape
            # hatch off the heavier side.  Must stay equivalent to
            # _move_allowed.
            best_v = -1
            best_sel_key = 0
            best_side = 0
            # Side 0 scan (first feasible vertex of the best bucket).
            idx = maxi[0]
            if idx >= 0:
                before = 0.0
                if l0 < mn0:
                    before = mn0 - l0
                elif l0 > mx0:
                    before = l0 - mx0
                if l1 < mn1:
                    before += mn1 - l1
                elif l1 > mx1:
                    before += l1 - mx1
                hatch_ok = l0 >= l1
                while idx >= 0:
                    v = start0[idx]
                    while v != NIL:
                        av = areas[v]
                        ns = l0 - av
                        nt = l1 + av
                        if mn0 <= ns <= mx0 and mn1 <= nt <= mx1:
                            break
                        after = 0.0
                        if ns < mn0:
                            after = mn0 - ns
                        elif ns > mx0:
                            after = ns - mx0
                        if nt < mn1:
                            after += mn1 - nt
                        elif nt > mx1:
                            after += nt - mx1
                        if after < before or (hatch_ok and after <= slack):
                            break
                        v = nav0[v]
                    if v != NIL:
                        best_v = v
                        best_sel_key = idx - limit
                        break
                    idx -= 1
            # Side 1 scan; buckets strictly below side 0's best key are
            # pruned, equal keys tie-break to the heavier source side.
            idx = maxi[1]
            if idx >= 0 and not (best_v >= 0 and idx - limit < best_sel_key):
                before = 0.0
                if l1 < mn1:
                    before = mn1 - l1
                elif l1 > mx1:
                    before = l1 - mx1
                if l0 < mn0:
                    before += mn0 - l0
                elif l0 > mx0:
                    before += l0 - mx0
                hatch_ok = l1 >= l0
                while idx >= 0:
                    if best_v >= 0 and idx - limit < best_sel_key:
                        break
                    v = start1[idx]
                    while v != NIL:
                        av = areas[v]
                        ns = l1 - av
                        nt = l0 + av
                        if mn1 <= ns <= mx1 and mn0 <= nt <= mx0:
                            break
                        after = 0.0
                        if ns < mn1:
                            after = mn1 - ns
                        elif ns > mx1:
                            after = ns - mx1
                        if nt < mn0:
                            after += mn0 - nt
                        elif nt > mx0:
                            after += nt - mx0
                        if after < before or (hatch_ok and after <= slack):
                            break
                        v = nav1[v]
                    if v != NIL:
                        key = idx - limit
                        if (
                            best_v < 0
                            or key > best_sel_key
                            or (key == best_sel_key and l1 > l0)
                        ):
                            best_v = v
                            best_side = 1
                            best_sel_key = key
                        break
                    idx -= 1
            if best_v < 0:
                break
            v = best_v
            s = best_side
            t = 1 - s

            # Per-side views for the remove and the delta propagation
            # (source-side bucket arrays unsuffixed, target-side with a
            # trailing underscore).
            if s:
                hd, tl, pv, nx, ky = h1, t1, p1, n1, k1
                ht_, tt_, pt_, nt_, kt_ = h0, t0, p0, n0, k0
                cs_, ct_ = cnt1, cnt0
                iss_, ist_ = ids1, ids0
                ufs_ = uf1
                pres_s, pres_t = pr1, pr0
            else:
                hd, tl, pv, nx, ky = h0, t0, p0, n0, k0
                ht_, tt_, pt_, nt_, kt_ = h1, t1, p1, n1, k1
                cs_, ct_ = cnt0, cnt1
                iss_, ist_ = ids0, ids1
                ufs_ = uf0
                pres_s, pres_t = pr0, pr1

            # ---- lock v: inlined bucket remove ----------------------
            idx = ky[v] + limit
            pu = pv[v]
            nu = nx[v]
            if pu != NIL:
                nx[pu] = nu
            else:
                hd[idx] = nu
            if nu != NIL:
                pv[nu] = pu
            else:
                tl[idx] = pu
            pres_s[v] = False
            c = counts[s] - 1
            counts[s] = c
            if c == 0:
                maxi[s] = -1
            elif idx == maxi[s] and hd[idx] == NIL:
                m = idx
                while m >= 0 and hd[m] == NIL:
                    m -= 1
                maxi[s] = m

            gv = gain[v]
            cut -= gv

            # ---- delta-gain propagation around each net of v --------
            # ``v`` itself is locked, so gain updates skip it; its own
            # gain flips sign exactly (the move reverses every one of
            # its net contributions).
            # Bucket adjusts are inlined and sign-specialized: a +w
            # adjust can only raise the max index (if the source bucket
            # was the max, the destination is higher still), a -w adjust
            # can only lower it (walk down when the max bucket empties).
            for e in vnets[v]:
                ufs_[e] -= 1  # v is no longer an unlocked pin of e
                w = eweight[e]
                if w:
                    ct = ct_[e]
                    # ct == 0 means the net lies entirely on the source
                    # side, so cs equals the net size: cs == 2 is the
                    # dominant two-pin-net case, where the other pin is
                    # the id-sum minus v -- no epins scan at all.
                    cs2 = cs_[e] if ct == 0 else 0
                    if cs2 == 2:
                        u = iss_[e] - v
                        if free[u]:
                            gain[u] += w
                            if parts[u]:
                                if pr1[u]:
                                    kk = k1[u]
                                    idxo = kk + limit
                                    pu = p1[u]
                                    nu = n1[u]
                                    if pu != NIL:
                                        n1[pu] = nu
                                    else:
                                        h1[idxo] = nu
                                    if nu != NIL:
                                        p1[nu] = pu
                                    else:
                                        t1[idxo] = pu
                                    idx2 = idxo + w
                                    oh = h1[idx2]
                                    n1[u] = oh
                                    p1[u] = NIL
                                    if oh != NIL:
                                        p1[oh] = u
                                    else:
                                        t1[idx2] = u
                                    h1[idx2] = u
                                    k1[u] = kk + w
                                    if idx2 > maxi[1]:
                                        maxi[1] = idx2
                            elif pr0[u]:
                                kk = k0[u]
                                idxo = kk + limit
                                pu = p0[u]
                                nu = n0[u]
                                if pu != NIL:
                                    n0[pu] = nu
                                else:
                                    h0[idxo] = nu
                                if nu != NIL:
                                    p0[nu] = pu
                                else:
                                    t0[idxo] = pu
                                idx2 = idxo + w
                                oh = h0[idx2]
                                n0[u] = oh
                                p0[u] = NIL
                                if oh != NIL:
                                    p0[oh] = u
                                else:
                                    t0[idx2] = u
                                h0[idx2] = u
                                k0[u] = kk + w
                                if idx2 > maxi[0]:
                                    maxi[0] = idx2
                    elif cs2 > 2:
                        pins = epins[e]
                        if uf0[e] or uf1[e]:
                            for u in pins:
                                if u != v and free[u]:
                                    gain[u] += w
                                    if parts[u]:
                                        if pr1[u]:
                                            kk = k1[u]
                                            idxo = kk + limit
                                            pu = p1[u]
                                            nu = n1[u]
                                            if pu != NIL:
                                                n1[pu] = nu
                                            else:
                                                h1[idxo] = nu
                                            if nu != NIL:
                                                p1[nu] = pu
                                            else:
                                                t1[idxo] = pu
                                            idx2 = idxo + w
                                            oh = h1[idx2]
                                            n1[u] = oh
                                            p1[u] = NIL
                                            if oh != NIL:
                                                p1[oh] = u
                                            else:
                                                t1[idx2] = u
                                            h1[idx2] = u
                                            k1[u] = kk + w
                                            if idx2 > maxi[1]:
                                                maxi[1] = idx2
                                    elif pr0[u]:
                                        kk = k0[u]
                                        idxo = kk + limit
                                        pu = p0[u]
                                        nu = n0[u]
                                        if pu != NIL:
                                            n0[pu] = nu
                                        else:
                                            h0[idxo] = nu
                                        if nu != NIL:
                                            p0[nu] = pu
                                        else:
                                            t0[idxo] = pu
                                        idx2 = idxo + w
                                        oh = h0[idx2]
                                        n0[u] = oh
                                        p0[u] = NIL
                                        if oh != NIL:
                                            p0[oh] = u
                                        else:
                                            t0[idx2] = u
                                        h0[idx2] = u
                                        k0[u] = kk + w
                                        if idx2 > maxi[0]:
                                            maxi[0] = idx2
                        else:
                            for u in pins:
                                if u != v and free[u]:
                                    gain[u] += w
                    elif ct == 1:
                        u = ist_[e]
                        if free[u]:
                            gain[u] -= w
                            if pres_t[u]:
                                kk = kt_[u]
                                idxo = kk + limit
                                pu = pt_[u]
                                nu = nt_[u]
                                if pu != NIL:
                                    nt_[pu] = nu
                                else:
                                    ht_[idxo] = nu
                                if nu != NIL:
                                    pt_[nu] = pu
                                else:
                                    tt_[idxo] = pu
                                idx2 = idxo - w
                                oh = ht_[idx2]
                                nt_[u] = oh
                                pt_[u] = NIL
                                if oh != NIL:
                                    pt_[oh] = u
                                else:
                                    tt_[idx2] = u
                                ht_[idx2] = u
                                kt_[u] = kk - w
                                if idxo == maxi[t] and ht_[idxo] == NIL:
                                    m = idxo
                                    while ht_[m] == NIL:
                                        m -= 1
                                    maxi[t] = m
                cs_[e] -= 1
                ct_[e] += 1
                iss_[e] -= v
                ist_[e] += v
                if w:
                    cs = cs_[e]
                    # cs == 0 means the net now lies entirely on the
                    # target side (ct includes v), so ct == 2 is again
                    # the two-pin-net case with an O(1) other-pin.
                    ct2 = ct_[e] if cs == 0 else 0
                    if ct2 == 2:
                        u = ist_[e] - v
                        if free[u]:
                            gain[u] -= w
                            if parts[u]:
                                if pr1[u]:
                                    kk = k1[u]
                                    idxo = kk + limit
                                    pu = p1[u]
                                    nu = n1[u]
                                    if pu != NIL:
                                        n1[pu] = nu
                                    else:
                                        h1[idxo] = nu
                                    if nu != NIL:
                                        p1[nu] = pu
                                    else:
                                        t1[idxo] = pu
                                    idx2 = idxo - w
                                    oh = h1[idx2]
                                    n1[u] = oh
                                    p1[u] = NIL
                                    if oh != NIL:
                                        p1[oh] = u
                                    else:
                                        t1[idx2] = u
                                    h1[idx2] = u
                                    k1[u] = kk - w
                                    if (
                                        idxo == maxi[1]
                                        and h1[idxo] == NIL
                                    ):
                                        m = idxo
                                        while h1[m] == NIL:
                                            m -= 1
                                        maxi[1] = m
                            elif pr0[u]:
                                kk = k0[u]
                                idxo = kk + limit
                                pu = p0[u]
                                nu = n0[u]
                                if pu != NIL:
                                    n0[pu] = nu
                                else:
                                    h0[idxo] = nu
                                if nu != NIL:
                                    p0[nu] = pu
                                else:
                                    t0[idxo] = pu
                                idx2 = idxo - w
                                oh = h0[idx2]
                                n0[u] = oh
                                p0[u] = NIL
                                if oh != NIL:
                                    p0[oh] = u
                                else:
                                    t0[idx2] = u
                                h0[idx2] = u
                                k0[u] = kk - w
                                if (
                                    idxo == maxi[0]
                                    and h0[idxo] == NIL
                                ):
                                    m = idxo
                                    while h0[m] == NIL:
                                        m -= 1
                                    maxi[0] = m
                    elif ct2 > 2:
                        pins = epins[e]
                        if uf0[e] or uf1[e]:
                            for u in pins:
                                if u != v and free[u]:
                                    gain[u] -= w
                                    if parts[u]:
                                        if pr1[u]:
                                            kk = k1[u]
                                            idxo = kk + limit
                                            pu = p1[u]
                                            nu = n1[u]
                                            if pu != NIL:
                                                n1[pu] = nu
                                            else:
                                                h1[idxo] = nu
                                            if nu != NIL:
                                                p1[nu] = pu
                                            else:
                                                t1[idxo] = pu
                                            idx2 = idxo - w
                                            oh = h1[idx2]
                                            n1[u] = oh
                                            p1[u] = NIL
                                            if oh != NIL:
                                                p1[oh] = u
                                            else:
                                                t1[idx2] = u
                                            h1[idx2] = u
                                            k1[u] = kk - w
                                            if (
                                                idxo == maxi[1]
                                                and h1[idxo] == NIL
                                            ):
                                                m = idxo
                                                while h1[m] == NIL:
                                                    m -= 1
                                                maxi[1] = m
                                    elif pr0[u]:
                                        kk = k0[u]
                                        idxo = kk + limit
                                        pu = p0[u]
                                        nu = n0[u]
                                        if pu != NIL:
                                            n0[pu] = nu
                                        else:
                                            h0[idxo] = nu
                                        if nu != NIL:
                                            p0[nu] = pu
                                        else:
                                            t0[idxo] = pu
                                        idx2 = idxo - w
                                        oh = h0[idx2]
                                        n0[u] = oh
                                        p0[u] = NIL
                                        if oh != NIL:
                                            p0[oh] = u
                                        else:
                                            t0[idx2] = u
                                        h0[idx2] = u
                                        k0[u] = kk - w
                                        if (
                                            idxo == maxi[0]
                                            and h0[idxo] == NIL
                                        ):
                                            m = idxo
                                            while h0[m] == NIL:
                                                m -= 1
                                            maxi[0] = m
                        else:
                            for u in pins:
                                if u != v and free[u]:
                                    gain[u] -= w
                    elif cs == 1:
                        u = iss_[e]
                        if free[u]:
                            gain[u] += w
                            if pres_s[u]:
                                kk = ky[u]
                                idxo = kk + limit
                                pu = pv[u]
                                nu = nx[u]
                                if pu != NIL:
                                    nx[pu] = nu
                                else:
                                    hd[idxo] = nu
                                if nu != NIL:
                                    pv[nu] = pu
                                else:
                                    tl[idxo] = pu
                                idx2 = idxo + w
                                oh = hd[idx2]
                                nx[u] = oh
                                pv[u] = NIL
                                if oh != NIL:
                                    pv[oh] = u
                                else:
                                    tl[idx2] = u
                                hd[idx2] = u
                                ky[u] = kk + w
                                if idx2 > maxi[s]:
                                    maxi[s] = idx2

            parts[v] = t
            gain[v] = -gv
            av = areas[v]
            if s:
                l1 -= av
                l0 += av
            else:
                l0 -= av
                l1 += av
            log_append(v)
            nmoves += 1

            # ---- inlined _quality_key + best-prefix tracking --------
            viol = 0.0
            if l0 < mn0:
                viol = mn0 - l0
            elif l0 > mx0:
                viol = l0 - mx0
            if l1 < mn1:
                viol += mn1 - l1
            elif l1 > mx1:
                viol += l1 - mx1
            if viol == 0.0:
                state = 0
                a = cut
                b = l0 - l1 if l0 >= l1 else l1 - l0
            else:
                state = 1
                a = viol
                b = cut
            if state < bk_state or (
                state == bk_state
                and (a < bk_a or (a == bk_a and b < bk_b))
            ):
                bk_state = state
                bk_a = a
                bk_b = b
                best_cut = cut
                best_prefix = nmoves

        loads[0] = l0
        loads[1] = l1

        # Write the scalar bucket state back so reset() stays coherent.
        b0._max_index, b1._max_index = maxi
        b0._count, b1._count = counts

        # ---- restore the best prefix (cheaper direction) ------------
        # Each undo is itself a move, so the same delta formulas restore
        # cnt/ids/gain exactly; buckets are left alone (next pass resets
        # them) so only the gain scalars are updated here.  When the
        # pass keeps fewer moves than it undoes, it is cheaper to copy
        # the pass-start snapshot back and replay the kept prefix
        # forwards instead.
        moves_made = len(move_log)
        if best_prefix <= moves_made - best_prefix:
            # Loads are floats of arbitrary vertex areas, so they must
            # be unwound with the same backward delta arithmetic the
            # reference uses (addition is not associative); two flops
            # per undone move, no net traversal.  Each vertex moves at
            # most once per pass, so the snapshot side is the source.
            for v in reversed(move_log[best_prefix:]):
                av = areas[v]
                if snap_parts[v]:
                    l0 -= av
                    l1 += av
                else:
                    l1 -= av
                    l0 += av
            loads[0] = l0
            loads[1] = l1
            cnt0[:] = snap_cnt0
            cnt1[:] = snap_cnt1
            ids0[:] = snap_ids0
            ids1[:] = snap_ids1
            uf0[:] = snap_uf0
            uf1[:] = snap_uf1
            gain[:] = snap_gain
            parts[:] = snap_parts
            for i in range(best_prefix):
                v = move_log[i]
                s = parts[v]
                t = 1 - s
                cs_ = cnt1 if s else cnt0
                ct_ = cnt0 if s else cnt1
                iss_ = ids1 if s else ids0
                ist_ = ids0 if s else ids1
                ufs_ = uf1 if s else uf0
                uft_ = uf0 if s else uf1
                for e in vnets[v]:
                    w = eweight[e]
                    if w:
                        ct = ct_[e]
                        cs2 = cs_[e] if ct == 0 else 0
                        if cs2 == 2:
                            u = iss_[e] - v
                            if free[u]:
                                gain[u] += w
                        elif cs2 > 2:
                            for u in epins[e]:
                                if u != v and free[u]:
                                    gain[u] += w
                        elif ct == 1:
                            u = ist_[e]
                            if free[u]:
                                gain[u] -= w
                    cs_[e] -= 1
                    ct_[e] += 1
                    iss_[e] -= v
                    ist_[e] += v
                    if w:
                        cs = cs_[e]
                        ct2 = ct_[e] if cs == 0 else 0
                        if ct2 == 2:
                            u = ist_[e] - v
                            if free[u]:
                                gain[u] -= w
                        elif ct2 > 2:
                            for u in epins[e]:
                                if u != v and free[u]:
                                    gain[u] -= w
                        elif cs == 1:
                            u = iss_[e]
                            if free[u]:
                                gain[u] += w
                    # v lives unlocked on its kept side from now on.
                    ufs_[e] -= 1
                    uft_[e] += 1
                parts[v] = t
                gain[v] = -gain[v]
        else:
            for v in reversed(move_log[best_prefix:]):
                t = parts[v]
                s = 1 - t
                # v moves from t back to s: source views bind to t,
                # destination views to s.
                csrc = cnt1 if t else cnt0
                cdst = cnt0 if t else cnt1
                isrc = ids1 if t else ids0
                idst = ids0 if t else ids1
                ufdst = uf0 if t else uf1
                for e in vnets[v]:
                    w = eweight[e]
                    if w:
                        cd = cdst[e]
                        cr2 = csrc[e] if cd == 0 else 0
                        if cr2 == 2:
                            u = isrc[e] - v
                            if free[u]:
                                gain[u] += w
                        elif cr2 > 2:
                            for u in epins[e]:
                                if u != v and free[u]:
                                    gain[u] += w
                        elif cd == 1:
                            u = idst[e]
                            if free[u]:
                                gain[u] -= w
                    csrc[e] -= 1
                    cdst[e] += 1
                    isrc[e] -= v
                    idst[e] += v
                    if w:
                        cr = csrc[e]
                        cd2 = cdst[e] if cr == 0 else 0
                        if cd2 == 2:
                            u = idst[e] - v
                            if free[u]:
                                gain[u] -= w
                        elif cd2 > 2:
                            for u in epins[e]:
                                if u != v and free[u]:
                                    gain[u] -= w
                        elif cr == 1:
                            u = isrc[e]
                            if free[u]:
                                gain[u] += w
                    ufdst[e] += 1  # v unlocks on its restored side
                parts[v] = s
                gain[v] = -gain[v]
                av = areas[v]
                loads[t] -= av
                loads[s] += av

            # Kept-prefix vertices stay on their new side; unlock there.
            for i in range(best_prefix):
                v = move_log[i]
                ufp = uf1 if parts[v] else uf0
                for e in vnets[v]:
                    ufp[e] += 1
        cut = best_cut

        record = PassRecord(
            pass_index=pass_index,
            movable=movable_count,
            moves_made=moves_made,
            best_prefix=best_prefix,
            cut_before=cut_before,
            cut_after=cut,
            feasible_after=self.balance.is_feasible(loads),
        )
        return record, cut, move_log

    # ------------------------------------------------------------------
    def _quality_key(self, cut: int, loads: Sequence[float]) -> _QualityKey:
        violation = self.balance.violation(loads)
        if violation == 0.0:
            return (0, float(cut), abs(loads[0] - loads[1]))
        return (1, violation, float(cut))

    def _progress_key(
        self, cut: int, loads: Sequence[float]
    ) -> Tuple[int, float]:
        """Coarser key deciding whether another pass is worthwhile:
        imbalance tie-breaking is dropped (see the run loop)."""
        violation = self.balance.violation(loads)
        if violation == 0.0:
            return (0, float(cut))
        return (1, violation)

    def _move_allowed(
        self, loads: List[float], weight: float, source: int, target: int
    ) -> bool:
        """Balance gate for one move (slow path).

        Strictly feasible or violation-reducing moves are always allowed
        (see :meth:`BalanceConstraint.allows_move`).  Additionally, a
        move off the heavier (or equal) side whose resulting violation
        stays within the escape slack is allowed: with a balance window
        narrower than one cell, *every* move transiently violates the
        window, and without this hatch FM would deadlock at the first
        tight bisection.  The pass rollback still restores the best
        *feasible* prefix, so final solutions never rely on the hatch.

        The selection loop inlines the strictly-feasible fast path and
        only falls back here, so this method must stay equivalent to
        "allows_move or escape hatch".
        """
        if self.balance.allows_move(loads, weight, source, target):
            return True
        if loads[source] < loads[target]:
            return False
        after = [
            load - weight if i == source else
            load + weight if i == target else load
            for i, load in enumerate(loads)
        ]
        return self.balance.violation(after) <= self._escape_slack
