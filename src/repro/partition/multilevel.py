"""Multilevel FM hypergraph bipartitioner.

The paper's experimental engine: heavy-edge-matching coarsening with a
clustering-ratio stop, randomized FM initial partitioning at the coarsest
level, and CLIP-FM refinement at every level of the uncoarsening.
V-cycling is implemented but off by default ("we have determined that
V-cycling is a net loss in terms of overall cost-runtime profile of our
partitioner").  Fixed vertices survive every level: coarsening never
merges vertices fixed in different blocks, and refinement never moves a
fixed cluster.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hypergraph.hypergraph import Hypergraph
from repro.partition.balance import (
    BalanceConstraint,
    relative_bipartition_balance,
)
from repro.partition.fm import FMBipartitioner, FMConfig
from repro.partition.initial import (
    random_balanced_bipartition,
    terminal_seeded_bipartition,
)
from repro.partition.matching import (
    CoarseLevel,
    coarsen,
    heavy_edge_matching,
    random_matching,
)
from repro.partition.solution import FREE, Bipartition, validate_fixture
from repro.runtime.observe import recorder as _observe

MATCHING_SCHEMES = ("heavy", "random")


@dataclass(frozen=True)
class MultilevelConfig:
    """Parameters of the multilevel engine.

    ``clustering_ratio`` is the maximum coarse/fine vertex-count ratio a
    matching round may produce; a round that shrinks less stops the
    coarsening (the matcher has run out of signal).  ``coarsest_size``
    stops coarsening once few enough movable vertices remain.
    ``refine_policy`` follows the paper's default of CLIP FM; the flat
    engine's pass-cutoff knob is exposed for the fixed-terminals studies.
    """

    coarsest_size: int = 120
    clustering_ratio: float = 0.9
    max_cluster_area_fraction: float = 0.04
    matching: str = "heavy"
    refine_policy: str = "clip"
    initial_starts: int = 4
    terminal_seeded_starts: bool = True
    pass_move_limit_fraction: float = 1.0
    vcycles: int = 0
    max_levels: int = 40

    def __post_init__(self) -> None:
        if self.matching not in MATCHING_SCHEMES:
            raise ValueError(
                f"unknown matching {self.matching!r}; "
                f"expected one of {MATCHING_SCHEMES}"
            )
        if not 0.0 < self.clustering_ratio < 1.0:
            raise ValueError("clustering_ratio must be in (0, 1)")
        if self.coarsest_size < 2:
            raise ValueError("coarsest_size must be at least 2")
        if self.initial_starts < 1:
            raise ValueError("initial_starts must be positive")
        if self.vcycles < 0:
            raise ValueError("vcycles must be non-negative")


@dataclass
class MultilevelResult:
    """Outcome of one multilevel run."""

    solution: Bipartition
    num_levels: int
    coarsest_vertices: int
    refinement_passes: int = 0
    vcycles_run: int = 0


class MultilevelBipartitioner:
    """Multilevel engine bound to one (graph, balance, fixture) triple."""

    def __init__(
        self,
        graph: Hypergraph,
        balance: Optional[BalanceConstraint] = None,
        fixture: Optional[Sequence[int]] = None,
        config: Optional[MultilevelConfig] = None,
    ) -> None:
        self.graph = graph
        self.config = config or MultilevelConfig()
        self.balance = balance or relative_bipartition_balance(
            graph.total_area, 0.02
        )
        if self.balance.num_parts != 2:
            raise ValueError("MultilevelBipartitioner is strictly 2-way")
        n = graph.num_vertices
        if fixture is None:
            fixture = [FREE] * n
        validate_fixture(fixture, n, 2)
        self.fixture = list(fixture)
        # FM engines pooled by graph shape: refinement at every level of
        # every start/V-cycle rebinds a pooled engine (buffers resized in
        # place) instead of allocating a fresh one.  Hierarchies from
        # different seeds produce slightly different coarse shapes, so the
        # pool is capped; overflow simply drops the pool and starts over.
        self._engine_pool: Dict[Tuple[int, int], FMBipartitioner] = {}

    _ENGINE_POOL_CAP = 64

    # ------------------------------------------------------------------
    def run(self, seed: int = 0) -> MultilevelResult:
        """One full multilevel start, deterministic in ``seed``.

        With an active trace recorder the run is wrapped in a
        ``multilevel`` span (coarsening, initial partitioning, and
        per-level refinement appear as child spans); with the default
        null recorder this delegates straight to the engine.
        """
        recorder = _observe.active()
        if not recorder.enabled:
            return self._run(seed)
        with recorder.span("multilevel", seed=seed) as span:
            result = self._run(seed)
            span.set(
                levels=result.num_levels,
                coarsest_vertices=result.coarsest_vertices,
                passes=result.refinement_passes,
                final_cut=result.solution.cut,
            )
            recorder.count("multilevel.runs")
            recorder.count("multilevel.levels", result.num_levels)
        return result

    def _run(self, seed: int = 0) -> MultilevelResult:
        """The uninstrumented engine (see :meth:`run`)."""
        rec = _observe.active()
        rng = random.Random(seed)
        levels = self._build_hierarchy(rng)
        coarsest_graph = levels[-1].coarse if levels else self.graph
        coarsest_fixture = levels[-1].fixture if levels else self.fixture

        with rec.span(
            "initial_partition", vertices=coarsest_graph.num_vertices
        ) as sp:
            parts, cut, passes = self._initial_partition(
                coarsest_graph, coarsest_fixture, rng
            )
            sp.set(cut=cut)

        # Uncoarsen with FM refinement at every level.  levels[i] maps
        # between graphs[i] (fine) and levels[i].coarse; graphs[0] is the
        # original hypergraph.  Projection preserves the cut exactly
        # (contraction drops nets internal to a cluster and merges
        # parallel nets by summing weights), so the cut is threaded
        # through every level and cut_size() is never re-evaluated after
        # the coarsest-level starts.
        for i in range(len(levels) - 1, -1, -1):
            parts = levels[i].project(parts)
            fine_graph = levels[i - 1].coarse if i > 0 else self.graph
            fine_fixture = levels[i - 1].fixture if i > 0 else self.fixture
            with rec.span(
                "refine", level=i, vertices=fine_graph.num_vertices
            ) as sp:
                result = self._flat_engine(fine_graph, fine_fixture).run(
                    parts, initial_cut=cut
                )
                sp.set(cut=result.solution.cut)
            parts = result.solution.parts
            cut = result.solution.cut
            passes += result.num_passes

        vcycles_run = 0
        for _ in range(self.config.vcycles):
            with rec.span("vcycle", index=vcycles_run) as sp:
                parts, cut, extra = self._vcycle(parts, cut, rng)
                sp.set(cut=cut)
            passes += extra
            vcycles_run += 1

        solution = Bipartition(parts=parts, cut=cut)
        return MultilevelResult(
            solution=solution,
            num_levels=len(levels),
            coarsest_vertices=coarsest_graph.num_vertices,
            refinement_passes=passes,
            vcycles_run=vcycles_run,
        )

    # ------------------------------------------------------------------
    def _build_hierarchy(
        self,
        rng: random.Random,
        partition_guard: Optional[Sequence[int]] = None,
    ) -> List[CoarseLevel]:
        """Coarsen until the movable count or the shrink rate bottoms out.

        ``partition_guard`` (used by V-cycling) restricts matching to
        vertex pairs inside the same block of an existing partition, so
        the current solution stays representable at every coarse level.
        """
        cfg = self.config
        rec = _observe.active()
        levels: List[CoarseLevel] = []
        graph = self.graph
        fixture = self.fixture
        guard = list(partition_guard) if partition_guard is not None else None
        max_cluster_area = cfg.max_cluster_area_fraction * graph.total_area

        while len(levels) < cfg.max_levels:
            movable = fixture.count(FREE)
            if movable <= cfg.coarsest_size:
                break
            # With a guard, merging is restricted to same-block pairs by
            # handing the matcher the guard as a pseudo-fixture; the true
            # fixture is still what propagates to the coarse level.  Any
            # guard-legal merge is fixture-legal because fixed vertices
            # always sit inside their own block.
            matcher_fixture = guard if guard is not None else fixture
            with rec.span(
                "coarsen",
                level=len(levels),
                fine_vertices=graph.num_vertices,
            ) as sp:
                labels = self._match(
                    graph, matcher_fixture, rng, max_cluster_area
                )
                coarse_n = max(labels) + 1
                sp.set(coarse_vertices=coarse_n)
                if coarse_n >= cfg.clustering_ratio * graph.num_vertices:
                    sp.set(stopped=True)
                    break
                level = self._coarsen(graph, fixture, labels)
            levels.append(level)
            graph = level.coarse
            fixture = level.fixture
            if guard is not None:
                new_guard = [0] * coarse_n
                for v, c in enumerate(labels):
                    new_guard[c] = guard[v]
                guard = new_guard
        return levels

    def _match(
        self,
        graph: Hypergraph,
        fixture: Sequence[int],
        rng: random.Random,
        max_cluster_area: float,
    ) -> List[int]:
        """One matching round (seam for benchmarks swapping in the
        reference matchers)."""
        if self.config.matching == "heavy":
            return heavy_edge_matching(
                graph,
                fixture=fixture,
                rng=rng,
                max_cluster_area=max_cluster_area,
                num_parts=2,
            )
        return random_matching(
            graph,
            fixture=fixture,
            rng=rng,
            max_cluster_area=max_cluster_area,
            num_parts=2,
        )

    def _coarsen(
        self,
        graph: Hypergraph,
        fixture: Sequence[int],
        labels: Sequence[int],
    ) -> CoarseLevel:
        """One contraction (seam for benchmarks swapping in the
        reference contraction)."""
        return coarsen(graph, fixture, labels)

    def _initial_partition(
        self,
        graph: Hypergraph,
        fixture: List[int],
        rng: random.Random,
    ) -> Tuple[List[int], int, int]:
        """Best of ``initial_starts`` FM runs, as (parts, cut, passes).

        Constructions alternate between random balanced assignments and
        (when the coarsest level carries fixed vertices) the
        terminal-seeded propagation construction -- the fixed-terminals
        regime rewards starting from what the terminals dictate rather
        than from noise.
        """
        engine = self._flat_engine(graph, fixture)
        has_terminals = self.config.terminal_seeded_starts and any(
            f != FREE for f in fixture
        )
        best_parts: Optional[List[int]] = None
        best_cut = 0
        passes = 0
        for start in range(self.config.initial_starts):
            if has_terminals and start % 2 == 0:
                init = terminal_seeded_bipartition(
                    graph, self.balance, fixture, rng=rng
                )
            else:
                init = random_balanced_bipartition(
                    graph, self.balance, fixture=fixture, rng=rng
                )
            result = engine.run(init)
            passes += result.num_passes
            if best_parts is None or result.solution.cut < best_cut:
                best_parts = list(result.solution.parts)
                best_cut = result.solution.cut
        assert best_parts is not None
        return best_parts, best_cut, passes

    def _vcycle(
        self, parts: List[int], cut: int, rng: random.Random
    ) -> Tuple[List[int], int, int]:
        """One V-cycle: re-coarsen restricted to the current partition,
        refine back down, finish with a flat pass at the finest level.

        Returns (parts, cut, passes).  The guard keeps every cluster
        inside one block, so both the upward projection onto the coarse
        hierarchy and the downward ``project`` calls preserve the cut
        exactly and it can be threaded through instead of recomputed.
        """
        levels = self._build_hierarchy(rng, partition_guard=parts)
        coarse_parts = list(parts)
        for level in levels:
            projected = [0] * level.coarse.num_vertices
            for v, c in enumerate(level.contraction.fine_to_coarse):
                projected[c] = coarse_parts[v]
            coarse_parts = projected

        passes = 0
        current = coarse_parts
        for i in range(len(levels) - 1, -1, -1):
            engine = self._flat_engine(levels[i].coarse, levels[i].fixture)
            result = engine.run(current, initial_cut=cut)
            passes += result.num_passes
            cut = result.solution.cut
            current = levels[i].project(result.solution.parts)
        final = self._flat_engine(self.graph, self.fixture).run(
            current, initial_cut=cut
        )
        passes += final.num_passes
        return list(final.solution.parts), final.solution.cut, passes

    def _flat_engine(
        self, graph: Hypergraph, fixture: Sequence[int]
    ) -> FMBipartitioner:
        """An FM engine bound to ``(graph, fixture)``, from the pool.

        Engines are keyed by graph shape so a rebind resizes the pooled
        engine's buffers in place; every graph-derived member is still
        recomputed, so shape collisions are a pure allocation win, never
        a correctness hazard.
        """
        key = (graph.num_vertices, graph.num_nets)
        engine = self._engine_pool.get(key)
        if engine is not None:
            return engine.rebind(graph, fixture)
        cfg = self.config
        engine = FMBipartitioner(
            graph,
            self.balance,
            fixture=fixture,
            config=FMConfig(
                policy=cfg.refine_policy,
                pass_move_limit_fraction=cfg.pass_move_limit_fraction,
            ),
        )
        if len(self._engine_pool) >= self._ENGINE_POOL_CAP:
            self._engine_pool.clear()
        self._engine_pool[key] = engine
        return engine
