"""Coarsening matchings for the multilevel partitioner.

Heavy-edge matching pairs each vertex with the unmatched neighbour it
shares the most (clique-normalised) net weight with -- the scheme of the
multilevel partitioners the paper builds on (MLC, hMetis).  Fixed
vertices obey the fixed-vertex clustering rules: a fixed vertex may
absorb a free one (the cluster inherits the fixture) or another vertex
fixed in the *same* block, but vertices fixed in different blocks never
merge.  A random matching is provided as the ablation baseline.

Kernel layout
-------------

Both matchers adapt to how often a graph is matched.  The *first* round
over a graph takes a direct path: neighbours are scored straight off
the CSR with the evolving ``match`` state filtering *before* any score
is accumulated (exactly the reference's pruning), and nothing is
materialized -- hierarchy levels below the top graph are matched once
and then thrown away, so caching there would be pure overhead.  From
the *second* round on (multi-start drivers rebuild the hierarchy from
the same top graph once per start; repeated-seed studies re-match whole
instances) the matcher switches to a *clique-expansion adjacency*
cached on the (immutable) graph itself: for every vertex, its
neighbours with the pre-merged connectivity scores (heavy-edge) or the
raw per-net neighbour multiset (random).  Scores depend only on the
graph and ``max_net_size`` -- not on the fixture, the rng, or the area
cap -- so cached entries stay valid for every call on the graph, and a
visit collapses to one filtered scan of ``adj[v]`` with
``match[u] != -1`` as the only liveness test.  Entries are built
*lazily*, one per visited vertex, and list every neighbour regardless
of matched state at build time, which is what keeps them reusable.

The build path is itself a flat-array kernel.  It iterates the CSR
through the cached plain-list views (:meth:`Hypergraph.csr_lists`) -- no
per-vertex ``vertex_nets()``/``net_pins()`` list allocation -- reads
per-net tables (:func:`_net_tables`: clique shares, pin-list slices, and
two-pin endpoint sums), and accumulates scores into a process-persistent
dense scratch.  A generation stamp marks which score slots are live for
the current vertex and a *touched list* records them in first-encounter
order, so per-vertex reset is O(touched), not O(n), and the scratch is
never reallocated (it only grows, across calls, to the largest graph
seen).  The center vertex is pre-stamped, so the ``u != v`` test
disappears from the inner loop.  The generation counter allocates a
fresh ``[base+1, base+n]`` window per call; the counter only ever
grows, so stale stamps from earlier calls (or from the relabelling
pass, which shares the counter) can never alias a live generation.

The kernels preserve the retained reference implementations in
:mod:`repro.partition.matching_reference` *bit for bit*: the same rng
consumption (one ``shuffle`` plus, for the random matcher, one
``choice`` per matched vertex over an identically-ordered candidate
list), the same float score accumulation order (dict insertion order in
the reference equals first-encounter order here), and the same
tie-breaks.  ``tests/partition/test_coarsening_differential.py``
enforces label identity and ``benchmarks/coarsening.py`` measures the
speedup.
"""

from __future__ import annotations

import random
from itertools import compress
from typing import List, Optional, Sequence

from repro.hypergraph.contraction import Contraction, contract
from repro.hypergraph.hypergraph import Hypergraph, HypergraphError
from repro.partition.solution import FREE, validate_fixture
from repro.runtime.observe import recorder as _observe


def _compatible(f_a: int, f_b: int) -> bool:
    """Fixture compatibility for merging two vertices."""
    return f_a == FREE or f_b == FREE or f_a == f_b


def _merged_fixture(f_a: int, f_b: int) -> int:
    """Fixture of the merged cluster (assumes compatibility)."""
    return f_a if f_a != FREE else f_b


class _MatchingScratch:
    """Process-persistent dense scratch for the matching kernels.

    ``score`` holds per-neighbour connectivity scores, ``stamp`` the
    generation that last wrote each slot (a slot is live only when its
    stamp equals the current generation, so resets are free), ``label``
    the leader -> cluster-id map of the relabelling pass, and the two
    lists are reusable touched/candidate accumulators.  The arrays only
    ever grow; one instance serves every call in the process.
    """

    __slots__ = ("score", "stamp", "label", "touched",
                 "candidates", "generation")

    def __init__(self) -> None:
        self.score: List[float] = []
        self.stamp: List[int] = []
        self.label: List[int] = []
        self.touched: List[int] = []
        self.candidates: List[int] = []
        self.generation = 0

    def require(self, n: int) -> None:
        """Grow the per-vertex scratch to cover ``n`` vertices."""
        grow = n - len(self.stamp)
        if grow > 0:
            self.score.extend([0.0] * grow)
            self.stamp.extend([0] * grow)
            self.label.extend([0] * grow)


_SCRATCH = _MatchingScratch()


def _net_tables(graph: Hypergraph, max_net_size: int):
    """Per-net scoring tables ``(share_of, pins_of, pair_of)``.

    ``share_of[e]`` is the clique share ``w(e) / (|e| - 1)``;
    ``pins_of[e]`` the pins of net ``e`` as a plain-list slice (``None``
    for nets the scoring loop skips: two-pin, too small, too large);
    ``pair_of[e]`` the endpoint *sum* of a two-pin net, so the other
    endpoint of a net at ``v`` is ``pair_of[e] - v`` (-1 flags every
    other net; endpoint sums are never negative).

    The tables depend only on the (immutable) graph and ``max_net_size``,
    so they are cached on the graph -- multi-start drivers rebuild the
    hierarchy from the same top graph once per start, and the stage
    benchmark re-matches each instance once per seed, both hitting the
    cache after the first call.
    """
    cache = graph._match_tables
    if cache is None:
        cache = graph._match_tables = {}
    tables = cache.get(max_net_size)
    if tables is not None:
        return tables
    net_ptr, net_pins, _, _, weights, _ = graph.csr_lists()
    m = graph.num_nets
    share_of: List[float] = [0.0] * m
    pins_of: List[Optional[List[int]]] = [None] * m
    pair_of = [-1] * m
    lo = 0
    for e, hi in enumerate(net_ptr[1:]):
        size = hi - lo
        if size == 2:
            # w / (2 - 1): exact as a float, no division needed.
            share_of[e] = float(weights[e])
            pair_of[e] = net_pins[lo] + net_pins[lo + 1]
        elif 2 < size <= max_net_size:
            share_of[e] = weights[e] / (size - 1)
            pins_of[e] = net_pins[lo:hi]
        lo = hi
    tables = (share_of, pins_of, pair_of)
    cache[max_net_size] = tables
    return tables


def _rm_tables(graph: Hypergraph):
    """Per-net pin tables ``(pins_of, pair_of)`` for the random matcher
    (no size cutoff, no shares), cached like :func:`_net_tables` under
    the non-integer key ``"rm"``."""
    cache = graph._match_tables
    if cache is None:
        cache = graph._match_tables = {}
    tables = cache.get("rm")
    if tables is not None:
        return tables
    net_ptr, net_pins, _, _, _, _ = graph.csr_lists()
    m = graph.num_nets
    pins_of: List[Optional[List[int]]] = [None] * m
    pair_of = [-1] * m
    lo = 0
    for e, hi in enumerate(net_ptr[1:]):
        if hi - lo == 2:
            pair_of[e] = net_pins[lo] + net_pins[lo + 1]
        else:
            pins_of[e] = net_pins[lo:hi]
        lo = hi
    tables = (pins_of, pair_of)
    cache["rm"] = tables
    return tables


def _adjacency_cache(
    graph: Hypergraph, key, n: int
) -> Optional[List[Optional[List]]]:
    """The per-vertex adjacency cache stored on the graph under ``key``.

    Returns ``None`` on the *first* matching round over the graph (the
    caller takes the direct, non-materializing path) and marks the graph
    as seen; from the second round on it returns the per-vertex list,
    whose entries matching calls fill lazily, one per *visited* vertex.
    Entries, once built, are complete -- they list every neighbour
    regardless of matched state at build time -- so they stay valid for
    any fixture, rng, or area cap.
    """
    cache = graph._match_tables
    if cache is None:
        cache = graph._match_tables = {}
    adj = cache.get(key)
    if adj is None:
        cache[key] = False  # seen once; cache from the next round on
        return None
    if adj is False:
        adj = cache[key] = [None] * n
    return adj


def _record_matching(kind: str, n: int, labels: List[int]) -> List[int]:
    """Count one finished matching round (pass-through on the labels).

    Pure post-hoc accounting off the finished label vector -- the
    matching loops themselves carry no instrumentation, so traced and
    untraced rounds produce identical labels.
    """
    recorder = _observe.active()
    if recorder.enabled:
        coarse_n = (max(labels) + 1) if labels else 0
        recorder.count(f"match.{kind}.rounds")
        recorder.count(f"match.{kind}.merges", n - coarse_n)
        if n:
            recorder.hist(
                "match.shrink_percent", round(100.0 * coarse_n / n)
            )
    return labels


def _infer_num_parts(fixture: Sequence[int]) -> int:
    """Historical part-count guess for callers that do not pass one."""
    guess = max(fixture, default=0) + 1
    return guess if guess > 0 else 1


def _labels_from_match(match: List[int], scratch: _MatchingScratch) -> List[int]:
    """Contiguous cluster labels from a leader vector (kernel half of the
    reference's ``leader_id`` dict pass; identical output)."""
    n = len(match)
    scratch.require(n)
    stamp = scratch.stamp
    label = scratch.label
    gen = scratch.generation + 1
    scratch.generation = gen
    labels = [0] * n
    next_id = 0
    for v in range(n):
        m = match[v]
        leader = m if m != -1 else v
        if stamp[leader] != gen:
            stamp[leader] = gen
            label[leader] = next_id
            next_id += 1
        labels[v] = label[leader]
    return labels


def heavy_edge_matching(
    graph: Hypergraph,
    fixture: Optional[Sequence[int]] = None,
    rng: Optional[random.Random] = None,
    max_cluster_area: Optional[float] = None,
    max_net_size: int = 64,
    num_parts: Optional[int] = None,
) -> List[int]:
    """Cluster labels from one round of heavy-edge matching.

    Vertices are visited in random order; each unmatched vertex merges
    with the unmatched, fixture-compatible neighbour of the highest
    connectivity score ``sum(w(e) / (|e| - 1))`` over shared nets, unless
    the merged area would exceed ``max_cluster_area``.  Nets larger than
    ``max_net_size`` are ignored when scoring (huge nets carry almost no
    locality signal and dominate runtime).  Unmatched vertices stay
    singletons.  The returned labels are contiguous cluster ids.

    ``num_parts`` is the part count the fixture is validated against;
    callers that know it (the multilevel driver) should pass it instead
    of relying on the historical largest-fixed-block guess.
    """
    n = graph.num_vertices
    rng = rng or random.Random()
    if fixture is None:
        fixture = [FREE] * n
    if num_parts is None:
        num_parts = _infer_num_parts(fixture)
    validate_fixture(fixture, n, num_parts)
    if max_cluster_area is None:
        max_cluster_area = float("inf")

    _, _, vtx_ptr, vtx_nets, _, areas = graph.csr_lists()
    fix = fixture if isinstance(fixture, list) else list(fixture)

    # Scoring runs off the graph-cached clique-expansion adjacency from
    # the second matching round on: adj[v] lists (u, score) over every
    # neighbour u != v, scores accumulated per net in the reference's
    # float-addition order, neighbours in first-encounter order (the
    # reference's dict insertion order).  The first round (adj is None)
    # scores directly off the CSR with the matched state filtering
    # before accumulation -- hierarchy levels below the top graph are
    # matched exactly once, so materializing adjacency there would cost
    # more than it saves.
    adj = _adjacency_cache(graph, ("hem", max_net_size), n)
    share_of, pins_of, pair_of = _net_tables(graph, max_net_size)

    scratch = _SCRATCH
    scratch.require(n)
    score = scratch.score
    score_get = score.__getitem__
    stamp = scratch.stamp
    touched = scratch.touched
    touched_append = touched.append
    # Generations base+1 .. base+n live in this call only; the counter
    # never decreases, so they cannot alias stamps from earlier calls
    # (or from the relabelling pass, which shares the counter).
    gen = scratch.generation
    scratch.generation = gen + n

    max_area = max(areas, default=0.0)
    order = list(range(n))
    rng.shuffle(order)
    match = [-1] * n

    if adj is None:
        # First round: direct path.  Matched neighbours are pruned
        # before any score accumulates (the reference does the same in
        # its scoring loop), so selection needs no liveness test --
        # every touched vertex was unmatched when scored and the match
        # state cannot change before this vertex selects.
        for v in order:
            if match[v] != -1:
                continue
            gen += 1
            stamp[v] = gen  # pre-stamp the center: v never enters touched
            del touched[:]
            for e in vtx_nets[vtx_ptr[v]:vtx_ptr[v + 1]]:
                pair = pair_of[e]
                if pair >= 0:
                    u = pair - v
                    if match[u] != -1:
                        continue
                    if stamp[u] == gen:
                        score[u] += share_of[e]
                    else:
                        stamp[u] = gen
                        score[u] = share_of[e]
                        touched_append(u)
                    continue
                pins = pins_of[e]
                if pins is None:
                    continue
                share = share_of[e]
                for u in pins:
                    if match[u] != -1:
                        continue
                    if stamp[u] == gen:
                        score[u] += share
                    else:
                        stamp[u] = gen
                        score[u] = share
                        touched_append(u)
            best_u = -1
            best_score = 0.0
            f_v = fix[v]
            area_v = areas[v]
            if f_v == FREE and area_v + max_area <= max_cluster_area:
                # A free center is compatible with every neighbour, and
                # when even the heaviest vertex fits under the area cap
                # the area test drops out of the filter too (a + max >=
                # a + b for every b, in exact float arithmetic, since
                # every area is finite and non-negative).
                for u in touched:
                    s = score[u]
                    if s > best_score or (
                        s == best_score and best_u != -1 and u < best_u
                    ):
                        best_u = u
                        best_score = s
            elif f_v == FREE:
                for u in touched:
                    if area_v + areas[u] > max_cluster_area:
                        continue
                    s = score[u]
                    if s > best_score or (
                        s == best_score and best_u != -1 and u < best_u
                    ):
                        best_u = u
                        best_score = s
            else:
                for u in touched:
                    f_u = fix[u]
                    if f_u != FREE and f_u != f_v:
                        continue
                    if area_v + areas[u] > max_cluster_area:
                        continue
                    s = score[u]
                    if s > best_score or (
                        s == best_score and best_u != -1 and u < best_u
                    ):
                        best_u = u
                        best_score = s
            if best_u != -1:
                match[v] = v
                match[best_u] = v
        return _record_matching(
            "heavy", n, _labels_from_match(match, _SCRATCH)
        )

    for v in order:
        if match[v] != -1:
            continue
        adj_v = adj[v]
        if adj_v is None:
            gen += 1
            stamp[v] = gen  # pre-stamp the center: v never enters touched
            del touched[:]
            for e in vtx_nets[vtx_ptr[v]:vtx_ptr[v + 1]]:
                pair = pair_of[e]
                if pair >= 0:
                    u = pair - v
                    if stamp[u] == gen:
                        score[u] += share_of[e]
                    else:
                        stamp[u] = gen
                        score[u] = share_of[e]
                        touched_append(u)
                    continue
                pins = pins_of[e]
                if pins is None:
                    continue
                share = share_of[e]
                for u in pins:
                    if stamp[u] == gen:
                        score[u] += share
                    else:
                        stamp[u] = gen
                        score[u] = share
                        touched_append(u)
            adj_v = adj[v] = list(zip(touched, map(score_get, touched)))
        best_u = -1
        best_score = 0.0
        f_v = fix[v]
        area_v = areas[v]
        if f_v == FREE and area_v + max_area <= max_cluster_area:
            # See the direct path for why the area test drops out here.
            for u, s in adj_v:
                if match[u] != -1:
                    continue
                if s > best_score or (
                    s == best_score and best_u != -1 and u < best_u
                ):
                    best_u = u
                    best_score = s
        elif f_v == FREE:
            for u, s in adj_v:
                if match[u] != -1 or area_v + areas[u] > max_cluster_area:
                    continue
                if s > best_score or (
                    s == best_score and best_u != -1 and u < best_u
                ):
                    best_u = u
                    best_score = s
        else:
            for u, s in adj_v:
                if match[u] != -1:
                    continue
                f_u = fix[u]
                if f_u != FREE and f_u != f_v:
                    continue
                if area_v + areas[u] > max_cluster_area:
                    continue
                if s > best_score or (
                    s == best_score and best_u != -1 and u < best_u
                ):
                    best_u = u
                    best_score = s
        if best_u != -1:
            match[v] = v
            match[best_u] = v

    return _record_matching(
        "heavy", n, _labels_from_match(match, _SCRATCH)
    )


def random_matching(
    graph: Hypergraph,
    fixture: Optional[Sequence[int]] = None,
    rng: Optional[random.Random] = None,
    max_cluster_area: Optional[float] = None,
    num_parts: Optional[int] = None,
) -> List[int]:
    """Match each vertex with a random compatible unmatched neighbour.

    The ablation baseline for the matching-scheme study.  ``num_parts``
    validates the fixture exactly like :func:`heavy_edge_matching`.
    """
    n = graph.num_vertices
    rng = rng or random.Random()
    if fixture is None:
        fixture = [FREE] * n
    if num_parts is None:
        num_parts = _infer_num_parts(fixture)
    validate_fixture(fixture, n, num_parts)
    if max_cluster_area is None:
        max_cluster_area = float("inf")

    _, _, vtx_ptr, vtx_nets, _, areas = graph.csr_lists()
    fix = fixture if isinstance(fixture, list) else list(fixture)

    scratch = _SCRATCH
    scratch.require(n)
    candidates = scratch.candidates
    candidates_append = candidates.append

    # The per-net neighbour stream, cached on the graph from the second
    # matching round on (duplicates across shared nets preserved --
    # they weight the choice below exactly like the reference's
    # candidate list).  The first round filters the stream straight off
    # the CSR into the candidate list without materializing anything.
    adj = _adjacency_cache(graph, "rm-adj", n)
    pins_of, pair_of = _rm_tables(graph)

    max_area = max(areas, default=0.0)
    order = list(range(n))
    rng.shuffle(order)
    match = [-1] * n

    if adj is None:
        for v in order:
            if match[v] != -1:
                continue
            del candidates[:]
            f_v = fix[v]
            area_v = areas[v]
            if f_v == FREE and area_v + max_area <= max_cluster_area:
                # Free center under the cap even against the heaviest
                # vertex: both the fixture and the area test drop out
                # (float addition is monotone, so a + max <= cap bounds
                # a + b <= cap for every b <= max).
                for e in vtx_nets[vtx_ptr[v]:vtx_ptr[v + 1]]:
                    pair = pair_of[e]
                    if pair >= 0:
                        u = pair - v
                        if match[u] == -1:
                            candidates_append(u)
                        continue
                    for u in pins_of[e]:
                        if u != v and match[u] == -1:
                            candidates_append(u)
            elif f_v == FREE:
                for e in vtx_nets[vtx_ptr[v]:vtx_ptr[v + 1]]:
                    pair = pair_of[e]
                    if pair >= 0:
                        u = pair - v
                        if (
                            match[u] == -1
                            and area_v + areas[u] <= max_cluster_area
                        ):
                            candidates_append(u)
                        continue
                    for u in pins_of[e]:
                        if (
                            u != v
                            and match[u] == -1
                            and area_v + areas[u] <= max_cluster_area
                        ):
                            candidates_append(u)
            else:
                for e in vtx_nets[vtx_ptr[v]:vtx_ptr[v + 1]]:
                    pair = pair_of[e]
                    if pair >= 0:
                        u = pair - v
                        if (
                            match[u] == -1
                            and (fix[u] == FREE or f_v == fix[u])
                            and area_v + areas[u] <= max_cluster_area
                        ):
                            candidates_append(u)
                        continue
                    for u in pins_of[e]:
                        if (
                            u != v
                            and match[u] == -1
                            and (fix[u] == FREE or f_v == fix[u])
                            and area_v + areas[u] <= max_cluster_area
                        ):
                            candidates_append(u)
            if candidates:
                match[v] = v
                match[rng.choice(candidates)] = v
        return _record_matching(
            "random", n, _labels_from_match(match, scratch)
        )

    for v in order:
        if match[v] != -1:
            continue
        adj_v = adj[v]
        if adj_v is None:
            adj_v = adj[v] = []
            nbrs_append = adj_v.append
            for e in vtx_nets[vtx_ptr[v]:vtx_ptr[v + 1]]:
                pair = pair_of[e]
                if pair >= 0:
                    u = pair - v
                    if u != v:
                        nbrs_append(u)
                    continue
                for u in pins_of[e]:
                    if u != v:
                        nbrs_append(u)
        del candidates[:]
        f_v = fix[v]
        area_v = areas[v]
        if f_v == FREE and area_v + max_area <= max_cluster_area:
            # See the direct path for why both tests drop out here.
            for u in adj_v:
                if match[u] == -1:
                    candidates_append(u)
        elif f_v == FREE:
            # Free center: the fixture test drops out of the filter.
            for u in adj_v:
                if match[u] == -1 and area_v + areas[u] <= max_cluster_area:
                    candidates_append(u)
        else:
            for u in adj_v:
                if (
                    match[u] == -1
                    and (fix[u] == FREE or f_v == fix[u])
                    and area_v + areas[u] <= max_cluster_area
                ):
                    candidates_append(u)
        if candidates:
            match[v] = v
            match[rng.choice(candidates)] = v

    return _record_matching(
        "random", n, _labels_from_match(match, scratch)
    )


def coarsen(
    graph: Hypergraph,
    fixture: Sequence[int],
    labels: Sequence[int],
) -> "CoarseLevel":
    """Contract ``graph`` by ``labels`` and propagate the fixture.

    Raises :class:`HypergraphError` when ``labels`` merges vertices
    fixed in different blocks (like :func:`contract` does for malformed
    cluster vectors).
    """
    contraction = contract(graph, labels)
    k = contraction.coarse.num_vertices
    coarse_fixture = [FREE] * k
    # compress + map skips the free vertices at C speed; the Python loop
    # body only runs for the fixed ones.
    for v in compress(range(len(labels)), map(FREE.__ne__, fixture)):
        f = fixture[v]
        c = labels[v]
        if coarse_fixture[c] == FREE:
            coarse_fixture[c] = f
        elif coarse_fixture[c] != f:
            raise HypergraphError(
                f"cluster {c} merges vertices fixed in blocks "
                f"{coarse_fixture[c]} and {f}"
            )
    return CoarseLevel(contraction=contraction, fixture=coarse_fixture)


class CoarseLevel:
    """One level of the multilevel hierarchy: a contraction plus the
    fixture vector induced on the coarse vertices."""

    def __init__(self, contraction: Contraction, fixture: List[int]) -> None:
        self.contraction = contraction
        self.fixture = fixture

    @property
    def coarse(self) -> Hypergraph:
        """The contracted hypergraph."""
        return self.contraction.coarse

    def project(self, coarse_parts: Sequence[int]) -> List[int]:
        """Lift a coarse partition to the fine hypergraph."""
        return self.contraction.project_partition(coarse_parts)
