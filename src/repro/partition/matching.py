"""Coarsening matchings for the multilevel partitioner.

Heavy-edge matching pairs each vertex with the unmatched neighbour it
shares the most (clique-normalised) net weight with -- the scheme of the
multilevel partitioners the paper builds on (MLC, hMetis).  Fixed
vertices obey the fixed-vertex clustering rules: a fixed vertex may
absorb a free one (the cluster inherits the fixture) or another vertex
fixed in the *same* block, but vertices fixed in different blocks never
merge.  A random matching is provided as the ablation baseline.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.hypergraph.contraction import Contraction, contract
from repro.hypergraph.hypergraph import Hypergraph
from repro.partition.solution import FREE, validate_fixture


def _compatible(f_a: int, f_b: int) -> bool:
    """Fixture compatibility for merging two vertices."""
    return f_a == FREE or f_b == FREE or f_a == f_b


def _merged_fixture(f_a: int, f_b: int) -> int:
    """Fixture of the merged cluster (assumes compatibility)."""
    return f_a if f_a != FREE else f_b


def heavy_edge_matching(
    graph: Hypergraph,
    fixture: Optional[Sequence[int]] = None,
    rng: Optional[random.Random] = None,
    max_cluster_area: Optional[float] = None,
    max_net_size: int = 64,
) -> List[int]:
    """Cluster labels from one round of heavy-edge matching.

    Vertices are visited in random order; each unmatched vertex merges
    with the unmatched, fixture-compatible neighbour of the highest
    connectivity score ``sum(w(e) / (|e| - 1))`` over shared nets, unless
    the merged area would exceed ``max_cluster_area``.  Nets larger than
    ``max_net_size`` are ignored when scoring (huge nets carry almost no
    locality signal and dominate runtime).  Unmatched vertices stay
    singletons.  The returned labels are contiguous cluster ids.
    """
    n = graph.num_vertices
    rng = rng or random.Random()
    if fixture is None:
        fixture = [FREE] * n
    validate_fixture(fixture, n, max(fixture, default=0) + 1 or 1)
    if max_cluster_area is None:
        max_cluster_area = float("inf")

    order = list(range(n))
    rng.shuffle(order)
    match = [-1] * n
    for v in order:
        if match[v] != -1:
            continue
        scores: Dict[int, float] = {}
        for e in graph.vertex_nets(v):
            size = graph.net_size(e)
            if size < 2 or size > max_net_size:
                continue
            share = graph.net_weight(e) / (size - 1)
            for u in graph.net_pins(e):
                if u != v and match[u] == -1:
                    scores[u] = scores.get(u, 0.0) + share
        best_u = -1
        best_score = 0.0
        area_v = graph.area(v)
        for u, score in scores.items():
            if not _compatible(fixture[v], fixture[u]):
                continue
            if area_v + graph.area(u) > max_cluster_area:
                continue
            if score > best_score or (
                score == best_score and best_u != -1 and u < best_u
            ):
                best_u = u
                best_score = score
        if best_u != -1:
            match[v] = v
            match[best_u] = v

    labels = [0] * n
    next_id = 0
    leader_id: Dict[int, int] = {}
    for v in range(n):
        leader = match[v] if match[v] != -1 else v
        if leader not in leader_id:
            leader_id[leader] = next_id
            next_id += 1
        labels[v] = leader_id[leader]
    return labels


def random_matching(
    graph: Hypergraph,
    fixture: Optional[Sequence[int]] = None,
    rng: Optional[random.Random] = None,
    max_cluster_area: Optional[float] = None,
) -> List[int]:
    """Match each vertex with a random compatible unmatched neighbour.

    The ablation baseline for the matching-scheme study.
    """
    n = graph.num_vertices
    rng = rng or random.Random()
    if fixture is None:
        fixture = [FREE] * n
    if max_cluster_area is None:
        max_cluster_area = float("inf")

    order = list(range(n))
    rng.shuffle(order)
    match = [-1] * n
    for v in order:
        if match[v] != -1:
            continue
        candidates = []
        for e in graph.vertex_nets(v):
            for u in graph.net_pins(e):
                if (
                    u != v
                    and match[u] == -1
                    and _compatible(fixture[v], fixture[u])
                    and graph.area(v) + graph.area(u) <= max_cluster_area
                ):
                    candidates.append(u)
        if candidates:
            u = rng.choice(candidates)
            match[v] = v
            match[u] = v

    labels = [0] * n
    next_id = 0
    leader_id: Dict[int, int] = {}
    for v in range(n):
        leader = match[v] if match[v] != -1 else v
        if leader not in leader_id:
            leader_id[leader] = next_id
            next_id += 1
        labels[v] = leader_id[leader]
    return labels


def coarsen(
    graph: Hypergraph,
    fixture: Sequence[int],
    labels: Sequence[int],
) -> "CoarseLevel":
    """Contract ``graph`` by ``labels`` and propagate the fixture."""
    contraction = contract(graph, labels)
    k = contraction.coarse.num_vertices
    coarse_fixture = [FREE] * k
    for v, c in enumerate(labels):
        f = fixture[v]
        if f == FREE:
            continue
        if coarse_fixture[c] == FREE:
            coarse_fixture[c] = f
        elif coarse_fixture[c] != f:
            raise ValueError(
                f"cluster {c} merges vertices fixed in blocks "
                f"{coarse_fixture[c]} and {f}"
            )
    return CoarseLevel(contraction=contraction, fixture=coarse_fixture)


class CoarseLevel:
    """One level of the multilevel hierarchy: a contraction plus the
    fixture vector induced on the coarse vertices."""

    def __init__(self, contraction: Contraction, fixture: List[int]) -> None:
        self.contraction = contraction
        self.fixture = fixture

    @property
    def coarse(self) -> Hypergraph:
        """The contracted hypergraph."""
        return self.contraction.coarse

    def project(self, coarse_parts: Sequence[int]) -> List[int]:
        """Lift a coarse partition to the fine hypergraph."""
        return self.contraction.project_partition(coarse_parts)
