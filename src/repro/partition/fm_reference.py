"""Reference (pre-kernel) FM implementations, kept verbatim.

These are the straightforward per-pass-rebuild engines that shipped
before the flat-array kernel rewrite of :mod:`repro.partition.fm` and
:mod:`repro.partition.kwayfm`.  They rebuild the net pin counts and all
gains from scratch at the start of every pass and allocate fresh gain
buckets each time -- clear, slow, and easy to audit.

They exist for two reasons:

* **Differential testing.**  The kernel's contract is *bit-identical
  move sequences*: same moves in the same order, same pass records, same
  cuts.  ``tests/partition/test_fm_kernel_differential.py`` drives both
  implementations over random instances and asserts exactly that.
* **Benchmarking.**  ``benchmarks/fm_kernel.py`` measures the kernel's
  speedup against this baseline and refuses to report a speedup unless
  the results are identical.

Do not optimize this module.  Its value is that it stays simple enough
to be obviously correct; the kernel is the one that is allowed to be
clever.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.hypergraph.hypergraph import Hypergraph
from repro.partition.balance import BalanceConstraint
from repro.partition.fm import (
    _HARD_PASS_CAP,
    FMConfig,
    FMResult,
    PassRecord,
    _QualityKey,
)
from repro.partition.gainbucket import GainBucket
from repro.partition.kwayfm import _KWAY_PASS_CAP, KWayFMConfig, KWayFMResult
from repro.partition.solution import (
    FREE,
    Bipartition,
    cut_size,
    validate_fixture,
)


class ReferenceFMBipartitioner:
    """Seed FM engine: per-pass rebuilds, fresh buckets, linear scans."""

    def __init__(
        self,
        graph: Hypergraph,
        balance: BalanceConstraint,
        fixture: Optional[Sequence[int]] = None,
        config: Optional[FMConfig] = None,
    ) -> None:
        if balance.num_parts != 2:
            raise ValueError("ReferenceFMBipartitioner is strictly 2-way")
        self.graph = graph
        self.balance = balance
        self.config = config or FMConfig()
        n = graph.num_vertices
        if fixture is None:
            fixture = [FREE] * n
        validate_fixture(fixture, n, 2)
        self.fixture = list(fixture)

        self._vnets: List[List[int]] = [
            list(graph.vertex_nets(v)) for v in range(n)
        ]
        self._epins: List[List[int]] = [
            list(graph.net_pins(e)) for e in range(graph.num_nets)
        ]
        self._eweight: List[int] = list(graph.net_weights)
        self._areas: List[float] = list(graph.areas)
        self._movable: List[int] = [
            v for v in range(n) if self.fixture[v] == FREE
        ]
        self._max_gain = max(
            (
                sum(self._eweight[e] for e in self._vnets[v])
                for v in self._movable
            ),
            default=0,
        )
        self._escape_slack = min(
            (
                self._areas[v]
                for v in self._movable
                if self._areas[v] > 0
            ),
            default=0.0,
        )

    @property
    def num_movable(self) -> int:
        """Number of free vertices."""
        return len(self._movable)

    # ------------------------------------------------------------------
    def run(
        self,
        initial_parts: Sequence[int],
        initial_cut: Optional[int] = None,
    ) -> FMResult:
        """Improve ``initial_parts`` and return the best solution found."""
        graph = self.graph
        n = graph.num_vertices
        if len(initial_parts) != n:
            raise ValueError("initial_parts length mismatch")
        parts = [
            f if f != FREE else int(p)
            for p, f in zip(initial_parts, self.fixture)
        ]
        for v, p in enumerate(parts):
            if p not in (0, 1):
                raise ValueError(f"vertex {v} assigned to invalid side {p}")

        loads = [0.0, 0.0]
        for v in range(n):
            loads[parts[v]] += self._areas[v]
        cut = cut_size(graph, parts) if initial_cut is None else initial_cut
        result = FMResult(
            solution=Bipartition(parts=parts, cut=cut), initial_cut=cut
        )
        if not self._movable:
            return result

        max_passes = self.config.max_passes
        if max_passes < 0:
            max_passes = _HARD_PASS_CAP
        pass_index = 0
        while pass_index < max_passes:
            key_before = self._progress_key(cut, loads)
            record, cut, moves = self._run_pass(parts, loads, cut, pass_index)
            result.passes.append(record)
            if self.config.record_moves:
                result.move_logs.append(moves)
            pass_index += 1
            if not self._progress_key(cut, loads) < key_before:
                break
        result.solution = Bipartition(parts=parts, cut=cut)
        return result

    # ------------------------------------------------------------------
    def _run_pass(
        self,
        parts: List[int],
        loads: List[float],
        cut: int,
        pass_index: int,
    ) -> Tuple[PassRecord, int, List[int]]:
        """One FM pass; leaves ``parts``/``loads`` at the best prefix."""
        graph = self.graph
        epins = self._epins
        eweight = self._eweight
        vnets = self._vnets
        areas = self._areas
        clip = self.config.policy == "clip"
        fifo = self.config.policy == "fifo"

        # Net pin counts per side, rebuilt from scratch every pass.
        num_nets = graph.num_nets
        cnt = [[0, 0] for _ in range(num_nets)]
        for e in range(num_nets):
            c = cnt[e]
            for v in epins[e]:
                c[parts[v]] += 1

        # Actual gains of all movable vertices, also from scratch.
        gain = [0] * graph.num_vertices
        for v in self._movable:
            s = parts[v]
            g = 0
            for e in vnets[v]:
                c = cnt[e]
                w = eweight[e]
                if c[s] == 1:
                    g += w
                if c[1 - s] == 0:
                    g -= w
            gain[v] = g

        limit = 2 * self._max_gain if clip else self._max_gain
        buckets = (
            GainBucket(graph.num_vertices, limit),
            GainBucket(graph.num_vertices, limit),
        )
        if clip:
            for v in sorted(self._movable, key=lambda u: gain[u]):
                buckets[parts[v]].insert(v, 0)
        else:
            for v in self._movable:
                buckets[parts[v]].insert(v, gain[v])

        movable_count = len(self._movable)
        if pass_index == 0 or self.config.pass_move_limit_fraction >= 1.0:
            move_limit = movable_count
        else:
            move_limit = max(
                1, int(self.config.pass_move_limit_fraction * movable_count)
            )

        cut_before = cut
        move_log: List[int] = []
        best_prefix = 0
        best_cut = cut
        best_key = self._quality_key(cut, loads)

        while len(move_log) < move_limit:
            v = self._select_move(buckets, loads, fifo)
            if v is None:
                break
            s = parts[v]
            t = 1 - s
            buckets[s].remove(v)  # lock v for the rest of the pass
            cut -= gain[v]

            for e in vnets[v]:
                c = cnt[e]
                w = eweight[e]
                if w:
                    if c[t] == 0:
                        self._bump_all_free(e, w, gain, buckets, parts)
                    elif c[t] == 1:
                        self._bump_single(e, t, -w, gain, buckets, parts, v)
                c[s] -= 1
                c[t] += 1
                if w:
                    if c[s] == 0:
                        self._bump_all_free(e, -w, gain, buckets, parts)
                    elif c[s] == 1:
                        self._bump_single(e, s, w, gain, buckets, parts, v)

            parts[v] = t
            loads[s] -= areas[v]
            loads[t] += areas[v]
            move_log.append(v)

            key = self._quality_key(cut, loads)
            if key < best_key:
                best_key = key
                best_cut = cut
                best_prefix = len(move_log)

        moves_made = len(move_log)
        for v in reversed(move_log[best_prefix:]):
            t = parts[v]
            s = 1 - t
            parts[v] = s
            loads[t] -= areas[v]
            loads[s] += areas[v]
        cut = best_cut

        record = PassRecord(
            pass_index=pass_index,
            movable=movable_count,
            moves_made=moves_made,
            best_prefix=best_prefix,
            cut_before=cut_before,
            cut_after=cut,
            feasible_after=self.balance.is_feasible(loads),
        )
        return record, cut, move_log

    # ------------------------------------------------------------------
    def _quality_key(self, cut: int, loads: Sequence[float]) -> _QualityKey:
        violation = self.balance.violation(loads)
        if violation == 0.0:
            return (0, float(cut), abs(loads[0] - loads[1]))
        return (1, violation, float(cut))

    def _progress_key(
        self, cut: int, loads: Sequence[float]
    ) -> Tuple[int, float]:
        violation = self.balance.violation(loads)
        if violation == 0.0:
            return (0, float(cut))
        return (1, violation)

    def _select_move(
        self,
        buckets: Tuple[GainBucket, GainBucket],
        loads: List[float],
        fifo: bool,
    ) -> Optional[int]:
        areas = self._areas
        best_v: Optional[int] = None
        best_side = -1
        best_key = 0
        for side in (0, 1):
            bucket = buckets[side]
            for v in bucket.iter_descending(fifo=fifo):
                key = bucket.key_of(v)
                if best_v is not None and key < best_key:
                    break
                if self._move_allowed(loads, areas[v], side, 1 - side):
                    if (
                        best_v is None
                        or key > best_key
                        or (key == best_key and loads[side] > loads[best_side])
                    ):
                        best_v, best_side, best_key = v, side, key
                    break
        return best_v

    def _move_allowed(
        self, loads: List[float], weight: float, source: int, target: int
    ) -> bool:
        if self.balance.allows_move(loads, weight, source, target):
            return True
        if loads[source] < loads[target]:
            return False
        after = [
            load - weight if i == source else
            load + weight if i == target else load
            for i, load in enumerate(loads)
        ]
        return self.balance.violation(after) <= self._escape_slack

    def _bump_all_free(
        self,
        e: int,
        delta: int,
        gain: List[int],
        buckets: Tuple[GainBucket, GainBucket],
        parts: List[int],
    ) -> None:
        for u in self._epins[e]:
            bucket = buckets[parts[u]]
            if u in bucket:
                gain[u] += delta
                bucket.adjust(u, delta)

    def _bump_single(
        self,
        e: int,
        side: int,
        delta: int,
        gain: List[int],
        buckets: Tuple[GainBucket, GainBucket],
        parts: List[int],
        moving: int,
    ) -> None:
        for u in self._epins[e]:
            if u != moving and parts[u] == side:
                bucket = buckets[side]
                if u in bucket:
                    gain[u] += delta
                    bucket.adjust(u, delta)
                return


class ReferenceKWayFMRefiner:
    """Seed k-way FM engine: per-pass rebuilds of counts and spans."""

    def __init__(
        self,
        graph: Hypergraph,
        balance: BalanceConstraint,
        fixture: Optional[Sequence[int]] = None,
        config: Optional[KWayFMConfig] = None,
    ) -> None:
        self.graph = graph
        self.balance = balance
        self.num_parts = balance.num_parts
        if self.num_parts < 2:
            raise ValueError("need at least two blocks")
        self.config = config or KWayFMConfig()
        n = graph.num_vertices
        if fixture is None:
            fixture = [FREE] * n
        validate_fixture(fixture, n, self.num_parts)
        self.fixture = list(fixture)

        self._vnets: List[List[int]] = [
            list(graph.vertex_nets(v)) for v in range(n)
        ]
        self._epins: List[List[int]] = [
            list(graph.net_pins(e)) for e in range(graph.num_nets)
        ]
        self._eweight: List[int] = list(graph.net_weights)
        self._areas: List[float] = list(graph.areas)
        self._movable: List[int] = [
            v for v in range(n) if self.fixture[v] == FREE
        ]
        self._max_gain = max(
            (
                sum(self._eweight[e] for e in self._vnets[v])
                for v in self._movable
            ),
            default=0,
        )
        self._escape_slack = min(
            (
                self._areas[v]
                for v in self._movable
                if self._areas[v] > 0
            ),
            default=0.0,
        )

    # ------------------------------------------------------------------
    def run(
        self, initial_parts: Sequence[int], seed: int = 0
    ) -> KWayFMResult:
        graph = self.graph
        n = graph.num_vertices
        if len(initial_parts) != n:
            raise ValueError("initial_parts length mismatch")
        parts = [
            f if f != FREE else int(p)
            for p, f in zip(initial_parts, self.fixture)
        ]
        for v, p in enumerate(parts):
            if not 0 <= p < self.num_parts:
                raise ValueError(f"vertex {v} in invalid block {p}")

        loads = [0.0] * self.num_parts
        for v in range(n):
            loads[parts[v]] += self._areas[v]
        cut = cut_size(graph, parts)
        result = KWayFMResult(
            parts=parts, cut=cut, initial_cut=cut
        )
        if not self._movable:
            return result

        rng = random.Random(seed)
        max_passes = self.config.max_passes
        if max_passes < 0:
            max_passes = _KWAY_PASS_CAP
        while result.num_passes < max_passes:
            key_before = self._progress_key(cut, loads)
            cut, moves, log = self._run_pass(parts, loads, cut, rng,
                                             result.num_passes)
            result.num_passes += 1
            result.total_moves += moves
            result.pass_moves.append(moves)
            if self.config.record_moves:
                result.move_logs.append(log)
            if not self._progress_key(cut, loads) < key_before:
                break
        result.parts = parts
        result.cut = cut
        return result

    # ------------------------------------------------------------------
    def _progress_key(
        self, cut: int, loads: Sequence[float]
    ) -> Tuple[int, float]:
        violation = self.balance.violation(loads)
        if violation == 0.0:
            return (0, float(cut))
        return (1, violation)

    def _quality_key(
        self, cut: int, loads: Sequence[float]
    ) -> Tuple[int, float, float]:
        violation = self.balance.violation(loads)
        if violation == 0.0:
            return (0, float(cut), max(loads) - min(loads))
        return (1, violation, float(cut))

    def _best_move(
        self,
        v: int,
        parts: List[int],
        cnt: List[List[int]],
        spans: List[int],
        loads: List[float],
    ) -> Tuple[int, int]:
        s = parts[v]
        best_gain = None
        best_target = -1
        for t in range(self.num_parts):
            if t == s:
                continue
            if not self._move_allowed(loads, self._areas[v], s, t):
                continue
            gain = 0
            for e in self._vnets[v]:
                w = self._eweight[e]
                if not w:
                    continue
                c = cnt[e]
                span = spans[e]
                was_cut = span >= 2
                new_span = span
                if c[s] == 1:
                    new_span -= 1
                if c[t] == 0:
                    new_span += 1
                now_cut = new_span >= 2
                if was_cut and not now_cut:
                    gain += w
                elif not was_cut and now_cut:
                    gain -= w
            if best_gain is None or gain > best_gain or (
                gain == best_gain and loads[t] < loads[best_target]
            ):
                best_gain = gain
                best_target = t
        return (best_gain if best_gain is not None else 0, best_target)

    def _move_allowed(
        self, loads: List[float], weight: float, source: int, target: int
    ) -> bool:
        if self.balance.allows_move(loads, weight, source, target):
            return True
        if loads[source] < loads[target]:
            return False
        after = list(loads)
        after[source] -= weight
        after[target] += weight
        return self.balance.violation(after) <= self._escape_slack

    def _run_pass(
        self,
        parts: List[int],
        loads: List[float],
        cut: int,
        rng: random.Random,
        pass_index: int,
    ) -> Tuple[int, int, List[Tuple[int, int, int]]]:
        graph = self.graph
        k = self.num_parts
        num_nets = graph.num_nets
        cnt = [[0] * k for _ in range(num_nets)]
        spans = [0] * num_nets
        for e in range(num_nets):
            c = cnt[e]
            for v in self._epins[e]:
                c[parts[v]] += 1
            spans[e] = sum(1 for x in c if x)

        bucket = GainBucket(graph.num_vertices, self._max_gain)
        stored_target = [-1] * graph.num_vertices
        order = list(self._movable)
        rng.shuffle(order)
        for v in order:
            gain, target = self._best_move(v, parts, cnt, spans, loads)
            if target >= 0:
                bucket.insert(v, gain)
                stored_target[v] = target

        movable_count = len(self._movable)
        if pass_index == 0 or self.config.pass_move_limit_fraction >= 1.0:
            move_limit = movable_count
        else:
            move_limit = max(
                1,
                int(self.config.pass_move_limit_fraction * movable_count),
            )

        move_log: List[Tuple[int, int, int]] = []  # (v, source, target)
        best_prefix = 0
        best_cut = cut
        best_key = self._quality_key(cut, loads)

        while len(move_log) < move_limit and len(bucket):
            v = bucket.pop_max()
            stored_gain = bucket.key_of(v)
            gain, target = self._best_move(v, parts, cnt, spans, loads)
            if target < 0:
                continue  # no longer feasible; drop from this pass
            if gain != stored_gain or target != stored_target[v]:
                current_max = bucket.max_key()
                if current_max is not None and gain < current_max:
                    bucket.insert(v, gain)
                    stored_target[v] = target
                    continue
            s = parts[v]
            for e in self._vnets[v]:
                c = cnt[e]
                c[s] -= 1
                if c[s] == 0:
                    spans[e] -= 1
                if c[target] == 0:
                    spans[e] += 1
                c[target] += 1
            parts[v] = target
            loads[s] -= self._areas[v]
            loads[target] += self._areas[v]
            cut -= gain
            move_log.append((v, s, target))
            key = self._quality_key(cut, loads)
            if key < best_key:
                best_key = key
                best_cut = cut
                best_prefix = len(move_log)

        for v, s, t in reversed(move_log[best_prefix:]):
            parts[v] = s
            loads[t] -= self._areas[v]
            loads[s] += self._areas[v]
        return best_cut, len(move_log), move_log
