"""Partitioning core: FM, CLIP, multilevel, multistart, k-way, baselines."""

from repro.partition.balance import (
    BalanceConstraint,
    MultiBalanceConstraint,
    absolute_balance,
    relative_balance,
    relative_bipartition_balance,
)
from repro.partition.baselines import (
    annealing_baseline,
    greedy_baseline,
    random_baseline,
)
from repro.partition.costfm import (
    CostFMBipartitioner,
    CostFMConfig,
    CostFMResult,
    NetCostModel,
    min_cut_cost_model,
    total_cost,
)
from repro.partition.fm import (
    FMBipartitioner,
    FMConfig,
    FMResult,
    PassRecord,
)
from repro.partition.fm_reference import (
    ReferenceFMBipartitioner,
    ReferenceKWayFMRefiner,
)
from repro.partition.gainbucket import GainBucket
from repro.partition.initial import (
    greedy_bfs_bipartition,
    random_balanced_bipartition,
    random_side_assignment,
    terminal_seeded_bipartition,
)
from repro.partition.kway import KWayResult, recursive_bisection
from repro.partition.kwayfm import (
    KWayFMConfig,
    KWayFMRefiner,
    KWayFMResult,
    kway_balanced_construction,
    kway_fm_partition,
)
from repro.partition.matching import (
    CoarseLevel,
    coarsen,
    heavy_edge_matching,
    random_matching,
)
from repro.partition.matching_reference import (
    coarsen as reference_coarsen,
)
from repro.partition.matching_reference import (
    heavy_edge_matching as reference_heavy_edge_matching,
)
from repro.partition.matching_reference import (
    random_matching as reference_random_matching,
)
from repro.partition.multilevel import (
    MultilevelBipartitioner,
    MultilevelConfig,
    MultilevelResult,
)
from repro.partition.multiresource import (
    MultiResourceFMBipartitioner,
    MultiResourceFMConfig,
    MultiResourceFMResult,
    multi_resource_initial,
)
from repro.partition.multistart import (
    FlatFMStartTask,
    KWayStartTask,
    MultilevelStartTask,
    MultistartResult,
    StartOutcome,
    flat_fm_multistart,
    kway_multistart,
    multilevel_multistart,
    run_multistart,
)
from repro.partition.solution import (
    FREE,
    Bipartition,
    apply_fixture,
    block_loads,
    count_fixed,
    cut_nets,
    cut_size,
    free_fixture,
    hamming_distance,
    movable_vertices,
    pins_per_block,
    respect_fixture,
    symmetric_distance,
    validate_fixture,
)

# The spectral baseline needs numpy/scipy, which are an optional extra
# (``pip install repro[spectral]``); import it lazily so the core
# package stays dependency-free.
_SPECTRAL_EXPORTS = (
    "fiedler_vector",
    "spectral_bipartition",
    "spectral_plus_fm",
    "sweep_cut",
)


def __getattr__(name):
    if name in _SPECTRAL_EXPORTS:
        from repro.partition import spectral

        return getattr(spectral, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


__all__ = [
    "FREE",
    "BalanceConstraint",
    "FlatFMStartTask",
    "KWayStartTask",
    "MultilevelStartTask",
    "Bipartition",
    "CoarseLevel",
    "CostFMBipartitioner",
    "CostFMConfig",
    "CostFMResult",
    "NetCostModel",
    "FMBipartitioner",
    "FMConfig",
    "FMResult",
    "GainBucket",
    "KWayFMConfig",
    "KWayFMRefiner",
    "KWayFMResult",
    "KWayResult",
    "MultiBalanceConstraint",
    "MultiResourceFMBipartitioner",
    "MultiResourceFMConfig",
    "MultiResourceFMResult",
    "MultilevelBipartitioner",
    "MultilevelConfig",
    "MultilevelResult",
    "MultistartResult",
    "PassRecord",
    "ReferenceFMBipartitioner",
    "ReferenceKWayFMRefiner",
    "StartOutcome",
    "absolute_balance",
    "annealing_baseline",
    "apply_fixture",
    "block_loads",
    "coarsen",
    "count_fixed",
    "cut_nets",
    "cut_size",
    "flat_fm_multistart",
    "free_fixture",
    "greedy_baseline",
    "greedy_bfs_bipartition",
    "hamming_distance",
    "heavy_edge_matching",
    "kway_balanced_construction",
    "kway_fm_partition",
    "kway_multistart",
    "min_cut_cost_model",
    "total_cost",
    "movable_vertices",
    "multi_resource_initial",
    "multilevel_multistart",
    "pins_per_block",
    "random_balanced_bipartition",
    "random_baseline",
    "random_matching",
    "random_side_assignment",
    "recursive_bisection",
    "reference_coarsen",
    "reference_heavy_edge_matching",
    "reference_random_matching",
    "relative_balance",
    "relative_bipartition_balance",
    "fiedler_vector",
    "respect_fixture",
    "run_multistart",
    "spectral_bipartition",
    "spectral_plus_fm",
    "sweep_cut",
    "symmetric_distance",
    "terminal_seeded_bipartition",
    "validate_fixture",
]
