"""Multi-balanced 2-way FM: every resource balanced simultaneously.

Section IV of the paper proposes "multibalanced partitioning problems
where each module supplies the same number (k > 1) of resource types"
-- e.g. cell area, pin count and power must all distribute evenly.
This engine extends flat FM to that setting: block loads are vectors,
one entry per resource, and a move is legal only if *every* resource's
window accepts it (:class:`MultiBalanceConstraint`).

Gain bookkeeping is identical to the single-resource engine (the cut
objective doesn't change); only the balance gate and the quality key
differ, so the implementation mirrors :mod:`repro.partition.fm` with
vectorised loads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.hypergraph.hypergraph import Hypergraph
from repro.partition.balance import MultiBalanceConstraint
from repro.partition.fm import _HARD_PASS_CAP
from repro.partition.gainbucket import GainBucket
from repro.partition.solution import (
    FREE,
    Bipartition,
    cut_size,
    validate_fixture,
)


@dataclass(frozen=True)
class MultiResourceFMConfig:
    """Tuning knobs (same semantics as :class:`FMConfig`)."""

    max_passes: int = -1
    pass_move_limit_fraction: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.pass_move_limit_fraction <= 1.0:
            raise ValueError("pass_move_limit_fraction must be in (0, 1]")
        if self.max_passes == 0:
            raise ValueError("max_passes must be nonzero (or negative)")


@dataclass
class MultiResourceFMResult:
    """Outcome of a multi-balanced FM run."""

    solution: Bipartition
    initial_cut: int
    num_passes: int = 0
    total_moves: int = 0


class MultiResourceFMBipartitioner:
    """2-way FM under a :class:`MultiBalanceConstraint`."""

    def __init__(
        self,
        graph: Hypergraph,
        balance: MultiBalanceConstraint,
        fixture: Optional[Sequence[int]] = None,
        config: Optional[MultiResourceFMConfig] = None,
    ) -> None:
        if balance.num_parts != 2:
            raise ValueError("this engine is strictly 2-way")
        if balance.num_resources > graph.num_resources:
            raise ValueError(
                f"balance names {balance.num_resources} resources but "
                f"the graph carries {graph.num_resources}"
            )
        self.graph = graph
        self.balance = balance
        self.config = config or MultiResourceFMConfig()
        n = graph.num_vertices
        if fixture is None:
            fixture = [FREE] * n
        validate_fixture(fixture, n, 2)
        self.fixture = list(fixture)

        self._vnets: List[List[int]] = [
            list(graph.vertex_nets(v)) for v in range(n)
        ]
        self._epins: List[List[int]] = [
            list(graph.net_pins(e)) for e in range(graph.num_nets)
        ]
        self._eweight: List[int] = list(graph.net_weights)
        resources = balance.num_resources
        self._weights: List[List[float]] = [
            [graph.resource(v, r) for r in range(resources)]
            for v in range(n)
        ]
        self._movable: List[int] = [
            v for v in range(n) if self.fixture[v] == FREE
        ]
        self._max_gain = max(
            (
                sum(self._eweight[e] for e in self._vnets[v])
                for v in self._movable
            ),
            default=0,
        )
        # Per-resource escape slack: the smallest positive quantum by
        # which that resource's loads can change.
        self._escape_slack = sum(
            min(
                (
                    self._weights[v][r]
                    for v in self._movable
                    if self._weights[v][r] > 0
                ),
                default=0.0,
            )
            for r in range(resources)
        )

    # ------------------------------------------------------------------
    def run(self, initial_parts: Sequence[int]) -> MultiResourceFMResult:
        """Improve ``initial_parts`` under all resource windows."""
        graph = self.graph
        n = graph.num_vertices
        if len(initial_parts) != n:
            raise ValueError("initial_parts length mismatch")
        parts = [
            f if f != FREE else int(p)
            for p, f in zip(initial_parts, self.fixture)
        ]
        for v, p in enumerate(parts):
            if p not in (0, 1):
                raise ValueError(f"vertex {v} assigned to invalid side {p}")

        resources = self.balance.num_resources
        loads = [[0.0, 0.0] for _ in range(resources)]
        for v in range(n):
            w = self._weights[v]
            side = parts[v]
            for r in range(resources):
                loads[r][side] += w[r]
        cut = cut_size(graph, parts)
        result = MultiResourceFMResult(
            solution=Bipartition(parts=parts, cut=cut), initial_cut=cut
        )
        if not self._movable:
            return result

        max_passes = self.config.max_passes
        if max_passes < 0:
            max_passes = _HARD_PASS_CAP
        while result.num_passes < max_passes:
            key_before = self._progress_key(cut, loads)
            cut, moves = self._run_pass(
                parts, loads, cut, result.num_passes
            )
            result.num_passes += 1
            result.total_moves += moves
            if not self._progress_key(cut, loads) < key_before:
                break
        result.solution = Bipartition(parts=parts, cut=cut)
        return result

    # ------------------------------------------------------------------
    def _violation(self, loads: List[List[float]]) -> float:
        return sum(
            c.violation(res_loads)
            for c, res_loads in zip(self.balance.constraints, loads)
        )

    def _progress_key(
        self, cut: int, loads: List[List[float]]
    ) -> Tuple[int, float]:
        violation = self._violation(loads)
        if violation == 0.0:
            return (0, float(cut))
        return (1, violation)

    def _quality_key(
        self, cut: int, loads: List[List[float]]
    ) -> Tuple[int, float, float]:
        violation = self._violation(loads)
        imbalance = sum(abs(l[0] - l[1]) for l in loads)
        if violation == 0.0:
            return (0, float(cut), imbalance)
        return (1, violation, float(cut))

    def _move_allowed(
        self, loads: List[List[float]], v: int, source: int, target: int
    ) -> bool:
        weights = self._weights[v]
        if self.balance.allows_move(loads, weights, source, target):
            return True
        after = [
            [
                l[0] - w if source == 0 else l[0] + w,
                l[1] - w if source == 1 else l[1] + w,
            ]
            for l, w in zip(loads, weights)
        ]
        # Repairing the *total* violation is allowed even when a single
        # resource's window worsens -- multi-resource repair regularly
        # has to trade one resource against another, which the
        # per-resource gate of MultiBalanceConstraint would forbid.
        if self._violation(after) < self._violation(loads):
            return True
        # Escape hatch analogous to the scalar engine: the move must go
        # off the (total-)heavier side and land within the combined
        # per-resource quanta.
        total_source = sum(l[source] for l in loads)
        total_target = sum(l[target] for l in loads)
        if total_source < total_target:
            return False
        return self._violation(after) <= self._escape_slack

    def _run_pass(
        self,
        parts: List[int],
        loads: List[List[float]],
        cut: int,
        pass_index: int,
    ) -> Tuple[int, int]:
        graph = self.graph
        epins = self._epins
        eweight = self._eweight
        vnets = self._vnets

        num_nets = graph.num_nets
        cnt = [[0, 0] for _ in range(num_nets)]
        for e in range(num_nets):
            c = cnt[e]
            for v in epins[e]:
                c[parts[v]] += 1

        gain = [0] * graph.num_vertices
        for v in self._movable:
            s = parts[v]
            g = 0
            for e in vnets[v]:
                c = cnt[e]
                w = eweight[e]
                if c[s] == 1:
                    g += w
                if c[1 - s] == 0:
                    g -= w
            gain[v] = g

        buckets = (
            GainBucket(graph.num_vertices, self._max_gain),
            GainBucket(graph.num_vertices, self._max_gain),
        )
        for v in self._movable:
            buckets[parts[v]].insert(v, gain[v])

        movable_count = len(self._movable)
        if pass_index == 0 or self.config.pass_move_limit_fraction >= 1.0:
            move_limit = movable_count
        else:
            move_limit = max(
                1,
                int(self.config.pass_move_limit_fraction * movable_count),
            )

        resources = self.balance.num_resources
        move_log: List[int] = []
        best_prefix = 0
        best_cut = cut
        best_key = self._quality_key(cut, loads)

        while len(move_log) < move_limit:
            v = self._select_move(buckets, loads)
            if v is None:
                break
            s = parts[v]
            t = 1 - s
            buckets[s].remove(v)
            cut -= gain[v]
            for e in vnets[v]:
                c = cnt[e]
                w = eweight[e]
                if w:
                    if c[t] == 0:
                        self._bump_all_free(e, w, gain, buckets, parts)
                    elif c[t] == 1:
                        self._bump_single(e, t, -w, gain, buckets, parts, v)
                c[s] -= 1
                c[t] += 1
                if w:
                    if c[s] == 0:
                        self._bump_all_free(e, -w, gain, buckets, parts)
                    elif c[s] == 1:
                        self._bump_single(e, s, w, gain, buckets, parts, v)
            parts[v] = t
            weights = self._weights[v]
            for r in range(resources):
                loads[r][s] -= weights[r]
                loads[r][t] += weights[r]
            move_log.append(v)
            key = self._quality_key(cut, loads)
            if key < best_key:
                best_key = key
                best_cut = cut
                best_prefix = len(move_log)

        for v in reversed(move_log[best_prefix:]):
            t = parts[v]
            s = 1 - t
            parts[v] = s
            weights = self._weights[v]
            for r in range(resources):
                loads[r][t] -= weights[r]
                loads[r][s] += weights[r]
        return best_cut, len(move_log)

    def _select_move(
        self,
        buckets: Tuple[GainBucket, GainBucket],
        loads: List[List[float]],
    ) -> Optional[int]:
        best_v: Optional[int] = None
        best_side = -1
        best_key = 0
        totals = [sum(l[0] for l in loads), sum(l[1] for l in loads)]
        for side in (0, 1):
            bucket = buckets[side]
            for v in bucket.iter_descending():
                key = bucket.key_of(v)
                if best_v is not None and key < best_key:
                    break
                if self._move_allowed(loads, v, side, 1 - side):
                    if (
                        best_v is None
                        or key > best_key
                        or (
                            key == best_key
                            and totals[side] > totals[best_side]
                        )
                    ):
                        best_v, best_side, best_key = v, side, key
                    break
        return best_v

    def _bump_all_free(
        self,
        e: int,
        delta: int,
        gain: List[int],
        buckets: Tuple[GainBucket, GainBucket],
        parts: List[int],
    ) -> None:
        for u in self._epins[e]:
            bucket = buckets[parts[u]]
            if u in bucket:
                gain[u] += delta
                bucket.adjust(u, delta)

    def _bump_single(
        self,
        e: int,
        side: int,
        delta: int,
        gain: List[int],
        buckets: Tuple[GainBucket, GainBucket],
        parts: List[int],
        moving: int,
    ) -> None:
        for u in self._epins[e]:
            if u != moving and parts[u] == side:
                bucket = buckets[side]
                if u in bucket:
                    gain[u] += delta
                    bucket.adjust(u, delta)
                return


def multi_resource_initial(
    graph: Hypergraph,
    balance: MultiBalanceConstraint,
    fixture: Optional[Sequence[int]] = None,
    seed: int = 0,
) -> List[int]:
    """Greedy vector bin-filling construction.

    Visits free vertices largest-first (by total normalised weight) and
    assigns each to the side with the larger remaining vector capacity,
    measured as the sum of per-resource shortfalls.
    """
    import random

    n = graph.num_vertices
    if fixture is None:
        fixture = [FREE] * n
    validate_fixture(fixture, n, 2)
    rng = random.Random(seed)
    resources = balance.num_resources

    totals = [
        sum(graph.resource_vector(r)) or 1.0 for r in range(resources)
    ]
    weights = [
        [graph.resource(v, r) / totals[r] for r in range(resources)]
        for v in range(n)
    ]
    parts = [0] * n
    loads = [[0.0, 0.0] for _ in range(resources)]
    free = []
    for v in range(n):
        f = fixture[v]
        if f == FREE:
            free.append(v)
        else:
            parts[v] = f
            for r in range(resources):
                loads[r][f] += weights[v][r]
    rng.shuffle(free)
    free.sort(key=lambda v: sum(weights[v]), reverse=True)

    centers = [
        [
            (c.min_loads[side] + c.max_loads[side]) / 2.0 / total
            for side in (0, 1)
        ]
        for c, total in zip(balance.constraints, totals)
    ]
    for v in free:
        shortfall = [
            sum(
                centers[r][side] - loads[r][side]
                for r in range(resources)
            )
            for side in (0, 1)
        ]
        if shortfall[0] > shortfall[1]:
            side = 0
        elif shortfall[1] > shortfall[0]:
            side = 1
        else:
            side = rng.randrange(2)
        parts[v] = side
        for r in range(resources):
            loads[r][side] += weights[v][r]
    return parts
