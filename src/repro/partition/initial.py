"""Initial solution generation for iterative partitioners.

FM is a refinement engine; it starts from some assignment.  The paper's
protocol starts every FM run from a random (balanced) partitioning, so
the quality of the randomized construction matters for reproducing the
multistart behaviour.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.hypergraph.hypergraph import Hypergraph
from repro.partition.balance import BalanceConstraint
from repro.partition.solution import FREE, validate_fixture


def random_balanced_bipartition(
    graph: Hypergraph,
    balance: BalanceConstraint,
    fixture: Optional[Sequence[int]] = None,
    rng: Optional[random.Random] = None,
) -> List[int]:
    """Randomized balanced construction.

    Fixed vertices go to their mandated side; the free vertices are
    visited in random order, largest area first within a shuffled
    grouping, and each goes to the side with the most remaining capacity
    (ties broken randomly).  The result is usually feasible under the
    paper's 2% tolerance; when large fixed areas make exact feasibility
    impossible the construction still minimises the overshoot and FM's
    repair moves take it from there.
    """
    if balance.num_parts != 2:
        raise ValueError("bipartition constructor is strictly 2-way")
    n = graph.num_vertices
    if fixture is None:
        fixture = [FREE] * n
    validate_fixture(fixture, n, 2)
    rng = rng or random.Random()

    parts = [0] * n
    loads = [0.0, 0.0]
    free: List[int] = []
    for v in range(n):
        f = fixture[v]
        if f == FREE:
            free.append(v)
        else:
            parts[v] = f
            loads[f] += graph.area(v)

    # Shuffle first so equal-area vertices land in random order, then a
    # stable sort brings the hardest-to-place (largest) vertices forward.
    rng.shuffle(free)
    free.sort(key=graph.area, reverse=True)
    targets = [
        (lo + hi) / 2.0
        for lo, hi in zip(balance.min_loads, balance.max_loads)
    ]
    for v in free:
        remaining0 = targets[0] - loads[0]
        remaining1 = targets[1] - loads[1]
        if remaining0 > remaining1:
            side = 0
        elif remaining1 > remaining0:
            side = 1
        else:
            side = rng.randrange(2)
        parts[v] = side
        loads[side] += graph.area(v)
    return parts


def random_side_assignment(
    graph: Hypergraph,
    fixture: Optional[Sequence[int]] = None,
    rng: Optional[random.Random] = None,
    num_parts: int = 2,
) -> List[int]:
    """Uniformly random assignment (no balance awareness).

    Useful as a worst-case starting point in tests and as the "random
    partitioning" baseline.
    """
    n = graph.num_vertices
    if fixture is None:
        fixture = [FREE] * n
    validate_fixture(fixture, n, num_parts)
    rng = rng or random.Random()
    return [
        f if f != FREE else rng.randrange(num_parts)
        for f in fixture
    ]


def terminal_seeded_bipartition(
    graph: Hypergraph,
    balance: BalanceConstraint,
    fixture: Sequence[int],
    rng: Optional[random.Random] = None,
) -> List[int]:
    """Terminal-propagation construction for the fixed-terminals regime.

    Every free vertex takes the side of its nearest fixed vertex
    (simultaneous multi-source BFS over hypergraph adjacency, ties and
    unreachable vertices resolved randomly), then a greedy repair pass
    moves the smallest-degree border vertices off the overfull side
    until the balance window is met.  This exploits exactly the signal
    the paper says partitioners should exploit: with many terminals the
    good solution is largely dictated by who is close to which side.

    Falls back to :func:`random_balanced_bipartition` when nothing is
    fixed.
    """
    if balance.num_parts != 2:
        raise ValueError("bipartition constructor is strictly 2-way")
    n = graph.num_vertices
    validate_fixture(fixture, n, 2)
    rng = rng or random.Random()
    seeds = [v for v in range(n) if fixture[v] != FREE]
    if not seeds:
        return random_balanced_bipartition(
            graph, balance, fixture=fixture, rng=rng
        )

    parts = [-1] * n
    frontier: List[int] = []
    for v in seeds:
        parts[v] = fixture[v]
        frontier.append(v)
    rng.shuffle(frontier)
    head = 0
    while head < len(frontier):
        v = frontier[head]
        head += 1
        side = parts[v]
        for e in graph.vertex_nets(v):
            for u in graph.net_pins(e):
                if parts[u] == -1:
                    parts[u] = side
                    frontier.append(u)
    for v in range(n):
        if parts[v] == -1:  # disconnected from every terminal
            parts[v] = rng.randrange(2)

    # Greedy balance repair: shed free vertices from the overfull side,
    # lightest first so the repair overshoots minimally.
    loads = [0.0, 0.0]
    for v in range(n):
        loads[parts[v]] += graph.area(v)
    for _ in range(n):
        violation = balance.violation(loads)
        if violation == 0.0:
            break
        heavy = 0 if loads[0] > loads[1] else 1
        movers = [
            v
            for v in range(n)
            if parts[v] == heavy and fixture[v] == FREE
        ]
        if not movers:
            break
        need = max(
            loads[heavy] - balance.max_loads[heavy],
            balance.min_loads[1 - heavy] - loads[1 - heavy],
        )
        movers.sort(key=graph.area)
        moved_any = False
        for v in movers:
            if need <= 0:
                break
            area = graph.area(v)
            if area == 0:
                continue
            parts[v] = 1 - heavy
            loads[heavy] -= area
            loads[1 - heavy] += area
            need -= area
            moved_any = True
        if not moved_any:
            break
    return parts


def greedy_bfs_bipartition(
    graph: Hypergraph,
    balance: BalanceConstraint,
    fixture: Optional[Sequence[int]] = None,
    rng: Optional[random.Random] = None,
) -> List[int]:
    """Breadth-first growth construction.

    Grows side 0 from a random seed (or from the vertices fixed in side
    0) along hypergraph adjacency until it holds roughly half the area;
    everything else goes to side 1.  Produces far better starting cuts
    than random construction on local netlists, which makes it a useful
    contrast baseline for the "does multistart still matter" experiments.
    """
    if balance.num_parts != 2:
        raise ValueError("bipartition constructor is strictly 2-way")
    n = graph.num_vertices
    if fixture is None:
        fixture = [FREE] * n
    validate_fixture(fixture, n, 2)
    rng = rng or random.Random()

    parts = [1] * n
    loads = [0.0, 0.0]
    for v in range(n):
        if fixture[v] != FREE:
            parts[v] = fixture[v]
            loads[fixture[v]] += graph.area(v)
        else:
            loads[1] += graph.area(v)

    target0 = (balance.min_loads[0] + balance.max_loads[0]) / 2.0
    frontier: List[int] = [
        v for v in range(n) if fixture[v] == 0
    ]
    visited = [fixture[v] != FREE for v in range(n)]
    if not frontier:
        free = [v for v in range(n) if fixture[v] == FREE]
        if not free:
            return parts
        seed = rng.choice(free)
        frontier = [seed]

    head = 0
    while head < len(frontier) and loads[0] < target0:
        v = frontier[head]
        head += 1
        if fixture[v] == FREE and parts[v] == 1:
            parts[v] = 0
            loads[1] -= graph.area(v)
            loads[0] += graph.area(v)
        for e in graph.vertex_nets(v):
            for u in graph.net_pins(e):
                if not visited[u]:
                    visited[u] = True
                    frontier.append(u)
        if head == len(frontier) and loads[0] < target0:
            unvisited = [
                u
                for u in range(n)
                if fixture[u] == FREE and parts[u] == 1 and not visited[u]
            ]
            if unvisited:
                nxt = rng.choice(unvisited)
                visited[nxt] = True
                frontier.append(nxt)
    return parts
