"""Reference (pre-kernel) coarsening matchings, kept verbatim.

These are the dict-scoring implementations of
:func:`repro.partition.matching.heavy_edge_matching` /
:func:`repro.partition.matching.random_matching` and the ``coarsen``
driver that shipped before the flat-array kernel rewrite: per-vertex
``Dict[int, float]`` score maps, pin access through the allocating
``Hypergraph.vertex_nets`` / ``Hypergraph.net_pins`` accessors, and the
reference contraction from
:mod:`repro.hypergraph.contraction_reference`.

They exist for two reasons:

* **Differential testing.**  The kernel matchers promise *bit-identical*
  labels for every seed, fixture and area cap -- same rng consumption,
  same float score accumulation order, same tie-breaks.
  ``tests/partition/test_coarsening_differential.py`` asserts that over
  random instances and whole hierarchies.
* **Benchmarking.**  ``benchmarks/coarsening.py`` measures the kernel's
  speedup against this baseline and gates its exit status on identity.

Do not optimize this module.  Its value is that it stays simple enough
to be obviously correct; the kernel is the one allowed to be clever.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.hypergraph.contraction_reference import contract
from repro.hypergraph.hypergraph import Hypergraph
from repro.partition.matching import CoarseLevel
from repro.partition.solution import FREE, validate_fixture


def _compatible(f_a: int, f_b: int) -> bool:
    """Fixture compatibility for merging two vertices."""
    return f_a == FREE or f_b == FREE or f_a == f_b


def heavy_edge_matching(
    graph: Hypergraph,
    fixture: Optional[Sequence[int]] = None,
    rng: Optional[random.Random] = None,
    max_cluster_area: Optional[float] = None,
    max_net_size: int = 64,
) -> List[int]:
    """Cluster labels from one round of heavy-edge matching.

    Vertices are visited in random order; each unmatched vertex merges
    with the unmatched, fixture-compatible neighbour of the highest
    connectivity score ``sum(w(e) / (|e| - 1))`` over shared nets, unless
    the merged area would exceed ``max_cluster_area``.  Nets larger than
    ``max_net_size`` are ignored when scoring (huge nets carry almost no
    locality signal and dominate runtime).  Unmatched vertices stay
    singletons.  The returned labels are contiguous cluster ids.
    """
    n = graph.num_vertices
    rng = rng or random.Random()
    if fixture is None:
        fixture = [FREE] * n
    validate_fixture(fixture, n, max(fixture, default=0) + 1 or 1)
    if max_cluster_area is None:
        max_cluster_area = float("inf")

    order = list(range(n))
    rng.shuffle(order)
    match = [-1] * n
    for v in order:
        if match[v] != -1:
            continue
        scores: Dict[int, float] = {}
        for e in graph.vertex_nets(v):
            size = graph.net_size(e)
            if size < 2 or size > max_net_size:
                continue
            share = graph.net_weight(e) / (size - 1)
            for u in graph.net_pins(e):
                if u != v and match[u] == -1:
                    scores[u] = scores.get(u, 0.0) + share
        best_u = -1
        best_score = 0.0
        area_v = graph.area(v)
        for u, score in scores.items():
            if not _compatible(fixture[v], fixture[u]):
                continue
            if area_v + graph.area(u) > max_cluster_area:
                continue
            if score > best_score or (
                score == best_score and best_u != -1 and u < best_u
            ):
                best_u = u
                best_score = score
        if best_u != -1:
            match[v] = v
            match[best_u] = v

    labels = [0] * n
    next_id = 0
    leader_id: Dict[int, int] = {}
    for v in range(n):
        leader = match[v] if match[v] != -1 else v
        if leader not in leader_id:
            leader_id[leader] = next_id
            next_id += 1
        labels[v] = leader_id[leader]
    return labels


def random_matching(
    graph: Hypergraph,
    fixture: Optional[Sequence[int]] = None,
    rng: Optional[random.Random] = None,
    max_cluster_area: Optional[float] = None,
) -> List[int]:
    """Match each vertex with a random compatible unmatched neighbour.

    The ablation baseline for the matching-scheme study.
    """
    n = graph.num_vertices
    rng = rng or random.Random()
    if fixture is None:
        fixture = [FREE] * n
    if max_cluster_area is None:
        max_cluster_area = float("inf")

    order = list(range(n))
    rng.shuffle(order)
    match = [-1] * n
    for v in order:
        if match[v] != -1:
            continue
        candidates = []
        for e in graph.vertex_nets(v):
            for u in graph.net_pins(e):
                if (
                    u != v
                    and match[u] == -1
                    and _compatible(fixture[v], fixture[u])
                    and graph.area(v) + graph.area(u) <= max_cluster_area
                ):
                    candidates.append(u)
        if candidates:
            u = rng.choice(candidates)
            match[v] = v
            match[u] = v

    labels = [0] * n
    next_id = 0
    leader_id: Dict[int, int] = {}
    for v in range(n):
        leader = match[v] if match[v] != -1 else v
        if leader not in leader_id:
            leader_id[leader] = next_id
            next_id += 1
        labels[v] = leader_id[leader]
    return labels


def coarsen(
    graph: Hypergraph,
    fixture: Sequence[int],
    labels: Sequence[int],
) -> "CoarseLevel":
    """Contract ``graph`` by ``labels`` and propagate the fixture."""
    contraction = contract(graph, labels)
    k = contraction.coarse.num_vertices
    coarse_fixture = [FREE] * k
    for v, c in enumerate(labels):
        f = fixture[v]
        if f == FREE:
            continue
        if coarse_fixture[c] == FREE:
            coarse_fixture[c] = f
        elif coarse_fixture[c] != f:
            raise ValueError(
                f"cluster {c} merges vertices fixed in blocks "
                f"{coarse_fixture[c]} and {f}"
            )
    return CoarseLevel(contraction=contraction, fixture=coarse_fixture)
