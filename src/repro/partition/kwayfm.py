"""Direct k-way FM refinement with fixed vertices.

Section V of the paper leaves open "whether multiway partitioning is as
affected by fixed terminals".  Answering it needs a multiway engine, so
this module implements direct k-way FM (Sanchis-style greedy moves under
the cut-nets objective) rather than only recursive bisection:

* every free vertex owns up to ``k - 1`` candidate moves; the engine
  tracks each vertex's *best* move in a gain bucket and revalidates
  lazily on pop (stale entries are re-inserted with their fresh gain);
* a pass moves each vertex at most once, tracks the best feasible
  prefix, and rolls back to it, exactly like the 2-way engine;
* fixed vertices contribute pin counts but never move.

The cut-nets objective (weight of nets spanning >= 2 blocks) matches
:func:`repro.partition.solution.cut_size` for any k.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.hypergraph.hypergraph import Hypergraph
from repro.partition.balance import BalanceConstraint
from repro.partition.gainbucket import GainBucket
from repro.partition.solution import FREE, cut_size, validate_fixture

_KWAY_PASS_CAP = 100


@dataclass(frozen=True)
class KWayFMConfig:
    """Tuning knobs of the k-way engine."""

    max_passes: int = -1
    pass_move_limit_fraction: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.pass_move_limit_fraction <= 1.0:
            raise ValueError("pass_move_limit_fraction must be in (0, 1]")
        if self.max_passes == 0:
            raise ValueError("max_passes must be nonzero (or negative)")


@dataclass
class KWayFMResult:
    """Outcome of a k-way FM run."""

    parts: List[int]
    cut: int
    initial_cut: int
    num_passes: int = 0
    total_moves: int = 0
    pass_moves: List[int] = field(default_factory=list)


class KWayFMRefiner:
    """Greedy direct k-way FM bound to (graph, balance, fixture)."""

    def __init__(
        self,
        graph: Hypergraph,
        balance: BalanceConstraint,
        fixture: Optional[Sequence[int]] = None,
        config: Optional[KWayFMConfig] = None,
    ) -> None:
        self.graph = graph
        self.balance = balance
        self.num_parts = balance.num_parts
        if self.num_parts < 2:
            raise ValueError("need at least two blocks")
        self.config = config or KWayFMConfig()
        n = graph.num_vertices
        if fixture is None:
            fixture = [FREE] * n
        validate_fixture(fixture, n, self.num_parts)
        self.fixture = list(fixture)

        self._vnets: List[List[int]] = [
            list(graph.vertex_nets(v)) for v in range(n)
        ]
        self._epins: List[List[int]] = [
            list(graph.net_pins(e)) for e in range(graph.num_nets)
        ]
        self._eweight: List[int] = list(graph.net_weights)
        self._areas: List[float] = list(graph.areas)
        self._movable: List[int] = [
            v for v in range(n) if self.fixture[v] == FREE
        ]
        self._max_gain = max(
            (
                sum(self._eweight[e] for e in self._vnets[v])
                for v in self._movable
            ),
            default=0,
        )
        self._escape_slack = min(
            (
                self._areas[v]
                for v in self._movable
                if self._areas[v] > 0
            ),
            default=0.0,
        )

    # ------------------------------------------------------------------
    def run(
        self, initial_parts: Sequence[int], seed: int = 0
    ) -> KWayFMResult:
        """Refine ``initial_parts``; fixed vertices are forced first."""
        graph = self.graph
        n = graph.num_vertices
        if len(initial_parts) != n:
            raise ValueError("initial_parts length mismatch")
        parts = [
            f if f != FREE else int(p)
            for p, f in zip(initial_parts, self.fixture)
        ]
        for v, p in enumerate(parts):
            if not 0 <= p < self.num_parts:
                raise ValueError(f"vertex {v} in invalid block {p}")

        loads = [0.0] * self.num_parts
        for v in range(n):
            loads[parts[v]] += self._areas[v]
        cut = cut_size(graph, parts)
        result = KWayFMResult(
            parts=parts, cut=cut, initial_cut=cut
        )
        if not self._movable:
            return result

        rng = random.Random(seed)
        max_passes = self.config.max_passes
        if max_passes < 0:
            max_passes = _KWAY_PASS_CAP
        while result.num_passes < max_passes:
            key_before = self._progress_key(cut, loads)
            cut, moves = self._run_pass(parts, loads, cut, rng,
                                        result.num_passes)
            result.num_passes += 1
            result.total_moves += moves
            result.pass_moves.append(moves)
            if not self._progress_key(cut, loads) < key_before:
                break
        result.parts = parts
        result.cut = cut
        return result

    # ------------------------------------------------------------------
    def _progress_key(
        self, cut: int, loads: Sequence[float]
    ) -> Tuple[int, float]:
        violation = self.balance.violation(loads)
        if violation == 0.0:
            return (0, float(cut))
        return (1, violation)

    def _quality_key(
        self, cut: int, loads: Sequence[float]
    ) -> Tuple[int, float, float]:
        violation = self.balance.violation(loads)
        if violation == 0.0:
            return (0, float(cut), max(loads) - min(loads))
        return (1, violation, float(cut))

    def _best_move(
        self,
        v: int,
        parts: List[int],
        cnt: List[List[int]],
        spans: List[int],
        loads: List[float],
    ) -> Tuple[int, int]:
        """Best (gain, target) for vertex ``v`` among feasible targets.

        Returns ``(gain, target)``; target is -1 when no target is
        feasible under the balance gate.
        """
        s = parts[v]
        best_gain = None
        best_target = -1
        for t in range(self.num_parts):
            if t == s:
                continue
            if not self._move_allowed(loads, self._areas[v], s, t):
                continue
            gain = 0
            for e in self._vnets[v]:
                w = self._eweight[e]
                if not w:
                    continue
                c = cnt[e]
                span = spans[e]
                was_cut = span >= 2
                new_span = span
                if c[s] == 1:
                    new_span -= 1
                if c[t] == 0:
                    new_span += 1
                now_cut = new_span >= 2
                if was_cut and not now_cut:
                    gain += w
                elif not was_cut and now_cut:
                    gain -= w
            if best_gain is None or gain > best_gain or (
                gain == best_gain and loads[t] < loads[best_target]
            ):
                best_gain = gain
                best_target = t
        return (best_gain if best_gain is not None else 0, best_target)

    def _move_allowed(
        self, loads: List[float], weight: float, source: int, target: int
    ) -> bool:
        if self.balance.allows_move(loads, weight, source, target):
            return True
        if loads[source] < loads[target]:
            return False
        after = list(loads)
        after[source] -= weight
        after[target] += weight
        return self.balance.violation(after) <= self._escape_slack

    def _run_pass(
        self,
        parts: List[int],
        loads: List[float],
        cut: int,
        rng: random.Random,
        pass_index: int,
    ) -> Tuple[int, int]:
        graph = self.graph
        k = self.num_parts
        num_nets = graph.num_nets
        cnt = [[0] * k for _ in range(num_nets)]
        spans = [0] * num_nets
        for e in range(num_nets):
            c = cnt[e]
            for v in self._epins[e]:
                c[parts[v]] += 1
            spans[e] = sum(1 for x in c if x)

        bucket = GainBucket(graph.num_vertices, self._max_gain)
        stored_target = [-1] * graph.num_vertices
        order = list(self._movable)
        rng.shuffle(order)
        for v in order:
            gain, target = self._best_move(v, parts, cnt, spans, loads)
            if target >= 0:
                bucket.insert(v, gain)
                stored_target[v] = target

        movable_count = len(self._movable)
        if pass_index == 0 or self.config.pass_move_limit_fraction >= 1.0:
            move_limit = movable_count
        else:
            move_limit = max(
                1,
                int(self.config.pass_move_limit_fraction * movable_count),
            )

        move_log: List[Tuple[int, int, int]] = []  # (v, source, target)
        best_prefix = 0
        best_cut = cut
        best_key = self._quality_key(cut, loads)
        locked = [False] * graph.num_vertices

        while len(move_log) < move_limit and len(bucket):
            v = bucket.pop_max()
            stored_gain = bucket.key_of(v)
            gain, target = self._best_move(v, parts, cnt, spans, loads)
            if target < 0:
                continue  # no longer feasible; drop from this pass
            if gain != stored_gain or target != stored_target[v]:
                # Stale entry: re-insert with the fresh gain unless the
                # fresh gain is still the bucket maximum.
                current_max = bucket.max_key()
                if current_max is not None and gain < current_max:
                    bucket.insert(v, gain)
                    stored_target[v] = target
                    continue
            s = parts[v]
            # Apply the move.
            for e in self._vnets[v]:
                c = cnt[e]
                c[s] -= 1
                if c[s] == 0:
                    spans[e] -= 1
                if c[target] == 0:
                    spans[e] += 1
                c[target] += 1
            parts[v] = target
            loads[s] -= self._areas[v]
            loads[target] += self._areas[v]
            cut -= gain
            locked[v] = True
            move_log.append((v, s, target))
            key = self._quality_key(cut, loads)
            if key < best_key:
                best_key = key
                best_cut = cut
                best_prefix = len(move_log)

        for v, s, t in reversed(move_log[best_prefix:]):
            parts[v] = s
            loads[t] -= self._areas[v]
            loads[s] += self._areas[v]
        return best_cut, len(move_log)


def kway_fm_partition(
    graph: Hypergraph,
    balance: BalanceConstraint,
    fixture: Optional[Sequence[int]] = None,
    config: Optional[KWayFMConfig] = None,
    seed: int = 0,
) -> KWayFMResult:
    """Construct-and-refine: random balanced k-way start, then k-way FM.

    The construction visits free vertices largest-first and assigns each
    to the feasible block with the most remaining capacity.
    """
    num_parts = balance.num_parts
    n = graph.num_vertices
    if fixture is None:
        fixture = [FREE] * n
    validate_fixture(fixture, n, num_parts)
    rng = random.Random(seed)

    parts = [0] * n
    loads = [0.0] * num_parts
    free = []
    for v in range(n):
        f = fixture[v]
        if f == FREE:
            free.append(v)
        else:
            parts[v] = f
            loads[f] += graph.area(v)
    rng.shuffle(free)
    free.sort(key=graph.area, reverse=True)
    targets = [
        (lo + hi) / 2.0
        for lo, hi in zip(balance.min_loads, balance.max_loads)
    ]
    for v in free:
        remaining = [targets[b] - loads[b] for b in range(num_parts)]
        best = max(remaining)
        choices = [b for b, r in enumerate(remaining) if r == best]
        block = rng.choice(choices)
        parts[v] = block
        loads[block] += graph.area(v)

    refiner = KWayFMRefiner(graph, balance, fixture=fixture, config=config)
    return refiner.run(parts, seed=rng.getrandbits(32))
