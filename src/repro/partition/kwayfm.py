"""Direct k-way FM refinement with fixed vertices.

Section V of the paper leaves open "whether multiway partitioning is as
affected by fixed terminals".  Answering it needs a multiway engine, so
this module implements direct k-way FM (Sanchis-style greedy moves under
the cut-nets objective) rather than only recursive bisection:

* every free vertex owns up to ``k - 1`` candidate moves; the engine
  tracks each vertex's *best* move in a gain bucket and revalidates
  lazily on pop (stale entries are re-inserted with their fresh gain);
* a pass moves each vertex at most once, tracks the best feasible
  prefix, and rolls back to it, exactly like the 2-way engine;
* fixed vertices contribute pin counts but never move.

The cut-nets objective (weight of nets spanning >= 2 blocks) matches
:func:`repro.partition.solution.cut_size` for any k.

Like the 2-way engine, the hot path is a flat-array kernel: the refiner
owns a persistent ``array``-module pin-count buffer (``cnt[e * k + p]``)
and a net-span buffer, derived once per :meth:`KWayFMRefiner.run` and
kept exact across passes by replaying the rolled-back moves in reverse,
plus one reusable :class:`GainBucket` reset per pass.  The move sequence
is bit-identical to the straightforward engine retained in
:mod:`repro.partition.fm_reference`.
"""

from __future__ import annotations

import random
from array import array
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.hypergraph.hypergraph import Hypergraph
from repro.partition.balance import BalanceConstraint
from repro.partition.gainbucket import GainBucket
from repro.partition.solution import FREE, cut_size, validate_fixture
from repro.runtime.observe import recorder as _observe

_KWAY_PASS_CAP = 100

_NIL = -2
"""GainBucket link terminator, mirrored here for the inlined hot loop."""


@dataclass(frozen=True)
class KWayFMConfig:
    """Tuning knobs of the k-way engine.

    ``record_moves`` keeps the per-pass ``(vertex, source, target)`` move
    logs on the result (differential tests and the kernel benchmark).
    """

    max_passes: int = -1
    pass_move_limit_fraction: float = 1.0
    record_moves: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.pass_move_limit_fraction <= 1.0:
            raise ValueError("pass_move_limit_fraction must be in (0, 1]")
        if self.max_passes == 0:
            raise ValueError("max_passes must be nonzero (or negative)")


@dataclass
class KWayFMResult:
    """Outcome of a k-way FM run."""

    parts: List[int]
    cut: int
    initial_cut: int
    num_passes: int = 0
    total_moves: int = 0
    pass_moves: List[int] = field(default_factory=list)
    move_logs: List[List[Tuple[int, int, int]]] = field(default_factory=list)
    """Per-pass pre-rollback move triples; filled only when the config
    sets ``record_moves``."""


class KWayFMRefiner:
    """Greedy direct k-way FM bound to (graph, balance, fixture).

    The refiner is reusable: persistent pin-count/span buffers are
    re-derived at the start of every :meth:`run`, so one instance can
    serve many sequential starts (the multistart driver caches one per
    worker process).
    """

    def __init__(
        self,
        graph: Hypergraph,
        balance: BalanceConstraint,
        fixture: Optional[Sequence[int]] = None,
        config: Optional[KWayFMConfig] = None,
    ) -> None:
        self.graph = graph
        self.balance = balance
        self.num_parts = balance.num_parts
        if self.num_parts < 2:
            raise ValueError("need at least two blocks")
        self.config = config or KWayFMConfig()
        n = graph.num_vertices
        if fixture is None:
            fixture = [FREE] * n
        validate_fixture(fixture, n, self.num_parts)
        self.fixture = list(fixture)

        self._vnets: List[List[int]] = [
            list(graph.vertex_nets(v)) for v in range(n)
        ]
        self._epins: List[List[int]] = [
            list(graph.net_pins(e)) for e in range(graph.num_nets)
        ]
        self._eweight: List[int] = list(graph.net_weights)
        self._areas: List[float] = list(graph.areas)
        self._movable: List[int] = [
            v for v in range(n) if self.fixture[v] == FREE
        ]
        self._max_gain = max(
            (
                sum(self._eweight[e] for e in self._vnets[v])
                for v in self._movable
            ),
            default=0,
        )
        self._escape_slack = min(
            (
                self._areas[v]
                for v in self._movable
                if self._areas[v] > 0
            ),
            default=0.0,
        )

        # Persistent kernel buffers: flat pin counts (cnt[e*k + p]) and
        # per-net block spans, kept exact across passes; plus a reusable
        # bucket and the per-vertex stored-target side array for the
        # lazy-revalidation scheme.
        num_nets = graph.num_nets
        k = self.num_parts
        self._zero_cnt = array("q", [0]) * (num_nets * k)
        self._cnt = array("q", [0]) * (num_nets * k)
        self._spans = array("q", [0]) * num_nets
        self._bucket = GainBucket(n, self._max_gain)
        self._stored_target = [-1] * n
        # Scratch arrays for the inlined best-move net classification
        # (at most one entry per incident net of a single vertex).
        max_degree = max((len(vn) for vn in self._vnets), default=0)
        self._crit_base = [0] * max_degree
        self._crit_weight = [0] * max_degree
        # Pass-start snapshots for the cheaper-direction restore (see
        # the 2-way kernel): when a pass keeps fewer moves than it
        # undoes, restoring these C-speed copies and replaying the kept
        # prefix forwards beats unwinding the undone suffix.
        self._snap_cnt = array("q", [0]) * (num_nets * k)
        self._snap_spans = array("q", [0]) * num_nets
        self._snap_parts: List[int] = [0] * n

    # ------------------------------------------------------------------
    def run(
        self,
        initial_parts: Sequence[int],
        seed: int = 0,
        initial_cut: Optional[int] = None,
    ) -> KWayFMResult:
        """Refine ``initial_parts``; fixed vertices are forced first.

        ``initial_cut``, when given, must be the exact cut of the forced
        assignment and skips the O(pins) ``cut_size`` evaluation.

        Under an active :mod:`repro.runtime.observe` recorder the run is
        wrapped in a ``kwayfm.run`` span with one ``kwayfm.pass`` event
        per pass, emitted after the kernel returns -- traced runs stay
        bit-identical to untraced ones.
        """
        recorder = _observe.active()
        if not recorder.enabled:
            return self._run(initial_parts, seed, initial_cut)
        with recorder.span(
            "kwayfm.run",
            parts=self.num_parts,
            movable=len(self._movable),
        ) as span:
            result = self._run(initial_parts, seed, initial_cut)
            span.set(
                initial_cut=result.initial_cut,
                final_cut=result.cut,
                passes=result.num_passes,
            )
            recorder.count("kwayfm.runs")
            recorder.count("kwayfm.passes", result.num_passes)
            recorder.count("kwayfm.moves", result.total_moves)
            for pass_index, moves in enumerate(result.pass_moves):
                recorder.event(
                    "kwayfm.pass", pass_index=pass_index, moves_made=moves
                )
                recorder.hist("kwayfm.pass.moves", moves)
        return result

    def _run(
        self,
        initial_parts: Sequence[int],
        seed: int = 0,
        initial_cut: Optional[int] = None,
    ) -> KWayFMResult:
        """The uninstrumented engine (see :meth:`run`)."""
        graph = self.graph
        n = graph.num_vertices
        if len(initial_parts) != n:
            raise ValueError("initial_parts length mismatch")
        parts = [
            f if f != FREE else int(p)
            for p, f in zip(initial_parts, self.fixture)
        ]
        for v, p in enumerate(parts):
            if not 0 <= p < self.num_parts:
                raise ValueError(f"vertex {v} in invalid block {p}")

        loads = [0.0] * self.num_parts
        for v in range(n):
            loads[parts[v]] += self._areas[v]
        cut = cut_size(graph, parts) if initial_cut is None else initial_cut
        result = KWayFMResult(
            parts=parts, cut=cut, initial_cut=cut
        )
        if not self._movable:
            return result

        self._init_run_state(parts)

        rng = random.Random(seed)
        record_moves = self.config.record_moves
        max_passes = self.config.max_passes
        if max_passes < 0:
            max_passes = _KWAY_PASS_CAP
        while result.num_passes < max_passes:
            key_before = self._progress_key(cut, loads)
            cut, moves, log = self._run_pass(parts, loads, cut, rng,
                                             result.num_passes)
            result.num_passes += 1
            result.total_moves += moves
            result.pass_moves.append(moves)
            if record_moves:
                result.move_logs.append(log)
            if not self._progress_key(cut, loads) < key_before:
                break
        result.parts = parts
        result.cut = cut
        return result

    # ------------------------------------------------------------------
    def _init_run_state(self, parts: List[int]) -> None:
        """Derive pin counts and spans from ``parts`` (once per run)."""
        k = self.num_parts
        cnt = self._cnt
        cnt[:] = self._zero_cnt
        spans = self._spans
        epins = self._epins
        for e in range(len(epins)):
            base = e * k
            for v in epins[e]:
                cnt[base + parts[v]] += 1
            span = 0
            for p in range(base, base + k):
                if cnt[p]:
                    span += 1
            spans[e] = span

    # ------------------------------------------------------------------
    def _progress_key(
        self, cut: int, loads: Sequence[float]
    ) -> Tuple[int, float]:
        violation = self.balance.violation(loads)
        if violation == 0.0:
            return (0, float(cut))
        return (1, violation)

    def _quality_key(
        self, cut: int, loads: Sequence[float]
    ) -> Tuple[int, float, float]:
        violation = self.balance.violation(loads)
        if violation == 0.0:
            return (0, float(cut), max(loads) - min(loads))
        return (1, violation, float(cut))

    def _best_move(
        self,
        v: int,
        parts: List[int],
        loads: List[float],
    ) -> Tuple[int, int]:
        """Best (gain, target) for vertex ``v`` among feasible targets.

        Returns ``(gain, target)``; target is -1 when no target is
        feasible under the balance gate.  Reads the persistent flat
        ``cnt``/``spans`` buffers.
        """
        cnt = self._cnt
        spans = self._spans
        k = self.num_parts
        s = parts[v]
        av = self._areas[v]
        eweight = self._eweight

        # Classify v's nets once -- the per-target contribution of a net
        # depends on the target only for "critical" span-2 nets where v
        # is alone on its side (those gain +w iff the target already
        # holds a pin).  Everything else is target-independent:
        # span >= 3 nets stay cut no matter where v goes (0); span-1
        # nets with other pins on side s become cut everywhere (-w);
        # singleton nets never change (0).
        base_gain = 0
        crit_bases: List[int] = []
        crit_weights: List[int] = []
        for e in self._vnets[v]:
            w = eweight[e]
            if not w:
                continue
            span = spans[e]
            if span == 2:
                if cnt[e * k + s] == 1:
                    crit_bases.append(e * k)
                    crit_weights.append(w)
            elif span == 1 and cnt[e * k + s] != 1:
                base_gain -= w

        # Strictly-feasible fast path inlined; the violation-reduction /
        # escape-hatch slow path stays in _move_allowed.
        mnl = self.balance.min_loads
        mxl = self.balance.max_loads
        new_src = loads[s] - av
        src_ok = mnl[s] <= new_src <= mxl[s]
        best_gain = None
        best_target = -1
        best_load = 0.0
        for t in range(k):
            if t == s:
                continue
            lt = loads[t]
            if not (
                (src_ok and mnl[t] <= lt + av <= mxl[t])
                or self._move_allowed(loads, av, s, t)
            ):
                continue
            gain = base_gain
            if crit_bases:
                for base, w in zip(crit_bases, crit_weights):
                    if cnt[base + t]:
                        gain += w
            if best_gain is None or gain > best_gain or (
                gain == best_gain and lt < best_load
            ):
                best_gain = gain
                best_target = t
                best_load = lt
        return (best_gain if best_gain is not None else 0, best_target)

    def _move_allowed(
        self, loads: List[float], weight: float, source: int, target: int
    ) -> bool:
        if self.balance.allows_move(loads, weight, source, target):
            return True
        if loads[source] < loads[target]:
            return False
        after = list(loads)
        after[source] -= weight
        after[target] += weight
        return self.balance.violation(after) <= self._escape_slack

    def _run_pass(
        self,
        parts: List[int],
        loads: List[float],
        cut: int,
        rng: random.Random,
        pass_index: int,
    ) -> Tuple[int, int, List[Tuple[int, int, int]]]:
        k = self.num_parts
        cnt = self._cnt
        spans = self._spans
        vnets = self._vnets
        areas = self._areas
        eweight = self._eweight
        mnl = self.balance.min_loads
        mxl = self.balance.max_loads
        move_allowed = self._move_allowed
        crit_b = self._crit_base
        crit_w = self._crit_weight
        NIL = _NIL

        snap_cnt = self._snap_cnt
        snap_spans = self._snap_spans
        snap_parts = self._snap_parts
        snap_cnt[:] = cnt
        snap_spans[:] = spans
        snap_parts[:] = parts

        # The single reusable bucket, with its internals bound as locals
        # for the inlined insert/pop; the scalar max/count state is kept
        # in plain ints and written back before returning so reset()
        # stays coherent.
        bucket = self._bucket
        bucket.reset()
        blimit = bucket._limit
        bh = bucket._head
        bt = bucket._tail
        bp = bucket._prev
        bn = bucket._next
        bky = bucket._key
        bpr = bucket._present
        bmaxi = -1
        bcount = 0

        stored_target = self._stored_target
        order = list(self._movable)
        rng.shuffle(order)
        for v in order:
            # ---- inlined _best_move (kept in sync with the method) --
            s = parts[v]
            av = areas[v]
            base_gain = 0
            nc = 0
            for e in vnets[v]:
                w = eweight[e]
                if not w:
                    continue
                span = spans[e]
                if span == 2:
                    if cnt[e * k + s] == 1:
                        crit_b[nc] = e * k
                        crit_w[nc] = w
                        nc += 1
                elif span == 1 and cnt[e * k + s] != 1:
                    base_gain -= w
            new_src = loads[s] - av
            src_ok = mnl[s] <= new_src <= mxl[s]
            gain = 0
            target = -1
            best_load = 0.0
            for t in range(k):
                if t == s:
                    continue
                lt = loads[t]
                if not (
                    (src_ok and mnl[t] <= lt + av <= mxl[t])
                    or move_allowed(loads, av, s, t)
                ):
                    continue
                g = base_gain
                for i in range(nc):
                    if cnt[crit_b[i] + t]:
                        g += crit_w[i]
                if target < 0 or g > gain or (g == gain and lt < best_load):
                    gain = g
                    target = t
                    best_load = lt
            if target >= 0:
                # inlined bucket insert at the fresh gain
                idx = gain + blimit
                oh = bh[idx]
                bn[v] = oh
                bp[v] = NIL
                if oh != NIL:
                    bp[oh] = v
                else:
                    bt[idx] = v
                bh[idx] = v
                bky[v] = gain
                bpr[v] = True
                bcount += 1
                if idx > bmaxi:
                    bmaxi = idx
                stored_target[v] = target

        movable_count = len(self._movable)
        if pass_index == 0 or self.config.pass_move_limit_fraction >= 1.0:
            move_limit = movable_count
        else:
            move_limit = max(
                1,
                int(self.config.pass_move_limit_fraction * movable_count),
            )

        move_log: List[Tuple[int, int, int]] = []  # (v, source, target)
        log_append = move_log.append
        nmoves = 0
        best_prefix = 0
        best_cut = cut
        bk_state, bk_a, bk_b = self._quality_key(cut, loads)

        while nmoves < move_limit and bcount:
            # ---- inlined pop_max: LIFO head of the max bucket -------
            v = bh[bmaxi]
            nu = bn[v]
            bh[bmaxi] = nu
            if nu != NIL:
                bp[nu] = NIL
            else:
                bt[bmaxi] = NIL
            bpr[v] = False
            bcount -= 1
            stored_gain = bky[v]
            if bcount == 0:
                bmaxi = -1
            elif nu == NIL:
                while bh[bmaxi] == NIL:
                    bmaxi -= 1
            # ---- inlined _best_move (kept in sync with the method) --
            s = parts[v]
            av = areas[v]
            base_gain = 0
            nc = 0
            for e in vnets[v]:
                w = eweight[e]
                if not w:
                    continue
                span = spans[e]
                if span == 2:
                    if cnt[e * k + s] == 1:
                        crit_b[nc] = e * k
                        crit_w[nc] = w
                        nc += 1
                elif span == 1 and cnt[e * k + s] != 1:
                    base_gain -= w
            new_src = loads[s] - av
            src_ok = mnl[s] <= new_src <= mxl[s]
            gain = 0
            target = -1
            best_load = 0.0
            for t in range(k):
                if t == s:
                    continue
                lt = loads[t]
                if not (
                    (src_ok and mnl[t] <= lt + av <= mxl[t])
                    or move_allowed(loads, av, s, t)
                ):
                    continue
                g = base_gain
                for i in range(nc):
                    if cnt[crit_b[i] + t]:
                        g += crit_w[i]
                if target < 0 or g > gain or (g == gain and lt < best_load):
                    gain = g
                    target = t
                    best_load = lt
            if target < 0:
                continue  # no longer feasible; drop from this pass
            if gain != stored_gain or target != stored_target[v]:
                # Stale entry: re-insert with the fresh gain unless the
                # fresh gain is still the bucket maximum.
                if bcount and gain < bmaxi - blimit:
                    idx = gain + blimit
                    oh = bh[idx]
                    bn[v] = oh
                    bp[v] = NIL
                    if oh != NIL:
                        bp[oh] = v
                    else:
                        bt[idx] = v
                    bh[idx] = v
                    bky[v] = gain
                    bpr[v] = True
                    bcount += 1
                    if idx > bmaxi:
                        bmaxi = idx
                    stored_target[v] = target
                    continue
            # Apply the move.
            for e in vnets[v]:
                base = e * k
                c = cnt[base + s] - 1
                cnt[base + s] = c
                if c == 0:
                    spans[e] -= 1
                ct = cnt[base + target]
                if ct == 0:
                    spans[e] += 1
                cnt[base + target] = ct + 1
            parts[v] = target
            loads[s] -= av
            loads[target] += av
            cut -= gain
            log_append((v, s, target))
            nmoves += 1
            # ---- inlined _quality_key + best-prefix tracking --------
            viol = 0.0
            for blk in range(k):
                lb = loads[blk]
                lo = mnl[blk]
                if lb < lo:
                    viol += lo - lb
                elif lb > mxl[blk]:
                    viol += lb - mxl[blk]
            if viol == 0.0:
                state = 0
                a = cut
                b_ = max(loads) - min(loads)
            else:
                state = 1
                a = viol
                b_ = cut
            if state < bk_state or (
                state == bk_state
                and (a < bk_a or (a == bk_a and b_ < bk_b))
            ):
                bk_state = state
                bk_a = a
                bk_b = b_
                best_cut = cut
                best_prefix = nmoves

        bucket._count = bcount
        bucket._max_index = bmaxi

        # Restore the best prefix, cheaper direction first.  Each undo
        # is itself a move, so replaying the undone suffix backwards
        # restores cnt/spans exactly -- no rebuild next pass.  When the
        # pass keeps fewer moves than it undoes, copying the pass-start
        # snapshot back and replaying the kept prefix forwards is
        # cheaper.  Loads are floats, so they are always unwound with
        # the backward delta arithmetic the reference uses (float
        # addition is not associative).
        if best_prefix <= len(move_log) - best_prefix:
            for v, s, t in reversed(move_log[best_prefix:]):
                av = areas[v]
                loads[t] -= av
                loads[s] += av
            cnt[:] = snap_cnt
            spans[:] = snap_spans
            parts[:] = snap_parts
            for i in range(best_prefix):
                v, s, t = move_log[i]
                for e in vnets[v]:
                    base = e * k
                    c = cnt[base + s] - 1
                    cnt[base + s] = c
                    if c == 0:
                        spans[e] -= 1
                    ct = cnt[base + t]
                    if ct == 0:
                        spans[e] += 1
                    cnt[base + t] = ct + 1
                parts[v] = t
        else:
            for v, s, t in reversed(move_log[best_prefix:]):
                for e in vnets[v]:
                    base = e * k
                    c = cnt[base + t] - 1
                    cnt[base + t] = c
                    if c == 0:
                        spans[e] -= 1
                    cs = cnt[base + s]
                    if cs == 0:
                        spans[e] += 1
                    cnt[base + s] = cs + 1
                parts[v] = s
                av = areas[v]
                loads[t] -= av
                loads[s] += av
        return best_cut, len(move_log), move_log


def kway_balanced_construction(
    graph: Hypergraph,
    balance: BalanceConstraint,
    fixture: Sequence[int],
    rng: random.Random,
) -> List[int]:
    """Random balanced k-way construction (fixed vertices forced).

    Free vertices are visited largest-first (random shuffle breaks area
    ties) and each is assigned to the feasible block with the most
    remaining capacity, random among ties.  Extracted from
    :func:`kway_fm_partition` so multistart drivers can pair it with a
    cached refiner; the rng consumption order is part of the determinism
    contract (shuffle, then one ``rng.choice`` per free vertex).
    """
    num_parts = balance.num_parts
    n = graph.num_vertices

    parts = [0] * n
    loads = [0.0] * num_parts
    free = []
    for v in range(n):
        f = fixture[v]
        if f == FREE:
            free.append(v)
        else:
            parts[v] = f
            loads[f] += graph.area(v)
    rng.shuffle(free)
    free.sort(key=graph.area, reverse=True)
    targets = [
        (lo + hi) / 2.0
        for lo, hi in zip(balance.min_loads, balance.max_loads)
    ]
    for v in free:
        remaining = [targets[b] - loads[b] for b in range(num_parts)]
        best = max(remaining)
        choices = [b for b, r in enumerate(remaining) if r == best]
        block = rng.choice(choices)
        parts[v] = block
        loads[block] += graph.area(v)
    return parts


def kway_fm_partition(
    graph: Hypergraph,
    balance: BalanceConstraint,
    fixture: Optional[Sequence[int]] = None,
    config: Optional[KWayFMConfig] = None,
    seed: int = 0,
    refiner: Optional[KWayFMRefiner] = None,
) -> KWayFMResult:
    """Construct-and-refine: random balanced k-way start, then k-way FM.

    ``refiner``, when supplied, must be bound to the same
    (graph, balance, fixture) triple; passing one lets callers reuse its
    persistent kernel buffers across many seeds instead of rebuilding
    the engine per start.
    """
    num_parts = balance.num_parts
    n = graph.num_vertices
    if fixture is None:
        fixture = [FREE] * n
    validate_fixture(fixture, n, num_parts)
    rng = random.Random(seed)

    parts = kway_balanced_construction(graph, balance, fixture, rng)

    if refiner is None:
        refiner = KWayFMRefiner(
            graph, balance, fixture=fixture, config=config
        )
    return refiner.run(parts, seed=rng.getrandbits(32))
