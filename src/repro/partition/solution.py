"""Partition solutions and cut evaluation.

A partition of a hypergraph is a vector assigning each vertex to a block
``0..k-1``.  The cut objective throughout this repository is the weighted
*net cut*: the sum of weights of nets spanning more than one block (the
paper's min-cut bipartitioning objective; for k-way it is the plain
"cut nets" metric rather than sum-of-external-degrees).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.hypergraph.hypergraph import Hypergraph

FREE = -1
"""Marker in a fixture vector for a vertex free to move anywhere."""


def cut_size(graph: Hypergraph, parts: Sequence[int]) -> int:
    """Weighted number of nets spanning more than one block."""
    total = 0
    for e in range(graph.num_nets):
        pins = graph.net_pins(e)
        if not pins:
            continue
        first = parts[pins[0]]
        for v in pins:
            if parts[v] != first:
                total += graph.net_weight(e)
                break
    return total


def cut_nets(graph: Hypergraph, parts: Sequence[int]) -> List[int]:
    """Ids of nets spanning more than one block."""
    out = []
    for e in range(graph.num_nets):
        pins = graph.net_pins(e)
        if not pins:
            continue
        first = parts[pins[0]]
        if any(parts[v] != first for v in pins):
            out.append(e)
    return out


def block_loads(
    graph: Hypergraph, parts: Sequence[int], num_parts: int
) -> List[float]:
    """Total vertex area in each block."""
    loads = [0.0] * num_parts
    for v in range(graph.num_vertices):
        loads[parts[v]] += graph.area(v)
    return loads


def block_resource_loads(
    graph: Hypergraph,
    parts: Sequence[int],
    num_parts: int,
    resource: int,
) -> List[float]:
    """Total value of balance resource ``resource`` per block."""
    vec = graph.resource_vector(resource)
    loads = [0.0] * num_parts
    for v in range(graph.num_vertices):
        loads[parts[v]] += vec[v]
    return loads


def pins_per_block(
    graph: Hypergraph, net: int, parts: Sequence[int], num_parts: int
) -> List[int]:
    """Pin count of ``net`` in each block -- the FM gain bookkeeping."""
    counts = [0] * num_parts
    for v in graph.net_pins(net):
        counts[parts[v]] += 1
    return counts


@dataclass
class Bipartition:
    """A 2-way solution with its cut value.

    ``parts[v]`` is 0 or 1.  ``cut`` is the weighted net cut; callers may
    trust it only if they obtained the object from an engine in this
    package (engines maintain it incrementally and re-verify in tests).
    """

    parts: List[int]
    cut: int

    def copy(self) -> "Bipartition":
        """Deep copy (the parts vector is owned by the result)."""
        return Bipartition(parts=list(self.parts), cut=self.cut)

    def verify_cut(self, graph: Hypergraph) -> bool:
        """Recompute the cut from scratch and compare."""
        return cut_size(graph, self.parts) == self.cut


def respect_fixture(
    parts: Sequence[int], fixture: Sequence[int]
) -> bool:
    """True when every fixed vertex sits in its mandated block."""
    return all(
        f == FREE or p == f for p, f in zip(parts, fixture)
    )


def validate_fixture(
    fixture: Sequence[int], num_vertices: int, num_parts: int
) -> None:
    """Raise ``ValueError`` on malformed fixture vectors."""
    if len(fixture) != num_vertices:
        raise ValueError(
            f"fixture has length {len(fixture)}, expected {num_vertices}"
        )
    for v, f in enumerate(fixture):
        if f != FREE and not 0 <= f < num_parts:
            raise ValueError(
                f"vertex {v} fixed to invalid block {f} "
                f"(num_parts={num_parts})"
            )


def free_fixture(num_vertices: int) -> List[int]:
    """A fixture vector with every vertex free."""
    return [FREE] * num_vertices


def count_fixed(fixture: Sequence[int]) -> int:
    """Number of fixed (non-FREE) entries."""
    return sum(1 for f in fixture if f != FREE)


def movable_vertices(fixture: Sequence[int]) -> List[int]:
    """Ids of free vertices."""
    return [v for v, f in enumerate(fixture) if f == FREE]


def apply_fixture(
    parts: List[int], fixture: Sequence[int]
) -> List[int]:
    """Overwrite fixed vertices' blocks in-place; returns ``parts``."""
    for v, f in enumerate(fixture):
        if f != FREE:
            parts[v] = f
    return parts


def hamming_distance(a: Sequence[int], b: Sequence[int]) -> int:
    """Number of vertices assigned differently by two solutions."""
    if len(a) != len(b):
        raise ValueError("solutions have different lengths")
    return sum(1 for x, y in zip(a, b) if x != y)


def symmetric_distance(a: Sequence[int], b: Sequence[int]) -> int:
    """Bipartition distance up to block relabelling.

    ``min(H(a, b), H(a, 1-b))`` -- the natural distance for free
    bipartitions, where the two block labels are interchangeable.
    """
    if len(a) != len(b):
        raise ValueError("solutions have different lengths")
    direct = sum(1 for x, y in zip(a, b) if x != y)
    return min(direct, len(a) - direct)
