"""Multistart driver.

The paper's protocol applies the partitioner for 1, 2, 4 or 8 independent
starts and reports the best cut of each prefix.  Running 8 starts once
and reading off best-of-first-{1,2,4,8} reproduces all four traces of a
figure from a single batch, which is how :class:`MultistartResult` is
meant to be consumed.

Starts are independent, so the driver fans them out over a process pool
when ``jobs > 1`` (see :mod:`repro.runtime`).  Per-start seeds are
materialised up front from the same ``random.Random(seed)`` stream the
serial loop always drew, and results are collected in seed order, so
``jobs=N`` returns bit-identical cuts and parts to ``jobs=1``.  Only the
clock readings differ between pool sizes -- which is why every outcome
carries both wall-clock ``seconds`` and pool-size-invariant
``cpu_seconds``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.hypergraph.hypergraph import Hypergraph
from repro.partition.balance import BalanceConstraint
from repro.partition.fm import FMBipartitioner, FMConfig
from repro.partition.initial import random_balanced_bipartition
from repro.partition.kwayfm import (
    KWayFMConfig,
    KWayFMRefiner,
    kway_fm_partition,
)
from repro.partition.multilevel import (
    MultilevelBipartitioner,
    MultilevelConfig,
)
from repro.partition.solution import Bipartition
from repro.runtime import (
    CheckpointBatch,
    ExecutionPolicy,
    Quarantined,
    derive_start_seeds,
    parallel_map,
)
from repro.runtime.observe import recorder as _observe


@dataclass
class StartOutcome:
    """Cut, solution and timing of one independent start.

    ``seconds`` is wall-clock time; ``cpu_seconds`` is the executing
    process's ``time.process_time`` and is what CPU-cost reporting
    should use -- it does not change with the pool size.

    A start that was quarantined by the fault-tolerant runtime (see
    ``docs/robustness.md``) carries ``cut=None``, empty ``parts`` and
    the quarantine reason; such null rows are excluded from
    best-of/CPU aggregation instead of aborting the batch.
    """

    cut: Optional[int]
    parts: List[int]
    seconds: float
    cpu_seconds: float = 0.0
    quarantined: Optional[str] = None

    @property
    def healthy(self) -> bool:
        """True unless this start was quarantined."""
        return self.quarantined is None


@dataclass
class MultistartResult:
    """Outcomes of a batch of independent starts, in execution order."""

    starts: List[StartOutcome] = field(default_factory=list)

    @property
    def num_starts(self) -> int:
        """Number of starts executed."""
        return len(self.starts)

    @property
    def num_quarantined(self) -> int:
        """Number of starts that came back as quarantined null rows."""
        return sum(1 for s in self.starts if not s.healthy)

    def best_of_first(self, n: int) -> StartOutcome:
        """Best healthy outcome among the first ``n`` starts."""
        if not 1 <= n <= len(self.starts):
            raise ValueError(
                f"need 1 <= n <= {len(self.starts)}, got {n}"
            )
        healthy = [s for s in self.starts[:n] if s.healthy]
        if not healthy:
            reasons = [s.quarantined for s in self.starts[:n]]
            raise RuntimeError(
                f"all of the first {n} start(s) were quarantined: "
                f"{reasons}"
            )
        return min(healthy, key=lambda s: s.cut)

    def best(self) -> StartOutcome:
        """Best outcome overall."""
        return self.best_of_first(len(self.starts))

    def total_seconds(self) -> float:
        """Total wall-clock time of all starts."""
        return sum(s.seconds for s in self.starts)

    def total_cpu_seconds(self) -> float:
        """Total CPU time of all starts (pool-size-invariant)."""
        return sum(s.cpu_seconds for s in self.starts)

    def seconds_of_first(self, n: int) -> float:
        """Wall-clock time of the first ``n`` starts."""
        if not 1 <= n <= len(self.starts):
            raise ValueError(
                f"need 1 <= n <= {len(self.starts)}, got {n}"
            )
        return sum(s.seconds for s in self.starts[:n])

    def cpu_seconds_of_first(self, n: int) -> float:
        """CPU time of the first ``n`` starts (pool-size-invariant)."""
        if not 1 <= n <= len(self.starts):
            raise ValueError(
                f"need 1 <= n <= {len(self.starts)}, got {n}"
            )
        return sum(s.cpu_seconds for s in self.starts[:n])


def run_multistart(
    run_one: Callable[[int], Bipartition],
    num_starts: int,
    seed: int = 0,
    jobs: int = 1,
    seeds: Optional[Sequence[int]] = None,
    policy: Optional[ExecutionPolicy] = None,
    checkpoint: Optional[CheckpointBatch] = None,
) -> MultistartResult:
    """Execute ``run_one(seed_i)`` for ``num_starts`` derived seeds.

    ``run_one`` must be deterministic in its seed; seeds are drawn from a
    ``random.Random(seed)`` stream so batches are reproducible yet
    independent across starts.  ``seeds`` overrides the stream with an
    explicit per-start seed list (the CLI uses this to preserve its
    historical ``seed + i`` convention).

    ``jobs > 1`` fans the starts over a process pool; ``run_one`` must
    then be picklable (the engine wrappers below are).  Results are
    identical to ``jobs=1`` by construction -- task ``i`` always runs
    with seed ``i`` and outcomes are collected in seed order.

    ``policy`` turns on the fault-tolerant runtime (timeouts, retries,
    quarantine); ``checkpoint`` journals every start so a killed batch
    resumes past its completed starts.  A start the policy quarantines
    becomes a null :class:`StartOutcome` carrying the reason.
    """
    if num_starts < 1:
        raise ValueError("num_starts must be positive")
    if seeds is None:
        start_seeds: Sequence[int] = derive_start_seeds(seed, num_starts)
    else:
        if len(seeds) != num_starts:
            raise ValueError(
                f"seeds has length {len(seeds)}, expected {num_starts}"
            )
        start_seeds = list(seeds)

    recorder = _observe.active()
    with recorder.span("multistart", starts=num_starts, jobs=jobs) as sp:
        calls = parallel_map(
            run_one,
            start_seeds,
            jobs=jobs,
            timed=True,
            policy=policy,
            checkpoint=checkpoint,
        )
        result = MultistartResult()
        for call in calls:
            if isinstance(call, Quarantined):
                result.starts.append(
                    StartOutcome(
                        cut=None,
                        parts=[],
                        seconds=0.0,
                        cpu_seconds=0.0,
                        quarantined=call.reason,
                    )
                )
                continue
            solution = call.value
            result.starts.append(
                StartOutcome(
                    cut=solution.cut,
                    parts=list(solution.parts),
                    seconds=call.seconds,
                    cpu_seconds=call.cpu_seconds,
                )
            )
        if recorder.enabled:
            recorder.count("multistart.batches")
            recorder.count("multistart.starts", result.num_starts)
            quarantined = result.num_quarantined
            if quarantined:
                recorder.count("multistart.quarantined", quarantined)
            healthy = [s.cut for s in result.starts if s.healthy]
            if healthy:
                sp.set(best_cut=min(healthy))
    return result


class _EngineStartTask:
    """Base for picklable per-seed start tasks.

    The heavyweight engine is built lazily and cached per process --
    once in the caller for the serial path, once per worker after the
    pool initializer deserializes the task (the cache never crosses the
    pickle boundary).
    """

    def __init__(
        self,
        graph: Hypergraph,
        balance: BalanceConstraint,
        fixture: Optional[Sequence[int]],
        config: object,
    ) -> None:
        self.graph = graph
        self.balance = balance
        self.fixture = list(fixture) if fixture is not None else None
        self.config = config
        self._engine = None

    def __getstate__(self):
        return (self.graph, self.balance, self.fixture, self.config)

    def __setstate__(self, state):
        self.graph, self.balance, self.fixture, self.config = state
        self._engine = None

    def _build_engine(self):  # pragma: no cover - overridden
        raise NotImplementedError

    @property
    def engine(self):
        """The cached engine, built on first use."""
        if self._engine is None:
            self._engine = self._build_engine()
        return self._engine


class MultilevelStartTask(_EngineStartTask):
    """One multilevel start per seed (picklable for process pools)."""

    def _build_engine(self) -> MultilevelBipartitioner:
        return MultilevelBipartitioner(
            self.graph,
            balance=self.balance,
            fixture=self.fixture,
            config=self.config,
        )

    def __call__(self, start_seed: int) -> Bipartition:
        return self.engine.run(seed=start_seed).solution


class FlatFMStartTask(_EngineStartTask):
    """One flat-FM start from a random balanced construction per seed."""

    def _build_engine(self) -> FMBipartitioner:
        return FMBipartitioner(
            self.graph,
            self.balance,
            fixture=self.fixture,
            config=self.config,
        )

    def __call__(self, start_seed: int) -> Bipartition:
        rng = random.Random(start_seed)
        init = random_balanced_bipartition(
            self.graph, self.balance, fixture=self.fixture, rng=rng
        )
        return self.engine.run(init).solution


class KWayStartTask(_EngineStartTask):
    """One construct-and-refine k-way start per seed.

    The :class:`KWayFMRefiner` is reusable (its kernel buffers are
    re-derived per run), so one cached refiner per process serves every
    start instead of rebuilding the engine -- adjacency flattening and
    buffer allocation happen once.  Passing the cached refiner through
    :func:`kway_fm_partition` keeps the rng consumption (construction,
    then ``rng.getrandbits(32)`` for the pass shuffles) identical to the
    uncached path, so results stay bit-identical.
    """

    def _build_engine(self) -> KWayFMRefiner:
        return KWayFMRefiner(
            self.graph,
            self.balance,
            fixture=self.fixture,
            config=self.config,
        )

    def __call__(self, start_seed: int):
        return kway_fm_partition(
            self.graph,
            self.balance,
            fixture=self.fixture,
            config=self.config,
            seed=start_seed,
            refiner=self.engine,
        )


def multilevel_multistart(
    graph: Hypergraph,
    balance: BalanceConstraint,
    fixture: Optional[Sequence[int]] = None,
    config: Optional[MultilevelConfig] = None,
    num_starts: int = 1,
    seed: int = 0,
    jobs: int = 1,
    seeds: Optional[Sequence[int]] = None,
    policy: Optional[ExecutionPolicy] = None,
    checkpoint: Optional[CheckpointBatch] = None,
) -> MultistartResult:
    """Multistart over the multilevel engine."""
    task = MultilevelStartTask(graph, balance, fixture, config)
    return run_multistart(
        task, num_starts, seed=seed, jobs=jobs, seeds=seeds,
        policy=policy, checkpoint=checkpoint,
    )


def flat_fm_multistart(
    graph: Hypergraph,
    balance: BalanceConstraint,
    fixture: Optional[Sequence[int]] = None,
    config: Optional[FMConfig] = None,
    num_starts: int = 1,
    seed: int = 0,
    jobs: int = 1,
    seeds: Optional[Sequence[int]] = None,
    policy: Optional[ExecutionPolicy] = None,
    checkpoint: Optional[CheckpointBatch] = None,
) -> MultistartResult:
    """Multistart over flat FM from random balanced constructions."""
    task = FlatFMStartTask(graph, balance, fixture, config)
    return run_multistart(
        task, num_starts, seed=seed, jobs=jobs, seeds=seeds,
        policy=policy, checkpoint=checkpoint,
    )


def kway_multistart(
    graph: Hypergraph,
    balance: BalanceConstraint,
    fixture: Optional[Sequence[int]] = None,
    config: Optional[KWayFMConfig] = None,
    num_starts: int = 1,
    seed: int = 0,
    jobs: int = 1,
    seeds: Optional[Sequence[int]] = None,
    policy: Optional[ExecutionPolicy] = None,
    checkpoint: Optional[CheckpointBatch] = None,
) -> MultistartResult:
    """Multistart over the flat k-way construct-and-refine engine."""
    task = KWayStartTask(graph, balance, fixture, config)
    return run_multistart(
        task, num_starts, seed=seed, jobs=jobs, seeds=seeds,
        policy=policy, checkpoint=checkpoint,
    )
