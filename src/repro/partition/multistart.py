"""Multistart driver.

The paper's protocol applies the partitioner for 1, 2, 4 or 8 independent
starts and reports the best cut of each prefix.  Running 8 starts once
and reading off best-of-first-{1,2,4,8} reproduces all four traces of a
figure from a single batch, which is how :class:`MultistartResult` is
meant to be consumed.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.hypergraph.hypergraph import Hypergraph
from repro.partition.balance import BalanceConstraint
from repro.partition.fm import FMBipartitioner, FMConfig
from repro.partition.initial import random_balanced_bipartition
from repro.partition.multilevel import (
    MultilevelBipartitioner,
    MultilevelConfig,
)
from repro.partition.solution import Bipartition


@dataclass
class StartOutcome:
    """Cut, solution and wall-clock seconds of one independent start."""

    cut: int
    parts: List[int]
    seconds: float


@dataclass
class MultistartResult:
    """Outcomes of a batch of independent starts, in execution order."""

    starts: List[StartOutcome] = field(default_factory=list)

    @property
    def num_starts(self) -> int:
        """Number of starts executed."""
        return len(self.starts)

    def best_of_first(self, n: int) -> StartOutcome:
        """Best outcome among the first ``n`` starts."""
        if not 1 <= n <= len(self.starts):
            raise ValueError(
                f"need 1 <= n <= {len(self.starts)}, got {n}"
            )
        return min(self.starts[:n], key=lambda s: s.cut)

    def best(self) -> StartOutcome:
        """Best outcome overall."""
        return self.best_of_first(len(self.starts))

    def total_seconds(self) -> float:
        """Total wall-clock time of all starts."""
        return sum(s.seconds for s in self.starts)

    def seconds_of_first(self, n: int) -> float:
        """Wall-clock time of the first ``n`` starts."""
        if not 1 <= n <= len(self.starts):
            raise ValueError(
                f"need 1 <= n <= {len(self.starts)}, got {n}"
            )
        return sum(s.seconds for s in self.starts[:n])


def run_multistart(
    run_one: Callable[[int], Bipartition],
    num_starts: int,
    seed: int = 0,
) -> MultistartResult:
    """Execute ``run_one(seed_i)`` for ``num_starts`` derived seeds.

    ``run_one`` must be deterministic in its seed; seeds are drawn from a
    ``random.Random(seed)`` stream so batches are reproducible yet
    independent across starts.
    """
    if num_starts < 1:
        raise ValueError("num_starts must be positive")
    rng = random.Random(seed)
    result = MultistartResult()
    for _ in range(num_starts):
        start_seed = rng.getrandbits(32)
        t0 = time.perf_counter()
        solution = run_one(start_seed)
        seconds = time.perf_counter() - t0
        result.starts.append(
            StartOutcome(
                cut=solution.cut,
                parts=list(solution.parts),
                seconds=seconds,
            )
        )
    return result


def multilevel_multistart(
    graph: Hypergraph,
    balance: BalanceConstraint,
    fixture: Optional[Sequence[int]] = None,
    config: Optional[MultilevelConfig] = None,
    num_starts: int = 1,
    seed: int = 0,
) -> MultistartResult:
    """Multistart over the multilevel engine."""
    engine = MultilevelBipartitioner(
        graph, balance=balance, fixture=fixture, config=config
    )

    def run_one(start_seed: int) -> Bipartition:
        return engine.run(seed=start_seed).solution

    return run_multistart(run_one, num_starts, seed=seed)


def flat_fm_multistart(
    graph: Hypergraph,
    balance: BalanceConstraint,
    fixture: Optional[Sequence[int]] = None,
    config: Optional[FMConfig] = None,
    num_starts: int = 1,
    seed: int = 0,
) -> MultistartResult:
    """Multistart over flat FM from random balanced constructions."""
    engine = FMBipartitioner(graph, balance, fixture=fixture, config=config)

    def run_one(start_seed: int) -> Bipartition:
        rng = random.Random(start_seed)
        init = random_balanced_bipartition(
            graph, balance, fixture=fixture, rng=rng
        )
        return engine.run(init).solution

    return run_multistart(run_one, num_starts, seed=seed)
