"""Baseline partitioners.

Weak references against which FM and the multilevel engine are compared
in tests and ablation benches: pure random construction, randomized
greedy growth, and a simple simulated-annealing bipartitioner (the
classic pre-FM metaheuristic baseline).
"""

from __future__ import annotations

import math
import random
from typing import Optional, Sequence

from repro.hypergraph.hypergraph import Hypergraph
from repro.partition.balance import BalanceConstraint
from repro.partition.initial import (
    greedy_bfs_bipartition,
    random_balanced_bipartition,
)
from repro.partition.solution import (
    FREE,
    Bipartition,
    cut_size,
    validate_fixture,
)


def random_baseline(
    graph: Hypergraph,
    balance: BalanceConstraint,
    fixture: Optional[Sequence[int]] = None,
    seed: int = 0,
) -> Bipartition:
    """Best of one random balanced construction (no improvement)."""
    rng = random.Random(seed)
    parts = random_balanced_bipartition(
        graph, balance, fixture=fixture, rng=rng
    )
    return Bipartition(parts=parts, cut=cut_size(graph, parts))


def greedy_baseline(
    graph: Hypergraph,
    balance: BalanceConstraint,
    fixture: Optional[Sequence[int]] = None,
    seed: int = 0,
) -> Bipartition:
    """BFS-growth construction (no iterative improvement)."""
    rng = random.Random(seed)
    parts = greedy_bfs_bipartition(
        graph, balance, fixture=fixture, rng=rng
    )
    return Bipartition(parts=parts, cut=cut_size(graph, parts))


def annealing_baseline(
    graph: Hypergraph,
    balance: BalanceConstraint,
    fixture: Optional[Sequence[int]] = None,
    seed: int = 0,
    moves_per_temperature: Optional[int] = None,
    initial_acceptance: float = 0.5,
    cooling: float = 0.9,
    freeze_temperature: float = 0.05,
) -> Bipartition:
    """Simulated-annealing bipartitioning over single-vertex flips.

    Infeasible intermediate states are allowed but penalised by the
    balance violation, so the walk is steered back into the feasible
    region; the returned solution is the best *feasible* state seen (or
    the least-infeasible one if none was feasible).
    """
    n = graph.num_vertices
    if fixture is None:
        fixture = [FREE] * n
    validate_fixture(fixture, n, 2)
    rng = random.Random(seed)
    parts = random_balanced_bipartition(
        graph, balance, fixture=fixture, rng=rng
    )
    movable = [v for v in range(n) if fixture[v] == FREE]
    if not movable:
        return Bipartition(parts=parts, cut=cut_size(graph, parts))
    if moves_per_temperature is None:
        moves_per_temperature = 8 * len(movable)

    loads = [0.0, 0.0]
    for v in range(n):
        loads[parts[v]] += graph.area(v)
    cut = cut_size(graph, parts)

    def energy(c: int, lds: Sequence[float]) -> float:
        return c + balance.violation(lds)

    def flip_delta(v: int) -> int:
        """Cut change when flipping ``v`` (positive = worse)."""
        s = parts[v]
        delta = 0
        for e in graph.vertex_nets(v):
            pins = graph.net_pins(e)
            same = sum(1 for u in pins if parts[u] == s)
            other = len(pins) - same
            w = graph.net_weight(e)
            if other == 0:
                delta += w  # net becomes cut
            elif same == 1:
                delta -= w  # net becomes uncut
        return delta

    # Calibrate the starting temperature to the configured initial
    # acceptance rate on a sample of uphill moves.
    uphill = []
    for _ in range(min(100, len(movable))):
        d = flip_delta(rng.choice(movable))
        if d > 0:
            uphill.append(d)
    avg_uphill = sum(uphill) / len(uphill) if uphill else 1.0
    temperature = max(
        1e-9, -avg_uphill / math.log(initial_acceptance)
    )

    best_parts = list(parts)
    best_energy = energy(cut, loads)
    best_feasible = balance.is_feasible(loads)

    while temperature > freeze_temperature:
        accepted = 0
        for _ in range(moves_per_temperature):
            v = rng.choice(movable)
            s = parts[v]
            t = 1 - s
            d_cut = flip_delta(v)
            new_loads = list(loads)
            new_loads[s] -= graph.area(v)
            new_loads[t] += graph.area(v)
            d_energy = (cut + d_cut + balance.violation(new_loads)) - (
                energy(cut, loads)
            )
            if d_energy <= 0 or rng.random() < math.exp(
                -d_energy / temperature
            ):
                parts[v] = t
                loads = new_loads
                cut += d_cut
                accepted += 1
                feasible = balance.is_feasible(loads)
                e_now = energy(cut, loads)
                better = (
                    (feasible and not best_feasible)
                    or (feasible == best_feasible and e_now < best_energy)
                )
                if better:
                    best_parts = list(parts)
                    best_energy = e_now
                    best_feasible = feasible
        temperature *= cooling
        if accepted == 0:
            break
    return Bipartition(
        parts=best_parts, cut=cut_size(graph, best_parts)
    )
