"""Shared result reporting and runtime flags for the experiment harness.

Every experiment can print its table/figure data to stdout and
optionally persist it under ``results/`` so EXPERIMENTS.md entries can
be regenerated verbatim.

:func:`parse_runtime_flags` is the shared CLI vocabulary for the
fault-tolerant runtime (see ``docs/robustness.md``): every experiment
``main`` accepts ``--resume=PATH`` (checkpoint journal; created on
first use, resumed afterwards), ``--timeout=SECS`` (per-item wall-clock
deadline) and ``--max-retries=N`` (crash/timeout retry budget before a
cell is quarantined).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, List, Optional, Sequence, Tuple, Union

from repro.runtime import (
    CheckpointJournal,
    ExecutionPolicy,
    RetryPolicy,
)

PathLike = Union[str, Path]

DEFAULT_RESULTS_DIR = Path("results")


@dataclass(frozen=True)
class RuntimeFlags:
    """Parsed ``--resume/--timeout/--max-retries`` experiment flags."""

    resume: Optional[str] = None
    timeout: Optional[float] = None
    max_retries: Optional[int] = None

    def execution_policy(self) -> Optional[ExecutionPolicy]:
        """The :class:`ExecutionPolicy` these flags imply (or ``None``).

        Quarantine is enabled whenever the fault-tolerant path is opted
        into at all: an experiment invoked with a timeout or a retry
        budget wants null rows over an aborted sweep.
        """
        if self.timeout is None and self.max_retries is None:
            return None
        retry = RetryPolicy(
            max_attempts=(
                self.max_retries + 1 if self.max_retries is not None else 3
            )
        )
        return ExecutionPolicy(
            timeout=self.timeout, retry=retry, quarantine=True
        )

    def journal(self, spec: Any) -> Optional[CheckpointJournal]:
        """The checkpoint journal at ``--resume``, keyed by ``spec``.

        ``spec`` must describe everything that determines the study's
        results (and nothing that doesn't -- e.g. ``jobs`` stays out so
        a sweep can resume under a different pool size).
        """
        if self.resume is None:
            return None
        return CheckpointJournal(self.resume, spec)


def parse_runtime_flags(
    args: Sequence[str],
) -> Tuple[List[str], RuntimeFlags]:
    """Split ``--resume/--timeout/--max-retries`` off an argv list.

    Returns the remaining (positional) arguments plus the parsed flags,
    so experiment ``main`` functions keep their historical positional
    interface.
    """
    rest: List[str] = []
    resume: Optional[str] = None
    timeout: Optional[float] = None
    max_retries: Optional[int] = None
    for token in args:
        if token.startswith("--resume="):
            resume = token.split("=", 1)[1]
        elif token == "--resume":
            raise ValueError("--resume requires a value: --resume=PATH")
        elif token.startswith("--timeout="):
            timeout = float(token.split("=", 1)[1])
            if timeout <= 0:
                raise ValueError(f"--timeout must be positive, got {timeout}")
        elif token.startswith("--max-retries="):
            max_retries = int(token.split("=", 1)[1])
            if max_retries < 0:
                raise ValueError(
                    f"--max-retries must be >= 0, got {max_retries}"
                )
        else:
            rest.append(token)
    return rest, RuntimeFlags(
        resume=resume, timeout=timeout, max_retries=max_retries
    )


def emit(
    text: str,
    name: Optional[str] = None,
    results_dir: Optional[PathLike] = None,
    quiet: bool = False,
) -> str:
    """Print ``text`` and optionally save it as ``results/<name>.txt``."""
    if not quiet:
        print(text)
    if name is not None:
        directory = Path(results_dir or DEFAULT_RESULTS_DIR)
        directory.mkdir(parents=True, exist_ok=True)
        (directory / f"{name}.txt").write_text(text + "\n")
    return text


def ratio(value: float, reference: float) -> float:
    """Safe ratio for normalized reporting."""
    return value / reference if reference else float("inf")


def check(label: str, condition: bool) -> str:
    """One line of a shape-check report."""
    return f"[{'PASS' if condition else 'FAIL'}] {label}"
