"""Shared result reporting for the experiment harness.

Every experiment can print its table/figure data to stdout and
optionally persist it under ``results/`` so EXPERIMENTS.md entries can
be regenerated verbatim.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

PathLike = Union[str, Path]

DEFAULT_RESULTS_DIR = Path("results")


def emit(
    text: str,
    name: Optional[str] = None,
    results_dir: Optional[PathLike] = None,
    quiet: bool = False,
) -> str:
    """Print ``text`` and optionally save it as ``results/<name>.txt``."""
    if not quiet:
        print(text)
    if name is not None:
        directory = Path(results_dir or DEFAULT_RESULTS_DIR)
        directory.mkdir(parents=True, exist_ok=True)
        (directory / f"{name}.txt").write_text(text + "\n")
    return text


def ratio(value: float, reference: float) -> float:
    """Safe ratio for normalized reporting."""
    return value / reference if reference else float("inf")


def check(label: str, condition: bool) -> str:
    """One line of a shape-check report."""
    return f"[{'PASS' if condition else 'FAIL'}] {label}"
