"""The experiment circuit suite.

The paper runs on IBM01..IBM05 of the ISPD-98 suite (12.7k..29.3k
cells).  Those netlists are not redistributable and pure-Python FM at
their full size would make the sweeps take hours, so the suite here is a
set of synthetic circuits ("ibm01s".."ibm05s") generated to the same
statistics at roughly one-eighth scale -- see DESIGN.md for why the
studied phenomena survive the scaling.  Tiny circuits back the unit
tests.

Definitions are deterministic: ``load_circuit(name)`` always returns the
same netlist, and instances are cached per process because generation
and especially good-solution discovery are reused across experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.hypergraph.generators import (
    CircuitSpec,
    SyntheticCircuit,
    generate_circuit,
)
from repro.partition.balance import (
    BalanceConstraint,
    relative_bipartition_balance,
)

PAPER_TOLERANCE = 0.02
"""The paper's balance tolerance: 2% deviation from exact bisection."""


@dataclass(frozen=True)
class CircuitDefinition:
    """A named, seeded circuit recipe."""

    name: str
    spec: CircuitSpec
    seed: int
    description: str = ""


# ISPD-98 reference sizes: IBM01 12752 cells / 246 pads, IBM02 19601,
# IBM03 23136, IBM04 27507, IBM05 29347.  The "s" suite scales cell
# counts by ~1/8 and keeps pins/cell, area skew and pad density.
CIRCUITS: Dict[str, CircuitDefinition] = {
    definition.name: definition
    for definition in (
        CircuitDefinition(
            name="ibm01s",
            spec=CircuitSpec(num_cells=1600, name="ibm01s"),
            seed=101,
            description="IBM01 analogue (12752 cells -> 1600)",
        ),
        CircuitDefinition(
            name="ibm02s",
            spec=CircuitSpec(num_cells=2450, name="ibm02s"),
            seed=102,
            description="IBM02 analogue (19601 cells -> 2450)",
        ),
        CircuitDefinition(
            name="ibm03s",
            spec=CircuitSpec(num_cells=2900, name="ibm03s"),
            seed=103,
            description="IBM03 analogue (23136 cells -> 2900)",
        ),
        CircuitDefinition(
            name="ibm04s",
            spec=CircuitSpec(num_cells=3450, name="ibm04s"),
            seed=104,
            description="IBM04 analogue (27507 cells -> 3450)",
        ),
        CircuitDefinition(
            name="ibm05s",
            spec=CircuitSpec(num_cells=3650, name="ibm05s"),
            seed=105,
            description="IBM05 analogue (29347 cells -> 3650)",
        ),
        CircuitDefinition(
            name="tiny01",
            spec=CircuitSpec(num_cells=300, name="tiny01"),
            seed=201,
            description="test-suite circuit",
        ),
        CircuitDefinition(
            name="tiny02",
            spec=CircuitSpec(num_cells=500, name="tiny02"),
            seed=202,
            description="test-suite circuit",
        ),
        CircuitDefinition(
            name="quick01",
            spec=CircuitSpec(num_cells=900, name="quick01"),
            seed=301,
            description="fast-benchmark circuit (ibm01s stand-in)",
        ),
        CircuitDefinition(
            name="quick03",
            spec=CircuitSpec(num_cells=1300, name="quick03"),
            seed=303,
            description="fast-benchmark circuit (ibm03s stand-in)",
        ),
    )
}

_CACHE: Dict[str, SyntheticCircuit] = {}


def load_circuit(name: str) -> SyntheticCircuit:
    """Generate (or fetch the cached) circuit called ``name``."""
    if name not in CIRCUITS:
        raise KeyError(
            f"unknown circuit {name!r}; available: {sorted(CIRCUITS)}"
        )
    if name not in _CACHE:
        definition = CIRCUITS[name]
        _CACHE[name] = generate_circuit(definition.spec, seed=definition.seed)
    return _CACHE[name]


def load_instance(
    name: str, tolerance: float = PAPER_TOLERANCE
) -> Tuple[SyntheticCircuit, BalanceConstraint]:
    """Circuit plus the paper's 2%-balance constraint on its areas."""
    circuit = load_circuit(name)
    balance = relative_bipartition_balance(
        circuit.graph.total_area, tolerance
    )
    return circuit, balance
