"""Experiment harness: one module per table/figure of the paper.

Submodules (``table1`` .. ``table4``, ``figures``) are deliberately not
imported here: they double as ``python -m`` entry points, and importing
them from the package would shadow the ``runpy`` execution.  Import them
explicitly, e.g. ``from repro.experiments.table2 import run_table2``.
"""

from repro.experiments.circuits import (
    CIRCUITS,
    PAPER_TOLERANCE,
    CircuitDefinition,
    load_circuit,
    load_instance,
)

__all__ = [
    "CIRCUITS",
    "PAPER_TOLERANCE",
    "CircuitDefinition",
    "load_circuit",
    "load_instance",
]
