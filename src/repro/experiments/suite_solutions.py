"""Companion experiment: best-known solutions for derived benchmarks.

The paper publishes its fixed-terminals benchmarks "together with
information about best known solutions [and] partitioner run times".
This experiment produces that companion table for our derived suite:
for every A..D x {V,H} instance, the best multilevel cut over N starts,
the single-start average, and per-start runtime -- plus the free-
hypergraph cut of the same block as context (how much the terminals
constrain the block).

Run: ``python -m repro.experiments.suite_solutions [full|quick]``
"""

from __future__ import annotations

import statistics
import sys
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.experiments.circuits import load_circuit
from repro.experiments.reporting import check, emit
from repro.partition.multistart import multilevel_multistart
from repro.partition.solution import FREE
from repro.placement.suite import BenchmarkSuite, build_suite


@dataclass(frozen=True)
class SolutionRow:
    """Best-known-solution record for one derived instance."""

    name: str
    num_cells: int
    num_terminals: int
    best_cut: int
    avg_cut: float
    avg_seconds: float
    free_cut: int

    def format_row(self) -> str:
        """Fixed-width table row."""
        return (
            f"{self.name:<26s} {self.num_cells:>6d} "
            f"{self.num_terminals:>6d} {self.best_cut:>8d} "
            f"{self.avg_cut:>8.1f} {self.avg_seconds:>8.3f} "
            f"{self.free_cut:>8d}"
        )


HEADER = (
    f"{'instance':<26s} {'cells':>6s} {'terms':>6s} {'best':>8s} "
    f"{'avg@1':>8s} {'sec@1':>8s} {'free':>8s}"
)


@dataclass
class SolutionTable:
    """All rows for one circuit's suite."""

    circuit_name: str
    starts: int
    rows: List[SolutionRow] = field(default_factory=list)

    def format_table(self) -> str:
        """Text rendering."""
        return "\n".join(
            [
                f"Best known solutions: {self.circuit_name} "
                f"(multilevel, best of {self.starts} starts)",
                HEADER,
            ]
            + [r.format_row() for r in self.rows]
        )


def solve_suite(
    suite: BenchmarkSuite, starts: int = 4, seed: int = 0, jobs: int = 1
) -> SolutionTable:
    """Partition every instance of ``suite`` and tabulate the results."""
    table = SolutionTable(circuit_name=suite.circuit_name, starts=starts)
    for entry in suite.entries:
        instance = entry.instance
        fixture = instance.hard_fixture()
        batch = multilevel_multistart(
            instance.graph,
            instance.balance,
            fixture=fixture,
            num_starts=starts,
            seed=seed,
            jobs=jobs,
        )
        free_batch = multilevel_multistart(
            instance.graph,
            instance.balance,
            fixture=[FREE] * instance.graph.num_vertices,
            num_starts=1,
            seed=seed,
        )
        table.rows.append(
            SolutionRow(
                name=instance.name,
                num_cells=entry.parameters.num_cells,
                num_terminals=entry.parameters.num_terminals,
                best_cut=batch.best().cut,
                avg_cut=statistics.mean(s.cut for s in batch.starts),
                avg_seconds=statistics.mean(
                    s.seconds for s in batch.starts
                ),
                free_cut=free_batch.best().cut,
            )
        )
    return table


PROFILE_SETTINGS = {
    "full": {"circuits": ("ibm01s", "ibm02s"), "starts": 4},
    "quick": {"circuits": ("quick01",), "starts": 2},
}


def run_suite_solutions(
    profile: str = "quick", seed: int = 0, jobs: int = 1
) -> List[SolutionTable]:
    """Build + solve the profile's suites."""
    if profile not in PROFILE_SETTINGS:
        raise KeyError(f"unknown profile {profile!r}")
    settings = PROFILE_SETTINGS[profile]
    tables = []
    for name in settings["circuits"]:
        circuit = load_circuit(name)
        suite = build_suite(circuit, name, seed=seed)
        tables.append(
            solve_suite(
                suite, starts=settings["starts"], seed=seed, jobs=jobs
            )
        )
    return tables


def shape_checks(tables: List[SolutionTable]) -> List[Tuple[str, bool]]:
    """Sanity properties of the solution table."""
    checks = []
    for table in tables:
        checks.append(
            (
                f"{table.circuit_name}: best <= avg on every instance",
                all(r.best_cut <= r.avg_cut + 1e-9 for r in table.rows),
            )
        )
        # Fixed terminals constrain the block: the fixed-terminals cut
        # is at least the free cut of the same block (never below; the
        # free instance's solution space strictly contains it).
        checks.append(
            (
                f"{table.circuit_name}: fixed-terminals cut >= free "
                "cut of the same block",
                all(
                    r.best_cut >= r.free_cut - max(2, 0.1 * r.free_cut)
                    for r in table.rows
                ),
            )
        )
    return checks


def main(argv: Sequence[str] = ()) -> None:
    """CLI entry point."""
    args = list(argv) or sys.argv[1:]
    profile = args[0] if args else "quick"
    jobs = int(args[1]) if len(args) > 1 else 1
    tables = run_suite_solutions(profile, jobs=jobs)
    text = "\n\n".join(t.format_table() for t in tables)
    text += "\n\n" + "\n".join(
        check(label, ok) for label, ok in shape_checks(tables)
    )
    emit(text, name=f"suite_solutions_{profile}")


if __name__ == "__main__":
    main()
