"""Extension experiment: is multiway partitioning as affected by fixed
terminals?

Section V, open question 1: "determining whether multiway partitioning
is as affected by fixed terminals".  This experiment repeats the
Section II protocol with the direct k-way FM engine (k = 4): fix
growing fractions of vertices either consistently with a good free
4-way solution or at random, run 1..N starts, and examine whether the
multistart gap collapses and runtime falls just as in the 2-way case.

Run: ``python -m repro.experiments.multiway [full|quick]``
"""

from __future__ import annotations

import random
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.regimes import (
    FixedVertexSchedule,
    make_schedule,
    regime_fixture,
)
from repro.experiments.circuits import load_circuit
from repro.experiments.reporting import check, emit, parse_runtime_flags
from repro.hypergraph.hypergraph import Hypergraph
from repro.partition.balance import BalanceConstraint, relative_balance
from repro.partition.multistart import kway_multistart


@dataclass(frozen=True)
class MultiwayPoint:
    """One (regime, percent, starts) point of the k-way study."""

    regime: str
    percent: float
    starts: int
    raw_cut: float
    normalized_cut: float
    cpu_seconds: float


@dataclass
class MultiwayStudy:
    """The k-way analogue of a Figs. 1-2 study."""

    circuit_name: str
    num_parts: int
    percents: Sequence[float]
    starts_list: Sequence[int]
    trials: int
    good_cut: int
    points: List[MultiwayPoint] = field(default_factory=list)

    def point(
        self, regime: str, percent: float, starts: int
    ) -> MultiwayPoint:
        """Look up one point."""
        for p in self.points:
            if (
                p.regime == regime
                and p.percent == percent
                and p.starts == starts
            ):
                return p
        raise KeyError((regime, percent, starts))

    def format_table(self) -> str:
        """Text rendering."""
        lines = [
            f"Multiway ({self.num_parts}-way) difficulty study: "
            f"{self.circuit_name} (good cut = {self.good_cut}, "
            f"{self.trials} trials)"
        ]
        for regime in ("good", "rand"):
            lines.append(f"-- regime: {regime}")
            lines.append(
                f"{'fixed%':>7s} "
                + " ".join(
                    f"{f'raw@{s}':>9s} {f'norm@{s}':>8s} {f'cpu@{s}':>8s}"
                    for s in self.starts_list
                )
            )
            for percent in self.percents:
                row = [f"{percent:>7.1f}"]
                for starts in self.starts_list:
                    p = self.point(regime, percent, starts)
                    row.append(
                        f"{p.raw_cut:>9.1f} {p.normalized_cut:>8.3f} "
                        f"{p.cpu_seconds:>8.3f}"
                    )
                lines.append(" ".join(row))
        return "\n".join(lines)


def _find_good_kway(
    graph: Hypergraph,
    balance: BalanceConstraint,
    starts: int,
    seed: int,
    jobs: int = 1,
    policy=None,
    checkpoint=None,
) -> Tuple[List[int], int]:
    batch = kway_multistart(
        graph, balance, num_starts=starts, seed=seed, jobs=jobs,
        policy=policy, checkpoint=checkpoint,
    )
    best = batch.best()
    return best.parts, best.cut


def run_multiway_study(
    graph: Hypergraph,
    num_parts: int = 4,
    tolerance: float = 0.1,
    circuit_name: str = "circuit",
    percents: Sequence[float] = (0.0, 5.0, 20.0, 40.0),
    starts_list: Sequence[int] = (1, 2, 4),
    trials: int = 3,
    seed: int = 0,
    schedule: FixedVertexSchedule = None,
    jobs: int = 1,
    policy=None,
    journal=None,
) -> MultiwayStudy:
    """Run the multiway difficulty study on one circuit.

    ``jobs > 1`` fans the independent k-way starts of every trial over a
    process pool; cuts are identical to the serial run and the CPU
    column is per-start ``time.process_time``.  ``policy``/``journal``
    opt into the fault-tolerant runtime (``docs/robustness.md``).
    """
    if not starts_list or sorted(starts_list) != list(starts_list):
        raise ValueError("starts_list must be non-empty and ascending")
    balance = relative_balance(graph.total_area, num_parts, tolerance)
    rng = random.Random(seed)
    if schedule is None:
        schedule = make_schedule(graph, seed=rng.getrandbits(32))
    good_parts, good_cut = _find_good_kway(
        graph, balance, starts_list[-1], rng.getrandbits(32), jobs=jobs,
        policy=policy,
        checkpoint=journal.batch("reference") if journal is not None else None,
    )

    study = MultiwayStudy(
        circuit_name=circuit_name,
        num_parts=num_parts,
        percents=tuple(percents),
        starts_list=tuple(starts_list),
        trials=trials,
        good_cut=good_cut,
    )
    rand_fix_seed = rng.getrandbits(32)
    max_starts = starts_list[-1]

    cuts: Dict[Tuple[str, float, int], List[int]] = {}
    secs: Dict[Tuple[str, float, int], List[float]] = {}
    best_seen: Dict[Tuple[str, float], int] = {}
    for regime in ("good", "rand"):
        for percent in percents:
            fixture = regime_fixture(
                regime,
                schedule,
                percent,
                good_solution=good_parts,
                seed=rand_fix_seed,
            )
            # rand regime spreads vertices over all k blocks.
            if regime == "rand":
                fixture = [
                    f
                    if f == -1
                    else random.Random(
                        f"{rand_fix_seed}:{v}:k"
                    ).randrange(num_parts)
                    for v, f in enumerate(fixture)
                ]
            for trial in range(trials):
                start_seeds = [
                    rng.getrandbits(32) for _ in range(max_starts)
                ]
                batch = kway_multistart(
                    graph,
                    balance,
                    fixture=fixture,
                    num_starts=max_starts,
                    seeds=start_seeds,
                    jobs=jobs,
                    policy=policy,
                    checkpoint=(
                        journal.batch(
                            f"multiway:{regime}:{percent}:trial{trial}"
                        )
                        if journal is not None
                        else None
                    ),
                )
                for starts in starts_list:
                    key = (regime, percent, starts)
                    cuts.setdefault(key, []).append(
                        batch.best_of_first(starts).cut
                    )
                    secs.setdefault(key, []).append(
                        batch.cpu_seconds_of_first(starts)
                    )
                seen_key = (regime, percent)
                best = batch.best().cut
                if seen_key not in best_seen or best < best_seen[seen_key]:
                    best_seen[seen_key] = best

    for regime in ("good", "rand"):
        for percent in percents:
            reference = (
                max(1, good_cut)
                if regime == "good"
                else max(1, best_seen[(regime, percent)])
            )
            for starts in starts_list:
                key = (regime, percent, starts)
                raw = sum(cuts[key]) / len(cuts[key])
                study.points.append(
                    MultiwayPoint(
                        regime=regime,
                        percent=percent,
                        starts=starts,
                        raw_cut=raw,
                        normalized_cut=raw / reference,
                        cpu_seconds=sum(secs[key]) / len(secs[key]),
                    )
                )
    return study


def shape_checks(study: MultiwayStudy) -> List[Tuple[str, bool]]:
    """Does the 2-way story survive at k-way?"""
    one = study.starts_list[0]
    many = study.starts_list[-1]
    lo = min(study.percents)
    hi = max(study.percents)
    checks = []
    rand_raw = dict(
        (p.percent, p.raw_cut)
        for p in study.points
        if p.regime == "rand" and p.starts == one
    )
    checks.append(
        (
            f"k-way rand raw cut grows with fixed% "
            f"({rand_raw[lo]:.0f} -> {rand_raw[hi]:.0f})",
            rand_raw[hi] > 1.5 * max(1.0, rand_raw[lo]),
        )
    )
    for regime in ("good", "rand"):
        gap_lo = (
            study.point(regime, lo, one).normalized_cut
            - study.point(regime, lo, many).normalized_cut
        )
        gap_hi = (
            study.point(regime, hi, one).normalized_cut
            - study.point(regime, hi, many).normalized_cut
        )
        checks.append(
            (
                f"k-way {regime}: multistart gap shrinks "
                f"({gap_lo:.3f} -> {gap_hi:.3f})",
                gap_hi <= gap_lo + 0.15,
            )
        )
        cpu_lo = study.point(regime, lo, one).cpu_seconds
        cpu_hi = study.point(regime, hi, one).cpu_seconds
        checks.append(
            (
                f"k-way {regime}: CPU decreases with fixed% "
                f"({cpu_lo:.3f}s -> {cpu_hi:.3f}s)",
                cpu_hi < cpu_lo,
            )
        )
    return checks


PROFILE_SETTINGS = {
    "full": {"circuit": "ibm01s", "trials": 5, "starts": (1, 2, 4, 8)},
    "quick": {"circuit": "quick01", "trials": 2, "starts": (1, 2, 4)},
}


def study_spec(profile: str, seed: int) -> dict:
    """Checkpoint-journal spec (excludes ``jobs``; see figures.py)."""
    return {"experiment": "multiway", "profile": profile, "seed": seed}


def run_multiway(
    profile: str = "quick",
    seed: int = 0,
    jobs: int = 1,
    policy=None,
    journal=None,
) -> MultiwayStudy:
    """Profile wrapper used by the bench harness."""
    if profile not in PROFILE_SETTINGS:
        raise KeyError(f"unknown profile {profile!r}")
    settings = PROFILE_SETTINGS[profile]
    circuit = load_circuit(settings["circuit"])
    return run_multiway_study(
        circuit.graph,
        circuit_name=settings["circuit"],
        trials=settings["trials"],
        starts_list=settings["starts"],
        seed=seed,
        jobs=jobs,
        policy=policy,
        journal=journal,
    )


def main(argv: Sequence[str] = ()) -> None:
    """CLI entry point."""
    args, flags = parse_runtime_flags(list(argv) or sys.argv[1:])
    profile = args[0] if args else "quick"
    jobs = int(args[1]) if len(args) > 1 else 1
    seed = 0
    study = run_multiway(
        profile,
        seed=seed,
        jobs=jobs,
        policy=flags.execution_policy(),
        journal=flags.journal(study_spec(profile, seed)),
    )
    text = study.format_table()
    text += "\n\n" + "\n".join(
        check(label, ok) for label, ok in shape_checks(study)
    )
    emit(text, name=f"multiway_{profile}")


if __name__ == "__main__":
    main()
