"""Experiment: Table I -- Rent's-rule block-size thresholds.

Reproduces the paper's Table I: "block sizes below which the expected
number of fixed vertices due to propagated terminals will exceed a
specified percentage (5%, 10%, or 20%) of the total number of vertices
in a top-down placement when the design has given Rent parameter p",
with k = 3.5 pins per cell.

Run: ``python -m repro.experiments.table1``
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.rent import (
    DEFAULT_PINS_PER_CELL,
    DEFAULT_RENT_PARAMETERS,
    DEFAULT_THRESHOLDS,
    TableOneRow,
    fixed_fraction,
    format_table_one,
    table_one,
)
from repro.experiments.reporting import check, emit


def run_table1(
    rent_exponents: Sequence[float] = DEFAULT_RENT_PARAMETERS,
    thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
    pins_per_cell: float = DEFAULT_PINS_PER_CELL,
) -> List[TableOneRow]:
    """Compute Table I."""
    return table_one(rent_exponents, thresholds, pins_per_cell)


def shape_checks(rows: List[TableOneRow]) -> List[Tuple[str, bool]]:
    """The qualitative claims Table I supports."""
    checks = []
    # Larger Rent exponent => larger threshold block sizes (more
    # terminals per block).
    for col in range(len(rows[0].block_sizes)):
        sizes = [r.block_sizes[col] for r in rows]
        checks.append(
            (
                f"thresholds increase with p (column {col})",
                sizes == sorted(sizes) and len(set(sizes)) == len(sizes),
            )
        )
    # Within a row, a lower fixed-fraction threshold admits larger blocks.
    for row in rows:
        checks.append(
            (
                f"5% threshold > 10% > 20% at p={row.rent_exponent}",
                row.block_sizes[0] > row.block_sizes[1] > row.block_sizes[2],
            )
        )
    # The paper's motivating claim: at p ~ 0.68 even multi-thousand-cell
    # blocks have >= 20% of their vertices fixed.
    p68 = next(r for r in rows if abs(r.rent_exponent - 0.68) < 1e-9)
    checks.append(
        ("at p=0.68, blocks below ~3.8k cells are >=20% fixed",
         3000 <= p68.block_sizes[2] <= 5000)
    )
    # Threshold sizes are exact: the fraction at the reported size is
    # >= the threshold and at twice the size it is below it.
    exact = all(
        fixed_fraction(row.block_sizes[i], row.rent_exponent) >= f
        and fixed_fraction(2 * row.block_sizes[i] + 2, row.rent_exponent) < f
        for row in rows
        for i, f in enumerate(DEFAULT_THRESHOLDS)
    )
    checks.append(("closed-form thresholds verified numerically", exact))
    return checks


def main() -> None:
    """CLI entry point."""
    rows = run_table1()
    text = format_table_one(rows)
    text += "\n\n" + "\n".join(
        check(label, ok) for label, ok in shape_checks(rows)
    )
    emit(text, name="table1")


if __name__ == "__main__":
    main()
