"""Experiment: Table II -- LIFO-FM pass statistics vs fixed terminals.

Reproduces "average number of passes per run and average percentage of
nodes moved per pass (excluding the first pass), for 50 runs of
LIFO-FM" -- extended with the best-prefix position and wasted-move
percentage that carry the paper's actual conclusion ("increasingly
higher percentages of the moves in the FM passes are wasted as the
proportion of fixed terminals increases").

Run: ``python -m repro.experiments.table2 [full|quick]``
"""

from __future__ import annotations

import sys
from typing import Dict, List, Sequence, Tuple

from repro.core.pass_stats import PassStatsStudy, run_pass_stats_study
from repro.experiments.circuits import load_instance
from repro.experiments.reporting import check, emit, parse_runtime_flags

PERCENTS = (0.0, 10.0, 20.0, 30.0)

PROFILE_SETTINGS = {
    "full": {"circuits": ("ibm01s", "ibm03s"), "runs": 50},
    "quick": {"circuits": ("quick01",), "runs": 10},
}


def study_spec(profile: str, seed: int) -> dict:
    """Checkpoint-journal spec (excludes ``jobs``; see figures.py)."""
    return {"experiment": "table2", "profile": profile, "seed": seed}


def run_table2(
    profile: str = "quick",
    seed: int = 0,
    jobs: int = 1,
    policy=None,
    journal=None,
) -> Dict[str, PassStatsStudy]:
    """Run the pass-statistics study for the profile's circuits.

    ``policy``/``journal`` opt into the fault-tolerant runtime; each
    circuit gets its own journal namespace so the shared journal file
    cannot mix their cells.
    """
    if profile not in PROFILE_SETTINGS:
        raise KeyError(f"unknown profile {profile!r}")
    settings = PROFILE_SETTINGS[profile]
    studies = {}
    for name in settings["circuits"]:
        circuit, balance = load_instance(name)
        studies[name] = run_pass_stats_study(
            circuit.graph,
            balance,
            circuit_name=name,
            percents=PERCENTS,
            runs=settings["runs"],
            seed=seed,
            jobs=jobs,
            exec_policy=policy,
            journal=journal.namespace(name) if journal is not None else None,
        )
    return studies


def shape_checks(study: PassStatsStudy) -> List[Tuple[str, bool]]:
    """The paper's qualitative claims about Table II."""
    rows = sorted(study.rows, key=lambda r: r.percent)
    lo, hi = rows[0], rows[-1]
    checks = [
        (
            f"{study.circuit_name}: wasted-move% grows with fixed% "
            f"({lo.avg_wasted_percent:.1f} -> {hi.avg_wasted_percent:.1f})",
            hi.avg_wasted_percent > lo.avg_wasted_percent,
        ),
        (
            f"{study.circuit_name}: best prefix moves toward pass start "
            f"({lo.avg_best_prefix_percent:.1f}% -> "
            f"{hi.avg_best_prefix_percent:.1f}%)",
            hi.avg_best_prefix_percent < lo.avg_best_prefix_percent,
        ),
        (
            f"{study.circuit_name}: most of every pass is moved "
            "(full passes, classic FM)",
            all(r.avg_moved_percent > 50.0 for r in rows),
        ),
        (
            f"{study.circuit_name}: passes per run stays moderate",
            all(1.0 <= r.avg_passes_per_run <= 30.0 for r in rows),
        ),
    ]
    return checks


def main(argv: Sequence[str] = ()) -> None:
    """CLI entry point."""
    args, flags = parse_runtime_flags(list(argv) or sys.argv[1:])
    profile = args[0] if args else "quick"
    jobs = int(args[1]) if len(args) > 1 else 1
    seed = 0
    studies = run_table2(
        profile,
        seed=seed,
        jobs=jobs,
        policy=flags.execution_policy(),
        journal=flags.journal(study_spec(profile, seed)),
    )
    blocks = []
    for study in studies.values():
        block = study.format_table()
        block += "\n" + "\n".join(
            check(label, ok) for label, ok in shape_checks(study)
        )
        blocks.append(block)
    emit("\n\n".join(blocks), name=f"table2_{profile}")


if __name__ == "__main__":
    main()
