"""Experiment: Table IV -- parameters of placement-derived benchmarks.

Reproduces the benchmark-construction pipeline of Section IV: place each
circuit with the top-down placer, carve the A..D block series, derive
vertical- and horizontal-cutline instances with propagated terminals,
and tabulate cells / pads (terminal vertices) / nets / external nets /
Max% per instance.

Run: ``python -m repro.experiments.table4 [full|quick]``
"""

from __future__ import annotations

import sys
from typing import List, Sequence, Tuple

from repro.experiments.circuits import load_circuit
from repro.experiments.reporting import check, emit
from repro.placement.suite import BenchmarkSuite, build_suite, format_table

PROFILE_SETTINGS = {
    "full": ("ibm01s", "ibm02s", "ibm03s"),
    "quick": ("quick01",),
}


def run_table4(profile: str = "quick", seed: int = 0) -> List[BenchmarkSuite]:
    """Place the profile's circuits and derive their benchmark suites."""
    if profile not in PROFILE_SETTINGS:
        raise KeyError(f"unknown profile {profile!r}")
    suites = []
    for name in PROFILE_SETTINGS[profile]:
        circuit = load_circuit(name)
        suites.append(build_suite(circuit, name, seed=seed))
    return suites


def shape_checks(suites: List[BenchmarkSuite]) -> List[Tuple[str, bool]]:
    """The properties Section IV claims of the derived instances."""
    checks: List[Tuple[str, bool]] = []
    for suite in suites:
        rows = suite.table_rows()
        # The paper observes its construction makes more pad vertices
        # than external nets.  Our synthetic netlists have heavier net
        # multiplicity across block boundaries (one outside cell can
        # carry several external nets), so the counts are *comparable*
        # rather than strictly ordered; within a factor of two both ways.
        checks.append(
            (
                f"{suite.circuit_name}: pad vertices comparable to "
                "external nets on every instance",
                all(
                    0.5 * r.num_external_nets
                    <= r.num_terminals
                    <= 4.0 * max(1, r.num_external_nets)
                    for r in rows
                ),
            )
        )
        # Deeper blocks carry a higher fixed fraction (the Rent's-rule
        # mechanism of Table I).
        by_level = {}
        for entry in suite.entries:
            level = len(entry.path)
            frac = entry.parameters.num_terminals / (
                entry.parameters.num_terminals + entry.parameters.num_cells
            )
            by_level.setdefault(level, []).append(frac)
        levels = sorted(by_level)
        if len(levels) >= 2:
            first = sum(by_level[levels[0]]) / len(by_level[levels[0]])
            last = sum(by_level[levels[-1]]) / len(by_level[levels[-1]])
            checks.append(
                (
                    f"{suite.circuit_name}: fixed fraction grows with "
                    f"block depth ({first:.2%} at L{levels[0]} -> "
                    f"{last:.2%} at L{levels[-1]})",
                    last > first,
                )
            )
        # Terminal counts correspond "reasonably" to Table I's Rent
        # estimate: within a loose factor band of k * C^p.
        for entry in suite.entries:
            cells = entry.parameters.num_cells
            ext = entry.parameters.num_external_nets
            rent_terms = 3.5 * cells**0.68
            checks.append(
                (
                    f"{entry.instance.name}: external nets within "
                    f"[T/20, 2T] of the Rent estimate "
                    f"({ext} vs T={rent_terms:.0f})",
                    rent_terms / 20.0 <= ext <= 2.0 * rent_terms,
                )
            )
        # Every instance's fixture only pins the terminals.
        checks.append(
            (
                f"{suite.circuit_name}: exactly the terminals are fixed",
                all(
                    entry.instance.num_fixed
                    == entry.parameters.num_terminals
                    for entry in suite.entries
                ),
            )
        )
    return checks


def main(argv: Sequence[str] = ()) -> None:
    """CLI entry point."""
    args = list(argv) or sys.argv[1:]
    profile = args[0] if args else "quick"
    suites = run_table4(profile)
    text = format_table([s for s in suites])
    text += "\n\n" + "\n".join(
        check(label, ok) for label, ok in shape_checks(suites)
    )
    emit(text, name=f"table4_{profile}")


if __name__ == "__main__":
    main()
