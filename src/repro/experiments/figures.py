"""Experiment: Figures 1 and 2 -- instance difficulty vs fixed terminals.

Each figure is one circuit (Fig. 1: IBM01, Fig. 2: IBM03 -- here their
synthetic analogues) and six plots: {raw cut, normalized cut, CPU time}
x {good, rand}, with traces for 1/2/4/8 starts of the multilevel
partitioner against the percentage of fixed vertices.

Profiles trade fidelity for wall-clock time:

* ``full``  -- ibm01s/ibm03s circuits, the paper's 12 percentages,
  1/2/4/8 starts, 5 trials (the paper used 50);
* ``quick`` -- smaller stand-in circuits, 6 percentages, 1/2/4 starts,
  2 trials; used by the pytest-benchmark harness.

Run: ``python -m repro.experiments.figures [fig1|fig2] [full|quick]``
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.difficulty import (
    DifficultyStudy,
    format_study,
    run_difficulty_study,
)
from repro.experiments.circuits import load_instance
from repro.experiments.reporting import check, emit, parse_runtime_flags


@dataclass(frozen=True)
class FigureProfile:
    """One fidelity level of the figure experiment."""

    circuit: str
    percents: Sequence[float]
    starts_list: Sequence[int]
    trials: int


PROFILES = {
    ("fig1", "full"): FigureProfile(
        circuit="ibm01s",
        percents=(0.0, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 15.0, 20.0, 30.0,
                  40.0, 50.0),
        starts_list=(1, 2, 4, 8),
        trials=5,
    ),
    ("fig2", "full"): FigureProfile(
        circuit="ibm03s",
        percents=(0.0, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 15.0, 20.0, 30.0,
                  40.0, 50.0),
        starts_list=(1, 2, 4, 8),
        trials=5,
    ),
    ("fig1", "quick"): FigureProfile(
        circuit="quick01",
        percents=(0.0, 2.0, 5.0, 10.0, 20.0, 40.0),
        starts_list=(1, 2, 4),
        trials=2,
    ),
    ("fig2", "quick"): FigureProfile(
        circuit="quick03",
        percents=(0.0, 2.0, 5.0, 10.0, 20.0, 40.0),
        starts_list=(1, 2, 4),
        trials=2,
    ),
}


def study_spec(
    figure: str, profile: str, seed: int
) -> dict:
    """The checkpoint-journal spec of one figure invocation.

    Excludes ``jobs`` (and the runtime flags themselves) on purpose: a
    killed sweep may resume under a different pool size and still has to
    be the same study.
    """
    return {
        "experiment": "figures",
        "figure": figure,
        "profile": profile,
        "seed": seed,
    }


def run_figure(
    figure: str = "fig1",
    profile: str = "quick",
    seed: int = 0,
    jobs: int = 1,
    policy=None,
    journal=None,
) -> DifficultyStudy:
    """Run one figure's difficulty study.

    ``jobs > 1`` fans every batch's starts over a process pool; the
    study is identical to a serial run (CPU columns are per-start
    ``time.process_time``, so they do not depend on the pool size).
    ``policy``/``journal`` opt into the fault-tolerant runtime
    (``docs/robustness.md``).
    """
    key = (figure, profile)
    if key not in PROFILES:
        raise KeyError(f"unknown figure/profile {key}")
    spec = PROFILES[key]
    circuit, balance = load_instance(spec.circuit)
    return run_difficulty_study(
        circuit.graph,
        balance,
        circuit_name=spec.circuit,
        percents=spec.percents,
        starts_list=spec.starts_list,
        trials=spec.trials,
        seed=seed,
        jobs=jobs,
        policy=policy,
        journal=journal,
    )


def shape_checks(study: DifficultyStudy) -> List[Tuple[str, bool]]:
    """The paper's qualitative observations about Figs. 1-2."""
    starts = study.starts_list
    one = starts[0]
    many = starts[-1]
    lo = min(study.percents)
    hi = max(study.percents)
    checks: List[Tuple[str, bool]] = []

    # Raw rand-regime cost rises steeply with the fixed percentage.
    rand_raw = dict(study.trace("rand", one, "raw_cut"))
    checks.append(
        (
            "rand raw cut grows strongly with fixed% "
            f"({rand_raw[lo]:.0f} -> {rand_raw[hi]:.0f})",
            rand_raw[hi] > 3.0 * max(1.0, rand_raw[lo]),
        )
    )

    # Multistart gap (1 start vs max starts, normalized) shrinks as the
    # fixed percentage grows, in both regimes.  The good regime's gap is
    # small in absolute terms, so a noise band is allowed (the paper
    # averaged 50 trials; quick profiles average 2).
    for regime in ("good", "rand"):
        n_one = dict(study.trace(regime, one, "normalized_cut"))
        n_many = dict(study.trace(regime, many, "normalized_cut"))
        gap_lo = n_one[lo] - n_many[lo]
        gap_hi = n_one[hi] - n_many[hi]
        tolerance = 0.15 if study.trials < 10 else 0.02
        checks.append(
            (
                f"{regime}: multistart gap shrinks "
                f"({gap_lo:.3f} -> {gap_hi:.3f})",
                gap_hi <= gap_lo + tolerance,
            )
        )

    # With >= 20% fixed, a single start is already near the best seen
    # (the paper: "essentially solvable to very high quality in one or
    # two starts").  "Near" is ratio-based with an absolute slack so
    # instances whose reference cut is tiny (good cuts of ~8 on the
    # quick circuits) don't fail on a handful of extra cut nets.
    high_percents = [p for p in study.percents if p >= 20.0]
    for regime in ("good", "rand"):
        norm = dict(study.trace(regime, one, "normalized_cut"))
        raw = dict(study.trace(regime, one, "raw_cut"))
        near = all(
            norm[p] <= 1.6 or raw[p] <= raw[p] / norm[p] + 8.0
            for p in high_percents
        )
        checks.append(
            (f"{regime}: 1 start near-best at >=20% fixed", near)
        )

    # Per-start runtime decreases substantially as fixed% grows.
    for regime in ("good", "rand"):
        cpu = dict(study.trace(regime, one, "cpu_seconds"))
        checks.append(
            (
                f"{regime}: CPU decreases with fixed% "
                f"({cpu[lo]:.3f}s -> {cpu[hi]:.3f}s)",
                cpu[hi] < cpu[lo],
            )
        )
    return checks


def main(argv: Sequence[str] = ()) -> None:
    """CLI entry point."""
    args, flags = parse_runtime_flags(list(argv) or sys.argv[1:])
    figure = args[0] if args else "fig1"
    profile = args[1] if len(args) > 1 else "quick"
    jobs = int(args[2]) if len(args) > 2 else 1
    seed = 0
    study = run_figure(
        figure,
        profile,
        seed=seed,
        jobs=jobs,
        policy=flags.execution_policy(),
        journal=flags.journal(study_spec(figure, profile, seed)),
    )
    text = format_study(study)
    text += "\n\n" + "\n".join(
        check(label, ok) for label, ok in shape_checks(study)
    )
    emit(text, name=f"{figure}_{profile}")


if __name__ == "__main__":
    main()
