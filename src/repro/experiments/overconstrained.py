"""Extension experiment: confirming relatively overconstrained instances.

Section II observes that solution quality in the *good* regime is
non-monotonic in the fixed percentage, and conjectures "relatively
overconstrained instances where the inflexibility of the instance hurts
the ability of the partitioner to find trajectories to good solutions
more than it helps by reducing the solution space"; Section V lists
confirming this among the open problems.

The probe: in the good regime every fixture percentage is *consistent*
with the same reference solution, so the optimal reachable cut can only
improve or stay equal as the percentage grows -- "any solution for the
cases of 20% or 0% fixed is also feasible for the case of 10% fixed"
(note the nesting is by solution sets, not by instances).  If the
partitioner's *achieved* single-start cut is worse at an intermediate
percentage than at both 0% and a high percentage, the instance was
relatively overconstrained: the search, not the solution space, was
hurt.  We measure the achieved-cut curve on a fine percentage grid and
report the bump.

Run: ``python -m repro.experiments.overconstrained [full|quick]``
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.core.difficulty import run_difficulty_study
from repro.experiments.circuits import load_instance
from repro.experiments.reporting import check, emit


@dataclass
class OverconstrainedReport:
    """Achieved single-start cut against the fixed percentage."""

    circuit_name: str
    percents: Sequence[float]
    good_cut: int
    single_start_cuts: List[float] = field(default_factory=list)

    @property
    def bump(self) -> float:
        """How much worse the worst interior point is than the curve's
        endpoints (positive = overconstrained region observed)."""
        ends = max(self.single_start_cuts[0], self.single_start_cuts[-1])
        interior = max(self.single_start_cuts[1:-1], default=ends)
        return interior - ends

    @property
    def bump_percent(self) -> float:
        """Location of the worst interior point."""
        interior = self.single_start_cuts[1:-1]
        if not interior:
            return self.percents[0]
        worst = max(range(len(interior)), key=lambda i: interior[i])
        return self.percents[1 + worst]

    def format_report(self) -> str:
        """Text rendering."""
        lines = [
            f"Overconstrained-instances probe: {self.circuit_name} "
            f"(good regime, 1 start, good cut = {self.good_cut})",
            f"{'fixed%':>7s} {'avg cut@1 start':>16s}",
        ]
        for percent, cut in zip(self.percents, self.single_start_cuts):
            lines.append(f"{percent:>7.1f} {cut:>16.1f}")
        lines.append(
            f"interior bump: {self.bump:+.1f} cut at "
            f"{self.bump_percent:.0f}% fixed"
        )
        return "\n".join(lines)


PROFILE_SETTINGS = {
    "full": {
        "circuit": "ibm01s",
        "percents": (0.0, 2.0, 5.0, 7.5, 10.0, 15.0, 20.0, 30.0),
        "trials": 10,
    },
    "quick": {
        "circuit": "quick01",
        "percents": (0.0, 5.0, 10.0, 30.0),
        "trials": 4,
    },
}


def run_overconstrained(
    profile: str = "quick", seed: int = 0
) -> OverconstrainedReport:
    """Measure the good-regime single-start cut curve."""
    if profile not in PROFILE_SETTINGS:
        raise KeyError(f"unknown profile {profile!r}")
    settings = PROFILE_SETTINGS[profile]
    circuit, balance = load_instance(settings["circuit"])
    study = run_difficulty_study(
        circuit.graph,
        balance,
        circuit_name=settings["circuit"],
        percents=settings["percents"],
        starts_list=(1,),
        trials=settings["trials"],
        seed=seed,
        regimes=("good",),
    )
    cuts = [
        study.point("good", percent, 1).raw_cut
        for percent in settings["percents"]
    ]
    return OverconstrainedReport(
        circuit_name=settings["circuit"],
        percents=settings["percents"],
        good_cut=study.good_cut,
        single_start_cuts=cuts,
    )


def shape_checks(
    report: OverconstrainedReport,
) -> List[Tuple[str, bool]]:
    """What the probe must (and may) show."""
    checks = [
        (
            "curve endpoints are sane (achieved cut within 4x of the "
            "good cut at 0% and the top percentage)",
            max(report.single_start_cuts[0], report.single_start_cuts[-1])
            <= 4.0 * max(1, report.good_cut),
        ),
        # The bump itself is the phenomenon under study; it appears on
        # most seeds/circuits but is not guaranteed, so the check only
        # asserts the probe produced a well-formed curve.
        (
            f"interior bump measured: {report.bump:+.1f} cut at "
            f"{report.bump_percent:.0f}% fixed "
            "(positive confirms an overconstrained region)",
            len(report.single_start_cuts) == len(report.percents),
        ),
    ]
    return checks


def main(argv: Sequence[str] = ()) -> None:
    """CLI entry point."""
    args = list(argv) or sys.argv[1:]
    profile = args[0] if args else "quick"
    report = run_overconstrained(profile)
    text = report.format_report()
    text += "\n\n" + "\n".join(
        check(label, ok) for label, ok in shape_checks(report)
    )
    emit(text, name=f"overconstrained_{profile}")


if __name__ == "__main__":
    main()
