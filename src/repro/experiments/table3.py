"""Experiment: Table III -- effects of pass cutoffs on LIFO-FM.

Reproduces "effects of cutting off all passes (after the first pass) at
the given move limit during LIFO-FM partitioning ... data is expressed
as average cut (average CPU time)": cutoffs at 50/25/10/5% of the moves
against the uncut baseline, across fixed percentages.

Run: ``python -m repro.experiments.table3 [full|quick]``
"""

from __future__ import annotations

import sys
from typing import Dict, List, Sequence, Tuple

from repro.core.cutoff import PAPER_CUTOFFS, CutoffStudy, run_cutoff_study
from repro.experiments.circuits import load_instance
from repro.experiments.reporting import check, emit, parse_runtime_flags

PERCENTS = (0.0, 10.0, 20.0, 30.0)

PROFILE_SETTINGS = {
    "full": {
        "circuits": ("ibm01s", "ibm03s"),
        "runs": 20,
        "cutoffs": PAPER_CUTOFFS,
    },
    "quick": {
        "circuits": ("quick01",),
        "runs": 6,
        "cutoffs": (1.0, 0.25, 0.05),
    },
}


def study_spec(profile: str, seed: int) -> dict:
    """Checkpoint-journal spec (excludes ``jobs``; see figures.py)."""
    return {"experiment": "table3", "profile": profile, "seed": seed}


def run_table3(
    profile: str = "quick",
    seed: int = 0,
    jobs: int = 1,
    policy=None,
    journal=None,
) -> Dict[str, CutoffStudy]:
    """Run the cutoff study for the profile's circuits.

    ``policy``/``journal`` opt into the fault-tolerant runtime; each
    circuit gets its own journal namespace.
    """
    if profile not in PROFILE_SETTINGS:
        raise KeyError(f"unknown profile {profile!r}")
    settings = PROFILE_SETTINGS[profile]
    studies = {}
    for name in settings["circuits"]:
        circuit, balance = load_instance(name)
        studies[name] = run_cutoff_study(
            circuit.graph,
            balance,
            circuit_name=name,
            percents=PERCENTS,
            cutoffs=settings["cutoffs"],
            runs=settings["runs"],
            seed=seed,
            jobs=jobs,
            exec_policy=policy,
            journal=journal.namespace(name) if journal is not None else None,
        )
    return studies


def shape_checks(study: CutoffStudy) -> List[Tuple[str, bool]]:
    """The paper's qualitative claims about Table III."""
    name = study.circuit_name
    baseline = max(study.cutoffs)
    tightest = min(study.cutoffs)
    lo_pct = min(study.percents)
    hi_pct = max(study.percents)

    base_lo = study.cell(lo_pct, baseline)
    tight_lo = study.cell(lo_pct, tightest)
    base_hi = study.cell(hi_pct, baseline)
    tight_hi = study.cell(hi_pct, tightest)

    degradation_lo = tight_lo.avg_cut / max(1.0, base_lo.avg_cut)
    degradation_hi = tight_hi.avg_cut / max(1.0, base_hi.avg_cut)

    checks = [
        (
            f"{name}: tight cutoff degrades cut without terminals "
            f"(x{degradation_lo:.2f} at {lo_pct:.0f}% fixed)",
            degradation_lo > 1.10,
        ),
        (
            f"{name}: cutoff is much safer with terminals "
            f"(x{degradation_hi:.2f} at {hi_pct:.0f}% vs "
            f"x{degradation_lo:.2f} at {lo_pct:.0f}%)",
            degradation_hi < degradation_lo,
        ),
        (
            f"{name}: cutoffs always reduce runtime "
            f"({base_hi.avg_seconds:.3f}s -> {tight_hi.avg_seconds:.3f}s)",
            all(
                study.cell(p, tightest).avg_seconds
                < study.cell(p, baseline).avg_seconds
                for p in study.percents
            ),
        ),
        (
            f"{name}: cutoffs reduce total moves monotonically",
            all(
                study.cell(p, c1).avg_moves >= study.cell(p, c2).avg_moves
                for p in study.percents
                for c1, c2 in zip(
                    sorted(study.cutoffs, reverse=True),
                    sorted(study.cutoffs, reverse=True)[1:],
                )
            ),
        ),
    ]
    return checks


def main(argv: Sequence[str] = ()) -> None:
    """CLI entry point."""
    args, flags = parse_runtime_flags(list(argv) or sys.argv[1:])
    profile = args[0] if args else "quick"
    jobs = int(args[1]) if len(args) > 1 else 1
    seed = 0
    studies = run_table3(
        profile,
        seed=seed,
        jobs=jobs,
        policy=flags.execution_policy(),
        journal=flags.journal(study_spec(profile, seed)),
    )
    blocks = []
    for study in studies.values():
        block = study.format_table()
        block += "\n" + "\n".join(
            check(label, ok) for label, ok in shape_checks(study)
        )
        blocks.append(block)
    emit("\n\n".join(blocks), name=f"table3_{profile}")


if __name__ == "__main__":
    main()
