"""Core hypergraph data structure.

A :class:`Hypergraph` stores a set of weighted vertices (cells, pads) and
weighted hyperedges (nets).  Pin membership is kept in CSR (compressed
sparse row) form in both directions -- nets-to-vertices and
vertices-to-nets -- so that iteration over the pins of a net, or over the
nets incident to a vertex, is an O(degree) slice with no per-edge object
overhead.  This matters: the FM inner loop touches these arrays millions
of times.

The structure is immutable after construction.  Mutating workflows
(clustering, contraction) produce *new* hypergraphs via
:mod:`repro.hypergraph.contraction`.

Storage is :mod:`array`-module typed buffers rather than Python lists:
a pin costs 8 bytes instead of a boxed ``int`` reference, and the whole
structure round-trips through :meth:`Hypergraph.to_buffers` /
:meth:`Hypergraph.from_buffers` as a handful of flat machine-typed
blobs.  That round trip is also the pickle path (see ``__reduce__``),
which keeps process-pool fan-out in :mod:`repro.runtime` cheap: workers
receive compact buffers and skip all construction-time validation.
"""

from __future__ import annotations

from array import array
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

_INDEX_TYPECODE = "q"
_FLOAT_TYPECODE = "d"


class HypergraphError(ValueError):
    """Raised for structurally invalid hypergraph constructions."""


class Hypergraph:
    """A weighted hypergraph with per-vertex areas and per-net weights.

    Parameters
    ----------
    nets:
        Iterable of pin lists; ``nets[e]`` is the sequence of vertex ids
        belonging to net ``e``.  Vertex ids must lie in ``[0, num_vertices)``.
    num_vertices:
        Total number of vertices.  May exceed the largest id referenced by
        any net (isolated vertices are legal and common: pads whose nets
        were filtered, spare cells, ...).
    areas:
        Optional per-vertex area (primary balance resource).  Defaults to
        unit areas.  Zero areas are legal and used for terminals.
    net_weights:
        Optional per-net integer weight.  Defaults to 1.  FM gain buckets
        require integer weights.
    vertex_names / net_names:
        Optional identifiers carried through I/O round trips.
    extra_resources:
        Optional list of additional per-vertex resource vectors for
        multi-balanced partitioning (each a length-``num_vertices``
        sequence), e.g. pin count or power per cell.
    """

    __slots__ = (
        "_num_vertices",
        "_num_nets",
        "_net_ptr",
        "_net_pins",
        "_vtx_ptr",
        "_vtx_nets",
        "_areas",
        "_net_weights",
        "_vertex_names",
        "_net_names",
        "_extra_resources",
        "_total_area",
        "_csr_lists",
        "_match_tables",
    )

    def __init__(
        self,
        nets: Iterable[Sequence[int]],
        num_vertices: int,
        areas: Optional[Sequence[float]] = None,
        net_weights: Optional[Sequence[int]] = None,
        vertex_names: Optional[Sequence[str]] = None,
        net_names: Optional[Sequence[str]] = None,
        extra_resources: Optional[Sequence[Sequence[float]]] = None,
    ) -> None:
        if num_vertices < 0:
            raise HypergraphError("num_vertices must be non-negative")
        net_list = [list(pins) for pins in nets]
        self._num_vertices = num_vertices
        self._num_nets = len(net_list)

        net_ptr = [0] * (self._num_nets + 1)
        total_pins = 0
        for e, pins in enumerate(net_list):
            seen = set()
            for v in pins:
                if not 0 <= v < num_vertices:
                    raise HypergraphError(
                        f"net {e} references vertex {v} outside "
                        f"[0, {num_vertices})"
                    )
                if v in seen:
                    raise HypergraphError(
                        f"net {e} contains duplicate pin on vertex {v}"
                    )
                seen.add(v)
            total_pins += len(pins)
            net_ptr[e + 1] = total_pins
        net_pins: List[int] = [0] * total_pins
        pos = 0
        for pins in net_list:
            for v in pins:
                net_pins[pos] = v
                pos += 1

        # Build the transposed (vertex -> nets) CSR by counting sort.
        vtx_ptr = [0] * (num_vertices + 1)
        for v in net_pins:
            vtx_ptr[v + 1] += 1
        for i in range(num_vertices):
            vtx_ptr[i + 1] += vtx_ptr[i]
        vtx_nets = [0] * total_pins
        cursor = list(vtx_ptr)
        for e in range(self._num_nets):
            for k in range(net_ptr[e], net_ptr[e + 1]):
                v = net_pins[k]
                vtx_nets[cursor[v]] = e
                cursor[v] += 1

        self._net_ptr = array(_INDEX_TYPECODE, net_ptr)
        self._net_pins = array(_INDEX_TYPECODE, net_pins)
        self._vtx_ptr = array(_INDEX_TYPECODE, vtx_ptr)
        self._vtx_nets = array(_INDEX_TYPECODE, vtx_nets)

        if areas is None:
            self._areas = array(_FLOAT_TYPECODE, [1.0]) * num_vertices
        else:
            if len(areas) != num_vertices:
                raise HypergraphError(
                    f"areas has length {len(areas)}, expected {num_vertices}"
                )
            self._areas = array(_FLOAT_TYPECODE, (float(a) for a in areas))
            for v, a in enumerate(self._areas):
                if a < 0:
                    raise HypergraphError(f"vertex {v} has negative area {a}")

        if net_weights is None:
            self._net_weights = array(_INDEX_TYPECODE, [1]) * self._num_nets
        else:
            if len(net_weights) != self._num_nets:
                raise HypergraphError(
                    f"net_weights has length {len(net_weights)}, "
                    f"expected {self._num_nets}"
                )
            self._net_weights = array(
                _INDEX_TYPECODE, (int(w) for w in net_weights)
            )
            for e, w in enumerate(self._net_weights):
                if w < 0:
                    raise HypergraphError(f"net {e} has negative weight {w}")

        if vertex_names is not None and len(vertex_names) != num_vertices:
            raise HypergraphError("vertex_names length mismatch")
        if net_names is not None and len(net_names) != self._num_nets:
            raise HypergraphError("net_names length mismatch")
        self._vertex_names = list(vertex_names) if vertex_names else None
        self._net_names = list(net_names) if net_names else None

        if extra_resources is not None:
            checked = []
            for r, vec in enumerate(extra_resources):
                if len(vec) != num_vertices:
                    raise HypergraphError(
                        f"extra resource {r} has length {len(vec)}, "
                        f"expected {num_vertices}"
                    )
                checked.append(
                    array(_FLOAT_TYPECODE, (float(x) for x in vec))
                )
            self._extra_resources: Optional[List[array]] = checked
        else:
            self._extra_resources = None

        self._total_area = sum(self._areas)
        self._csr_lists: Optional[Tuple[List, ...]] = None
        # Derived per-net scoring tables, lazily built and cached by the
        # matching kernels (multi-start drivers re-match the same graph
        # once per start); see repro.partition.matching._net_tables.
        self._match_tables: Optional[Dict] = None

    # ------------------------------------------------------------------
    # Sizes
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices (cells + terminals)."""
        return self._num_vertices

    @property
    def num_nets(self) -> int:
        """Number of hyperedges."""
        return self._num_nets

    @property
    def num_pins(self) -> int:
        """Total number of (net, vertex) incidences."""
        return self._net_ptr[-1] if self._num_nets else 0

    @property
    def total_area(self) -> float:
        """Sum of all vertex areas."""
        return self._total_area

    @property
    def num_resources(self) -> int:
        """Number of balance resources (1 primary + extras)."""
        extras = len(self._extra_resources) if self._extra_resources else 0
        return 1 + extras

    # ------------------------------------------------------------------
    # Pin access
    # ------------------------------------------------------------------
    def net_pins(self, net: int) -> List[int]:
        """Vertices on ``net`` (a fresh list; safe to mutate)."""
        return self._net_pins[
            self._net_ptr[net] : self._net_ptr[net + 1]
        ].tolist()

    def vertex_nets(self, vertex: int) -> List[int]:
        """Nets incident to ``vertex`` (a fresh list; safe to mutate)."""
        return self._vtx_nets[
            self._vtx_ptr[vertex] : self._vtx_ptr[vertex + 1]
        ].tolist()

    def net_size(self, net: int) -> int:
        """Number of pins on ``net``."""
        return self._net_ptr[net + 1] - self._net_ptr[net]

    def vertex_degree(self, vertex: int) -> int:
        """Number of nets incident to ``vertex``."""
        return self._vtx_ptr[vertex + 1] - self._vtx_ptr[vertex]

    def nets(self) -> Iterator[Sequence[int]]:
        """Iterate over pin lists of all nets."""
        for e in range(self._num_nets):
            yield self.net_pins(e)

    # ------------------------------------------------------------------
    # Weights
    # ------------------------------------------------------------------
    def area(self, vertex: int) -> float:
        """Area (primary resource) of ``vertex``."""
        return self._areas[vertex]

    @property
    def areas(self) -> Sequence[float]:
        """All vertex areas (do not mutate)."""
        return self._areas

    def net_weight(self, net: int) -> int:
        """Integer weight of ``net``."""
        return self._net_weights[net]

    @property
    def net_weights(self) -> Sequence[int]:
        """All net weights (do not mutate)."""
        return self._net_weights

    def resource(self, vertex: int, index: int) -> float:
        """Value of balance resource ``index`` for ``vertex``.

        Resource 0 is area; indices >= 1 address ``extra_resources``.
        """
        if index == 0:
            return self._areas[vertex]
        if self._extra_resources is None or index - 1 >= len(
            self._extra_resources
        ):
            raise IndexError(f"no such resource: {index}")
        return self._extra_resources[index - 1][vertex]

    def resource_vector(self, index: int) -> Sequence[float]:
        """Per-vertex values of balance resource ``index``."""
        if index == 0:
            return self._areas
        if self._extra_resources is None or index - 1 >= len(
            self._extra_resources
        ):
            raise IndexError(f"no such resource: {index}")
        return self._extra_resources[index - 1]

    # ------------------------------------------------------------------
    # Names
    # ------------------------------------------------------------------
    def vertex_name(self, vertex: int) -> str:
        """Symbolic name of ``vertex`` (defaults to ``v<i>``)."""
        if self._vertex_names is not None:
            return self._vertex_names[vertex]
        return f"v{vertex}"

    def net_name(self, net: int) -> str:
        """Symbolic name of ``net`` (defaults to ``n<i>``)."""
        if self._net_names is not None:
            return self._net_names[net]
        return f"n{net}"

    @property
    def has_names(self) -> bool:
        """True when explicit vertex names were supplied."""
        return self._vertex_names is not None

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def neighbors(self, vertex: int) -> List[int]:
        """Distinct vertices sharing at least one net with ``vertex``."""
        seen = {vertex}
        out: List[int] = []
        for e in self.vertex_nets(vertex):
            for u in self.net_pins(e):
                if u not in seen:
                    seen.add(u)
                    out.append(u)
        return out

    def average_net_size(self) -> float:
        """Mean pins per net (0.0 for a netless hypergraph)."""
        if self._num_nets == 0:
            return 0.0
        return self.num_pins / self._num_nets

    def average_degree(self) -> float:
        """Mean nets per vertex (0.0 for an empty hypergraph)."""
        if self._num_vertices == 0:
            return 0.0
        return self.num_pins / self._num_vertices

    def __repr__(self) -> str:
        return (
            f"Hypergraph(num_vertices={self._num_vertices}, "
            f"num_nets={self._num_nets}, num_pins={self.num_pins})"
        )

    # ------------------------------------------------------------------
    # Equality (structural; used mainly by tests and I/O round trips)
    # ------------------------------------------------------------------
    def structurally_equal(self, other: "Hypergraph") -> bool:
        """Compare vertex/net counts, pin structure, areas and weights."""
        if (
            self._num_vertices != other._num_vertices
            or self._num_nets != other._num_nets
        ):
            return False
        if self._net_ptr != other._net_ptr:
            return False
        for e in range(self._num_nets):
            if sorted(self.net_pins(e)) != sorted(other.net_pins(e)):
                return False
        if self._areas != other._areas:
            return False
        if self._net_weights != other._net_weights:
            return False
        return True

    # ------------------------------------------------------------------
    # Flat-buffer round trip (serialization / process fan-out)
    # ------------------------------------------------------------------
    def to_buffers(self) -> Dict[str, Any]:
        """Flat-buffer view of the hypergraph.

        Returns a dict of typed :class:`array.array` buffers plus the
        scalar metadata needed to rebuild the structure without any
        revalidation.  The buffers are the live internal arrays, *not*
        copies -- callers must treat them as read-only, exactly like
        the hypergraph itself.
        """
        return {
            "num_vertices": self._num_vertices,
            "net_ptr": self._net_ptr,
            "net_pins": self._net_pins,
            "vtx_ptr": self._vtx_ptr,
            "vtx_nets": self._vtx_nets,
            "areas": self._areas,
            "net_weights": self._net_weights,
            "vertex_names": self._vertex_names,
            "net_names": self._net_names,
            "extra_resources": self._extra_resources,
        }

    def csr_lists(self) -> Tuple[List, ...]:
        """Plain-list views of the CSR buffers, built once and cached.

        Returns ``(net_ptr, net_pins, vtx_ptr, vtx_nets, net_weights,
        areas)`` as Python lists.  List indexing returns existing objects
        (small-int cache, shared floats) where :class:`array.array`
        indexing must box a fresh one per access, which is what the
        coarsening kernels' inner loops are bound by.  The lists are
        cached on the instance; callers must treat them as read-only,
        exactly like the hypergraph itself.
        """
        lists = self._csr_lists
        if lists is None:
            lists = (
                self._net_ptr.tolist(),
                self._net_pins.tolist(),
                self._vtx_ptr.tolist(),
                self._vtx_nets.tolist(),
                self._net_weights.tolist(),
                self._areas.tolist(),
            )
            self._csr_lists = lists
        return lists

    @classmethod
    def from_buffers(cls, buffers: Dict[str, Any]) -> "Hypergraph":
        """Rebuild a hypergraph from :meth:`to_buffers` output.

        This is the fast path used by pickling and the process-pool
        runtime: consistency of the CSR arrays is checked only at the
        shape level (pointer lengths and pin-count agreement), not per
        element -- buffers are trusted to come from ``to_buffers``.
        """
        graph = cls.__new__(cls)
        num_vertices = int(buffers["num_vertices"])
        net_ptr = _as_array(_INDEX_TYPECODE, buffers["net_ptr"])
        net_pins = _as_array(_INDEX_TYPECODE, buffers["net_pins"])
        vtx_ptr = _as_array(_INDEX_TYPECODE, buffers["vtx_ptr"])
        vtx_nets = _as_array(_INDEX_TYPECODE, buffers["vtx_nets"])
        areas = _as_array(_FLOAT_TYPECODE, buffers["areas"])
        net_weights = _as_array(_INDEX_TYPECODE, buffers["net_weights"])
        num_nets = len(net_ptr) - 1
        if num_vertices < 0 or num_nets < 0:
            raise HypergraphError("corrupt buffers: negative sizes")
        if len(vtx_ptr) != num_vertices + 1:
            raise HypergraphError("corrupt buffers: vtx_ptr length")
        total_pins = net_ptr[-1] if num_nets else 0
        if len(net_pins) != total_pins or len(vtx_nets) != total_pins:
            raise HypergraphError("corrupt buffers: pin-count mismatch")
        if len(areas) != num_vertices or len(net_weights) != num_nets:
            raise HypergraphError("corrupt buffers: weight lengths")
        graph._num_vertices = num_vertices
        graph._num_nets = num_nets
        graph._net_ptr = net_ptr
        graph._net_pins = net_pins
        graph._vtx_ptr = vtx_ptr
        graph._vtx_nets = vtx_nets
        graph._areas = areas
        graph._net_weights = net_weights
        vertex_names = buffers.get("vertex_names")
        net_names = buffers.get("net_names")
        graph._vertex_names = list(vertex_names) if vertex_names else None
        graph._net_names = list(net_names) if net_names else None
        extras = buffers.get("extra_resources")
        if extras is not None:
            graph._extra_resources = [
                _as_array(_FLOAT_TYPECODE, vec) for vec in extras
            ]
        else:
            graph._extra_resources = None
        graph._total_area = sum(graph._areas)
        graph._csr_lists = None
        graph._match_tables = None
        return graph

    def __reduce__(self):
        return (Hypergraph.from_buffers, (self.to_buffers(),))


def _as_array(typecode: str, values: Any) -> array:
    """Coerce ``values`` to an :class:`array.array` of ``typecode``."""
    if isinstance(values, array) and values.typecode == typecode:
        return values
    return array(typecode, values)


def vertex_induced_subhypergraph(
    graph: Hypergraph, vertices: Sequence[int]
) -> Tuple[Hypergraph, List[int]]:
    """Restrict ``graph`` to ``vertices``.

    Nets are kept if they have at least two pins inside the subset (nets
    with fewer pins cannot contribute to any cut).  Returns the
    sub-hypergraph and the mapping from new vertex ids to original ids.
    """
    order = list(vertices)
    index = {v: i for i, v in enumerate(order)}
    if len(index) != len(order):
        raise HypergraphError("duplicate vertices in subset")
    new_nets: List[List[int]] = []
    new_weights: List[int] = []
    new_names: List[str] = []
    for e in range(graph.num_nets):
        pins = [index[v] for v in graph.net_pins(e) if v in index]
        if len(pins) >= 2:
            new_nets.append(pins)
            new_weights.append(graph.net_weight(e))
            new_names.append(graph.net_name(e))
    sub = Hypergraph(
        new_nets,
        num_vertices=len(order),
        areas=[graph.area(v) for v in order],
        net_weights=new_weights,
        vertex_names=[graph.vertex_name(v) for v in order],
        net_names=new_names,
    )
    return sub, order
