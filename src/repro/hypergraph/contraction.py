"""Vertex clustering / contraction.

Contraction maps each fine vertex to a cluster id and produces the coarse
hypergraph whose vertices are the clusters.  Nets collapse accordingly:
pins inside one cluster merge; nets left with a single pin disappear;
parallel nets (identical coarse pin sets) are merged by summing weights.
This is the workhorse of the multilevel partitioner and of the
terminal-clustering equivalence transform from Section V of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hypergraph.hypergraph import Hypergraph, HypergraphError


@dataclass(frozen=True)
class Contraction:
    """Result of :func:`contract`.

    ``coarse``            the contracted hypergraph;
    ``fine_to_coarse``    cluster id of every fine vertex;
    ``coarse_to_fine``    member fine vertices of every cluster.
    """

    coarse: Hypergraph
    fine_to_coarse: List[int]
    coarse_to_fine: List[List[int]]

    def project_partition(self, coarse_parts: Sequence[int]) -> List[int]:
        """Lift a coarse partition vector back to fine vertices."""
        return [coarse_parts[c] for c in self.fine_to_coarse]


def contract(
    graph: Hypergraph,
    clusters: Sequence[int],
    merge_parallel_nets: bool = True,
) -> Contraction:
    """Contract ``graph`` according to the cluster vector ``clusters``.

    ``clusters[v]`` is the cluster id of fine vertex ``v``; ids must form
    a contiguous range ``0..k-1``.  Cluster areas are the sums of member
    areas.  Nets reduced to fewer than two distinct clusters are dropped
    (they can never be cut).  With ``merge_parallel_nets`` (the default,
    and what heavy-edge coarsening relies on), nets with identical coarse
    pin sets merge into one net whose weight is the sum.
    """
    n = graph.num_vertices
    if len(clusters) != n:
        raise HypergraphError(
            f"cluster vector has length {len(clusters)}, expected {n}"
        )
    if n == 0:
        return Contraction(Hypergraph([], 0), [], [])
    k = max(clusters) + 1
    seen = [False] * k
    for c in clusters:
        if not 0 <= c < k:
            raise HypergraphError(f"cluster id {c} out of range")
        seen[c] = True
    if not all(seen):
        missing = seen.index(False)
        raise HypergraphError(
            f"cluster ids must be contiguous; id {missing} is unused"
        )

    coarse_to_fine: List[List[int]] = [[] for _ in range(k)]
    for v, c in enumerate(clusters):
        coarse_to_fine[c].append(v)
    areas = [0.0] * k
    for v, c in enumerate(clusters):
        areas[c] += graph.area(v)

    coarse_nets: List[Tuple[int, ...]] = []
    coarse_weights: List[int] = []
    index_of: Dict[Tuple[int, ...], int] = {}
    for e in range(graph.num_nets):
        coarse_pins = sorted({clusters[v] for v in graph.net_pins(e)})
        if len(coarse_pins) < 2:
            continue
        key = tuple(coarse_pins)
        w = graph.net_weight(e)
        if merge_parallel_nets:
            slot = index_of.get(key)
            if slot is not None:
                coarse_weights[slot] += w
                continue
            index_of[key] = len(coarse_nets)
        coarse_nets.append(key)
        coarse_weights.append(w)

    coarse = Hypergraph(
        coarse_nets,
        num_vertices=k,
        areas=areas,
        net_weights=coarse_weights,
    )
    return Contraction(
        coarse=coarse,
        fine_to_coarse=list(clusters),
        coarse_to_fine=coarse_to_fine,
    )


def normalize_clusters(raw: Sequence[Optional[int]]) -> List[int]:
    """Compact an arbitrary labelling into contiguous cluster ids.

    ``None`` entries become singleton clusters.  Useful for matching-based
    coarseners that label only matched vertices.
    """
    remap: Dict[int, int] = {}
    out: List[int] = []
    next_id = 0
    for label in raw:
        if label is None:
            out.append(next_id)
            next_id += 1
            continue
        if label not in remap:
            remap[label] = next_id
            next_id += 1
        out.append(remap[label])
    # Labels shared between entries must still be shared after remapping,
    # which the dict guarantees; contiguity holds by construction.
    return out
