"""Vertex clustering / contraction.

Contraction maps each fine vertex to a cluster id and produces the coarse
hypergraph whose vertices are the clusters.  Nets collapse accordingly:
pins inside one cluster merge; nets left with a single pin disappear;
parallel nets (identical coarse pin sets) are merged by summing weights.
This is the workhorse of the multilevel partitioner and of the
terminal-clustering equivalence transform from Section V of the paper.

Kernel layout
-------------

:func:`contract` is a flat-buffer kernel.  It iterates the fine graph's
CSR through the cached plain-list views (:meth:`Hypergraph.csr_lists`),
dedups the pins of each net through a per-cluster stamp array (one
generation per net, no set objects), dedups *parallel* nets by hashing
each sorted coarse pin span exactly once, and writes the coarse
``net_ptr``/``net_pins``/areas/weights straight into :mod:`array`-module
typed buffers.  The coarse
:class:`Hypergraph` is assembled via :meth:`Hypergraph.from_buffers`,
which skips all per-pin construction-time validation -- the kernel
builds both CSR directions itself with the same counting sort the
validating constructor uses.

The kernel's contract is strict: the coarse graph is **bit-identical**
to the one produced by the retained reference implementation in
:mod:`repro.hypergraph.contraction_reference` -- same net order (first
occurrence of each distinct coarse pin set), same sorted pin lists, same
summed integer weights, same float areas accumulated in the same order,
same CSR buffers.  ``tests/partition/test_coarsening_differential.py``
enforces this and ``benchmarks/coarsening.py`` measures the speedup.

``coarse_to_fine`` is materialized lazily: the multilevel refinement
path only ever reads ``fine_to_coarse`` (projection), so the member
lists are built on first access instead of at every level.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Sequence

from repro.hypergraph.hypergraph import Hypergraph, HypergraphError
from repro.runtime.observe import recorder as _observe


class Contraction:
    """Result of :func:`contract`.

    ``coarse``            the contracted hypergraph;
    ``fine_to_coarse``    cluster id of every fine vertex;
    ``coarse_to_fine``    member fine vertices of every cluster
                          (materialized lazily on first access).
    """

    __slots__ = ("coarse", "fine_to_coarse", "_coarse_to_fine")

    def __init__(
        self,
        coarse: Hypergraph,
        fine_to_coarse: List[int],
        coarse_to_fine: Optional[List[List[int]]] = None,
    ) -> None:
        self.coarse = coarse
        self.fine_to_coarse = fine_to_coarse
        self._coarse_to_fine = coarse_to_fine

    @property
    def coarse_to_fine(self) -> List[List[int]]:
        """Member fine vertices of every cluster (built on first use)."""
        if self._coarse_to_fine is None:
            members: List[List[int]] = [
                [] for _ in range(self.coarse.num_vertices)
            ]
            for v, c in enumerate(self.fine_to_coarse):
                members[c].append(v)
            self._coarse_to_fine = members
        return self._coarse_to_fine

    def project_partition(self, coarse_parts: Sequence[int]) -> List[int]:
        """Lift a coarse partition vector back to fine vertices."""
        return [coarse_parts[c] for c in self.fine_to_coarse]

    def __repr__(self) -> str:
        return (
            f"Contraction(fine={len(self.fine_to_coarse)}, "
            f"coarse={self.coarse.num_vertices})"
        )


def contract(
    graph: Hypergraph,
    clusters: Sequence[int],
    merge_parallel_nets: bool = True,
) -> Contraction:
    """Contract ``graph`` according to the cluster vector ``clusters``.

    ``clusters[v]`` is the cluster id of fine vertex ``v``; ids must form
    a contiguous range ``0..k-1``.  Cluster areas are the sums of member
    areas.  Nets reduced to fewer than two distinct clusters are dropped
    (they can never be cut).  With ``merge_parallel_nets`` (the default,
    and what heavy-edge coarsening relies on), nets with identical coarse
    pin sets merge into one net whose weight is the sum.
    """
    n = graph.num_vertices
    if len(clusters) != n:
        raise HypergraphError(
            f"cluster vector has length {len(clusters)}, expected {n}"
        )
    if n == 0:
        return Contraction(Hypergraph([], 0), [], [])
    cl = clusters if isinstance(clusters, list) else list(clusters)
    k = max(cl) + 1
    # Validate at C speed (min/set are single passes); the slow loops
    # below only run to name the offending id in the error message.
    if min(cl) < 0:
        for c in cl:
            if c < 0:
                raise HypergraphError(f"cluster id {c} out of range")
    distinct = set(cl)
    if len(distinct) != k:
        seen = bytearray(k)
        for c in cl:
            seen[c] = 1
        missing = seen.index(0)
        raise HypergraphError(
            f"cluster ids must be contiguous; id {missing} is unused"
        )

    # Cluster areas, accumulated in fine-vertex order -- the same float
    # addition sequence as the reference, so the sums are bit-identical.
    net_ptr, net_pins, _, _, fine_weights, fine_areas = graph.csr_lists()
    areas = [0.0] * k
    for c, a in zip(cl, fine_areas):
        areas[c] += a
    cl_get = cl.__getitem__

    # Coarse nets straight into CSR form (plain lists while building --
    # list indexing returns cached objects where array indexing boxes --
    # converted to typed buffers in one C pass at the end).  Two- and
    # three-pin nets (the bulk of circuit netlists, and an ever larger
    # share at coarse levels, where vertices merge faster than nets
    # shrink) take branches that dedup and sort by direct comparisons,
    # with no stamp work; larger nets dedup their pins through a stamp
    # array (one fresh mark per deduping net).  Parallel-net dedup
    # hashes each surviving sorted pin tuple once, via a single
    # ``setdefault`` probe.
    stamp = [0] * k
    coarse_ptr: List[int] = [0]
    coarse_pins: List[int] = []
    coarse_weights: List[int] = []
    index_of: Dict[tuple, int] = {}
    pins: List[int] = []
    pins_append = pins.append
    coarse_pins_extend = coarse_pins.extend
    coarse_ptr_append = coarse_ptr.append
    coarse_weights_append = coarse_weights.append
    claim_slot = index_of.setdefault
    mark = 0
    lo = 0
    for hi, w in zip(net_ptr[1:], fine_weights):
        size = hi - lo
        if size == 2:
            a = cl[net_pins[lo]]
            b = cl[net_pins[lo + 1]]
            if a == b:
                lo = hi
                continue
            key = (a, b) if a < b else (b, a)
        elif size == 3:
            a = cl[net_pins[lo]]
            b = cl[net_pins[lo + 1]]
            c = cl[net_pins[lo + 2]]
            if a == b:
                if b == c:
                    lo = hi
                    continue
                key = (a, c) if a < c else (c, a)
            elif a == c or b == c:
                key = (a, b) if a < b else (b, a)
            else:
                if a > b:
                    a, b = b, a
                if b > c:
                    b, c = c, b
                if a > b:
                    a, b = b, a
                key = (a, b, c)
        else:
            mark += 1
            del pins[:]
            for c in map(cl_get, net_pins[lo:hi]):
                if stamp[c] != mark:
                    stamp[c] = mark
                    pins_append(c)
            if len(pins) < 2:
                lo = hi
                continue
            pins.sort()
            key = tuple(pins)
        lo = hi
        if merge_parallel_nets:
            idx = len(coarse_weights)
            slot = claim_slot(key, idx)
            if slot != idx:
                coarse_weights[slot] += w
                continue
        coarse_pins_extend(key)
        coarse_ptr_append(len(coarse_pins))
        coarse_weights_append(w)

    # Transposed (vertex -> nets) CSR by the same counting sort the
    # validating Hypergraph constructor runs.
    num_coarse_nets = len(coarse_weights)
    total_pins = len(coarse_pins)
    vtx_ptr = [0] * (k + 1)
    for c in coarse_pins:
        vtx_ptr[c + 1] += 1
    for i in range(k):
        vtx_ptr[i + 1] += vtx_ptr[i]
    vtx_nets = [0] * total_pins
    cursor = list(vtx_ptr)
    lo = 0
    for e, hi in enumerate(coarse_ptr[1:]):
        for c in coarse_pins[lo:hi]:
            vtx_nets[cursor[c]] = e
            cursor[c] += 1
        lo = hi

    coarse = Hypergraph.from_buffers(
        {
            "num_vertices": k,
            "net_ptr": array("q", coarse_ptr),
            "net_pins": array("q", coarse_pins),
            "vtx_ptr": array("q", vtx_ptr),
            "vtx_nets": array("q", vtx_nets),
            "areas": array("d", areas),
            "net_weights": array("q", coarse_weights),
            "vertex_names": None,
            "net_names": None,
            "extra_resources": None,
        }
    )
    # The plain lists built above ARE the coarse graph's csr_lists();
    # seeding the cache saves the tolist() round trip every downstream
    # kernel (next-level matching, the next contract) would otherwise
    # pay.  Consumers treat the views as read-only.
    coarse._csr_lists = (
        coarse_ptr,
        coarse_pins,
        vtx_ptr,
        vtx_nets,
        coarse_weights,
        areas,
    )
    rec = _observe.active()
    if rec.enabled:
        rec.count("contract.calls")
        rec.count("contract.vertices_removed", n - k)
        rec.count("contract.nets_dropped", graph.num_nets - num_coarse_nets)
        rec.count("contract.pins_dropped", len(net_pins) - total_pins)
    return Contraction(coarse=coarse, fine_to_coarse=list(clusters))


def normalize_clusters(raw: Sequence[Optional[int]]) -> List[int]:
    """Compact an arbitrary labelling into contiguous cluster ids.

    ``None`` entries become singleton clusters.  Useful for matching-based
    coarseners that label only matched vertices.
    """
    remap: Dict[int, int] = {}
    out: List[int] = []
    next_id = 0
    for label in raw:
        if label is None:
            out.append(next_id)
            next_id += 1
            continue
        if label not in remap:
            remap[label] = next_id
            next_id += 1
        out.append(remap[label])
    # Labels shared between entries must still be shared after remapping,
    # which the dict guarantees; contiguity holds by construction.
    return out
