"""Incremental construction of hypergraphs.

:class:`HypergraphBuilder` lets callers add named vertices and nets one at
a time -- the natural shape for netlist parsers and generators -- and then
freeze everything into an immutable :class:`~repro.hypergraph.Hypergraph`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.hypergraph.hypergraph import Hypergraph, HypergraphError


class HypergraphBuilder:
    """Accumulates vertices and nets, then builds a :class:`Hypergraph`."""

    def __init__(self) -> None:
        self._vertex_ids: Dict[str, int] = {}
        self._vertex_names: List[str] = []
        self._areas: List[float] = []
        self._nets: List[List[int]] = []
        self._net_weights: List[int] = []
        self._net_names: List[str] = []

    # ------------------------------------------------------------------
    def add_vertex(self, name: Optional[str] = None, area: float = 1.0) -> int:
        """Add one vertex; returns its id.

        Names must be unique.  When ``name`` is omitted a ``v<i>`` name is
        assigned.
        """
        vid = len(self._vertex_names)
        if name is None:
            name = f"v{vid}"
        if name in self._vertex_ids:
            raise HypergraphError(f"duplicate vertex name: {name!r}")
        if area < 0:
            raise HypergraphError(f"negative area for vertex {name!r}")
        self._vertex_ids[name] = vid
        self._vertex_names.append(name)
        self._areas.append(float(area))
        return vid

    def add_net(
        self,
        pins: Sequence[int],
        weight: int = 1,
        name: Optional[str] = None,
    ) -> int:
        """Add one net over vertex ids ``pins``; returns the net id.

        Duplicate pins are silently deduplicated (netlist formats often
        list a cell twice when two of its pins attach to the same net).
        """
        seen = set()
        unique: List[int] = []
        for v in pins:
            if not 0 <= v < len(self._vertex_names):
                raise HypergraphError(f"net pin references unknown vertex {v}")
            if v not in seen:
                seen.add(v)
                unique.append(v)
        eid = len(self._nets)
        self._nets.append(unique)
        self._net_weights.append(int(weight))
        self._net_names.append(name if name is not None else f"n{eid}")
        return eid

    def add_net_by_names(
        self,
        pin_names: Sequence[str],
        weight: int = 1,
        name: Optional[str] = None,
        create_missing: bool = False,
    ) -> int:
        """Add a net given vertex *names*.

        With ``create_missing`` unknown names are added as unit-area
        vertices, which suits single-pass netlist parsers.
        """
        pins: List[int] = []
        for pname in pin_names:
            if pname not in self._vertex_ids:
                if not create_missing:
                    raise HypergraphError(f"unknown vertex name: {pname!r}")
                self.add_vertex(pname)
            pins.append(self._vertex_ids[pname])
        return self.add_net(pins, weight=weight, name=name)

    # ------------------------------------------------------------------
    def vertex_id(self, name: str) -> int:
        """Id of the vertex called ``name``."""
        return self._vertex_ids[name]

    def has_vertex(self, name: str) -> bool:
        """Whether a vertex called ``name`` exists."""
        return name in self._vertex_ids

    def set_area(self, vertex: int, area: float) -> None:
        """Overwrite the area of an existing vertex (for two-file formats
        where areas arrive after connectivity)."""
        if area < 0:
            raise HypergraphError("negative area")
        self._areas[vertex] = float(area)

    @property
    def num_vertices(self) -> int:
        """Vertices added so far."""
        return len(self._vertex_names)

    @property
    def num_nets(self) -> int:
        """Nets added so far."""
        return len(self._nets)

    # ------------------------------------------------------------------
    def build(self) -> Hypergraph:
        """Freeze into an immutable :class:`Hypergraph`."""
        return Hypergraph(
            self._nets,
            num_vertices=len(self._vertex_names),
            areas=self._areas,
            net_weights=self._net_weights,
            vertex_names=self._vertex_names,
            net_names=self._net_names,
        )
