"""Hypergraph substrate: data structure, builders, statistics, generators."""

from repro.hypergraph.builder import HypergraphBuilder
from repro.hypergraph.contraction import Contraction, contract, normalize_clusters
from repro.hypergraph.contraction_reference import (
    contract as reference_contract,
)
from repro.hypergraph.generators import (
    CircuitSpec,
    SyntheticCircuit,
    chain_hypergraph,
    clustered_hypergraph,
    generate_circuit,
    grid_hypergraph,
    random_k_uniform,
)
from repro.hypergraph.hypergraph import (
    Hypergraph,
    HypergraphError,
    vertex_induced_subhypergraph,
)
from repro.hypergraph.stats import (
    HypergraphStats,
    compute_stats,
    external_nets,
    pins_per_cell,
    rent_exponent_estimate,
)
from repro.hypergraph.validate import ValidationReport, validate_hypergraph

__all__ = [
    "CircuitSpec",
    "Contraction",
    "Hypergraph",
    "HypergraphBuilder",
    "HypergraphError",
    "HypergraphStats",
    "SyntheticCircuit",
    "ValidationReport",
    "chain_hypergraph",
    "clustered_hypergraph",
    "compute_stats",
    "contract",
    "external_nets",
    "generate_circuit",
    "grid_hypergraph",
    "normalize_clusters",
    "pins_per_cell",
    "random_k_uniform",
    "reference_contract",
    "rent_exponent_estimate",
    "validate_hypergraph",
    "vertex_induced_subhypergraph",
]
