"""Reference (pre-kernel) contraction, kept verbatim.

This is the straightforward dict-and-tuple implementation of
:func:`repro.hypergraph.contraction.contract` that shipped before the
flat-buffer kernel rewrite: per-net coarse pin sets via ``sorted(set)``,
parallel-net dedup through a ``Dict[Tuple[int, ...], int]``, and a full
validating :class:`Hypergraph` construction for the coarse graph.

It exists for the same two reasons as :mod:`repro.partition.fm_reference`:

* **Differential testing.**  The kernel promises *bit-identical* coarse
  graphs: same net order, same sorted pin lists, same summed weights and
  float areas, same CSR buffers.
  ``tests/partition/test_coarsening_differential.py`` asserts exactly
  that over random instances.
* **Benchmarking.**  ``benchmarks/coarsening.py`` measures the kernel's
  speedup against this baseline and gates its exit status on identity.

Do not optimize this module.  Its value is that it stays simple enough
to be obviously correct; the kernel is the one allowed to be clever.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.hypergraph.contraction import Contraction
from repro.hypergraph.hypergraph import Hypergraph, HypergraphError


def contract(
    graph: Hypergraph,
    clusters: Sequence[int],
    merge_parallel_nets: bool = True,
) -> Contraction:
    """Contract ``graph`` according to the cluster vector ``clusters``.

    ``clusters[v]`` is the cluster id of fine vertex ``v``; ids must form
    a contiguous range ``0..k-1``.  Cluster areas are the sums of member
    areas.  Nets reduced to fewer than two distinct clusters are dropped
    (they can never be cut).  With ``merge_parallel_nets`` (the default,
    and what heavy-edge coarsening relies on), nets with identical coarse
    pin sets merge into one net whose weight is the sum.
    """
    n = graph.num_vertices
    if len(clusters) != n:
        raise HypergraphError(
            f"cluster vector has length {len(clusters)}, expected {n}"
        )
    if n == 0:
        return Contraction(Hypergraph([], 0), [], [])
    k = max(clusters) + 1
    seen = [False] * k
    for c in clusters:
        if not 0 <= c < k:
            raise HypergraphError(f"cluster id {c} out of range")
        seen[c] = True
    if not all(seen):
        missing = seen.index(False)
        raise HypergraphError(
            f"cluster ids must be contiguous; id {missing} is unused"
        )

    coarse_to_fine: List[List[int]] = [[] for _ in range(k)]
    for v, c in enumerate(clusters):
        coarse_to_fine[c].append(v)
    areas = [0.0] * k
    for v, c in enumerate(clusters):
        areas[c] += graph.area(v)

    coarse_nets: List[Tuple[int, ...]] = []
    coarse_weights: List[int] = []
    index_of: Dict[Tuple[int, ...], int] = {}
    for e in range(graph.num_nets):
        coarse_pins = sorted({clusters[v] for v in graph.net_pins(e)})
        if len(coarse_pins) < 2:
            continue
        key = tuple(coarse_pins)
        w = graph.net_weight(e)
        if merge_parallel_nets:
            slot = index_of.get(key)
            if slot is not None:
                coarse_weights[slot] += w
                continue
            index_of[key] = len(coarse_nets)
        coarse_nets.append(key)
        coarse_weights.append(w)

    coarse = Hypergraph(
        coarse_nets,
        num_vertices=k,
        areas=areas,
        net_weights=coarse_weights,
    )
    return Contraction(
        coarse=coarse,
        fine_to_coarse=list(clusters),
        coarse_to_fine=coarse_to_fine,
    )
