"""Synthetic hypergraph generators.

The ISPD-98 IBM netlists used by the paper are not redistributable, so the
experiments in this repository run on synthetic circuits generated to
match the statistics the paper's phenomena depend on:

* average pins per cell ``k`` around 3.5 (Rent's rule constant);
* a net-size distribution dominated by 2- and 3-pin nets with a short
  geometric tail (as in real standard-cell netlists);
* locality -- nets connect cells that are close in a linear layout order,
  with a Pareto-distributed span.  Tighter locality yields a lower Rent
  exponent; the default is tuned to land near the paper's ``p ~ 0.68``;
* skewed cell areas including a few very large cells ("there are often
  individual cells that occupy several percent of the total area");
* a small population of zero-area pad vertices on the periphery.

Smaller utility generators (random k-uniform, grids, clustered cliques,
chains) support unit tests for coarsening and FM.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.hypergraph.hypergraph import Hypergraph


@dataclass(frozen=True)
class CircuitSpec:
    """Parameters of a synthetic circuit.

    ``locality`` is the Pareto shape of net spans: larger values produce
    more local nets, hence a lower Rent exponent.  ``dimensions``
    selects the layout model the spans live in: 2 (default) samples net
    windows on a ``sqrt(n) x sqrt(n)`` cell grid, giving the
    boundary-scaling min-cuts of real standard-cell netlists; 1 uses
    windows over the linear cell order (a chain-of-clusters structure
    with very small cuts, useful for isolating locality effects).
    ``num_pads=None`` applies the heuristic
    ``round(2.2 * sqrt(num_cells))`` that matches the pad counts of the
    ISPD-98 circuits (e.g. IBM01 has 12752 cells and 246 pads).
    """

    num_cells: int
    pins_per_cell: float = 3.5
    net_size_cap: int = 12
    locality: float = 1.6
    dimensions: int = 2
    num_pads: Optional[int] = None
    num_large_cells: int = 4
    large_cell_area_percent: float = 2.0
    min_cell_area: int = 1
    max_cell_area: int = 8
    name: str = "synthetic"

    def __post_init__(self) -> None:
        if self.dimensions not in (1, 2):
            raise ValueError("dimensions must be 1 or 2")

    def resolved_num_pads(self) -> int:
        """Pad count after applying the default heuristic."""
        if self.num_pads is not None:
            return self.num_pads
        return max(8, round(2.2 * self.num_cells**0.5))


@dataclass(frozen=True)
class SyntheticCircuit:
    """A generated circuit: hypergraph plus pad bookkeeping.

    Vertices ``0..num_cells-1`` are cells (positive area); the remaining
    vertices are zero-area pads.  ``order`` is the layout order used
    during generation, exposed so the placement substrate can seed its
    geometry consistently.
    """

    graph: Hypergraph
    spec: CircuitSpec
    pad_vertices: List[int] = field(default_factory=list)

    @property
    def num_cells(self) -> int:
        """Number of movable, positive-area cells."""
        return self.spec.num_cells

    @property
    def cell_vertices(self) -> range:
        """Ids of the cell vertices."""
        return range(self.spec.num_cells)

    def is_pad(self, vertex: int) -> bool:
        """Whether ``vertex`` is a pad."""
        return vertex >= self.spec.num_cells


def _sample_net_size(rng: random.Random, cap: int) -> int:
    """Net size: 2 w.p. 0.55, 3 w.p. 0.22, then a geometric tail."""
    u = rng.random()
    if u < 0.55:
        return 2
    if u < 0.77:
        return 3
    size = 4
    while size < cap and rng.random() < 0.45:
        size += 1
    return size


def _sample_span(
    rng: random.Random, locality: float, n: int, minimum_span: float = 4.0
) -> int:
    """Pareto-distributed net span in layout units."""
    u = rng.random()
    span = minimum_span * (1.0 - u) ** (-1.0 / locality)
    return min(n, max(int(minimum_span), int(span)))


def _sample_net_pins_1d(
    rng: random.Random, n: int, size: int, locality: float
) -> Optional[list]:
    """Pins within a window of the linear cell order."""
    span = _sample_span(rng, locality, n)
    center = rng.randrange(n)
    lo = max(0, center - span)
    hi = min(n, center + span + 1)
    if hi - lo < size:
        lo = max(0, hi - size)
    if hi - lo < size:
        return None
    return rng.sample(range(lo, hi), size)


def _sample_net_pins_2d(
    rng: random.Random, n: int, width: int, size: int, locality: float
) -> Optional[list]:
    """Pins within a square window of the cell grid.

    Cells sit at row-major positions on a ``width``-wide grid (the last
    row may be partial); the window is clipped to the grid and pins are
    drawn without replacement from the valid cells inside it.
    """
    span = _sample_span(rng, locality, width, minimum_span=2.0)
    center = rng.randrange(n)
    cx, cy = center % width, center // width
    rows = (n + width - 1) // width
    x0, x1 = max(0, cx - span), min(width - 1, cx + span)
    y0, y1 = max(0, cy - span), min(rows - 1, cy + span)
    pins = set()
    attempts = 0
    max_attempts = 8 * size + 16
    while len(pins) < size and attempts < max_attempts:
        attempts += 1
        x = rng.randint(x0, x1)
        y = rng.randint(y0, y1)
        idx = y * width + x
        if idx < n:
            pins.add(idx)
    if len(pins) < size:
        return None
    return list(pins)


def _perimeter_anchor(i: int, num_pads: int, width: int, n: int) -> int:
    """Cell index nearest the i-th of ``num_pads`` evenly spaced
    positions around the cell grid's perimeter."""
    rows = (n + width - 1) // width
    perimeter = 2 * (width + rows)
    d = (i + 0.5) * perimeter / num_pads
    if d < width:
        x, y = int(d), 0
    elif d < width + rows:
        x, y = width - 1, int(d - width)
    elif d < 2 * width + rows:
        x, y = width - 1 - int(d - width - rows), rows - 1
    else:
        x, y = 0, rows - 1 - int(d - 2 * width - rows)
    x = min(max(x, 0), width - 1)
    y = min(max(y, 0), rows - 1)
    return min(n - 1, y * width + x)


def _cells_near(
    rng: random.Random, anchor: int, n: int, width: int, count: int
) -> List[int]:
    """Up to ``count`` distinct cells in a small window around
    ``anchor`` on the cell grid."""
    rows = (n + width - 1) // width
    cx, cy = anchor % width, anchor // width
    radius = 4
    x0, x1 = max(0, cx - radius), min(width - 1, cx + radius)
    y0, y1 = max(0, cy - radius), min(rows - 1, cy + radius)
    pins = set()
    for _ in range(16 * count):
        x = rng.randint(x0, x1)
        y = rng.randint(y0, y1)
        idx = y * width + x
        if idx < n:
            pins.add(idx)
            if len(pins) == count:
                break
    if not pins:
        pins.add(anchor)
    return list(pins)


def generate_circuit(
    spec: CircuitSpec, seed: int = 0
) -> SyntheticCircuit:
    """Generate a synthetic circuit according to ``spec``.

    Deterministic for a given ``(spec, seed)`` pair.
    """
    if spec.num_cells < 2:
        raise ValueError("need at least two cells")
    if spec.pins_per_cell <= 2.0:
        raise ValueError("pins_per_cell must exceed 2.0 to form nets")
    rng = random.Random(seed)
    n = spec.num_cells
    num_pads = spec.resolved_num_pads()

    # --- cell areas -------------------------------------------------
    areas = [
        float(rng.randint(spec.min_cell_area, spec.max_cell_area))
        for _ in range(n)
    ]
    if spec.num_large_cells > 0 and spec.large_cell_area_percent > 0:
        frac = spec.large_cell_area_percent / 100.0
        if spec.num_large_cells * frac >= 0.5:
            raise ValueError("large cells would dominate total area")
        large = rng.sample(range(n), min(spec.num_large_cells, n))
        total_small = sum(
            a for v, a in enumerate(areas) if v not in set(large)
        )
        total_final = total_small / (1.0 - len(large) * frac)
        for v in large:
            areas[v] = frac * total_final
    areas.extend([0.0] * num_pads)  # pads are zero-area

    # --- internal nets ----------------------------------------------
    width = max(2, math.isqrt(n))
    pin_budget = int(spec.pins_per_cell * n)
    nets: List[List[int]] = []
    pins_used = 0
    while pins_used < pin_budget:
        size = _sample_net_size(rng, spec.net_size_cap)
        if spec.dimensions == 2:
            pins = _sample_net_pins_2d(rng, n, width, size, spec.locality)
        else:
            pins = _sample_net_pins_1d(rng, n, size, spec.locality)
        if pins is None:
            continue
        nets.append(pins)
        pins_used += size

    # --- pad nets ----------------------------------------------------
    pad_vertices = list(range(n, n + num_pads))
    for i, pad in enumerate(pad_vertices):
        # Anchor pads evenly along the periphery (2-D) or through the
        # layout order (1-D) so the pad ring touches the whole die.
        if spec.dimensions == 2:
            anchor = _perimeter_anchor(i, num_pads, width, n)
        else:
            anchor = int((i + 0.5) * n / num_pads)
        fanout = rng.randint(1, 3)
        if spec.dimensions == 2:
            cells = _cells_near(rng, anchor, n, width, fanout)
        else:
            lo = max(0, anchor - 16)
            hi = min(n, anchor + 17)
            cells = rng.sample(range(lo, hi), min(fanout, hi - lo))
        nets.append([pad] + cells)

    graph = Hypergraph(
        nets,
        num_vertices=n + num_pads,
        areas=areas,
        vertex_names=(
            [f"c{i}" for i in range(n)]
            + [f"p{i}" for i in range(num_pads)]
        ),
    )
    return SyntheticCircuit(graph=graph, spec=spec, pad_vertices=pad_vertices)


# ----------------------------------------------------------------------
# Small structured generators for tests and ablations
# ----------------------------------------------------------------------
def random_k_uniform(
    num_vertices: int,
    num_nets: int,
    k: int,
    seed: int = 0,
    areas: Optional[Sequence[float]] = None,
) -> Hypergraph:
    """Random k-uniform hypergraph: each net picks ``k`` distinct pins."""
    if k > num_vertices:
        raise ValueError("net size exceeds vertex count")
    rng = random.Random(seed)
    nets = [
        rng.sample(range(num_vertices), k) for _ in range(num_nets)
    ]
    return Hypergraph(nets, num_vertices=num_vertices, areas=areas)


def grid_hypergraph(rows: int, cols: int) -> Hypergraph:
    """2D mesh: unit-area vertices, 2-pin nets between grid neighbours.

    The minimum bisection of an even ``rows x cols`` grid cut along the
    short dimension is ``min(rows, cols)``, a handy exact reference for
    partitioner tests.
    """
    def vid(r: int, c: int) -> int:
        return r * cols + c

    nets = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                nets.append([vid(r, c), vid(r, c + 1)])
            if r + 1 < rows:
                nets.append([vid(r, c), vid(r + 1, c)])
    return Hypergraph(nets, num_vertices=rows * cols)


def chain_hypergraph(num_vertices: int) -> Hypergraph:
    """Path graph as 2-pin nets; min bisection cut is exactly 1."""
    nets = [[i, i + 1] for i in range(num_vertices - 1)]
    return Hypergraph(nets, num_vertices=num_vertices)


def clustered_hypergraph(
    num_clusters: int,
    cluster_size: int,
    intra_nets: int,
    inter_nets: int,
    seed: int = 0,
) -> Hypergraph:
    """Cliquish clusters joined by sparse random 2-pin bridges.

    Coarsening tests rely on heavy-edge matching recovering the planted
    clusters; partitioning tests rely on the planted sparse cuts.
    """
    rng = random.Random(seed)
    n = num_clusters * cluster_size
    nets: List[List[int]] = []
    for c in range(num_clusters):
        base = c * cluster_size
        members = list(range(base, base + cluster_size))
        for _ in range(intra_nets):
            size = rng.randint(2, min(4, cluster_size))
            nets.append(rng.sample(members, size))
    for _ in range(inter_nets):
        a, b = rng.sample(range(num_clusters), 2)
        u = a * cluster_size + rng.randrange(cluster_size)
        v = b * cluster_size + rng.randrange(cluster_size)
        nets.append([u, v])
    return Hypergraph(nets, num_vertices=n)
