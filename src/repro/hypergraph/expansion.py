"""Graph expansions of hypergraphs.

Hyperedges are sometimes approximated by graph edges: the clique model
spreads a net's weight over all pin pairs, the star model introduces an
auxiliary hub vertex per net.  The multilevel coarsener's heavy-edge
connectivity score is exactly the clique-model edge weight, and the
expansions let us sanity-check cut values against networkx algorithms in
tests.
"""

from __future__ import annotations

from typing import Dict, Tuple

import networkx as nx

from repro.hypergraph.hypergraph import Hypergraph


def clique_expansion(graph: Hypergraph) -> nx.Graph:
    """Weighted clique expansion.

    Each net of size ``s`` and weight ``w`` contributes ``w / (s - 1)`` to
    every pin pair, the standard normalisation making the (graph) cut of a
    bipartition that splits the net at least ``w``.  Single-pin and empty
    nets contribute nothing.
    """
    g = nx.Graph()
    g.add_nodes_from(range(graph.num_vertices))
    for e in range(graph.num_nets):
        pins = graph.net_pins(e)
        s = len(pins)
        if s < 2:
            continue
        share = graph.net_weight(e) / (s - 1)
        for i in range(s):
            for j in range(i + 1, s):
                u, v = pins[i], pins[j]
                if g.has_edge(u, v):
                    g[u][v]["weight"] += share
                else:
                    g.add_edge(u, v, weight=share)
    return g


def star_expansion(graph: Hypergraph) -> Tuple[nx.Graph, Dict[int, int]]:
    """Star expansion: one hub node per net, spokes to every pin.

    Returns the graph and a map from net id to its hub node id.  Hub ids
    start at ``graph.num_vertices``.
    """
    g = nx.Graph()
    g.add_nodes_from(range(graph.num_vertices))
    hubs: Dict[int, int] = {}
    next_id = graph.num_vertices
    for e in range(graph.num_nets):
        pins = graph.net_pins(e)
        if len(pins) < 2:
            continue
        hub = next_id
        next_id += 1
        hubs[e] = hub
        g.add_node(hub)
        w = graph.net_weight(e)
        for v in pins:
            g.add_edge(hub, v, weight=w)
    return g, hubs


def connectivity_components(graph: Hypergraph) -> int:
    """Number of connected components (via the clique expansion's
    structure; weights are irrelevant for connectivity)."""
    g = nx.Graph()
    g.add_nodes_from(range(graph.num_vertices))
    for e in range(graph.num_nets):
        pins = graph.net_pins(e)
        for i in range(1, len(pins)):
            g.add_edge(pins[0], pins[i])
    return nx.number_connected_components(g)
