"""Descriptive statistics over hypergraphs.

These are the numbers benchmark tables report about instances (Table IV of
the paper reports cells, pads, nets, external nets and the largest-cell
area share) plus the distributional statistics the synthetic generator is
calibrated against (net-size histogram, vertex-degree histogram, pins per
cell).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Sequence

from repro.hypergraph.hypergraph import Hypergraph


@dataclass(frozen=True)
class HypergraphStats:
    """Summary statistics of one hypergraph instance."""

    num_vertices: int
    num_nets: int
    num_pins: int
    total_area: float
    max_area: float
    max_area_percent: float
    average_net_size: float
    average_degree: float
    net_size_histogram: Dict[int, int]
    degree_histogram: Dict[int, int]

    def format_row(self) -> str:
        """One-line summary, Table-IV style."""
        return (
            f"|V|={self.num_vertices} |E|={self.num_nets} "
            f"pins={self.num_pins} max%={self.max_area_percent:.2f} "
            f"avg_net={self.average_net_size:.2f} "
            f"avg_deg={self.average_degree:.2f}"
        )


def compute_stats(graph: Hypergraph) -> HypergraphStats:
    """Compute :class:`HypergraphStats` for ``graph``."""
    net_hist = Counter(graph.net_size(e) for e in range(graph.num_nets))
    deg_hist = Counter(
        graph.vertex_degree(v) for v in range(graph.num_vertices)
    )
    max_area = max(graph.areas, default=0.0)
    total = graph.total_area
    return HypergraphStats(
        num_vertices=graph.num_vertices,
        num_nets=graph.num_nets,
        num_pins=graph.num_pins,
        total_area=total,
        max_area=max_area,
        max_area_percent=100.0 * max_area / total if total > 0 else 0.0,
        average_net_size=graph.average_net_size(),
        average_degree=graph.average_degree(),
        net_size_histogram=dict(net_hist),
        degree_histogram=dict(deg_hist),
    )


def external_nets(graph: Hypergraph, pad_vertices: Sequence[int]) -> int:
    """Number of nets incident to at least one vertex in ``pad_vertices``.

    In the paper's Table IV an "external net" is a net touching a pad; the
    count approximates the number of propagated terminals of the block.
    """
    pads = set(pad_vertices)
    count = 0
    for e in range(graph.num_nets):
        if any(v in pads for v in graph.net_pins(e)):
            count += 1
    return count


def pins_per_cell(graph: Hypergraph) -> float:
    """Average pins per vertex -- the ``k`` of Rent's rule (paper: ~3.5)."""
    return graph.average_degree()


def rent_exponent_estimate(
    graph: Hypergraph,
    samples: Sequence[Sequence[int]],
) -> float:
    """Estimate the Rent exponent from (block, terminal-count) samples.

    ``samples`` is a list of vertex subsets ("blocks").  For each block we
    count external nets (nets with pins both inside and outside) as the
    terminal count ``T`` and fit ``log T = log k + p log C`` by least
    squares.  Degenerate inputs (fewer than two distinct block sizes)
    raise ``ValueError``.
    """
    import math

    points = []
    for block in samples:
        inside = set(block)
        if not inside:
            continue
        terminals = 0
        for e in range(graph.num_nets):
            pins = graph.net_pins(e)
            has_in = any(v in inside for v in pins)
            has_out = any(v not in inside for v in pins)
            if has_in and has_out:
                terminals += 1
        if terminals > 0:
            points.append((math.log(len(inside)), math.log(terminals)))
    sizes = {x for x, _ in points}
    if len(sizes) < 2:
        raise ValueError(
            "need samples of at least two distinct block sizes with "
            "nonzero terminal counts"
        )
    n = len(points)
    sx = sum(x for x, _ in points)
    sy = sum(y for _, y in points)
    sxx = sum(x * x for x, _ in points)
    sxy = sum(x * y for x, y in points)
    return (n * sxy - sx * sy) / (n * sxx - sx * sx)
