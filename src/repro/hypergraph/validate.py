"""Structural validation and sanity reporting for hypergraphs.

Parsers and generators call :func:`validate_hypergraph` before handing a
hypergraph to the partitioner; the checks here catch the classic netlist
pathologies (dangling nets, self-nets after clustering, weight anomalies)
with actionable messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.hypergraph.hypergraph import Hypergraph


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_hypergraph`.

    ``errors`` are structural violations; ``warnings`` are legal but
    suspicious features (single-pin nets, isolated vertices, ...).
    """

    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no errors were found (warnings are tolerated)."""
        return not self.errors

    def raise_on_error(self) -> None:
        """Raise ``ValueError`` summarising all errors, if any."""
        if self.errors:
            raise ValueError(
                "invalid hypergraph: " + "; ".join(self.errors)
            )


def validate_hypergraph(
    graph: Hypergraph, max_reported: int = 10
) -> ValidationReport:
    """Check structural invariants of ``graph``.

    Errors
    ------
    * CSR cross-consistency (every net->pin incidence appears in the
      vertex->net direction and vice versa);
    * negative areas or net weights (also rejected at construction, but
      re-checked here for graphs built through other paths).

    Warnings
    --------
    * empty or single-pin nets (cannot be cut; waste partitioner effort);
    * isolated vertices (no incident net);
    * zero-weight nets (ignored by the cut objective).
    """
    report = ValidationReport()

    pin_count_forward = graph.num_pins
    pin_count_reverse = sum(
        graph.vertex_degree(v) for v in range(graph.num_vertices)
    )
    if pin_count_forward != pin_count_reverse:
        report.errors.append(
            f"pin-count mismatch: nets see {pin_count_forward}, "
            f"vertices see {pin_count_reverse}"
        )

    mismatches = 0
    for e in range(graph.num_nets):
        for v in graph.net_pins(e):
            if e not in set(graph.vertex_nets(v)):
                mismatches += 1
                if mismatches <= max_reported:
                    report.errors.append(
                        f"incidence ({e}, {v}) missing from vertex side"
                    )
    if mismatches > max_reported:
        report.errors.append(
            f"... and {mismatches - max_reported} more incidence mismatches"
        )

    empty_nets = [e for e in range(graph.num_nets) if graph.net_size(e) == 0]
    if empty_nets:
        report.warnings.append(
            f"{len(empty_nets)} empty net(s), e.g. net {empty_nets[0]}"
        )
    single_pin = [e for e in range(graph.num_nets) if graph.net_size(e) == 1]
    if single_pin:
        report.warnings.append(
            f"{len(single_pin)} single-pin net(s), e.g. net {single_pin[0]}"
        )
    zero_weight = [
        e for e in range(graph.num_nets) if graph.net_weight(e) == 0
    ]
    if zero_weight:
        report.warnings.append(
            f"{len(zero_weight)} zero-weight net(s), e.g. net "
            f"{zero_weight[0]}"
        )

    isolated = [
        v for v in range(graph.num_vertices) if graph.vertex_degree(v) == 0
    ]
    if isolated:
        report.warnings.append(
            f"{len(isolated)} isolated vertex/vertices, e.g. vertex "
            f"{isolated[0]}"
        )

    for v in range(graph.num_vertices):
        if graph.area(v) < 0:
            report.errors.append(f"vertex {v} has negative area")
    for e in range(graph.num_nets):
        if graph.net_weight(e) < 0:
            report.errors.append(f"net {e} has negative weight")

    return report
