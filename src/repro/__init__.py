"""repro: hypergraph partitioning with fixed vertices.

A from-scratch reproduction of Alpert, Caldwell, Kahng and Markov,
"Hypergraph Partitioning with Fixed Vertices" (IEEE TCAD 19(2), 2000):
the multilevel/flat FM partitioning engines, the fixed-terminals
experimental protocol, the pass-cutoff heuristic, the Rent's-rule
motivation, and the placement-derived benchmark methodology.
"""

__version__ = "1.0.0"
