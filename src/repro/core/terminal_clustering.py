"""Terminal-clustering equivalence transform (Section V).

The paper observes: "a bipartitioning instance with an arbitrary
number/percent of fixed terminals can be represented by an equivalent
instance with only two terminals, by clustering all terminals fixed in a
given partition into one single terminal."  The transform preserves the
cut of every assignment that respects the fixture (fixed vertices never
separate, so merging them changes no net's cut status), which is exactly
what the property tests verify.  Its practical point -- "such a
representation is likely to be just as easy or hard as the original
instance" -- motivates constraint measures that are invariant under it
(see :mod:`repro.core.constraint`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.hypergraph.contraction import Contraction, contract
from repro.hypergraph.hypergraph import Hypergraph
from repro.partition.solution import FREE


@dataclass(frozen=True)
class ClusteredInstance:
    """Result of :func:`cluster_terminals`.

    ``graph``/``fixture`` describe the clustered instance; ``mapping``
    sends each original vertex to its clustered id (free vertices are
    singletons, all side-``i`` terminals share one id).
    """

    graph: Hypergraph
    fixture: List[int]
    mapping: List[int]
    contraction: Contraction

    def lift_partition(self, clustered_parts: Sequence[int]) -> List[int]:
        """Expand a clustered solution back to the original vertices."""
        return [clustered_parts[c] for c in self.mapping]

    def push_partition(self, parts: Sequence[int]) -> List[int]:
        """Project an original, fixture-respecting solution onto the
        clustered vertices."""
        out = [0] * self.graph.num_vertices
        for v, c in enumerate(self.mapping):
            out[c] = parts[v]
        return out


def cluster_terminals(
    graph: Hypergraph,
    fixture: Sequence[int],
    num_parts: int = 2,
) -> ClusteredInstance:
    """Merge all vertices fixed in each block into one super-terminal.

    Free vertices keep their identity (as singleton clusters); the
    returned fixture pins each super-terminal in its block.  Blocks with
    no fixed vertex simply get no super-terminal.
    """
    n = graph.num_vertices
    if len(fixture) != n:
        raise ValueError("fixture length mismatch")
    labels: List[Optional[int]] = [None] * n
    terminal_label: List[Optional[int]] = [None] * num_parts
    next_label = 0

    for v in range(n):
        f = fixture[v]
        if f == FREE:
            labels[v] = next_label
            next_label += 1
        else:
            if not 0 <= f < num_parts:
                raise ValueError(f"vertex {v} fixed in invalid block {f}")
            if terminal_label[f] is None:
                terminal_label[f] = next_label
                next_label += 1
            labels[v] = terminal_label[f]

    final_labels = [label for label in labels if label is not None]
    contraction = contract(graph, final_labels)
    clustered_fixture = [FREE] * contraction.coarse.num_vertices
    for block, label in enumerate(terminal_label):
        if label is not None:
            clustered_fixture[label] = block
    return ClusteredInstance(
        graph=contraction.coarse,
        fixture=clustered_fixture,
        mapping=final_labels,
        contraction=contraction,
    )


def num_terminals_after_clustering(fixture: Sequence[int]) -> int:
    """Number of super-terminals the transform produces (<= num_parts)."""
    return len({f for f in fixture if f != FREE})
