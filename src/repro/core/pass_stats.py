"""FM pass statistics in the fixed-terminals regime (Table II).

Section III's motivating measurement: run flat LIFO-FM from random
starts and record, per run, the number of passes, and per pass (beyond
the first) the percentage of movable vertices moved, where in the pass
the best prefix occurred, and how many moves were wasted (undone by the
rollback).  The paper's headline: with more fixed terminals, the best
prefix occurs earlier -- ever more of each pass is wasted work.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.regimes import (
    FixedVertexSchedule,
    find_good_solution,
    make_schedule,
    regime_fixture,
)
from repro.hypergraph.hypergraph import Hypergraph
from repro.partition.balance import BalanceConstraint
from repro.partition.fm import FMBipartitioner, FMConfig, PassRecord
from repro.partition.initial import random_balanced_bipartition
from repro.runtime import Quarantined, parallel_map
from repro.runtime.observe import recorder as _observe


class _PassStatsRunTask:
    """One random-start FM run per init seed (picklable for pools).

    Returns ``(num_passes, final_cut, pass_records)`` -- everything the
    aggregation needs, without shipping the parts vector back.
    """

    def __init__(
        self,
        graph: Hypergraph,
        balance: BalanceConstraint,
        fixture: Sequence[int],
        policy: str,
    ) -> None:
        self.graph = graph
        self.balance = balance
        self.fixture = list(fixture)
        self.policy = policy
        self._engine: Optional[FMBipartitioner] = None

    def __getstate__(self):
        return (self.graph, self.balance, self.fixture, self.policy)

    def __setstate__(self, state):
        self.graph, self.balance, self.fixture, self.policy = state
        self._engine = None

    def __call__(
        self, init_seed: int
    ) -> Tuple[int, int, Tuple[PassRecord, ...]]:
        if self._engine is None:
            self._engine = FMBipartitioner(
                self.graph,
                self.balance,
                fixture=self.fixture,
                config=FMConfig(policy=self.policy),
            )
        init = random_balanced_bipartition(
            self.graph,
            self.balance,
            fixture=self.fixture,
            rng=random.Random(init_seed),
        )
        result = self._engine.run(init)
        return (
            result.num_passes,
            result.solution.cut,
            tuple(result.passes),
        )


@dataclass(frozen=True)
class PassStatsRow:
    """Aggregated pass statistics at one fixed percentage."""

    percent: float
    runs: int
    avg_passes_per_run: float
    avg_moved_percent: float
    avg_best_prefix_percent: float
    avg_wasted_percent: float
    avg_final_cut: float

    def format_row(self) -> str:
        """Fixed-width text row."""
        return (
            f"{self.percent:>7.1f} {self.avg_passes_per_run:>7.2f} "
            f"{self.avg_moved_percent:>8.1f} "
            f"{self.avg_best_prefix_percent:>10.1f} "
            f"{self.avg_wasted_percent:>9.1f} {self.avg_final_cut:>9.1f}"
        )


TABLE_II_HEADER = (
    f"{'fixed%':>7s} {'passes':>7s} {'moved%':>8s} "
    f"{'bestpref%':>10s} {'wasted%':>9s} {'cut':>9s}"
)


@dataclass
class PassStatsStudy:
    """Table II for one circuit."""

    circuit_name: str
    regime: str
    rows: List[PassStatsRow] = field(default_factory=list)

    def row(self, percent: float) -> PassStatsRow:
        """Row at one percentage."""
        for r in self.rows:
            if r.percent == percent:
                return r
        raise KeyError(percent)

    def format_table(self) -> str:
        """Text rendering."""
        return "\n".join(
            [
                f"Pass statistics: {self.circuit_name} "
                f"({self.regime} regime)",
                TABLE_II_HEADER,
            ]
            + [r.format_row() for r in self.rows]
        )


def run_pass_stats_study(
    graph: Hypergraph,
    balance: BalanceConstraint,
    circuit_name: str = "circuit",
    percents: Sequence[float] = (0.0, 10.0, 20.0, 30.0),
    regime: str = "good",
    runs: int = 20,
    seed: int = 0,
    schedule: Optional[FixedVertexSchedule] = None,
    good_solution: Optional[Sequence[int]] = None,
    policy: str = "lifo",
    jobs: int = 1,
    exec_policy=None,
    journal=None,
) -> PassStatsStudy:
    """Run Table II's measurement.

    Per-pass percentages exclude the first pass of each run ("excluding
    the first pass"), which always moves many vertices because it starts
    from a random partitioning.  Runs whose FM took a single pass
    contribute to the pass count but not to the per-pass averages.
    ``jobs > 1`` fans the independent runs over a process pool without
    changing any statistic.

    ``exec_policy`` (an :class:`repro.runtime.ExecutionPolicy`; named to
    avoid the FM ``policy`` knob) and ``journal`` (a
    :class:`repro.runtime.CheckpointJournal` or namespace view) opt into
    the fault-tolerant runtime; quarantined runs are dropped from the
    averages rather than aborting the table.
    """
    recorder = _observe.active()
    rng = random.Random(seed)
    if schedule is None:
        schedule = make_schedule(graph, seed=rng.getrandbits(32))
    with recorder.span(
        "study.pass_stats",
        circuit=circuit_name,
        regime=regime,
        policy=policy,
        runs=runs,
    ):
        if regime == "good" and good_solution is None:
            # The reference run's fm.run spans are quarantined under
            # their own span so trace consumers never confuse them with
            # the measured runs of a ``study.percent``.
            with recorder.span("study.reference"):
                good_solution = find_good_solution(
                    graph, balance, seed=rng.getrandbits(32), jobs=jobs,
                    policy=exec_policy,
                    checkpoint=(
                        journal.batch("reference")
                        if journal is not None
                        else None
                    ),
                ).parts
        rand_fix_seed = rng.getrandbits(32)

        study = PassStatsStudy(circuit_name=circuit_name, regime=regime)
        for percent in percents:
            fixture = regime_fixture(
                regime,
                schedule,
                percent,
                good_solution=good_solution,
                seed=rand_fix_seed,
            )
            task = _PassStatsRunTask(graph, balance, fixture, policy)
            init_seeds = [rng.getrandbits(32) for _ in range(runs)]
            with recorder.span(
                "study.percent", percent=percent, runs=runs
            ):
                outcomes = parallel_map(
                    task,
                    init_seeds,
                    jobs=jobs,
                    policy=exec_policy,
                    checkpoint=(
                        journal.batch(f"pass_stats:{percent}")
                        if journal is not None
                        else None
                    ),
                )
            outcomes = [
                o for o in outcomes if not isinstance(o, Quarantined)
            ]
            passes_per_run: List[int] = []
            moved: List[float] = []
            best_prefix: List[float] = []
            wasted: List[float] = []
            cuts: List[int] = []
            for num_passes, cut, records in outcomes:
                passes_per_run.append(num_passes)
                cuts.append(cut)
                for record in records[1:]:
                    if record.movable == 0:
                        continue
                    moved.append(100.0 * record.moved_fraction)
                    if record.moves_made:
                        best_prefix.append(
                            100.0 * record.best_prefix_fraction
                        )
                        wasted.append(
                            100.0 * record.wasted_moves / record.moves_made
                        )
            study.rows.append(
                PassStatsRow(
                    percent=percent,
                    runs=runs,
                    avg_passes_per_run=_mean(passes_per_run),
                    avg_moved_percent=_mean(moved),
                    avg_best_prefix_percent=_mean(best_prefix),
                    avg_wasted_percent=_mean(wasted),
                    avg_final_cut=_mean(cuts),
                )
            )
    return study


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def wasted_move_trend(study: PassStatsStudy) -> List[Tuple[float, float]]:
    """(percent, wasted%) series -- the paper's headline trend, which
    should increase with the fixed percentage."""
    return [(r.percent, r.avg_wasted_percent) for r in study.rows]
