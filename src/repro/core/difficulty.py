"""Instance-difficulty study (Figs. 1 and 2 of the paper).

For each fixed percentage and regime, the multilevel partitioner is run
for up to ``max(starts)`` independent starts per trial; the best cut of
the first 1, 2, 4 and 8 starts yields the four traces of each plot, and
per-start CPU time yields the right-hand column.  Raw best cuts,
normalized best cuts and CPU seconds are all averaged over trials.

Normalization follows the paper: in the *good* regime every percentage
shares the same reference (the good solution's cut, since all fixtures
are consistent with it); in the *rand* regime each percentage is a
distinct instance, normalized to the best cut seen across *all* starts
and trials of that instance.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.regimes import (
    PAPER_PERCENTS,
    FixedVertexSchedule,
    find_good_solution,
    make_schedule,
    regime_fixture,
)
from repro.hypergraph.hypergraph import Hypergraph
from repro.partition.balance import BalanceConstraint
from repro.partition.multilevel import MultilevelConfig
from repro.partition.multistart import multilevel_multistart


@dataclass(frozen=True)
class DifficultyPoint:
    """One (regime, percent, starts) data point, averaged over trials."""

    regime: str
    percent: float
    starts: int
    raw_cut: float
    normalized_cut: float
    cpu_seconds: float


@dataclass
class DifficultyStudy:
    """All data behind one figure (one circuit)."""

    circuit_name: str
    percents: Sequence[float]
    starts_list: Sequence[int]
    trials: int
    good_cut: int
    points: List[DifficultyPoint] = field(default_factory=list)
    best_seen: Dict[Tuple[str, float], int] = field(default_factory=dict)

    def point(
        self, regime: str, percent: float, starts: int
    ) -> DifficultyPoint:
        """Look up one data point."""
        for p in self.points:
            if (
                p.regime == regime
                and p.percent == percent
                and p.starts == starts
            ):
                return p
        raise KeyError((regime, percent, starts))

    def trace(
        self, regime: str, starts: int, column: str = "normalized_cut"
    ) -> List[Tuple[float, float]]:
        """(percent, value) series for one plot trace."""
        if column not in ("raw_cut", "normalized_cut", "cpu_seconds"):
            raise ValueError(f"unknown column {column!r}")
        series = [
            (p.percent, getattr(p, column))
            for p in self.points
            if p.regime == regime and p.starts == starts
        ]
        return sorted(series)


def run_difficulty_study(
    graph: Hypergraph,
    balance: BalanceConstraint,
    circuit_name: str = "circuit",
    percents: Sequence[float] = PAPER_PERCENTS,
    starts_list: Sequence[int] = (1, 2, 4, 8),
    trials: int = 5,
    seed: int = 0,
    config: Optional[MultilevelConfig] = None,
    schedule: Optional[FixedVertexSchedule] = None,
    regimes: Sequence[str] = ("good", "rand"),
    reference_starts: Optional[int] = None,
    jobs: int = 1,
    policy=None,
    journal=None,
) -> DifficultyStudy:
    """Run the Section II experiment on one circuit.

    The paper uses 50 trials; the default here is 5 (pure-Python engine),
    which preserves every qualitative shape.  All randomness derives from
    ``seed``.  The good-regime reference is found with
    ``reference_starts`` multilevel starts (default: at least 8, as the
    paper fixes vertices per "the best min-cut solution we could find" --
    a weak reference makes good-regime fixtures self-inconsistent).

    ``jobs > 1`` fans each batch's starts over a process pool; cuts and
    the CPU-time column are identical to the serial run (per-start CPU
    time is measured with ``time.process_time`` inside the worker).

    ``policy`` (an :class:`repro.runtime.ExecutionPolicy`) adds
    per-start timeouts/retries/quarantine; ``journal`` (a
    :class:`repro.runtime.CheckpointJournal` or namespace view) makes
    every ``(regime, percent, trial)`` batch resumable -- a re-run with
    the same journal skips completed starts and reproduces the study bit
    for bit (see ``docs/robustness.md``).
    """
    if not starts_list or sorted(starts_list) != list(starts_list):
        raise ValueError("starts_list must be non-empty and ascending")
    max_starts = starts_list[-1]
    if reference_starts is None:
        reference_starts = max(8, max_starts)
    rng = random.Random(seed)

    if schedule is None:
        schedule = make_schedule(graph, percents=percents, seed=rng.getrandbits(32))
    good = find_good_solution(
        graph, balance, starts=reference_starts, seed=rng.getrandbits(32),
        config=config, jobs=jobs, policy=policy,
        checkpoint=journal.batch("reference") if journal is not None else None,
    )

    study = DifficultyStudy(
        circuit_name=circuit_name,
        percents=tuple(percents),
        starts_list=tuple(starts_list),
        trials=trials,
        good_cut=good.cut,
    )

    # raw accumulation: (regime, percent, starts) -> [best cuts per trial]
    cuts: Dict[Tuple[str, float, int], List[int]] = {}
    secs: Dict[Tuple[str, float, int], List[float]] = {}
    rand_fix_seed = rng.getrandbits(32)

    for regime in regimes:
        for percent in percents:
            fixture = regime_fixture(
                regime,
                schedule,
                percent,
                good_solution=good.parts,
                seed=rand_fix_seed,
            )
            best_instance = None
            for trial in range(trials):
                batch = multilevel_multistart(
                    graph,
                    balance,
                    fixture=fixture,
                    config=config,
                    num_starts=max_starts,
                    seed=rng.getrandbits(32),
                    jobs=jobs,
                    policy=policy,
                    checkpoint=(
                        journal.batch(f"{regime}:{percent}:trial{trial}")
                        if journal is not None
                        else None
                    ),
                )
                for starts in starts_list:
                    key = (regime, percent, starts)
                    outcome = batch.best_of_first(starts)
                    cuts.setdefault(key, []).append(outcome.cut)
                    secs.setdefault(key, []).append(
                        batch.cpu_seconds_of_first(starts)
                    )
                trial_best = batch.best().cut
                if best_instance is None or trial_best < best_instance:
                    best_instance = trial_best
            assert best_instance is not None
            study.best_seen[(regime, percent)] = best_instance

    for regime in regimes:
        for percent in percents:
            if regime == "good":
                reference = max(1, good.cut)
            else:
                reference = max(1, study.best_seen[(regime, percent)])
            for starts in starts_list:
                key = (regime, percent, starts)
                raw = sum(cuts[key]) / len(cuts[key])
                cpu = sum(secs[key]) / len(secs[key])
                study.points.append(
                    DifficultyPoint(
                        regime=regime,
                        percent=percent,
                        starts=starts,
                        raw_cut=raw,
                        normalized_cut=raw / reference,
                        cpu_seconds=cpu,
                    )
                )
    return study


def format_study(study: DifficultyStudy) -> str:
    """Text rendering of one figure's data (six logical plots)."""
    lines = [
        f"Difficulty study: {study.circuit_name} "
        f"(good cut = {study.good_cut}, {study.trials} trials)"
    ]
    for regime in ("good", "rand"):
        present = [p for p in study.points if p.regime == regime]
        if not present:
            continue
        lines.append(f"-- regime: {regime}")
        lines.append(
            f"{'fixed%':>7s} "
            + " ".join(
                f"{f'raw@{s}':>9s} {f'norm@{s}':>8s} {f'cpu@{s}':>8s}"
                for s in study.starts_list
            )
        )
        for percent in study.percents:
            row = [f"{percent:>7.1f}"]
            for starts in study.starts_list:
                p = study.point(regime, percent, starts)
                row.append(
                    f"{p.raw_cut:>9.1f} {p.normalized_cut:>8.3f} "
                    f"{p.cpu_seconds:>8.3f}"
                )
            lines.append(" ".join(row))
    return "\n".join(lines)
