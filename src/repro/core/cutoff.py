"""Pass-cutoff heuristic study (Table III).

Section III's proposal: after the first pass, cut every FM pass off once
50% / 25% / 10% / 5% of the movable vertices have moved.  Table III
reports average cut (average CPU seconds) for single LIFO-FM starts per
(cutoff, fixed-percentage) cell.  The expected shape: cutoffs hurt cut
quality without terminals, are harmless with >= 20% terminals, and cut
runtime everywhere.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.regimes import (
    FixedVertexSchedule,
    find_good_solution,
    make_schedule,
    regime_fixture,
)
from repro.hypergraph.hypergraph import Hypergraph
from repro.partition.balance import BalanceConstraint
from repro.partition.fm import FMBipartitioner, FMConfig
from repro.partition.initial import random_balanced_bipartition
from repro.runtime import Quarantined, parallel_map

PAPER_CUTOFFS = (1.0, 0.5, 0.25, 0.10, 0.05)
"""Move-limit fractions: 1.0 is the uncut baseline column."""


@dataclass(frozen=True)
class CutoffCell:
    """One (percent, cutoff) cell: avg cut, wall and CPU seconds.

    ``avg_seconds`` is per-run wall clock of the FM run itself;
    ``avg_cpu_seconds`` is per-run ``time.process_time``, which is what
    the table reports (it stays meaningful when runs execute in a pool).
    """

    percent: float
    cutoff: float
    avg_cut: float
    avg_seconds: float
    avg_moves: float
    avg_cpu_seconds: float = 0.0

    def format_cell(self) -> str:
        """Paper-style "cut (CPU seconds)" cell."""
        return f"{self.avg_cut:8.1f} ({self.avg_cpu_seconds:6.3f}s)"


class _CutoffRunTask:
    """One LIFO-FM run at a fixed cutoff per init seed (picklable).

    The initial solution is reconstructed inside the worker from the
    init seed; seeds are shared across cutoff columns, so columns stay
    paired samples exactly as in the serial protocol.  Timing covers
    only ``engine.run`` -- construction of the initial partition is
    protocol overhead, not part of the measured heuristic.
    """

    def __init__(
        self,
        graph: Hypergraph,
        balance: BalanceConstraint,
        fixture: Sequence[int],
        policy: str,
        cutoff: float,
    ) -> None:
        self.graph = graph
        self.balance = balance
        self.fixture = list(fixture)
        self.policy = policy
        self.cutoff = cutoff
        self._engine: Optional[FMBipartitioner] = None

    def __getstate__(self):
        return (
            self.graph, self.balance, self.fixture, self.policy, self.cutoff
        )

    def __setstate__(self, state):
        (
            self.graph, self.balance, self.fixture, self.policy, self.cutoff
        ) = state
        self._engine = None

    def __call__(self, init_seed: int):
        if self._engine is None:
            self._engine = FMBipartitioner(
                self.graph,
                self.balance,
                fixture=self.fixture,
                config=FMConfig(
                    policy=self.policy,
                    pass_move_limit_fraction=self.cutoff,
                ),
            )
        init = random_balanced_bipartition(
            self.graph,
            self.balance,
            fixture=self.fixture,
            rng=random.Random(init_seed),
        )
        cpu0 = time.process_time()
        t0 = time.perf_counter()
        result = self._engine.run(init)
        seconds = time.perf_counter() - t0
        cpu_seconds = time.process_time() - cpu0
        return (result.solution.cut, seconds, cpu_seconds, result.total_moves)


@dataclass
class CutoffStudy:
    """Table III for one circuit."""

    circuit_name: str
    regime: str
    cutoffs: Sequence[float]
    percents: Sequence[float]
    cells: List[CutoffCell] = field(default_factory=list)

    def cell(self, percent: float, cutoff: float) -> CutoffCell:
        """Look up one table cell."""
        for c in self.cells:
            if c.percent == percent and c.cutoff == cutoff:
                return c
        raise KeyError((percent, cutoff))

    def format_table(self) -> str:
        """Text rendering: one row per fixed%, one column per cutoff."""
        lines = [
            f"Pass-cutoff study: {self.circuit_name} "
            f"({self.regime} regime); cells are avg cut (avg CPU)"
        ]
        header = f"{'fixed%':>7s}" + "".join(
            f" | {'no cutoff' if c >= 1.0 else f'{c:.0%} moves':>18s}"
            for c in self.cutoffs
        )
        lines.append(header)
        for percent in self.percents:
            row = [f"{percent:>7.1f}"]
            for cutoff in self.cutoffs:
                row.append(f" | {self.cell(percent, cutoff).format_cell()}")
            lines.append("".join(row))
        return "\n".join(lines)


def run_cutoff_study(
    graph: Hypergraph,
    balance: BalanceConstraint,
    circuit_name: str = "circuit",
    percents: Sequence[float] = (0.0, 10.0, 20.0, 30.0),
    cutoffs: Sequence[float] = PAPER_CUTOFFS,
    regime: str = "good",
    runs: int = 10,
    seed: int = 0,
    schedule: Optional[FixedVertexSchedule] = None,
    good_solution: Optional[Sequence[int]] = None,
    policy: str = "lifo",
    jobs: int = 1,
    exec_policy=None,
    journal=None,
) -> CutoffStudy:
    """Run Table III's measurement (single-start LIFO FM per run).

    All cutoffs share the same per-run initial solutions so the columns
    are paired samples -- differences come from the cutoff alone.
    ``jobs > 1`` fans the runs of each column over a process pool; cuts
    and CPU seconds are identical to the serial run.

    ``exec_policy`` (an :class:`repro.runtime.ExecutionPolicy`; named to
    avoid the FM ``policy`` knob) and ``journal`` (a
    :class:`repro.runtime.CheckpointJournal` or namespace view) opt into
    the fault-tolerant runtime; quarantined runs are dropped from the
    cell averages rather than aborting the table.
    """
    rng = random.Random(seed)
    if schedule is None:
        schedule = make_schedule(graph, seed=rng.getrandbits(32))
    if regime == "good" and good_solution is None:
        good_solution = find_good_solution(
            graph, balance, seed=rng.getrandbits(32), jobs=jobs,
            policy=exec_policy,
            checkpoint=(
                journal.batch("reference") if journal is not None else None
            ),
        ).parts
    rand_fix_seed = rng.getrandbits(32)

    study = CutoffStudy(
        circuit_name=circuit_name,
        regime=regime,
        cutoffs=tuple(cutoffs),
        percents=tuple(percents),
    )
    for percent in percents:
        fixture = regime_fixture(
            regime,
            schedule,
            percent,
            good_solution=good_solution,
            seed=rand_fix_seed,
        )
        init_seeds = [rng.getrandbits(32) for _ in range(runs)]
        for cutoff in cutoffs:
            task = _CutoffRunTask(graph, balance, fixture, policy, cutoff)
            outcomes = parallel_map(
                task,
                init_seeds,
                jobs=jobs,
                policy=exec_policy,
                checkpoint=(
                    journal.batch(f"cutoff:{percent}:{cutoff}")
                    if journal is not None
                    else None
                ),
            )
            outcomes = [o for o in outcomes if not isinstance(o, Quarantined)]
            cuts: List[int] = []
            seconds: List[float] = []
            cpu_seconds: List[float] = []
            moves: List[int] = []
            for cut, secs, cpu, total_moves in outcomes:
                cuts.append(cut)
                seconds.append(secs)
                cpu_seconds.append(cpu)
                moves.append(total_moves)
            study.cells.append(
                CutoffCell(
                    percent=percent,
                    cutoff=cutoff,
                    avg_cut=sum(cuts) / len(cuts),
                    avg_seconds=sum(seconds) / len(seconds),
                    avg_moves=sum(moves) / len(moves),
                    avg_cpu_seconds=sum(cpu_seconds) / len(cpu_seconds),
                )
            )
    return study
