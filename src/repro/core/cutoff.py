"""Pass-cutoff heuristic study (Table III).

Section III's proposal: after the first pass, cut every FM pass off once
50% / 25% / 10% / 5% of the movable vertices have moved.  Table III
reports average cut (average CPU seconds) for single LIFO-FM starts per
(cutoff, fixed-percentage) cell.  The expected shape: cutoffs hurt cut
quality without terminals, are harmless with >= 20% terminals, and cut
runtime everywhere.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.regimes import (
    FixedVertexSchedule,
    find_good_solution,
    make_schedule,
    regime_fixture,
)
from repro.hypergraph.hypergraph import Hypergraph
from repro.partition.balance import BalanceConstraint
from repro.partition.fm import FMBipartitioner, FMConfig
from repro.partition.initial import random_balanced_bipartition

PAPER_CUTOFFS = (1.0, 0.5, 0.25, 0.10, 0.05)
"""Move-limit fractions: 1.0 is the uncut baseline column."""


@dataclass(frozen=True)
class CutoffCell:
    """One (percent, cutoff) cell: avg cut and avg CPU seconds."""

    percent: float
    cutoff: float
    avg_cut: float
    avg_seconds: float
    avg_moves: float

    def format_cell(self) -> str:
        """Paper-style "cut (seconds)" cell."""
        return f"{self.avg_cut:8.1f} ({self.avg_seconds:6.3f}s)"


@dataclass
class CutoffStudy:
    """Table III for one circuit."""

    circuit_name: str
    regime: str
    cutoffs: Sequence[float]
    percents: Sequence[float]
    cells: List[CutoffCell] = field(default_factory=list)

    def cell(self, percent: float, cutoff: float) -> CutoffCell:
        """Look up one table cell."""
        for c in self.cells:
            if c.percent == percent and c.cutoff == cutoff:
                return c
        raise KeyError((percent, cutoff))

    def format_table(self) -> str:
        """Text rendering: one row per fixed%, one column per cutoff."""
        lines = [
            f"Pass-cutoff study: {self.circuit_name} "
            f"({self.regime} regime); cells are avg cut (avg CPU)"
        ]
        header = f"{'fixed%':>7s}" + "".join(
            f" | {'no cutoff' if c >= 1.0 else f'{c:.0%} moves':>18s}"
            for c in self.cutoffs
        )
        lines.append(header)
        for percent in self.percents:
            row = [f"{percent:>7.1f}"]
            for cutoff in self.cutoffs:
                row.append(f" | {self.cell(percent, cutoff).format_cell()}")
            lines.append("".join(row))
        return "\n".join(lines)


def run_cutoff_study(
    graph: Hypergraph,
    balance: BalanceConstraint,
    circuit_name: str = "circuit",
    percents: Sequence[float] = (0.0, 10.0, 20.0, 30.0),
    cutoffs: Sequence[float] = PAPER_CUTOFFS,
    regime: str = "good",
    runs: int = 10,
    seed: int = 0,
    schedule: Optional[FixedVertexSchedule] = None,
    good_solution: Optional[Sequence[int]] = None,
    policy: str = "lifo",
) -> CutoffStudy:
    """Run Table III's measurement (single-start LIFO FM per run).

    All cutoffs share the same per-run initial solutions so the columns
    are paired samples -- differences come from the cutoff alone.
    """
    rng = random.Random(seed)
    if schedule is None:
        schedule = make_schedule(graph, seed=rng.getrandbits(32))
    if regime == "good" and good_solution is None:
        good_solution = find_good_solution(
            graph, balance, seed=rng.getrandbits(32)
        ).parts
    rand_fix_seed = rng.getrandbits(32)

    study = CutoffStudy(
        circuit_name=circuit_name,
        regime=regime,
        cutoffs=tuple(cutoffs),
        percents=tuple(percents),
    )
    for percent in percents:
        fixture = regime_fixture(
            regime,
            schedule,
            percent,
            good_solution=good_solution,
            seed=rand_fix_seed,
        )
        inits = []
        for _ in range(runs):
            inits.append(
                random_balanced_bipartition(
                    graph, balance, fixture=fixture,
                    rng=random.Random(rng.getrandbits(32)),
                )
            )
        for cutoff in cutoffs:
            engine = FMBipartitioner(
                graph,
                balance,
                fixture=fixture,
                config=FMConfig(
                    policy=policy, pass_move_limit_fraction=cutoff
                ),
            )
            cuts: List[int] = []
            seconds: List[float] = []
            moves: List[int] = []
            for init in inits:
                t0 = time.perf_counter()
                result = engine.run(list(init))
                seconds.append(time.perf_counter() - t0)
                cuts.append(result.solution.cut)
                moves.append(result.total_moves)
            study.cells.append(
                CutoffCell(
                    percent=percent,
                    cutoff=cutoff,
                    avg_cut=sum(cuts) / len(cuts),
                    avg_seconds=sum(seconds) / len(seconds),
                    avg_moves=sum(moves) / len(moves),
                )
            )
    return study
