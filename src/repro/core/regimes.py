"""Fixed-vertex assignment regimes (the Section II protocol).

The paper's experiments fix a random subset of vertices either

* consistently with the best known free-hypergraph solution ("good"), or
* into independently random partitions ("rand"),

at 0%, 0.1%, 0.5%, 1%, 2%, 5%, 10%, 15%, 20%, 30%, 40% and 50% of the
vertices -- *incrementally*: every vertex fixed at 1% is still fixed at
2%.  A third regime fixes identified pads only (the paper found it
indistinguishable from random selection at the achievable percentages).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.hypergraph.hypergraph import Hypergraph
from repro.partition.balance import BalanceConstraint
from repro.partition.multilevel import MultilevelConfig
from repro.partition.multistart import multilevel_multistart
from repro.partition.solution import FREE, Bipartition

PAPER_PERCENTS = (0.0, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 15.0, 20.0, 30.0, 40.0, 50.0)
"""The paper's fixed-percentage schedule."""

REGIMES = ("good", "rand")


@dataclass(frozen=True)
class FixedVertexSchedule:
    """An incremental schedule of fixed-vertex sets.

    ``order`` is a random permutation prefix: the set fixed at percent
    ``q`` is the first ``round(q% * n)`` entries, so schedules are nested
    exactly as in the paper ("we incrementally fix additional vertices").
    """

    num_vertices: int
    percents: Sequence[float]
    order: Sequence[int]

    def count_at(self, percent: float) -> int:
        """Number of vertices fixed at ``percent``.

        Any percentage in [0, 100] is accepted -- the incremental
        property is a prefix property, so it holds for percentages
        beyond the declared schedule too.  The count saturates at the
        candidate-pool size (relevant for pad-restricted schedules).
        """
        if not 0.0 <= percent <= 100.0:
            raise ValueError(f"percent {percent} outside [0, 100]")
        return min(
            len(self.order), round(percent / 100.0 * self.num_vertices)
        )

    def fixed_at(self, percent: float) -> List[int]:
        """The vertices fixed at ``percent`` (a prefix of ``order``)."""
        return list(self.order[: self.count_at(percent)])


def make_schedule(
    graph: Hypergraph,
    percents: Sequence[float] = PAPER_PERCENTS,
    seed: int = 0,
    candidates: Optional[Sequence[int]] = None,
) -> FixedVertexSchedule:
    """Draw the incremental fixing order.

    ``candidates`` restricts the pool (e.g. to pads for the pad regime);
    by default every vertex is eligible, matching the paper's main
    experiments.
    """
    rng = random.Random(seed)
    pool = list(candidates) if candidates is not None else list(
        range(graph.num_vertices)
    )
    rng.shuffle(pool)
    return FixedVertexSchedule(
        num_vertices=graph.num_vertices,
        percents=tuple(sorted(set(percents))),
        order=tuple(pool),
    )


def good_fixture(
    schedule: FixedVertexSchedule,
    percent: float,
    good_solution: Sequence[int],
) -> List[int]:
    """Fixture fixing the scheduled vertices as in ``good_solution``."""
    fixture = [FREE] * schedule.num_vertices
    for v in schedule.fixed_at(percent):
        fixture[v] = good_solution[v]
    return fixture


def rand_fixture(
    schedule: FixedVertexSchedule,
    percent: float,
    seed: int = 0,
    num_parts: int = 2,
) -> List[int]:
    """Fixture fixing the scheduled vertices into random partitions.

    Sides are drawn per-vertex from a hash-stable stream keyed by
    ``seed`` so the assignment of a vertex does not change as the
    percentage grows (the incremental property holds across percents).
    """
    fixture = [FREE] * schedule.num_vertices
    for v in schedule.fixed_at(percent):
        fixture[v] = random.Random(f"{seed}:{v}").randrange(num_parts)
    return fixture


def pad_schedule(
    graph: Hypergraph,
    pad_vertices: Sequence[int],
    percents: Sequence[float] = PAPER_PERCENTS,
    seed: int = 0,
) -> FixedVertexSchedule:
    """Schedule restricted to identified pads.

    The achievable percentage is capped by the pad count ("when the
    fixed vertices are chosen from pads, the percentage is limited by
    the total number of pads, and we do not fix any further vertices").
    :meth:`FixedVertexSchedule.fixed_at` saturates automatically.
    """
    return make_schedule(
        graph, percents=percents, seed=seed, candidates=pad_vertices
    )


def find_good_solution(
    graph: Hypergraph,
    balance: BalanceConstraint,
    starts: int = 8,
    seed: int = 0,
    config: Optional[MultilevelConfig] = None,
    jobs: int = 1,
    policy=None,
    checkpoint=None,
) -> Bipartition:
    """Best free-hypergraph solution over ``starts`` multilevel starts.

    This is the reference the "good" regime fixes vertices against, and
    the normaliser of the good-regime traces in Figs. 1-2.

    ``policy`` (an :class:`repro.runtime.ExecutionPolicy`) and
    ``checkpoint`` (a :class:`repro.runtime.CheckpointBatch`) opt into
    the fault-tolerant runtime; the reference must come out of healthy
    starts, so a fully-quarantined batch raises rather than silently
    anchoring the good regime to nothing.
    """
    result = multilevel_multistart(
        graph, balance, num_starts=starts, seed=seed, config=config,
        jobs=jobs, policy=policy, checkpoint=checkpoint,
    )
    best = result.best()
    return Bipartition(parts=best.parts, cut=best.cut)


def regime_fixture(
    regime: str,
    schedule: FixedVertexSchedule,
    percent: float,
    good_solution: Optional[Sequence[int]] = None,
    seed: int = 0,
) -> List[int]:
    """Dispatch on the regime name ("good" or "rand")."""
    if regime == "good":
        if good_solution is None:
            raise ValueError("good regime needs a reference solution")
        return good_fixture(schedule, percent, good_solution)
    if regime == "rand":
        return rand_fixture(schedule, percent, seed=seed)
    raise ValueError(f"unknown regime {regime!r}; expected one of {REGIMES}")


def fixture_summary(fixture: Sequence[int]) -> Dict[int, int]:
    """Count of fixed vertices per side (diagnostics and tests)."""
    counts: Dict[int, int] = {}
    for f in fixture:
        if f != FREE:
            counts[f] = counts.get(f, 0) + 1
    return counts
