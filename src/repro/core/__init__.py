"""The paper's contribution: fixed-terminals partitioning studies."""

from repro.core.constraint import ConstraintProfile, constraint_profile
from repro.core.cutoff import (
    PAPER_CUTOFFS,
    CutoffCell,
    CutoffStudy,
    run_cutoff_study,
)
from repro.core.difficulty import (
    DifficultyPoint,
    DifficultyStudy,
    format_study,
    run_difficulty_study,
)
from repro.core.instance import (
    PartitioningInstance,
    bipartition_instance,
)
from repro.core.pass_stats import (
    PassStatsRow,
    PassStatsStudy,
    run_pass_stats_study,
    wasted_move_trend,
)
from repro.core.regimes import (
    PAPER_PERCENTS,
    REGIMES,
    FixedVertexSchedule,
    find_good_solution,
    fixture_summary,
    good_fixture,
    make_schedule,
    pad_schedule,
    rand_fixture,
    regime_fixture,
)
from repro.core.rent import (
    DEFAULT_PINS_PER_CELL,
    DEFAULT_RENT_PARAMETERS,
    DEFAULT_THRESHOLDS,
    TableOneRow,
    block_size_threshold,
    expected_terminals,
    fixed_fraction,
    format_table_one,
    table_one,
)
from repro.core.terminal_clustering import (
    ClusteredInstance,
    cluster_terminals,
    num_terminals_after_clustering,
)

__all__ = [
    "DEFAULT_PINS_PER_CELL",
    "DEFAULT_RENT_PARAMETERS",
    "DEFAULT_THRESHOLDS",
    "PAPER_CUTOFFS",
    "PAPER_PERCENTS",
    "REGIMES",
    "ClusteredInstance",
    "ConstraintProfile",
    "CutoffCell",
    "CutoffStudy",
    "DifficultyPoint",
    "DifficultyStudy",
    "FixedVertexSchedule",
    "PartitioningInstance",
    "PassStatsRow",
    "PassStatsStudy",
    "TableOneRow",
    "bipartition_instance",
    "block_size_threshold",
    "cluster_terminals",
    "constraint_profile",
    "expected_terminals",
    "find_good_solution",
    "fixed_fraction",
    "fixture_summary",
    "format_study",
    "format_table_one",
    "good_fixture",
    "make_schedule",
    "num_terminals_after_clustering",
    "pad_schedule",
    "rand_fixture",
    "regime_fixture",
    "run_cutoff_study",
    "run_difficulty_study",
    "run_pass_stats_study",
    "table_one",
    "wasted_move_trend",
]
