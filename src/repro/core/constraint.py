"""Degree-of-constraint measures for fixed-terminals instances.

Section V poses an open problem: "it is not yet clear how to measure the
strength of fixed terminals, or alternatively the degree of constraint
in particular problem instances" -- noting that the raw fixed *count* is
not invariant (clustering all terminals into two super-terminals leaves
difficulty unchanged while collapsing the count).  This module offers
the naive measure plus several clustering-invariant candidates built
from *how much of the hypergraph the terminals touch* rather than how
many they are.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.hypergraph.hypergraph import Hypergraph
from repro.partition.solution import FREE


@dataclass(frozen=True)
class ConstraintProfile:
    """All measures for one (graph, fixture) instance."""

    fixed_fraction: float
    anchored_vertex_fraction: float
    anchored_net_fraction: float
    anchored_pin_fraction: float
    contested_net_fraction: float
    terminal_weight_fraction: float

    def format_profile(self) -> str:
        """Multi-line text rendering."""
        return "\n".join(
            [
                f"fixed vertices          : {self.fixed_fraction:7.2%}",
                f"anchored free vertices  : "
                f"{self.anchored_vertex_fraction:7.2%}",
                f"anchored nets           : {self.anchored_net_fraction:7.2%}",
                f"anchored pins           : {self.anchored_pin_fraction:7.2%}",
                f"contested nets          : "
                f"{self.contested_net_fraction:7.2%}",
                f"terminal weight share   : "
                f"{self.terminal_weight_fraction:7.2%}",
            ]
        )


def constraint_profile(
    graph: Hypergraph, fixture: Sequence[int]
) -> ConstraintProfile:
    """Compute all degree-of-constraint measures.

    * ``fixed_fraction`` -- the paper's x-axis; NOT clustering-invariant.
    * ``anchored_vertex_fraction`` -- free vertices sharing a net with a
      fixed vertex; invariant (membership doesn't change when terminals
      merge).
    * ``anchored_net_fraction`` / ``anchored_pin_fraction`` -- nets /
      free-pin incidences touching a fixed vertex; invariant.
    * ``contested_net_fraction`` -- nets anchored to *both* blocks (their
      cut state cannot be fully decided by either side); invariant.
    * ``terminal_weight_fraction`` -- net weight incident to fixed
      vertices over total net weight incident to anything; invariant
      under terminal clustering because parallel-net merging preserves
      summed weights.
    """
    n = graph.num_vertices
    if len(fixture) != n:
        raise ValueError("fixture length mismatch")
    fixed = [f != FREE for f in fixture]
    num_fixed = sum(fixed)

    anchored_free = 0
    anchored_nets = 0
    contested_nets = 0
    anchored_pins = 0
    free_pins = 0
    anchored_weight = 0
    total_weight = 0

    live_nets = 0
    net_touches_fixed = [False] * graph.num_nets
    for e in range(graph.num_nets):
        pins = graph.net_pins(e)
        sides = {fixture[v] for v in pins if fixed[v]}
        # Nets with every pin fixed in one block can never be cut; they
        # carry no constraint information and are exactly the nets the
        # terminal-clustering transform erases, so skipping them keeps
        # the measures clustering-invariant.
        if len(sides) == 1 and all(fixed[v] for v in pins):
            continue
        live_nets += 1
        w = graph.net_weight(e)
        total_weight += w
        if sides:
            net_touches_fixed[e] = True
            anchored_nets += 1
            anchored_weight += w
            if len(sides) > 1:
                contested_nets += 1
        for v in pins:
            if not fixed[v]:
                free_pins += 1
                if sides:
                    anchored_pins += 1

    for v in range(n):
        if fixed[v]:
            continue
        if any(net_touches_fixed[e] for e in graph.vertex_nets(v)):
            anchored_free += 1

    num_free = n - num_fixed
    num_nets = live_nets
    return ConstraintProfile(
        fixed_fraction=num_fixed / n if n else 0.0,
        anchored_vertex_fraction=(
            anchored_free / num_free if num_free else 0.0
        ),
        anchored_net_fraction=(
            anchored_nets / num_nets if num_nets else 0.0
        ),
        anchored_pin_fraction=(
            anchored_pins / free_pins if free_pins else 0.0
        ),
        contested_net_fraction=(
            contested_nets / num_nets if num_nets else 0.0
        ),
        terminal_weight_fraction=(
            anchored_weight / total_weight if total_weight else 0.0
        ),
    )
