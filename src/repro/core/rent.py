"""Rent's-rule model of propagated terminals (Table I).

Rent's rule: a block of ``C`` cells in a layout with Rent parameter
``p`` has on average ``T = k * C**p`` external/propagated terminals,
with ``k`` the average pins per cell (~3.5 for modern designs, per the
paper).  In a top-down placement such a block becomes a partitioning
instance of ``C + T`` vertices of which ``T`` are fixed, so the expected
fixed fraction is ``T / (C + T)`` -- and Table I reports the block sizes
below which that fraction exceeds 5%, 10% or 20%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

DEFAULT_PINS_PER_CELL = 3.5
"""The paper's ``k``: average pins per cell for modern designs."""

DEFAULT_RENT_PARAMETERS = (0.55, 0.60, 0.65, 0.68, 0.70, 0.75)
"""Rent exponents spanning the estimates the paper cites (~0.68)."""

DEFAULT_THRESHOLDS = (0.05, 0.10, 0.20)
"""Table I's fixed-fraction thresholds: 5%, 10%, 20%."""


def expected_terminals(
    block_cells: float, rent_exponent: float,
    pins_per_cell: float = DEFAULT_PINS_PER_CELL,
) -> float:
    """``T = k * C**p`` (Region-I Rent fit)."""
    if block_cells < 0:
        raise ValueError("block size must be non-negative")
    if not 0 < rent_exponent < 1:
        raise ValueError("Rent exponent must be in (0, 1)")
    if pins_per_cell <= 0:
        raise ValueError("pins per cell must be positive")
    return pins_per_cell * block_cells**rent_exponent


def fixed_fraction(
    block_cells: float, rent_exponent: float,
    pins_per_cell: float = DEFAULT_PINS_PER_CELL,
) -> float:
    """Expected fraction of fixed vertices, ``T / (C + T)``."""
    if block_cells == 0:
        return 1.0
    t = expected_terminals(block_cells, rent_exponent, pins_per_cell)
    return t / (block_cells + t)


def block_size_threshold(
    fraction: float,
    rent_exponent: float,
    pins_per_cell: float = DEFAULT_PINS_PER_CELL,
) -> float:
    """Largest block size whose expected fixed fraction is >= ``fraction``.

    Closed form: ``T/(C+T) >= f`` iff ``C**(1-p) <= k (1-f)/f``, i.e.
    ``C <= (k (1-f)/f) ** (1/(1-p))``.  The fixed fraction decreases
    monotonically in ``C``, so every smaller block also exceeds ``f``.
    """
    if not 0 < fraction < 1:
        raise ValueError("fraction must be in (0, 1)")
    if not 0 < rent_exponent < 1:
        raise ValueError("Rent exponent must be in (0, 1)")
    bound = pins_per_cell * (1.0 - fraction) / fraction
    return bound ** (1.0 / (1.0 - rent_exponent))


@dataclass(frozen=True)
class TableOneRow:
    """One row of Table I: thresholds for a given Rent exponent."""

    rent_exponent: float
    block_sizes: List[int]  # aligned with the thresholds column order

    def format_row(self, thresholds: Sequence[float]) -> str:
        """Fixed-width row for text output."""
        cells = " ".join(f"{s:>12,d}" for s in self.block_sizes)
        del thresholds
        return f"p={self.rent_exponent:<6.2f} {cells}"


def table_one(
    rent_exponents: Sequence[float] = DEFAULT_RENT_PARAMETERS,
    thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
    pins_per_cell: float = DEFAULT_PINS_PER_CELL,
) -> List[TableOneRow]:
    """Compute Table I: block sizes below which the expected number of
    fixed vertices exceeds each threshold percentage."""
    rows = []
    for p in rent_exponents:
        sizes = [
            int(block_size_threshold(f, p, pins_per_cell))
            for f in thresholds
        ]
        rows.append(TableOneRow(rent_exponent=p, block_sizes=sizes))
    return rows


def format_table_one(
    rows: Sequence[TableOneRow],
    thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
) -> str:
    """Render Table I as text."""
    header = "        " + " ".join(
        f"{f'>={100 * f:.0f}% fixed':>12s}" for f in thresholds
    )
    return "\n".join([header] + [r.format_row(thresholds) for r in rows])
