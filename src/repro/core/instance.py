"""Partitioning instances with fixed terminals.

Section IV of the paper proposes benchmark instances that carry, besides
the hypergraph, the partition geometry/capacities and a *flexible* fixed
assignment: a terminal may be fixed in one partition, or in any of a set
of partitions ("the multiple assignment is interpreted as an or", e.g. a
propagated terminal allowed in either left-side quadrant of a
quadrisection).  :class:`PartitioningInstance` is that bundle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence, Union

from repro.hypergraph.hypergraph import Hypergraph
from repro.partition.balance import (
    BalanceConstraint,
    MultiBalanceConstraint,
    relative_balance,
)
from repro.partition.solution import FREE

FixtureSet = Optional[FrozenSet[int]]
"""Per-vertex constraint: ``None`` = free, else the allowed partitions."""


@dataclass
class PartitioningInstance:
    """A hypergraph + partitions + balance + fixed assignments.

    ``fixture_sets[v]`` is ``None`` for a free vertex or a frozen set of
    allowed partitions (OR semantics).  A singleton set is a hard fix.
    """

    graph: Hypergraph
    num_parts: int
    balance: Union[BalanceConstraint, MultiBalanceConstraint]
    fixture_sets: List[FixtureSet] = field(default_factory=list)
    pad_vertices: List[int] = field(default_factory=list)
    name: str = "instance"

    def __post_init__(self) -> None:
        if self.num_parts < 1:
            raise ValueError("num_parts must be positive")
        if self.balance.num_parts != self.num_parts:
            raise ValueError(
                f"balance covers {self.balance.num_parts} blocks, "
                f"instance declares {self.num_parts}"
            )
        n = self.graph.num_vertices
        if not self.fixture_sets:
            self.fixture_sets = [None] * n
        if len(self.fixture_sets) != n:
            raise ValueError(
                f"fixture_sets has length {len(self.fixture_sets)}, "
                f"expected {n}"
            )
        for v, fs in enumerate(self.fixture_sets):
            if fs is None:
                continue
            if not fs:
                raise ValueError(f"vertex {v} has an empty fixture set")
            for p in fs:
                if not 0 <= p < self.num_parts:
                    raise ValueError(
                        f"vertex {v} fixed in invalid partition {p}"
                    )

    # ------------------------------------------------------------------
    @property
    def num_fixed(self) -> int:
        """Vertices with any fixture constraint (including OR sets)."""
        return sum(1 for fs in self.fixture_sets if fs is not None)

    @property
    def num_hard_fixed(self) -> int:
        """Vertices pinned to exactly one partition."""
        return sum(
            1 for fs in self.fixture_sets if fs is not None and len(fs) == 1
        )

    @property
    def fixed_fraction(self) -> float:
        """Fraction of vertices carrying a fixture constraint."""
        n = self.graph.num_vertices
        return self.num_fixed / n if n else 0.0

    def hard_fixture(self) -> List[int]:
        """Reduce to the engines' fixture vector.

        Singleton sets become hard fixes; OR sets (more than one allowed
        partition) are relaxed to FREE -- the engines treat the vertex as
        movable and :meth:`is_assignment_legal` re-checks the OR
        constraint on the final solution.
        """
        out = []
        for fs in self.fixture_sets:
            if fs is not None and len(fs) == 1:
                out.append(next(iter(fs)))
            else:
                out.append(FREE)
        return out

    def is_assignment_legal(self, parts: Sequence[int]) -> bool:
        """Whether ``parts`` satisfies every fixture set (OR semantics)."""
        return all(
            fs is None or p in fs
            for p, fs in zip(parts, self.fixture_sets)
        )

    def fix_vertex(self, vertex: int, partitions: Union[int, Sequence[int]]) -> None:
        """Fix ``vertex`` into one partition or any of several."""
        if isinstance(partitions, int):
            partitions = [partitions]
        fs = frozenset(partitions)
        for p in fs:
            if not 0 <= p < self.num_parts:
                raise ValueError(f"invalid partition {p}")
        if not fs:
            raise ValueError("fixture set must be non-empty")
        self.fixture_sets[vertex] = fs

    def free_vertex(self, vertex: int) -> None:
        """Remove any fixture constraint from ``vertex``."""
        self.fixture_sets[vertex] = None


def bipartition_instance(
    graph: Hypergraph,
    tolerance: float = 0.02,
    fixture: Optional[Sequence[int]] = None,
    pad_vertices: Sequence[int] = (),
    name: str = "instance",
) -> PartitioningInstance:
    """Convenience constructor for the paper's standard setting: 2-way,
    relative tolerance on actual areas, optional hard fixture vector."""
    fixture_sets: List[FixtureSet]
    if fixture is None:
        fixture_sets = [None] * graph.num_vertices
    else:
        fixture_sets = [
            None if f == FREE else frozenset([f]) for f in fixture
        ]
    return PartitioningInstance(
        graph=graph,
        num_parts=2,
        balance=relative_balance(graph.total_area, 2, tolerance),
        fixture_sets=fixture_sets,
        pad_vertices=list(pad_vertices),
        name=name,
    )
