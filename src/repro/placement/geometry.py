"""Planar geometry for top-down placement.

Axis-parallel rectangles and cutlines are all the geometry the paper's
benchmark construction needs: "A block is defined by a rectangular
axis-parallel bounding box.  An axis-parallel cutline bisects a given
block."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

VERTICAL = "V"
HORIZONTAL = "H"
AXES = (VERTICAL, HORIZONTAL)


@dataclass(frozen=True)
class Rect:
    """Axis-parallel rectangle ``[x0, x1] x [y0, y1]``."""

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self) -> None:
        if self.x1 < self.x0 or self.y1 < self.y0:
            raise ValueError(f"degenerate rectangle: {self}")

    @property
    def width(self) -> float:
        """Horizontal extent."""
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        """Vertical extent."""
        return self.y1 - self.y0

    @property
    def area(self) -> float:
        """Geometric area."""
        return self.width * self.height

    @property
    def center(self) -> Tuple[float, float]:
        """Midpoint."""
        return ((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)

    def contains(self, x: float, y: float) -> bool:
        """Closed containment test."""
        return self.x0 <= x <= self.x1 and self.y0 <= y <= self.y1

    def long_axis(self) -> str:
        """Cut direction splitting the longer dimension.

        A VERTICAL cutline is a vertical line (splits the width); ties
        go to VERTICAL, matching the convention of cutting wide blocks
        first in top-down placement.
        """
        return VERTICAL if self.width >= self.height else HORIZONTAL

    def split(self, axis: str, fraction: float = 0.5) -> Tuple["Rect", "Rect"]:
        """Split by a cutline; returns (low side, high side).

        ``fraction`` positions the cutline within the axis extent, so an
        area-proportional cut passes the partitioned area share.  Side 0
        is left of a vertical cutline / below a horizontal one.
        """
        if not 0.0 < fraction < 1.0:
            raise ValueError("fraction must be strictly inside (0, 1)")
        if axis == VERTICAL:
            xc = self.x0 + self.width * fraction
            return (
                Rect(self.x0, self.y0, xc, self.y1),
                Rect(xc, self.y0, self.x1, self.y1),
            )
        if axis == HORIZONTAL:
            yc = self.y0 + self.height * fraction
            return (
                Rect(self.x0, self.y0, self.x1, yc),
                Rect(self.x0, yc, self.x1, self.y1),
            )
        raise ValueError(f"unknown axis {axis!r}")


@dataclass(frozen=True)
class Cutline:
    """A bisecting cutline of a block: axis plus absolute position."""

    axis: str
    position: float

    def __post_init__(self) -> None:
        if self.axis not in AXES:
            raise ValueError(f"unknown axis {self.axis!r}")

    def side_of(self, x: float, y: float) -> int:
        """Which side a point falls on (0 = low coordinate side).

        Points exactly on the line go to side 0; the derivation's
        "closest partition" rule only needs a consistent convention.
        """
        coordinate = x if self.axis == VERTICAL else y
        return 0 if coordinate <= self.position else 1


def midline(block: Rect, axis: str) -> Cutline:
    """The cutline bisecting ``block`` at its geometric middle."""
    cx, cy = block.center
    return Cutline(axis=axis, position=cx if axis == VERTICAL else cy)
