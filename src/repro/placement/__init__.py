"""Placement substrate: geometry, top-down placer, benchmark derivation."""

from repro.placement.derive import (
    InstanceParameters,
    derive_instance,
    instance_parameters,
)
from repro.placement.geometry import (
    AXES,
    HORIZONTAL,
    VERTICAL,
    Cutline,
    Rect,
    midline,
)
from repro.placement.naming import block_name, block_region, parse_block_name
from repro.placement.objective import (
    terminal_positions_from_placement,
    wirelength_cost_model,
)
from repro.placement.placer import (
    Placement,
    PlacerConfig,
    TopDownPlacer,
    perimeter_pad_positions,
)
from repro.placement.suite import (
    SERIES_PATHS,
    BenchmarkSuite,
    SuiteEntry,
    build_suite,
    format_table,
    place_circuit,
)

__all__ = [
    "AXES",
    "HORIZONTAL",
    "SERIES_PATHS",
    "VERTICAL",
    "BenchmarkSuite",
    "Cutline",
    "InstanceParameters",
    "Placement",
    "PlacerConfig",
    "Rect",
    "SuiteEntry",
    "TopDownPlacer",
    "block_name",
    "block_region",
    "build_suite",
    "derive_instance",
    "format_table",
    "instance_parameters",
    "midline",
    "parse_block_name",
    "perimeter_pad_positions",
    "place_circuit",
    "terminal_positions_from_placement",
    "wirelength_cost_model",
]
