"""Deriving fixed-terminals partitioning instances from placements.

Section IV's construction, verbatim from the paper:

    "A block is defined by a rectangular axis-parallel bounding box.  An
    axis-parallel cutline bisects a given block.  Each cell contained in
    the block induces a movable vertex of the hypergraph.  Each pad
    adjacent to some cell in the block induces a zero-area terminal
    vertex of the hypergraph, fixed in the closest partition; adjacent
    cells not in the block similarly induce terminal vertices."

The construction deliberately creates more terminal vertices than there
are external nets ("this does not affect the partitioning problem since
pads have zero areas"); :func:`instance_parameters` reports both counts,
which is what Table IV tabulates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.instance import PartitioningInstance
from repro.hypergraph.hypergraph import Hypergraph
from repro.partition.balance import relative_balance
from repro.placement.geometry import Cutline, Rect, midline
from repro.placement.placer import Placement


def derive_instance(
    placement: Placement,
    block: Rect,
    cutline: Optional[Cutline] = None,
    axis: Optional[str] = None,
    tolerance: float = 0.02,
    name: str = "derived",
) -> PartitioningInstance:
    """Build the fixed-terminals bipartitioning instance of ``block``.

    Either pass an explicit ``cutline`` or an ``axis`` (the cutline then
    bisects the block at its midline).  Vertices of the instance are the
    in-block cells followed by the induced terminals; terminals are
    fixed in the cutline side nearest their placed location.
    """
    if cutline is None:
        if axis is None:
            raise ValueError("pass either cutline or axis")
        cutline = midline(block, axis)
    graph = placement.graph
    pads = set(placement.pad_vertices)

    inside: List[int] = []
    for v in range(graph.num_vertices):
        if v in pads:
            continue
        x, y = placement.positions[v]
        if block.contains(x, y):
            inside.append(v)
    inside_set = set(inside)

    local: Dict[int, int] = {v: i for i, v in enumerate(inside)}
    areas = [graph.area(v) for v in inside]
    names = [graph.vertex_name(v) for v in inside]
    fixture_sets: List[Optional[frozenset]] = [None] * len(inside)
    terminal_ids: List[int] = []

    nets: List[List[int]] = []
    weights: List[int] = []
    net_names: List[str] = []
    for e in range(graph.num_nets):
        pins = graph.net_pins(e)
        inside_pins = [v for v in pins if v in inside_set]
        if not inside_pins:
            continue
        net_local = [local[v] for v in inside_pins]
        for v in pins:
            if v in inside_set:
                continue
            if v not in local:
                local[v] = len(areas)
                areas.append(0.0)
                names.append(graph.vertex_name(v))
                x, y = placement.positions[v]
                fixture_sets.append(frozenset([cutline.side_of(x, y)]))
                terminal_ids.append(local[v])
            net_local.append(local[v])
        if len(net_local) >= 2:
            nets.append(net_local)
            weights.append(graph.net_weight(e))
            net_names.append(graph.net_name(e))

    sub = Hypergraph(
        nets,
        num_vertices=len(areas),
        areas=areas,
        net_weights=weights,
        vertex_names=names,
        net_names=net_names,
    )
    balance = relative_balance(sub.total_area, 2, tolerance)
    return PartitioningInstance(
        graph=sub,
        num_parts=2,
        balance=balance,
        fixture_sets=fixture_sets,
        pad_vertices=terminal_ids,
        name=name,
    )


@dataclass(frozen=True)
class InstanceParameters:
    """The Table IV row of one derived instance."""

    name: str
    num_cells: int
    num_terminals: int
    num_nets: int
    num_external_nets: int
    max_cell_area_percent: float

    def format_row(self) -> str:
        """Fixed-width row matching the Table IV layout."""
        return (
            f"{self.name:<16s} {self.num_cells:>8d} {self.num_terminals:>8d} "
            f"{self.num_nets:>8d} {self.num_external_nets:>8d} "
            f"{self.max_cell_area_percent:>7.2f}"
        )


def instance_parameters(instance: PartitioningInstance) -> InstanceParameters:
    """Compute the benchmark-parameter row for a derived instance."""
    graph = instance.graph
    terminals = set(instance.pad_vertices)
    external = 0
    for e in range(graph.num_nets):
        if any(v in terminals for v in graph.net_pins(e)):
            external += 1
    cell_areas = [
        graph.area(v)
        for v in range(graph.num_vertices)
        if v not in terminals
    ]
    total = sum(cell_areas)
    max_pct = 100.0 * max(cell_areas, default=0.0) / total if total else 0.0
    return InstanceParameters(
        name=instance.name,
        num_cells=graph.num_vertices - len(terminals),
        num_terminals=len(terminals),
        num_nets=graph.num_nets,
        num_external_nets=external,
        max_cell_area_percent=max_pct,
    )
