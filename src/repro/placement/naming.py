"""Instance naming for placement-derived benchmarks.

The paper names each partitioning instance "with the level at which it
occurs (L0, L1, etc.) and the partitioning choices at higher levels
which define it.  For instance, L1_V0 is the left block of a top-level
vertical bisection."  A block is therefore a path of (axis, side) steps
from the die.
"""

from __future__ import annotations

import re
from typing import List, Sequence, Tuple

from repro.placement.geometry import AXES, Rect

BlockPath = Sequence[Tuple[str, int]]
"""Steps from the die to a block: (axis, side) with side 0 = low."""

_STEP_RE = re.compile(r"^([VH])([01])$")


def block_name(path: BlockPath) -> str:
    """Name of the block reached via ``path`` (the die itself is L0)."""
    steps = [f"{axis}{side}" for axis, side in path]
    for axis, side in path:
        if axis not in AXES:
            raise ValueError(f"unknown axis {axis!r}")
        if side not in (0, 1):
            raise ValueError(f"invalid side {side}")
    if not steps:
        return "L0"
    return f"L{len(steps)}_" + "_".join(steps)


def parse_block_name(name: str) -> List[Tuple[str, int]]:
    """Inverse of :func:`block_name`."""
    parts = name.split("_")
    match = re.match(r"^L(\d+)$", parts[0])
    if not match:
        raise ValueError(f"bad block name {name!r}: missing level prefix")
    level = int(match.group(1))
    steps = parts[1:]
    if len(steps) != level:
        raise ValueError(
            f"bad block name {name!r}: level {level} but {len(steps)} steps"
        )
    path = []
    for step in steps:
        m = _STEP_RE.match(step)
        if not m:
            raise ValueError(f"bad block name {name!r}: step {step!r}")
        path.append((m.group(1), int(m.group(2))))
    return path


def block_region(die: Rect, path: BlockPath) -> Rect:
    """The block's bounding box under geometric (midpoint) bisections."""
    region = die
    for axis, side in path:
        low, high = region.split(axis)
        region = low if side == 0 else high
    return region
