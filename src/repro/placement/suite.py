"""Benchmark-suite construction (the paper's IBMxxA..D series).

From each circuit's placement the paper extracts four blocks (A..D) of
increasing depth in a slicing structure, each yielding two instances
(vertical and horizontal terminal assignments).  This module reproduces
that pipeline on our synthetic circuits: place, carve blocks, derive,
and collect the Table IV parameter rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.instance import PartitioningInstance
from repro.hypergraph.generators import SyntheticCircuit
from repro.placement.derive import (
    InstanceParameters,
    derive_instance,
    instance_parameters,
)
from repro.placement.geometry import HORIZONTAL, VERTICAL, Rect
from repro.placement.naming import BlockPath, block_name, block_region
from repro.placement.placer import Placement, PlacerConfig, TopDownPlacer

# The four blocks of the paper's series: the die, the left half, the
# lower-left quadrant, and the left half of that quadrant.
SERIES_PATHS: Dict[str, Tuple[Tuple[str, int], ...]] = {
    "A": (),
    "B": ((VERTICAL, 0),),
    "C": ((VERTICAL, 0), (HORIZONTAL, 0)),
    "D": ((VERTICAL, 0), (HORIZONTAL, 0), (VERTICAL, 0)),
}


@dataclass
class SuiteEntry:
    """One derived instance plus its Table IV parameters."""

    instance: PartitioningInstance
    parameters: InstanceParameters
    block: Rect
    path: BlockPath
    cut_axis: str


@dataclass
class BenchmarkSuite:
    """All instances derived from one placed circuit."""

    circuit_name: str
    placement: Placement
    entries: List[SuiteEntry] = field(default_factory=list)

    def table_rows(self) -> List[InstanceParameters]:
        """Table IV rows in derivation order."""
        return [entry.parameters for entry in self.entries]

    def instance(self, name: str) -> PartitioningInstance:
        """Look up an instance by its full name."""
        for entry in self.entries:
            if entry.instance.name == name:
                return entry.instance
        raise KeyError(f"no instance named {name!r}")


def place_circuit(
    circuit: SyntheticCircuit,
    die_size: float = 1000.0,
    config: Optional[PlacerConfig] = None,
    seed: int = 0,
) -> Placement:
    """Place a synthetic circuit on a square die."""
    die = Rect(0.0, 0.0, die_size, die_size)
    placer = TopDownPlacer(
        circuit.graph,
        die,
        pad_vertices=circuit.pad_vertices,
        config=config,
        seed=seed,
    )
    return placer.place()


def build_suite(
    circuit: SyntheticCircuit,
    circuit_name: str,
    placement: Optional[Placement] = None,
    tolerance: float = 0.02,
    min_block_cells: int = 16,
    placer_config: Optional[PlacerConfig] = None,
    seed: int = 0,
) -> BenchmarkSuite:
    """Derive the A..D x {V, H} instances of one circuit.

    Blocks that end up with fewer than ``min_block_cells`` placed cells
    are skipped (tiny deep blocks carry no benchmark signal).  Instance
    names follow ``<circuit><letter>_<level-name>_<axis>``, e.g.
    ``ibm01sB_L1_V0_H``.
    """
    if placement is None:
        placement = place_circuit(
            circuit, config=placer_config, seed=seed
        )
    suite = BenchmarkSuite(circuit_name=circuit_name, placement=placement)
    pads = set(placement.pad_vertices)
    for letter, path in SERIES_PATHS.items():
        block = block_region(placement.die, path)
        cells_in_block = sum(
            1
            for v in range(placement.graph.num_vertices)
            if v not in pads and block.contains(*placement.positions[v])
        )
        if cells_in_block < min_block_cells:
            continue
        for axis in (VERTICAL, HORIZONTAL):
            name = f"{circuit_name}{letter}_{block_name(path)}_{axis}"
            instance = derive_instance(
                placement,
                block,
                axis=axis,
                tolerance=tolerance,
                name=name,
            )
            suite.entries.append(
                SuiteEntry(
                    instance=instance,
                    parameters=instance_parameters(instance),
                    block=block,
                    path=path,
                    cut_axis=axis,
                )
            )
    return suite


TABLE_IV_HEADER = (
    f"{'instance':<16s} {'cells':>8s} {'pads':>8s} "
    f"{'nets':>8s} {'extnets':>8s} {'Max%':>7s}"
)


def format_table(suites: List[BenchmarkSuite]) -> str:
    """Render Table IV for a list of suites."""
    lines = [TABLE_IV_HEADER]
    for suite in suites:
        for row in suite.table_rows():
            lines.append(row.format_row())
    return "\n".join(lines)
