"""Placement-driven net cost models (the paper's footnote 7).

"Flexible assignment of fixed terminals ... enables study of
placement-specific partitioning objectives, for example based on net
bounding boxes and Steiner tree estimators."  This module derives such
an objective for a block bisection: each net's cost in each of its
three states (all pins low side / all high side / cut) is the
half-perimeter of the bounding box spanned by the net's *terminal*
locations plus representative points of the sides its movable pins
occupy -- the Dunlop--Kernighan / Huang--Kahng terminal-propagation
wirelength estimate.

Minimising this objective makes the partitioner prefer, for each net,
the side its external terminals already pull it toward, rather than
merely minimising the number of cut nets.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.instance import PartitioningInstance
from repro.partition.costfm import NetCostModel
from repro.placement.geometry import Cutline, Rect, midline

Point = Tuple[float, float]


def _bbox_half_perimeter(points: Sequence[Point]) -> float:
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    return (max(xs) - min(xs)) + (max(ys) - min(ys))


def wirelength_cost_model(
    instance: PartitioningInstance,
    block: Rect,
    terminal_positions: Dict[int, Point],
    cutline: Optional[Cutline] = None,
    scale: float = 1.0,
) -> NetCostModel:
    """Three-state HPWL costs for a derived block instance.

    ``terminal_positions`` maps the instance's terminal vertex ids to
    their placed locations.  Movable pins are represented by the centre
    of the child region their side corresponds to.  Costs are rounded
    to integers after multiplying by ``scale`` (use a larger scale for
    finer geometric resolution).

    Nets with no movable pins get identical state costs (their cost is
    a constant the engine ignores); nets with no terminals reduce to a
    center-to-center distance penalty for being cut -- a pure min-cut
    term weighted by the cut geometry.
    """
    graph = instance.graph
    if cutline is None:
        cutline = midline(block, block.long_axis())
    low, high = block.split(cutline.axis)
    side_points = (low.center, high.center)

    terminals = set(instance.pad_vertices)
    cost0: List[int] = []
    cost1: List[int] = []
    cost_cut: List[int] = []
    for e in range(graph.num_nets):
        pins = graph.net_pins(e)
        term_points = [
            terminal_positions[v] for v in pins if v in terminals
        ]
        has_movable = any(v not in terminals for v in pins)
        weight = graph.net_weight(e)

        if not has_movable:
            constant = (
                round(scale * _bbox_half_perimeter(term_points))
                if term_points
                else 0
            )
            cost0.append(constant)
            cost1.append(constant)
            cost_cut.append(constant)
            continue

        all0 = _bbox_half_perimeter(term_points + [side_points[0]])
        all1 = _bbox_half_perimeter(term_points + [side_points[1]])
        cut = _bbox_half_perimeter(
            term_points + [side_points[0], side_points[1]]
        )
        cost0.append(round(scale * weight * all0))
        cost1.append(round(scale * weight * all1))
        cost_cut.append(round(scale * weight * cut))
    return NetCostModel(cost0=cost0, cost1=cost1, cost_cut=cost_cut)


def terminal_positions_from_placement(
    instance: PartitioningInstance,
    placement_positions: Sequence[Point],
    original_ids: Optional[Dict[str, int]] = None,
) -> Dict[int, Point]:
    """Locate the instance's terminals in the source placement.

    Derived instances carry the original vertex names, so terminals are
    resolved by name.  ``original_ids`` (name -> original vertex id)
    may be passed to avoid rebuilding the map per call.
    """
    graph = instance.graph
    out: Dict[int, Point] = {}
    if original_ids is None:
        raise ValueError(
            "original_ids is required (map names to source vertex ids)"
        )
    for t in instance.pad_vertices:
        name = graph.vertex_name(t)
        if name not in original_ids:
            raise KeyError(f"terminal {name!r} not found in placement")
        out[t] = placement_positions[original_ids[name]]
    return out
