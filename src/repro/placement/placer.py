"""Top-down recursive-bisection standard-cell placer.

The paper derives its fixed-terminals benchmarks from *actual
placements*.  Lacking IBM's internal placements, this placer produces
them: the classic Dunlop--Kernighan / Suaris--Kedem scheme of recursive
min-cut bisection with terminal propagation, the very context the paper
argues generates all real partitioning instances.

Every block bisection is itself a fixed-vertices partitioning call: pins
of external nets (chip pads or cells already assigned to other blocks)
are propagated onto the block as zero-area terminals fixed in the side
of the cutline nearest to their current location.  The placer is thus
both a substrate (it manufactures placements to derive benchmarks from)
and a demonstration of the paper's thesis.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hypergraph.hypergraph import Hypergraph
from repro.partition.balance import relative_bipartition_balance
from repro.partition.multilevel import (
    MultilevelBipartitioner,
    MultilevelConfig,
)
from repro.partition.solution import FREE
from repro.placement.geometry import Rect, midline

Point = Tuple[float, float]


@dataclass
class Placement:
    """Cell/pad locations over a die region."""

    die: Rect
    positions: List[Point]
    graph: Hypergraph
    pad_vertices: List[int] = field(default_factory=list)

    def position(self, vertex: int) -> Point:
        """Location of ``vertex``."""
        return self.positions[vertex]

    def half_perimeter_wirelength(self) -> float:
        """Total HPWL -- the standard placement quality metric."""
        total = 0.0
        for e in range(self.graph.num_nets):
            pins = self.graph.net_pins(e)
            if len(pins) < 2:
                continue
            xs = [self.positions[v][0] for v in pins]
            ys = [self.positions[v][1] for v in pins]
            total += (max(xs) - min(xs)) + (max(ys) - min(ys))
        return total


@dataclass(frozen=True)
class PlacerConfig:
    """Top-down placer parameters.

    ``leaf_size`` stops the recursion; ``tolerance`` is the per-bisection
    area tolerance (looser than the paper's partitioning studies -- a
    placer mainly needs rough halves); ``multilevel`` configures each
    bisection's engine.
    """

    leaf_size: int = 8
    tolerance: float = 0.1
    multilevel: MultilevelConfig = field(
        default_factory=lambda: MultilevelConfig(
            coarsest_size=60, initial_starts=2
        )
    )

    def __post_init__(self) -> None:
        if self.leaf_size < 1:
            raise ValueError("leaf_size must be positive")
        if not 0 < self.tolerance < 1:
            raise ValueError("tolerance must be in (0, 1)")


def perimeter_pad_positions(
    die: Rect, pad_vertices: Sequence[int]
) -> Dict[int, Point]:
    """Spread pads evenly around the die boundary, clockwise from the
    lower-left corner."""
    pads = list(pad_vertices)
    if not pads:
        return {}
    perimeter = 2.0 * (die.width + die.height)
    out: Dict[int, Point] = {}
    for i, pad in enumerate(pads):
        d = (i + 0.5) * perimeter / len(pads)
        if d < die.width:
            out[pad] = (die.x0 + d, die.y0)
        elif d < die.width + die.height:
            out[pad] = (die.x1, die.y0 + (d - die.width))
        elif d < 2 * die.width + die.height:
            out[pad] = (
                die.x1 - (d - die.width - die.height),
                die.y1,
            )
        else:
            out[pad] = (
                die.x0,
                die.y1 - (d - 2 * die.width - die.height),
            )
    return out


class TopDownPlacer:
    """Recursive min-cut bisection placement with terminal propagation."""

    def __init__(
        self,
        graph: Hypergraph,
        die: Rect,
        pad_positions: Optional[Dict[int, Point]] = None,
        pad_vertices: Sequence[int] = (),
        config: Optional[PlacerConfig] = None,
        seed: int = 0,
    ) -> None:
        self.graph = graph
        self.die = die
        self.config = config or PlacerConfig()
        self.seed = seed
        self._pads = list(pad_vertices)
        if pad_positions is None:
            pad_positions = perimeter_pad_positions(die, self._pads)
        self._pad_positions = dict(pad_positions)
        for pad in self._pads:
            if pad not in self._pad_positions:
                raise ValueError(f"pad {pad} has no position")

    # ------------------------------------------------------------------
    def place(self) -> Placement:
        """Run the full top-down flow and return the placement."""
        graph = self.graph
        n = graph.num_vertices
        rng = random.Random(self.seed)
        pad_set = set(self._pads)
        cells = [v for v in range(n) if v not in pad_set]

        # Current anchor of every vertex: pads are final from the start,
        # cells track the center of their current block.
        anchor: List[Point] = [self.die.center] * n
        for pad, pos in self._pad_positions.items():
            anchor[pad] = pos

        positions: List[Point] = list(anchor)
        stack: List[Tuple[Rect, List[int]]] = [(self.die, cells)]
        while stack:
            region, block = stack.pop()
            if len(block) <= self.config.leaf_size:
                self._place_leaf(region, block, positions)
                continue
            side0, side1, fraction, axis = self._bisect_block(
                region, block, anchor, rng
            )
            low, high = region.split(axis, fraction)
            for v in side0:
                anchor[v] = low.center
            for v in side1:
                anchor[v] = high.center
            stack.append((low, side0))
            stack.append((high, side1))

        for pad, pos in self._pad_positions.items():
            positions[pad] = pos
        return Placement(
            die=self.die,
            positions=positions,
            graph=graph,
            pad_vertices=list(self._pads),
        )

    # ------------------------------------------------------------------
    def _bisect_block(
        self,
        region: Rect,
        block: List[int],
        anchor: List[Point],
        rng: random.Random,
    ) -> Tuple[List[int], List[int], float, str]:
        """Split ``block`` along the long axis of ``region``.

        Returns (low-side cells, high-side cells, cut fraction, axis).
        The cut fraction follows the realised area split so downstream
        regions have capacity matching their load.
        """
        graph = self.graph
        axis = region.long_axis()
        cut = midline(region, axis)
        inside = set(block)

        # Build the block instance: movable cells plus propagated
        # terminals for every external pin of a net touching the block.
        sub_nets: List[List[int]] = []
        sub_weights: List[int] = []
        local: Dict[int, int] = {v: i for i, v in enumerate(block)}
        areas = [graph.area(v) for v in block]
        fixture = [FREE] * len(block)
        nets_seen = set()
        for v in block:
            for e in graph.vertex_nets(v):
                if e in nets_seen:
                    continue
                nets_seen.add(e)
                pins = graph.net_pins(e)
                inside_pins = [u for u in pins if u in inside]
                if not inside_pins:
                    continue
                net_local = [local[u] for u in inside_pins]
                for u in pins:
                    if u in inside:
                        continue
                    if u not in local:
                        local[u] = len(areas)
                        areas.append(0.0)
                        x, y = anchor[u]
                        fixture.append(cut.side_of(x, y))
                    net_local.append(local[u])
                if len(net_local) >= 2:
                    sub_nets.append(net_local)
                    sub_weights.append(graph.net_weight(e))

        sub = Hypergraph(
            sub_nets,
            num_vertices=len(areas),
            areas=areas,
            net_weights=sub_weights,
        )
        balance = relative_bipartition_balance(
            sum(graph.area(v) for v in block), self.config.tolerance
        )
        engine = MultilevelBipartitioner(
            sub,
            balance=balance,
            fixture=fixture,
            config=self.config.multilevel,
        )
        parts = engine.run(seed=rng.getrandbits(32)).solution.parts

        side0 = [v for v in block if parts[local[v]] == 0]
        side1 = [v for v in block if parts[local[v]] == 1]
        if not side0 or not side1:
            # Degenerate split (pathological balance); fall back to an
            # area-halving order split so the recursion always advances.
            ordered = sorted(block, key=graph.area, reverse=True)
            side0, side1 = ordered[0::2], ordered[1::2]

        area0 = sum(graph.area(v) for v in side0)
        area1 = sum(graph.area(v) for v in side1)
        total = area0 + area1
        fraction = area0 / total if total > 0 else 0.5
        fraction = min(0.9, max(0.1, fraction))
        return side0, side1, fraction, axis

    def _place_leaf(
        self, region: Rect, block: List[int], positions: List[Point]
    ) -> None:
        """Spread a leaf block's cells on a grid inside its region."""
        if not block:
            return
        k = len(block)
        cols = max(1, math.ceil(math.sqrt(k)))
        rows = max(1, math.ceil(k / cols))
        for i, v in enumerate(sorted(block)):
            r, c = divmod(i, cols)
            x = region.x0 + (c + 0.5) * region.width / cols
            y = region.y0 + (r + 0.5) * region.height / rows
            positions[v] = (x, y)
