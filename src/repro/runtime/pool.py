"""Ordered process-pool map with a deterministic serial fallback.

:func:`parallel_map` is the single fan-out primitive of the repo.  Its
contract:

* results come back in *input order*, regardless of completion order;
* the task object is shipped to each worker exactly once (via the pool
  initializer), so a task carrying a large hypergraph pays one
  flat-buffer serialization per worker, not one per item;
* ``jobs=1`` runs inline with zero pool machinery, and any environment
  where a process pool cannot be created or fed (sandboxes without
  ``fork``/semaphores, unpicklable closures) degrades to the same
  serial path with a :class:`SerialFallbackWarning` -- results are
  identical either way, only the wall clock changes.
"""

from __future__ import annotations

import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, List, Optional, Sequence

from repro.runtime.timing import timed_call


class SerialFallbackWarning(RuntimeWarning):
    """Emitted when a requested process pool degrades to serial."""


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise the ``jobs`` knob.

    ``None`` or ``0`` means "one worker per available core" (respecting
    CPU affinity masks where the platform exposes them); any positive
    value is taken literally.
    """
    if jobs is None or jobs == 0:
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except AttributeError:  # pragma: no cover - non-Linux
            return max(1, os.cpu_count() or 1)
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


# Per-worker state, installed once by the pool initializer.  Globals are
# the standard ProcessPoolExecutor idiom for worker-lifetime caches: the
# task (and the hypergraph buffers inside it) is deserialized once per
# worker process instead of once per submitted item.
_WORKER_TASK: Optional[Callable[[Any], Any]] = None
_WORKER_TIMED = False


def _init_worker(task: Callable[[Any], Any], timed: bool) -> None:
    global _WORKER_TASK, _WORKER_TIMED
    _WORKER_TASK = task
    _WORKER_TIMED = timed


def _run_item(item: Any) -> Any:
    assert _WORKER_TASK is not None, "worker initializer did not run"
    if _WORKER_TIMED:
        return timed_call(_WORKER_TASK, item)
    return _WORKER_TASK(item)


def _serial_map(
    task: Callable[[Any], Any], items: Sequence[Any], timed: bool
) -> List[Any]:
    if timed:
        return [timed_call(task, item) for item in items]
    return [task(item) for item in items]


def parallel_map(
    task: Callable[[Any], Any],
    items: Sequence[Any],
    jobs: int = 1,
    timed: bool = False,
) -> List[Any]:
    """``[task(item) for item in items]``, fanned over ``jobs`` processes.

    ``task`` must be picklable (a module-level function or a dataclass
    instance with module-level class) when ``jobs > 1``; per-item work
    must be deterministic in the item alone, which is what makes the
    output independent of ``jobs``.  With ``timed=True`` each result is
    wrapped in a :class:`repro.runtime.timing.TimedCall` measured inside
    the executing process.

    Exceptions raised *by the task* propagate to the caller; failures of
    the pool machinery itself trigger a serial re-run (the task contract
    makes re-execution safe).
    """
    jobs = resolve_jobs(jobs)
    items = list(items)
    jobs = min(jobs, len(items)) or 1
    if jobs <= 1:
        return _serial_map(task, items, timed)

    try:
        payload = pickle.dumps(task)
    except Exception as exc:  # noqa: BLE001 - any pickling failure
        warnings.warn(
            f"task {task!r} is not picklable ({exc}); running serially",
            SerialFallbackWarning,
            stacklevel=2,
        )
        return _serial_map(task, items, timed)
    del payload

    chunksize = max(1, len(items) // (jobs * 4))
    try:
        with ProcessPoolExecutor(
            max_workers=jobs,
            initializer=_init_worker,
            initargs=(task, timed),
        ) as pool:
            return list(pool.map(_run_item, items, chunksize=chunksize))
    except (BrokenProcessPool, OSError, PermissionError) as exc:
        warnings.warn(
            f"process pool unavailable ({exc}); running serially",
            SerialFallbackWarning,
            stacklevel=2,
        )
        return _serial_map(task, items, timed)
