"""Ordered, fault-tolerant process-pool map with a serial fallback.

:func:`parallel_map` is the single fan-out primitive of the repo.  Its
contract:

* results come back in *input order*, regardless of completion order;
* the task object is shipped to each worker exactly once (via the pool
  initializer), so a task carrying a large hypergraph pays one
  flat-buffer serialization per worker, not one per item;
* ``jobs=1`` runs inline with zero pool machinery, and any environment
  where a process pool cannot be created or fed (sandboxes without
  ``fork``/semaphores, unpicklable closures) degrades to the same
  serial path with a single :class:`SerialFallbackWarning` -- results
  are identical either way, only the wall clock changes;
* a worker that **crashes** or **hangs** no longer takes the study
  down: the affected items are resubmitted to a respawned pool under a
  deterministic :class:`RetryPolicy`, per-item wall-clock timeouts
  reclaim hung workers, and an :class:`~repro.runtime.errors.ItemFailed`
  (or, with ``quarantine=True``, a null-result
  :class:`~repro.runtime.errors.Quarantined` row) marks the rare item
  that keeps failing;
* with a :class:`~repro.runtime.checkpoint.CheckpointBatch`, every
  completed item is journaled durably and already-journaled items are
  skipped -- a killed sweep resumes mid-table with bit-identical
  results.

Because per-item work is deterministic in the item alone (the repo-wide
task contract), re-executing a lost item is always safe and always
reproduces the result the uninterrupted run would have produced.
"""

from __future__ import annotations

import os
import pickle
import random
import time
import traceback
import warnings
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Union,
)

from repro.runtime import observe
from repro.runtime.checkpoint import CheckpointBatch, is_miss
from repro.runtime.observe import TracedValue, TraceRecorder
from repro.runtime.errors import (
    ItemFailed,
    PoolFault,
    Quarantined,
    QuarantineWarning,
    WorkerCrash,
    WorkerTimeout,
    seed_of,
)
from repro.runtime.faults import FaultPlan, resolve_plan
from repro.runtime.timing import timed_call


class SerialFallbackWarning(RuntimeWarning):
    """Emitted (once per ``parallel_map`` call) when a requested
    process pool degrades to serial.  The triggering exception is
    chained as ``__cause__`` and also exposed as ``.cause``."""


JOBS_ENV = "REPRO_JOBS"
_JOBS_MESSAGE = "jobs must be >= 0 (0 = all cores), got {got}"


def parse_jobs(value: Union[int, str]) -> int:
    """Validate a ``jobs`` value from any source (CLI, env, API).

    Accepts non-negative integers or their string forms; every caller
    gets the same error message shape on rejection.
    """
    if isinstance(value, str):
        try:
            value = int(value.strip())
        except ValueError:
            raise ValueError(_JOBS_MESSAGE.format(got=repr(value))) from None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(_JOBS_MESSAGE.format(got=repr(value)))
    if value < 0:
        raise ValueError(_JOBS_MESSAGE.format(got=value))
    return value


def jobs_from_env(default: Optional[int] = None) -> Optional[int]:
    """The ``REPRO_JOBS`` override, validated, or ``default`` if unset."""
    raw = os.environ.get(JOBS_ENV)
    if raw is None or not raw.strip():
        return default
    return parse_jobs(raw)


def resolve_jobs(jobs: Optional[Union[int, str]]) -> int:
    """Normalise the ``jobs`` knob.

    ``None`` means "``REPRO_JOBS`` if set, else one worker per core";
    ``0`` means "one worker per available core" (respecting CPU
    affinity masks where the platform exposes them); any positive value
    is taken literally.  Strings are parsed with the same validation as
    the CLI, so ``REPRO_JOBS`` values can be passed through verbatim.
    """
    if jobs is None:
        jobs = jobs_from_env(default=0)
    jobs = parse_jobs(jobs)
    if jobs == 0:
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except AttributeError:  # pragma: no cover - non-Linux
            return max(1, os.cpu_count() or 1)
    return jobs


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with deterministic exponential backoff.

    ``max_attempts`` is the total execution budget per item (3 means:
    first try plus two retries).  Backoff for attempt ``a`` is
    ``min(backoff_max, backoff_base * backoff_factor**(a-1))`` scaled
    by seeded jitter -- deterministic in ``(jitter_seed, item index,
    attempt)``, so two runs of the same study back off identically.
    ``retry_task_errors`` extends the retry budget to exceptions raised
    *by the task itself* (off by default: a deterministic task raises
    deterministically, so retrying is only useful against injected or
    environmental flakiness).
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.25
    jitter_seed: int = 0
    retry_task_errors: bool = False

    def delay(self, index: int, attempt: int) -> float:
        """Backoff before retrying ``index`` after failed ``attempt``."""
        bounded = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** max(0, attempt - 1),
        )
        rng = random.Random(f"{self.jitter_seed}:{index}:{attempt}")
        return bounded * (1.0 + self.jitter * rng.random())


@dataclass(frozen=True)
class ExecutionPolicy:
    """The fault-tolerance knobs of one ``parallel_map`` invocation.

    ``timeout`` is the per-item wall-clock budget in seconds (measured
    from the item's submission to a worker; the submission window never
    exceeds the worker count, so queue wait does not eat the budget).
    ``quarantine=True`` turns retry-exhausted items into
    :class:`~repro.runtime.errors.Quarantined` null-result rows instead
    of aborting the whole map.
    """

    timeout: Optional[float] = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    quarantine: bool = False


DEFAULT_POLICY = ExecutionPolicy()


# Per-worker state, installed once by the pool initializer.  Globals are
# the standard ProcessPoolExecutor idiom for worker-lifetime caches: the
# task (and the hypergraph buffers inside it) is deserialized once per
# worker process instead of once per submitted item.
_WORKER_TASK: Optional[Callable[[Any], Any]] = None
_WORKER_TIMED = False
_WORKER_PLAN: Optional[FaultPlan] = None
_WORKER_OBSERVED = False


def _init_worker(
    task: Callable[[Any], Any],
    timed: bool,
    plan: Optional[FaultPlan],
    observed: bool = False,
) -> None:
    global _WORKER_TASK, _WORKER_TIMED, _WORKER_PLAN, _WORKER_OBSERVED
    _WORKER_TASK = task
    _WORKER_TIMED = timed
    _WORKER_PLAN = plan
    _WORKER_OBSERVED = observed


def _run_item(index: int, item: Any) -> Any:
    assert _WORKER_TASK is not None, "worker initializer did not run"
    if _WORKER_PLAN is not None:
        _WORKER_PLAN.fire(index)
    if not _WORKER_OBSERVED:
        if _WORKER_TIMED:
            return timed_call(_WORKER_TASK, item)
        return _WORKER_TASK(item)
    # Tracing enabled in the parent: record this item into a fresh
    # recorder and ship the fragment home with the result.  Faults fire
    # *before* the recorder exists, and a crashed/hung/raising attempt
    # never returns a fragment -- so a retried item contributes spans
    # and counters exactly once, from its successful attempt.
    recorder = TraceRecorder()
    with observe.use(recorder):
        if _WORKER_TIMED:
            value = timed_call(_WORKER_TASK, item)
        else:
            value = _WORKER_TASK(item)
    return TracedValue(value, recorder.fragment())


def _format_traceback(exc: BaseException) -> str:
    return "".join(
        traceback.format_exception(type(exc), exc, exc.__traceback__)
    )


def _warn_serial_fallback(message: str, cause: Optional[BaseException]) -> None:
    recorder = observe.active()
    if recorder.enabled:
        recorder.count("pool.serial_fallbacks")
    warning = SerialFallbackWarning(
        f"{message}; running serially"
        + (f" (caused by {cause!r})" if cause is not None else "")
    )
    warning.__cause__ = cause
    warning.cause = cause
    warnings.warn(warning, stacklevel=3)


def parallel_map(
    task: Callable[[Any], Any],
    items: Sequence[Any],
    jobs: Optional[Union[int, str]] = 1,
    timed: bool = False,
    policy: Optional[ExecutionPolicy] = None,
    checkpoint: Optional[CheckpointBatch] = None,
    faults: Optional[FaultPlan] = None,
) -> List[Any]:
    """``[task(item) for item in items]``, fanned over ``jobs`` processes.

    ``task`` must be picklable (a module-level function or a dataclass
    instance with module-level class) when ``jobs > 1``; per-item work
    must be deterministic in the item alone, which is what makes the
    output independent of ``jobs`` -- and makes re-executing items lost
    to crashes, timeouts or a killed driver safe.  With ``timed=True``
    each result is wrapped in a :class:`repro.runtime.timing.TimedCall`
    measured inside the executing process.

    ``policy`` configures timeouts, retries and quarantine (see
    :class:`ExecutionPolicy`); ``checkpoint`` makes completed items
    durable and skips items already journaled; ``faults`` injects
    deterministic failures for testing (defaults to the ``REPRO_FAULTS``
    environment plan).

    Exceptions raised *by the task* propagate to the caller unchanged
    (unless retried or quarantined by ``policy``); failures of the pool
    machinery itself are retried against respawned pools and degrade to
    a serial re-run only as a last resort.
    """
    jobs = resolve_jobs(jobs)
    items = list(items)
    policy = policy or DEFAULT_POLICY
    plan = resolve_plan(faults)

    results: List[Any] = [None] * len(items)
    pending: List[int] = list(range(len(items)))
    recorder = observe.active()
    if checkpoint is not None:
        missing = []
        for i in pending:
            hit = checkpoint.lookup(i, items[i])
            if is_miss(hit):
                missing.append(i)
            else:
                results[i] = hit
        if recorder.enabled and len(missing) < len(pending):
            # Journaled cells are served without re-execution, so they
            # leave no spans in the trace -- this counter is the audit
            # trail for why a resumed study's trace looks thinner.
            recorder.count(
                "pool.journal_hits", len(pending) - len(missing)
            )
        pending = missing
    if not pending:
        return results

    jobs = min(jobs, len(pending))
    if jobs <= 1:
        _serial_run(task, items, pending, results, timed,
                    policy, checkpoint, plan)
        return results

    try:
        payload = pickle.dumps(task)
    except Exception as exc:  # noqa: BLE001 - any pickling failure
        _warn_serial_fallback(f"task {task!r} is not picklable", exc)
        _serial_run(task, items, pending, results, timed,
                    policy, checkpoint, plan)
        return results
    del payload

    _pool_run(task, items, pending, results, jobs, timed,
              policy, checkpoint, plan)
    return results


def _serial_run(
    task: Callable[[Any], Any],
    items: Sequence[Any],
    pending: Sequence[int],
    results: List[Any],
    timed: bool,
    policy: ExecutionPolicy,
    checkpoint: Optional[CheckpointBatch],
    plan: Optional[FaultPlan],
) -> None:
    """Inline execution honoring checkpoint/retry/quarantine.

    Per-item timeouts do not apply inline (there is no worker to
    reclaim); a serial ``crash`` fault takes down the driver itself,
    which is the scenario the checkpoint journal exists for.
    """
    retry = policy.retry
    recorder = observe.active()
    for i in pending:
        attempt = 0
        while True:
            attempt += 1
            try:
                if plan is not None:
                    plan.fire(i)
                value = timed_call(task, items[i]) if timed else task(items[i])
            except Exception as exc:  # noqa: BLE001 - routed by policy
                if retry.retry_task_errors and attempt < retry.max_attempts:
                    if recorder.enabled:
                        recorder.count("pool.retries")
                    time.sleep(retry.delay(i, attempt))
                    continue
                _fail_item(i, items[i], attempt, exc, policy, checkpoint,
                           results, raise_original=not retry.retry_task_errors)
                break
            results[i] = value
            if recorder.enabled:
                recorder.count("pool.items_executed")
            if checkpoint is not None:
                checkpoint.record(i, items[i], value)
            break


def _fail_item(
    index: int,
    item: Any,
    attempts: int,
    fault: BaseException,
    policy: ExecutionPolicy,
    checkpoint: Optional[CheckpointBatch],
    results: List[Any],
    raise_original: bool = False,
) -> None:
    """Terminal handling of an item that exhausted its budget.

    Quarantine leaves a :class:`Quarantined` null row (journaled with
    its reason) and warns; otherwise the failure propagates -- as the
    original exception for unretried task errors (back-compat), or as
    a structured :class:`ItemFailed` chained to the last fault.
    """
    reason = f"{type(fault).__name__}: {fault}"
    if policy.quarantine:
        recorder = observe.active()
        if recorder.enabled:
            recorder.count("pool.quarantined")
        row = Quarantined(
            index=index, seed=seed_of(item), attempts=attempts, reason=reason
        )
        results[index] = row
        if checkpoint is not None:
            checkpoint.record_quarantine(index, item, reason)
        warnings.warn(
            QuarantineWarning(
                f"item {index} quarantined after {attempts} attempt(s): "
                f"{reason}"
            ),
            stacklevel=4,
        )
        return
    if raise_original and not isinstance(fault, PoolFault):
        raise fault
    failure = ItemFailed(
        f"item {index} failed after {attempts} attempt(s): {reason}",
        index=index,
        seed=seed_of(item),
        attempt=attempts,
        traceback_text=(
            fault.traceback_text
            if isinstance(fault, PoolFault)
            else _format_traceback(fault)
        ),
    )
    raise failure from fault


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Hard-stop a pool whose workers may be hung or dead."""
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:  # noqa: BLE001 - best-effort teardown
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # noqa: BLE001 - best-effort teardown
        pass


def _pool_run(
    task: Callable[[Any], Any],
    items: Sequence[Any],
    pending: Sequence[int],
    results: List[Any],
    jobs: int,
    timed: bool,
    policy: ExecutionPolicy,
    checkpoint: Optional[CheckpointBatch],
    plan: Optional[FaultPlan],
) -> None:
    """The hardened parallel engine (windowed submission).

    At most ``jobs`` items are in flight, so a submitted item starts
    (almost) immediately and its per-item deadline measures run time,
    not queue time.  Worker crashes and timeouts tear the pool down,
    requeue the lost items (counting an attempt only against the items
    actually implicated), and respawn; repeated barren respawns degrade
    to the serial path.
    """
    retry = policy.retry
    recorder = observe.active()
    observed = recorder.enabled
    queue = deque(pending)
    attempts: Dict[int, int] = {i: 0 for i in pending}
    pool: Optional[ProcessPoolExecutor] = None
    in_flight: Dict[Any, int] = {}
    deadlines: Dict[Any, float] = {}
    # index -> worker trace fragment, merged *after* the map completes
    # in index order -- the merged span sequence then matches what a
    # serial run records, whatever order the pool finished items in.
    fragments: Dict[int, dict] = {}
    completed_since_spawn = 0
    barren_spawns = 0

    def merge_fragments() -> None:
        for index in sorted(fragments):
            recorder.merge_fragment(fragments[index])
        fragments.clear()

    def fallback_serial(message: str, cause: Optional[BaseException]) -> None:
        remaining = sorted(set(queue) | set(in_flight.values()))
        in_flight.clear()
        deadlines.clear()
        if pool is not None:
            _terminate_pool(pool)
        merge_fragments()
        _warn_serial_fallback(message, cause)
        _serial_run(task, items, remaining, results, timed,
                    policy, checkpoint, plan)

    def retire(index: int, fault: PoolFault) -> bool:
        """Count a failed attempt; requeue or terminally fail.

        Returns True when the engine should keep going (the item was
        requeued or quarantined)."""
        if observed:
            if isinstance(fault, WorkerTimeout):
                recorder.count("pool.worker_timeouts")
            elif isinstance(fault, WorkerCrash):
                recorder.count("pool.worker_crashes")
        attempts[index] += 1
        if attempts[index] < retry.max_attempts:
            if observed:
                recorder.count("pool.retries")
            queue.append(index)
            return True
        if policy.quarantine:
            _fail_item(index, items[index], attempts[index], fault,
                       policy, checkpoint, results)
            return True
        if pool is not None:
            _terminate_pool(pool)
        _fail_item(index, items[index], attempts[index], fault,
                   policy, checkpoint, results)
        return False  # pragma: no cover - _fail_item raised

    while queue or in_flight:
        if pool is None:
            try:
                pool = ProcessPoolExecutor(
                    max_workers=jobs,
                    initializer=_init_worker,
                    initargs=(task, timed, plan, observed),
                )
            except (OSError, PermissionError, ValueError) as exc:
                fallback_serial("process pool unavailable", exc)
                return
            completed_since_spawn = 0

        try:
            while queue and len(in_flight) < jobs:
                i = queue.popleft()
                future = pool.submit(_run_item, i, items[i])
                in_flight[future] = i
                if policy.timeout is not None:
                    deadlines[future] = time.monotonic() + policy.timeout
        except (OSError, PermissionError, RuntimeError) as exc:
            fallback_serial("process pool cannot accept work", exc)
            return

        wait_timeout = None
        if deadlines:
            wait_timeout = max(
                0.0, min(deadlines.values()) - time.monotonic()
            )
        wait(set(in_flight), timeout=wait_timeout,
             return_when=FIRST_COMPLETED)

        # Harvest everything that finished (the wait() set may lag).
        crash: Optional[BrokenProcessPool] = None
        for future in [f for f in in_flight if f.done()]:
            i = in_flight.pop(future)
            deadlines.pop(future, None)
            try:
                value = future.result()
            except BrokenProcessPool as exc:
                crash = exc
                fault = WorkerCrash(
                    f"worker died while running item {i} "
                    f"(attempt {attempts[i] + 1}): {exc}",
                    index=i,
                    seed=seed_of(items[i]),
                    attempt=attempts[i] + 1,
                )
                fault.__cause__ = exc
                retire(i, fault)
                continue
            except Exception as exc:  # noqa: BLE001 - task-level error
                if retry.retry_task_errors:
                    fault = ItemFailed(
                        f"task error on item {i}: {exc}",
                        index=i,
                        seed=seed_of(items[i]),
                        attempt=attempts[i] + 1,
                        traceback_text=_format_traceback(exc),
                    )
                    fault.__cause__ = exc
                    if retire(i, fault):
                        time.sleep(retry.delay(i, attempts[i]))
                        continue
                if policy.quarantine:
                    attempts[i] += 1
                    _fail_item(i, items[i], attempts[i], exc,
                               policy, checkpoint, results)
                    continue
                _terminate_pool(pool)
                raise exc
            if observed and isinstance(value, TracedValue):
                fragments[i] = value.fragment
                value = value.value
            results[i] = value
            completed_since_spawn += 1
            if observed:
                recorder.count("pool.items_executed")
            if checkpoint is not None:
                checkpoint.record(i, items[i], value)

        if crash is not None:
            # Every other in-flight item died with the pool; they are
            # lost, not implicated, so they are requeued with an
            # attempt charged (any of them may be the killer -- a
            # persistent one exhausts its own budget).
            for future, i in list(in_flight.items()):
                fault = WorkerCrash(
                    f"worker pool collapsed while item {i} was in "
                    f"flight (attempt {attempts[i] + 1}): {crash}",
                    index=i,
                    seed=seed_of(items[i]),
                    attempt=attempts[i] + 1,
                )
                fault.__cause__ = crash
                retire(i, fault)
            in_flight.clear()
            deadlines.clear()
            _terminate_pool(pool)
            pool = None
            if completed_since_spawn == 0:
                barren_spawns += 1
                if barren_spawns >= retry.max_attempts:
                    fallback_serial(
                        f"process pool broke {barren_spawns} times "
                        "without completing any item", crash,
                    )
                    return
            else:
                barren_spawns = 0
            time.sleep(retry.delay(min(attempts, default=0), barren_spawns + 1))
            continue

        if policy.timeout is not None and in_flight:
            now = time.monotonic()
            expired = [
                (future, i)
                for future, i in in_flight.items()
                if deadlines.get(future, now + 1) <= now
                and not future.done()
            ]
            if expired:
                # A hung worker cannot be reclaimed individually;
                # nuke the pool, charge the expired items an attempt,
                # and requeue the innocent bystanders for free.
                survivors = [
                    i for future, i in in_flight.items()
                    if (future, i) not in expired and not future.done()
                ]
                in_flight.clear()
                deadlines.clear()
                _terminate_pool(pool)
                pool = None
                for i in survivors:
                    queue.append(i)
                delay = 0.0
                for future, i in expired:
                    fault = WorkerTimeout(
                        f"item {i} exceeded its {policy.timeout:.3g}s "
                        f"wall-clock budget (attempt {attempts[i] + 1})",
                        index=i,
                        timeout=policy.timeout,
                        seed=seed_of(items[i]),
                        attempt=attempts[i] + 1,
                    )
                    if retire(i, fault):
                        delay = max(delay, retry.delay(i, attempts[i]))
                time.sleep(delay)

    merge_fragments()
    if pool is not None:
        pool.shutdown(wait=True)
