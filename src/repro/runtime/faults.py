"""Deterministic fault injection for the parallel runtime.

The recovery paths of :func:`repro.runtime.parallel_map` -- worker
crashes, per-item timeouts, task exceptions, corrupt checkpoint records
-- are only trustworthy if they are *exercised*, so this module lets
tests and the CI chaos job inject each fault at a precise, reproducible
point:

* ``crash@K``      -- the worker executing item ``K`` dies hard
  (``os._exit``), which the driver observes as ``BrokenProcessPool``;
* ``sleep@K:SECS`` -- item ``K`` sleeps ``SECS`` seconds before
  running, to push it past a per-item timeout;
* ``raise@K``      -- item ``K`` raises :class:`InjectedFault` before
  running.

A plan comes either from parameters (:class:`FaultPlan` passed to
``parallel_map``) or from the environment (``REPRO_FAULTS`` holding the
comma-separated spec above), so a chaos job can wrap *any* study
invocation without touching its code.

Each fault fires **once**: firing is recorded as a marker file in a
state directory (``state_dir`` parameter or ``REPRO_FAULT_STATE``), so
the retried item succeeds and recovery can be proven end to end.  The
marker is created *before* the fault fires -- a crash cannot lose it.
Without a state directory the faults fire on every attempt, which is
what a test for retry *exhaustion* wants.

:func:`corrupt_checkpoint_record` is the fourth fault: it flips a
journal record's bytes in place so resume code must prove it skips (and
recomputes) corrupt cells instead of trusting them.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

FAULTS_ENV = "REPRO_FAULTS"
STATE_ENV = "REPRO_FAULT_STATE"

CRASH_EXIT_CODE = 87
"""Exit status of an injected worker crash (distinctive in CI logs)."""


class InjectedFault(RuntimeError):
    """The exception raised by a ``raise@K`` fault."""


@dataclass(frozen=True)
class FaultPlan:
    """Which faults to fire on which item indices.

    ``crash_on`` / ``raise_on`` map item indices to themselves;
    ``sleep_on`` maps item index to sleep seconds.  ``state_dir`` makes
    every fault one-shot (see module docstring).
    """

    crash_on: Tuple[int, ...] = ()
    raise_on: Tuple[int, ...] = ()
    sleep_on: Dict[int, float] = field(default_factory=dict)
    state_dir: Optional[str] = None

    def is_empty(self) -> bool:
        """True when the plan injects nothing."""
        return not (self.crash_on or self.raise_on or self.sleep_on)

    def _arm(self, kind: str, index: int) -> bool:
        """True if the fault should fire (and mark it as fired).

        With no state directory every attempt fires.  With one, the
        marker file is created atomically (``O_EXCL``) before firing so
        that even a crash fault fires exactly once.
        """
        if self.state_dir is None:
            return True
        marker = Path(self.state_dir) / f"{kind}-{index}"
        try:
            marker.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def fire(self, index: int) -> None:
        """Fire whatever faults the plan holds for item ``index``.

        Called by the worker immediately before executing the item
        (and by the serial path -- a serial ``crash`` takes down the
        driver itself, which is exactly what the kill-and-resume chaos
        scenario exercises).
        """
        if index in self.sleep_on and self._arm("sleep", index):
            time.sleep(self.sleep_on[index])
        if index in self.crash_on and self._arm("crash", index):
            os._exit(CRASH_EXIT_CODE)
        if index in self.raise_on and self._arm("raise", index):
            raise InjectedFault(f"injected failure on item {index}")


def parse_fault_spec(
    spec: str, state_dir: Optional[str] = None
) -> FaultPlan:
    """Parse a ``crash@K,sleep@K:SECS,raise@K`` spec string."""
    crash = []
    raise_ = []
    sleep: Dict[int, float] = {}
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        try:
            kind, _, rest = token.partition("@")
            if kind == "crash":
                crash.append(int(rest))
            elif kind == "raise":
                raise_.append(int(rest))
            elif kind == "sleep":
                index_text, _, secs_text = rest.partition(":")
                sleep[int(index_text)] = float(secs_text or "1.0")
            else:
                raise ValueError(f"unknown fault kind {kind!r}")
        except ValueError as exc:
            raise ValueError(
                f"bad fault token {token!r} in {spec!r}: {exc}"
            ) from exc
    return FaultPlan(
        crash_on=tuple(crash),
        raise_on=tuple(raise_),
        sleep_on=sleep,
        state_dir=state_dir,
    )


def plan_from_env(
    environ: Optional[Dict[str, str]] = None,
) -> Optional[FaultPlan]:
    """The ambient fault plan, or ``None`` when no faults are set.

    Read in the *driver* process and shipped to workers through the
    pool initializer, so it is immune to start-method quirks around
    environment inheritance.
    """
    env = os.environ if environ is None else environ
    spec = env.get(FAULTS_ENV, "").strip()
    if not spec:
        return None
    plan = parse_fault_spec(spec, state_dir=env.get(STATE_ENV) or None)
    return None if plan.is_empty() else plan


def resolve_plan(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Explicit plan if given, else the environment's."""
    return plan if plan is not None else plan_from_env()


def corrupt_checkpoint_record(
    path: Union[str, Path], record_index: int = -1
) -> str:
    """Corrupt one JSONL record of a checkpoint journal, in place.

    Replaces the record's tail with garbage that is not valid JSON.
    Returns the line that was destroyed (tests use it to assert the
    journal recomputes exactly that cell).
    """
    journal = Path(path)
    lines = journal.read_text().splitlines()
    if not lines:
        raise ValueError(f"cannot corrupt empty journal {journal}")
    victim = lines[record_index]
    lines[record_index] = victim[: max(1, len(victim) // 2)] + "\x00garbage"
    journal.write_text("\n".join(lines) + "\n")
    return victim
