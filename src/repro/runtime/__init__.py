"""Process-parallel execution runtime.

The paper's empirical protocol -- trials x starts x fixed-percent sweep
points -- is embarrassingly parallel.  This package provides the one
execution layer every harness in the repo shares:

* :func:`derive_start_seeds` -- the deterministic per-task seed stream
  (identical to what the serial drivers always drew, so ``jobs=N``
  reproduces the serial results bit for bit);
* :func:`parallel_map` -- ordered map over picklable tasks backed by a
  ``ProcessPoolExecutor``, with a serial fallback at ``jobs=1`` (and
  whenever a pool cannot be created at all);
* :func:`resolve_jobs` -- normalisation of the ``jobs`` knob
  (``0``/``None`` means "all available cores");
* :class:`TimedCall` / :func:`timed_call` -- wall-clock *and* CPU-time
  measurement of one task, taken inside the worker so CPU columns stay
  pool-size-invariant.

See ``docs/performance.md`` for the determinism contract.
"""

from repro.runtime.pool import (
    SerialFallbackWarning,
    parallel_map,
    resolve_jobs,
)
from repro.runtime.seeds import derive_start_seeds, spawn_seed
from repro.runtime.timing import TimedCall, timed_call

__all__ = [
    "SerialFallbackWarning",
    "TimedCall",
    "derive_start_seeds",
    "parallel_map",
    "resolve_jobs",
    "spawn_seed",
    "timed_call",
]
