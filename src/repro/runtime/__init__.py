"""Process-parallel, fault-tolerant execution runtime.

The paper's empirical protocol -- trials x starts x fixed-percent sweep
points -- is embarrassingly parallel, and its sweeps are long enough
that partial failure (a crashed worker, a hung item, a preempted host)
must not mean starting over.  This package provides the one execution
layer every harness in the repo shares:

* :func:`derive_start_seeds` -- the deterministic per-task seed stream
  (identical to what the serial drivers always drew, so ``jobs=N``
  reproduces the serial results bit for bit);
* :func:`parallel_map` -- ordered map over picklable tasks backed by a
  ``ProcessPoolExecutor``, with per-item timeouts, crash-isolated
  retries (:class:`RetryPolicy` inside an :class:`ExecutionPolicy`),
  optional quarantine of persistently-failing items, and a serial
  fallback as the last resort;
* :class:`CheckpointJournal` -- the durable JSONL journal that lets a
  killed sweep resume mid-table with bit-identical results;
* :class:`FaultPlan` / ``REPRO_FAULTS`` -- deterministic fault
  injection used by the tests and the CI chaos job;
* :func:`resolve_jobs` / :func:`parse_jobs` / :func:`jobs_from_env` --
  normalisation of the ``jobs`` knob (``0``/``None`` means "all
  available cores"; ``REPRO_JOBS`` supplies a validated default);
* :class:`TimedCall` / :func:`timed_call` -- wall-clock *and* CPU-time
  measurement of one task, taken inside the worker so CPU columns stay
  pool-size-invariant;
* :mod:`repro.runtime.observe` -- the tracing/metrics layer
  (:class:`TraceRecorder`, disabled by default via
  :class:`NullRecorder`); ``parallel_map`` ships each traced worker's
  span/counter fragment home and merges it into the parent recorder.

See ``docs/performance.md`` for the determinism contract,
``docs/robustness.md`` for the failure model, checkpoint format and
resume semantics, and ``docs/observability.md`` for the event model.
"""

from repro.runtime.checkpoint import (
    CheckpointBatch,
    CheckpointJournal,
    JournalNamespace,
    spec_key,
)
from repro.runtime.errors import (
    CheckpointError,
    ItemFailed,
    PoolFault,
    Quarantined,
    QuarantineWarning,
    WorkerCrash,
    WorkerTimeout,
)
from repro.runtime import observe
from repro.runtime.faults import (
    FaultPlan,
    InjectedFault,
    corrupt_checkpoint_record,
    parse_fault_spec,
    plan_from_env,
)
from repro.runtime.pool import (
    ExecutionPolicy,
    RetryPolicy,
    SerialFallbackWarning,
    jobs_from_env,
    parallel_map,
    parse_jobs,
    resolve_jobs,
)
from repro.runtime.observe import NullRecorder, TracedValue, TraceRecorder
from repro.runtime.seeds import derive_start_seeds, spawn_seed
from repro.runtime.timing import TimedCall, timed_call

__all__ = [
    "CheckpointBatch",
    "CheckpointError",
    "CheckpointJournal",
    "ExecutionPolicy",
    "FaultPlan",
    "InjectedFault",
    "ItemFailed",
    "JournalNamespace",
    "NullRecorder",
    "PoolFault",
    "Quarantined",
    "QuarantineWarning",
    "RetryPolicy",
    "SerialFallbackWarning",
    "TimedCall",
    "TracedValue",
    "TraceRecorder",
    "WorkerCrash",
    "WorkerTimeout",
    "corrupt_checkpoint_record",
    "derive_start_seeds",
    "jobs_from_env",
    "observe",
    "parallel_map",
    "parse_fault_spec",
    "parse_jobs",
    "plan_from_env",
    "resolve_jobs",
    "spawn_seed",
    "spec_key",
    "timed_call",
]
