"""Structured error taxonomy of the fault-tolerant runtime.

Every failure mode of :func:`repro.runtime.parallel_map` maps to one
class here, so callers (and the checkpoint journal) can record *what*
went wrong with enough structure to act on it:

* :class:`WorkerCrash` -- a worker process died (``BrokenProcessPool``)
  while the item was in flight;
* :class:`WorkerTimeout` -- the item exceeded its per-item wall-clock
  budget and the pool was torn down to reclaim the worker;
* :class:`ItemFailed` -- terminal: the item exhausted its retry budget
  (the last underlying fault is chained as ``__cause__``);
* :class:`Quarantined` -- not an exception but the null-result sentinel
  a quarantined item leaves in the result list when the caller opted
  into graceful degradation instead of aborting the study.

All faults carry the item index, the item's seed (when the item is an
integer seed, which is what every multistart driver submits), the
attempt count, and the traceback text of the underlying failure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional


def seed_of(item: Any) -> Optional[int]:
    """The per-item seed, when the item *is* a seed (multistart items)."""
    return item if isinstance(item, int) else None


class PoolFault(RuntimeError):
    """Base class of all structured runtime faults.

    ``index`` is the item's position in the submitted sequence,
    ``seed`` the item itself when it is an integer seed, ``attempt``
    the 1-based attempt that failed, and ``traceback_text`` the
    formatted traceback of the underlying error (empty when the worker
    died without one, e.g. on a hard crash).
    """

    def __init__(
        self,
        message: str,
        *,
        index: int,
        seed: Optional[int] = None,
        attempt: int = 1,
        traceback_text: str = "",
    ) -> None:
        super().__init__(message)
        self.index = index
        self.seed = seed
        self.attempt = attempt
        self.traceback_text = traceback_text


class WorkerCrash(PoolFault):
    """A worker process died while this item was in flight."""


class WorkerTimeout(PoolFault):
    """An item exceeded its per-item wall-clock timeout.

    ``timeout`` is the budget in seconds that was exceeded.
    """

    def __init__(
        self,
        message: str,
        *,
        index: int,
        timeout: float,
        seed: Optional[int] = None,
        attempt: int = 1,
        traceback_text: str = "",
    ) -> None:
        super().__init__(
            message,
            index=index,
            seed=seed,
            attempt=attempt,
            traceback_text=traceback_text,
        )
        self.timeout = timeout


class ItemFailed(PoolFault):
    """Terminal failure: the item exhausted its retry budget.

    ``attempt`` holds the total number of attempts made.  The last
    underlying fault (a :class:`WorkerCrash`, :class:`WorkerTimeout`
    or the task's own exception) is chained as ``__cause__``.
    """


@dataclass(frozen=True)
class Quarantined:
    """Null-result row left in place of a persistently-failing item.

    Produced only when the caller opted into quarantine (graceful
    degradation); carries everything the study needs to report the hole
    in its table.
    """

    index: int
    seed: Optional[int]
    attempts: int
    reason: str

    def __bool__(self) -> bool:  # quarantined rows are falsy null rows
        return False


class QuarantineWarning(RuntimeWarning):
    """Emitted once per item quarantined by graceful degradation."""


class CheckpointError(RuntimeError):
    """Raised when a checkpoint journal cannot be used.

    The main case is a spec mismatch: resuming a study against a
    journal written by a *different* study spec would silently splice
    unrelated results into the tables, so it is refused loudly.
    """
