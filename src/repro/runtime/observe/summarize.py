"""Trace reports: span rollups and Table II reconstruction.

``repro trace summarize TRACE.json`` renders a saved trace as text:
a per-name span rollup (count, total and mean duration), the counters,
compact histogram digests -- and, when the trace contains pass-stats
study spans, the paper's Table II *recomputed from the trace alone*.

The reconstruction mirrors :func:`repro.core.pass_stats.
run_pass_stats_study` operation for operation -- same per-pass ratio
expressions, same first-pass exclusion, same summation order -- so its
:meth:`~repro.core.pass_stats.PassStatsStudy.format_table` output is
byte-for-byte the table the study driver printed.  That only holds for
a trace of a *fresh* run: a resumed study satisfies journaled cells
from the checkpoint without re-executing them, so their spans are
absent from the trace (the ``pool.journal_hits`` counter says how
many).

This module imports the study drivers, so it is **not** imported by
``repro.runtime.observe`` itself -- the recorder must stay importable
from inside ``repro.runtime``'s own initialization.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

from repro.core.pass_stats import (
    PassStatsRow,
    PassStatsStudy,
    _mean,
)
from repro.runtime.observe.trace import Span, Trace, load_trace

STUDY_SPAN = "study.pass_stats"
PERCENT_SPAN = "study.percent"
FM_RUN_SPAN = "fm.run"
FM_PASS_EVENT = "fm.pass"


def reconstruct_pass_stats(trace: Trace) -> List[PassStatsStudy]:
    """Rebuild every pass-stats study recorded in ``trace``.

    Walks ``study.pass_stats`` -> ``study.percent`` -> ``fm.run`` spans
    and re-aggregates the per-pass ``fm.pass`` events with the study
    driver's own arithmetic.  Error-marked ``fm.run`` spans are skipped,
    matching the driver's exclusion of quarantined runs.
    """
    studies = []
    for study_span in trace.find_spans(STUDY_SPAN):
        study = PassStatsStudy(
            circuit_name=study_span.attrs["circuit"],
            regime=study_span.attrs["regime"],
        )
        for percent_span in study_span.children:
            if percent_span.name != PERCENT_SPAN:
                continue
            study.rows.append(_reconstruct_row(percent_span))
        studies.append(study)
    return studies


def _reconstruct_row(percent_span: Span) -> PassStatsRow:
    """One Table II row from one ``study.percent`` span.

    Keep this in lockstep with the aggregation loop in
    :func:`repro.core.pass_stats.run_pass_stats_study`: identical ratio
    expressions (float rounding included) and identical append order,
    or byte-for-byte table equality breaks.
    """
    passes_per_run: List[int] = []
    moved: List[float] = []
    best_prefix: List[float] = []
    wasted: List[float] = []
    cuts: List[int] = []
    for run_span in percent_span.children:
        if run_span.name != FM_RUN_SPAN or "error" in run_span.attrs:
            continue
        records = [
            e["fields"] for e in run_span.events if e["name"] == FM_PASS_EVENT
        ]
        passes_per_run.append(len(records))
        cuts.append(run_span.attrs["final_cut"])
        for fields in records[1:]:
            movable = fields["movable"]
            if movable == 0:
                continue
            moves_made = fields["moves_made"]
            moved.append(100.0 * (moves_made / movable))
            if moves_made:
                prefix = fields["best_prefix"]
                best_prefix.append(100.0 * (prefix / moves_made))
                wasted.append(100.0 * (moves_made - prefix) / moves_made)
    return PassStatsRow(
        percent=percent_span.attrs["percent"],
        runs=percent_span.attrs["runs"],
        avg_passes_per_run=_mean(passes_per_run),
        avg_moved_percent=_mean(moved),
        avg_best_prefix_percent=_mean(best_prefix),
        avg_wasted_percent=_mean(wasted),
        avg_final_cut=_mean(cuts),
    )


def _span_rollup(trace: Trace) -> List[str]:
    totals = {}
    for span in trace.walk():
        count, seconds = totals.get(span.name, (0, 0.0))
        totals[span.name] = (
            count + 1,
            seconds + (span.duration if span.closed else 0.0),
        )
    if not totals:
        return ["spans: none"]
    width = max(len(name) for name in totals)
    lines = [
        "spans:",
        f"  {'name':<{width}} {'count':>8} {'total s':>10} {'mean s':>10}",
    ]
    by_cost = sorted(totals.items(), key=lambda kv: (-kv[1][1], kv[0]))
    for name, (count, seconds) in by_cost:
        lines.append(
            f"  {name:<{width}} {count:>8d} {seconds:>10.4f} "
            f"{seconds / count:>10.6f}"
        )
    return lines


def _counter_lines(trace: Trace) -> List[str]:
    if not trace.counters:
        return ["counters: none"]
    width = max(len(name) for name in trace.counters)
    lines = ["counters:"]
    for name in sorted(trace.counters):
        value = trace.counters[name]
        lines.append(f"  {name:<{width}} {value:>12}")
    return lines


def _histogram_lines(trace: Trace) -> List[str]:
    if not trace.histograms:
        return ["histograms: none"]
    lines = ["histograms:"]
    for name in sorted(trace.histograms):
        buckets = trace.histograms[name]
        total = sum(buckets.values())
        weighted = sum(k * c for k, c in buckets.items())
        lines.append(
            f"  {name}: n={total} min={min(buckets)} max={max(buckets)} "
            f"mean={weighted / total:.2f}"
        )
    return lines


def summarize_trace(trace: Trace) -> str:
    """The full text report for one parsed trace."""
    sections = []
    if trace.meta:
        meta = " ".join(
            f"{key}={trace.meta[key]}" for key in sorted(trace.meta)
        )
        sections.append(f"trace meta: {meta}")
    sections.append("\n".join(_span_rollup(trace)))
    sections.append("\n".join(_counter_lines(trace)))
    sections.append("\n".join(_histogram_lines(trace)))
    hits = trace.counters.get("pool.journal_hits", 0)
    for study in reconstruct_pass_stats(trace):
        block = study.format_table()
        if hits:
            block += (
                f"\n(note: {hits} journal hit(s) -- resumed cells left no "
                "spans, so this table covers freshly executed runs only)"
            )
        sections.append(block)
    return "\n\n".join(sections)


def summarize_path(path: Union[str, Path]) -> str:
    """Load ``path`` and summarize it."""
    return summarize_trace(load_trace(path))
