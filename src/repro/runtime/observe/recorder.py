"""The recorders: a free no-op default and the real collector.

The module-level active recorder is what every instrumented call site
consults::

    rec = observe.active()
    if not rec.enabled:          # NullRecorder: one attribute read
        return self._run(...)
    with rec.span("fm.run", policy=cfg.policy) as sp:
        ...

* :class:`NullRecorder` is installed by default.  ``enabled`` is a
  class attribute (``False``), ``span()`` hands back a shared no-op
  context manager, and every other method is a ``pass`` -- the whole
  disabled path is one attribute read plus, on the coarse-grained call
  sites that do not branch, one no-op context manager.
  ``benchmarks/observe_overhead.py`` bounds the cost.
* :class:`TraceRecorder` collects the real thing: a span stack per
  thread (``threading.local``), counters/histograms/roots behind one
  lock, so engine code running under a thread pool records safely.
  Cross-**process** collection does not share the recorder: each worker
  records into a fresh ``TraceRecorder`` and ships a picklable
  :meth:`~TraceRecorder.fragment` home, which the parent folds in with
  :meth:`~TraceRecorder.merge_fragment` (see ``runtime/pool.py``).

Span nesting is well-formed by construction: closing a span implicitly
closes anything still open above it on the same thread's stack, and
double-closes are ignored (``tests/runtime/test_observe_properties.py``
drives arbitrary open/close interleavings through this).
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.runtime.observe.trace import (
    METRICS_SCHEMA,
    Span,
    Trace,
    event_record,
    merge_counters,
    merge_histograms,
    serialize_histograms,
    spans_from_dicts,
)


class _NullSpan:
    """Shared no-op span context manager (one instance per process)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        """No-op."""


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The disabled-by-default recorder: every operation is a no-op."""

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def count(self, name: str, value: Union[int, float] = 1) -> None:
        pass

    def hist(self, name: str, value: Union[int, float]) -> None:
        pass

    def event(self, name: str, **fields: Any) -> None:
        pass

    def merge_fragment(self, fragment: dict) -> None:
        pass

    def fragment(self) -> dict:
        return {"spans": [], "events": [], "counters": {}, "histograms": {}}


_NULL_RECORDER = NullRecorder()


class _LiveSpan:
    """Context manager binding one :class:`Span` to the recorder stack.

    Created by :meth:`TraceRecorder.span`; the underlying span is opened
    on ``__enter__`` (so an unentered handle records nothing) and closed
    on ``__exit__``.  An exception propagating out marks the span with
    an ``error`` attribute -- the summarizer and the Table II
    reconstruction skip error-marked spans.
    """

    __slots__ = ("_recorder", "_name", "_attrs", "span")

    def __init__(
        self, recorder: "TraceRecorder", name: str, attrs: Dict[str, Any]
    ) -> None:
        self._recorder = recorder
        self._name = name
        self._attrs = attrs
        self.span: Optional[Span] = None

    def __enter__(self) -> "_LiveSpan":
        self.span = self._recorder.open_span(self._name, self._attrs)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self.span is not None:
            self._recorder.close_span(
                self.span,
                error=exc_type.__name__ if exc_type is not None else None,
            )
        return False

    def set(self, **attrs: Any) -> None:
        """Attach (or overwrite) attributes on the live span."""
        if self.span is not None:
            self.span.attrs.update(attrs)
        else:
            self._attrs.update(attrs)


class TraceRecorder:
    """The real collector (see module docstring)."""

    enabled = True

    def __init__(self, meta: Optional[dict] = None) -> None:
        self.meta = dict(meta or {})
        self.roots: List[Span] = []
        self.events: List[dict] = []
        self.counters: Dict[str, Union[int, float]] = {}
        self.histograms: Dict[str, Dict[int, int]] = {}
        self._lock = threading.Lock()
        self._local = threading.local()
        self._epoch = time.perf_counter()

    # -- span stack ----------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def span(self, name: str, **attrs: Any) -> _LiveSpan:
        """A context manager recording one timed span."""
        return _LiveSpan(self, name, attrs)

    def open_span(self, name: str, attrs: Optional[dict] = None) -> Span:
        """Open a span as a child of this thread's innermost open span.

        Low-level API (the property tests and :class:`_LiveSpan` use
        it); prefer ``with rec.span(...)`` in instrumentation.
        """
        span = Span(name, dict(attrs or {}))
        span.start = time.perf_counter() - self._epoch
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.roots.append(span)
        stack.append(span)
        return span

    def close_span(self, span: Span, error: Optional[str] = None) -> None:
        """Close ``span``; anything opened inside and still open closes
        with it (same end time).  Closing an already-closed span is a
        no-op, so nesting stays well-formed under any call order."""
        stack = self._stack()
        if span not in stack:
            return
        end = time.perf_counter() - self._epoch
        while stack:
            top = stack.pop()
            if not top.closed:
                top.duration = max(0.0, end - top.start)
            if top is span:
                break
        if error is not None:
            span.attrs.setdefault("error", error)

    # -- flat stores ---------------------------------------------------
    def count(self, name: str, value: Union[int, float] = 1) -> None:
        """Add ``value`` to the named monotonic counter."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def hist(self, name: str, value: Union[int, float]) -> None:
        """Record one occurrence of ``int(value)`` in the named histogram."""
        key = int(value)
        with self._lock:
            buckets = self.histograms.setdefault(name, {})
            buckets[key] = buckets.get(key, 0) + 1

    def event(self, name: str, **fields: Any) -> None:
        """A point record, attached to the innermost open span (or the
        trace's top level when no span is open)."""
        record = event_record(name, fields)
        stack = self._stack()
        if stack:
            stack[-1].events.append(record)
        else:
            with self._lock:
                self.events.append(record)

    # -- cross-process collection --------------------------------------
    def fragment(self) -> dict:
        """This recorder's state as one picklable/JSON-able dict.

        Workers call this after finishing an item; the parent folds the
        result in with :meth:`merge_fragment`.
        """
        with self._lock:
            return {
                "spans": [s.to_dict() for s in self.roots],
                "events": [dict(e) for e in self.events],
                "counters": dict(self.counters),
                "histograms": {
                    name: dict(buckets)
                    for name, buckets in self.histograms.items()
                },
            }

    def merge_fragment(self, fragment: dict) -> None:
        """Fold a worker fragment into this recorder.

        Fragment root spans become children of the innermost open span
        (or trace roots); counters and histograms merge by addition --
        associative and commutative, so the fold order across workers
        cannot change any total.
        """
        spans = spans_from_dicts(fragment.get("spans", ()))
        events = [
            event_record(str(e["name"]), dict(e.get("fields", {})))
            for e in fragment.get("events", ())
        ]
        stack = self._stack()
        if stack:
            parent = stack[-1]
            parent.children.extend(spans)
            parent.events.extend(events)
        else:
            with self._lock:
                self.roots.extend(spans)
                self.events.extend(events)
        with self._lock:
            merge_counters(self.counters, fragment.get("counters", {}))
            merge_histograms(self.histograms, fragment.get("histograms", {}))

    # -- export --------------------------------------------------------
    def trace(self) -> Trace:
        """The collected state as a :class:`Trace` (live references)."""
        return Trace(
            spans=self.roots,
            counters=self.counters,
            histograms=self.histograms,
            events=self.events,
            meta=self.meta,
        )

    def to_dict(self) -> dict:
        """JSON form of the full trace."""
        return self.trace().to_dict()

    def save(self, path: Union[str, Path]) -> None:
        """Write the trace JSON to ``path``."""
        Path(path).write_text(
            json.dumps(self.to_dict(), sort_keys=True, indent=1) + "\n",
            encoding="utf-8",
        )

    def metrics_dict(self) -> dict:
        """Counters + histograms only (the ``--metrics-out`` payload)."""
        with self._lock:
            return {
                "schema": METRICS_SCHEMA,
                "counters": dict(self.counters),
                "histograms": serialize_histograms(self.histograms),
            }

    def save_metrics(self, path: Union[str, Path]) -> None:
        """Write the metrics JSON to ``path``."""
        Path(path).write_text(
            json.dumps(self.metrics_dict(), sort_keys=True, indent=1) + "\n",
            encoding="utf-8",
        )


class TracedValue:
    """A worker result bundled with the worker's trace fragment.

    ``runtime.pool`` wraps item results in this when tracing is enabled,
    unwraps the value before journaling/returning it, and merges the
    fragment into the parent recorder -- so checkpoint journals always
    store the bare value and resumes stay compatible either way.
    """

    __slots__ = ("value", "fragment")

    def __init__(self, value: Any, fragment: dict) -> None:
        self.value = value
        self.fragment = fragment

    def __reduce__(self):
        return (TracedValue, (self.value, self.fragment))


# -- the active recorder ----------------------------------------------
_ACTIVE: Union[NullRecorder, TraceRecorder] = _NULL_RECORDER


def active() -> Union[NullRecorder, TraceRecorder]:
    """The recorder instrumented code should talk to right now."""
    return _ACTIVE


def set_recorder(
    recorder: Optional[Union[NullRecorder, TraceRecorder]],
) -> Union[NullRecorder, TraceRecorder]:
    """Install ``recorder`` (``None`` restores the no-op default);
    returns the previously active recorder."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = recorder if recorder is not None else _NULL_RECORDER
    return previous


@contextmanager
def use(
    recorder: Optional[Union[NullRecorder, TraceRecorder]],
) -> Iterator[Union[NullRecorder, TraceRecorder]]:
    """Scoped :func:`set_recorder`: restores the previous recorder on
    exit, exception or not."""
    previous = set_recorder(recorder)
    try:
        yield active()
    finally:
        set_recorder(previous)
