"""``repro.runtime.observe`` -- zero-dependency tracing and metrics.

Hierarchical timing spans, monotonic counters, per-pass histograms and
point events, collected by a process-wide recorder that is a no-op
unless explicitly enabled::

    from repro.runtime import observe

    rec = observe.TraceRecorder()
    with observe.use(rec):
        study = run_pass_stats_study(graph, balance, ...)
    rec.save("trace.json")

Instrumented call sites read ``observe.active()`` once and early-out on
``rec.enabled`` (see ``docs/observability.md`` for the event model, the
span/counter naming scheme and the overhead contract).  The collector is
thread-safe within a process and merges child-worker fragments across
``runtime.pool`` process boundaries; ``summarize`` (imported lazily --
it pulls in the study drivers) rebuilds Table II pass statistics from a
saved trace.
"""

from __future__ import annotations

from typing import Any, Union

from repro.runtime.observe.recorder import (
    NullRecorder,
    TracedValue,
    TraceRecorder,
    active,
    set_recorder,
    use,
)
from repro.runtime.observe.trace import (
    METRICS_SCHEMA,
    SCHEMA,
    Span,
    Trace,
    load_trace,
    merge_counters,
    merge_histograms,
    span_shape,
    trace_shape,
)

__all__ = [
    "METRICS_SCHEMA",
    "NullRecorder",
    "SCHEMA",
    "Span",
    "Trace",
    "TracedValue",
    "TraceRecorder",
    "active",
    "count",
    "event",
    "hist",
    "load_trace",
    "merge_counters",
    "merge_histograms",
    "set_recorder",
    "span",
    "span_shape",
    "trace_shape",
    "use",
]


def span(name: str, **attrs: Any):
    """``active().span(...)`` -- convenience for scripts and tests."""
    return active().span(name, **attrs)


def count(name: str, value: Union[int, float] = 1) -> None:
    """``active().count(...)`` -- convenience for scripts and tests."""
    active().count(name, value)


def event(name: str, **fields: Any) -> None:
    """``active().event(...)`` -- convenience for scripts and tests."""
    active().event(name, **fields)


def hist(name: str, value: Union[int, float]) -> None:
    """``active().hist(...)`` -- convenience for scripts and tests."""
    active().hist(name, value)
