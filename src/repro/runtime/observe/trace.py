"""Trace data model: spans, events, counters, histograms.

One trace is a forest of :class:`Span` trees plus three flat stores --
monotonic **counters** (name -> number), **histograms** (name -> value
-> occurrence count) and top-level **events** (point records emitted
outside any span).  Everything serializes to plain JSON under the
``repro-trace/1`` schema:

.. code-block:: json

    {
      "schema": "repro-trace/1",
      "meta": {"...": "free-form run description"},
      "spans": [
        {"name": "multilevel", "attrs": {"seed": 3},
         "start": 0.0012, "duration": 0.4831,
         "events": [{"name": "fm.pass", "fields": {"moves_made": 41}}],
         "children": ["..."]}
      ],
      "events": [],
      "counters": {"fm.runs": 12},
      "histograms": {"fm.pass.moves": {"41": 2, "40": 1}}
    }

``start`` offsets are seconds relative to the owning recorder's epoch
(its construction time); spans merged in from a worker process keep the
*worker's* offsets, so only ``duration`` is comparable across process
boundaries.  A ``duration`` of ``-1.0`` marks a span that was never
closed.

Histogram keys are integers in memory and strings on disk (JSON object
keys); :func:`merge_histograms` accepts either.  Counter and histogram
merging is plain addition, which makes it associative and commutative --
the property that lets :meth:`TraceRecorder.merge_fragment
<repro.runtime.observe.recorder.TraceRecorder.merge_fragment>` combine
worker fragments in any grouping without changing the totals
(``tests/runtime/test_observe_properties.py`` proves it).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Union

SCHEMA = "repro-trace/1"
METRICS_SCHEMA = "repro-metrics/1"

OPEN_DURATION = -1.0
"""Sentinel ``duration`` of a span that was never closed."""


class Span:
    """One node of the span tree (a named, timed, attributed region)."""

    __slots__ = ("name", "attrs", "start", "duration", "events", "children")

    def __init__(
        self,
        name: str,
        attrs: Optional[Dict[str, Any]] = None,
        start: float = 0.0,
        duration: float = OPEN_DURATION,
        events: Optional[List[dict]] = None,
        children: Optional[List["Span"]] = None,
    ) -> None:
        self.name = name
        self.attrs = attrs if attrs is not None else {}
        self.start = start
        self.duration = duration
        self.events = events if events is not None else []
        self.children = children if children is not None else []

    @property
    def closed(self) -> bool:
        """True once the span has a recorded duration."""
        return self.duration >= 0.0

    def to_dict(self) -> dict:
        """JSON form (schema above)."""
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "start": self.start,
            "duration": self.duration,
            "events": [dict(e) for e in self.events],
            "children": [c.to_dict() for c in self.children],
        }

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first, pre-order."""
        stack = [self]
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.children))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, attrs={self.attrs}, "
            f"children={len(self.children)}, events={len(self.events)})"
        )


def event_record(name: str, fields: Dict[str, Any]) -> dict:
    """The canonical event dict (see schema)."""
    return {"name": name, "fields": fields}


def span_from_dict(payload: dict) -> Span:
    """Parse one serialized span (recursively)."""
    return Span(
        name=str(payload["name"]),
        attrs=dict(payload.get("attrs", {})),
        start=float(payload.get("start", 0.0)),
        duration=float(payload.get("duration", OPEN_DURATION)),
        events=[
            event_record(str(e["name"]), dict(e.get("fields", {})))
            for e in payload.get("events", ())
        ],
        children=[span_from_dict(c) for c in payload.get("children", ())],
    )


def spans_from_dicts(payloads: Iterable[dict]) -> List[Span]:
    """Parse a serialized span forest."""
    return [span_from_dict(p) for p in payloads]


def merge_counters(
    target: Dict[str, Union[int, float]],
    source: Dict[str, Union[int, float]],
) -> None:
    """Add ``source`` counters into ``target`` (in place)."""
    for name, value in source.items():
        target[name] = target.get(name, 0) + value


def merge_histograms(
    target: Dict[str, Dict[int, int]],
    source: Dict[str, Dict[Any, int]],
) -> None:
    """Add ``source`` histograms into ``target`` (in place).

    Source bucket keys may be strings (fresh off JSON); they are
    normalised back to integers.
    """
    for name, buckets in source.items():
        into = target.setdefault(name, {})
        for key, count in buckets.items():
            key = int(key)
            into[key] = into.get(key, 0) + count


def serialize_histograms(
    histograms: Dict[str, Dict[int, int]]
) -> Dict[str, Dict[str, int]]:
    """JSON form: bucket keys become strings."""
    return {
        name: {str(k): buckets[k] for k in sorted(buckets)}
        for name, buckets in histograms.items()
    }


def parse_histograms(payload: Dict[str, Dict[str, int]]) -> Dict[str, Dict[int, int]]:
    """Inverse of :func:`serialize_histograms`."""
    return {
        name: {int(k): int(v) for k, v in buckets.items()}
        for name, buckets in payload.items()
    }


class Trace:
    """A parsed trace file (or a recorder's completed state)."""

    def __init__(
        self,
        spans: List[Span],
        counters: Optional[Dict[str, Union[int, float]]] = None,
        histograms: Optional[Dict[str, Dict[int, int]]] = None,
        events: Optional[List[dict]] = None,
        meta: Optional[dict] = None,
    ) -> None:
        self.spans = spans
        self.counters = counters if counters is not None else {}
        self.histograms = histograms if histograms is not None else {}
        self.events = events if events is not None else []
        self.meta = meta if meta is not None else {}

    @classmethod
    def from_dict(cls, payload: dict) -> "Trace":
        """Parse a serialized trace; rejects unknown schema families."""
        schema = payload.get("schema")
        if schema != SCHEMA:
            raise ValueError(
                f"not a {SCHEMA} trace (schema field is {schema!r})"
            )
        return cls(
            spans=spans_from_dicts(payload.get("spans", ())),
            counters=dict(payload.get("counters", {})),
            histograms=parse_histograms(payload.get("histograms", {})),
            events=[
                event_record(str(e["name"]), dict(e.get("fields", {})))
                for e in payload.get("events", ())
            ],
            meta=dict(payload.get("meta", {})),
        )

    def to_dict(self) -> dict:
        """JSON form (schema above)."""
        return {
            "schema": SCHEMA,
            "meta": dict(self.meta),
            "spans": [s.to_dict() for s in self.spans],
            "events": [dict(e) for e in self.events],
            "counters": dict(self.counters),
            "histograms": serialize_histograms(self.histograms),
        }

    def walk(self) -> Iterator[Span]:
        """Every span in the forest, depth-first, pre-order."""
        for root in self.spans:
            yield from root.walk()

    def find_spans(self, name: str) -> List[Span]:
        """All spans with ``name``, in pre-order."""
        return [s for s in self.walk() if s.name == name]


def load_trace(path: Union[str, Path]) -> Trace:
    """Read and parse a trace JSON file."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    return Trace.from_dict(payload)


def span_shape(span: Span) -> dict:
    """The timing-free view of a span tree (golden-trace comparisons).

    Wall-clock fields (``start``/``duration``) vary run to run; name,
    attributes, events and tree structure are deterministic for a
    seeded study, which is exactly what the golden tests freeze.
    """
    return {
        "name": span.name,
        "attrs": dict(span.attrs),
        "events": [dict(e) for e in span.events],
        "children": [span_shape(c) for c in span.children],
    }


def trace_shape(trace: Trace) -> dict:
    """Timing-free view of a whole trace (spans + counters + hists)."""
    return {
        "spans": [span_shape(s) for s in trace.spans],
        "events": [dict(e) for e in trace.events],
        "counters": dict(trace.counters),
        "histograms": serialize_histograms(trace.histograms),
    }
