"""Durable checkpoint journal for long experiment sweeps.

A study is hundreds of independent ``(config, instance, start, seed)``
cells; losing a host mid-sweep must not mean losing the completed
cells.  The journal records every finished cell as one JSONL line and
lets a re-invoked study skip straight past them:

* the file is keyed by a **content hash of the study spec**
  (:func:`spec_key`), so a journal can never be resumed against a
  different study -- that mismatch raises :class:`CheckpointError`;
* every write is **atomic and durable**: the full journal is written to
  a sibling temp file, fsync'd, and ``os.replace``'d over the old one,
  so a SIGKILL at any instant leaves either the old or the new journal,
  never a torn one;
* cell values round-trip through pickle (base64 in the JSON), so a
  resumed study sees *bit-identical* results -- the backbone of the
  "resume == uninterrupted run" contract;
* corrupt lines (a fault-injection scenario, or a disk that lied about
  durability) are counted and skipped: the affected cells are simply
  recomputed;
* quarantined cells are journaled with their reason but *not* treated
  as completed -- a resume is the natural chance to heal them.

Layout: record 1 is a header with the spec hash; every other record is
``{"kind": "cell", "batch": ..., "index": ..., "item": ...,
"value": ...}``.  ``batch`` is the deterministic call-site key a study
assigns to each ``parallel_map`` invocation (e.g.
``"good:20.0:trial1"``), ``index``/``item`` identify the cell within
the batch (for multistart batches the item *is* the start seed).
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.runtime.errors import CheckpointError
from repro.runtime.observe import recorder as _observe

PathLike = Union[str, Path]

JOURNAL_VERSION = 1

_MISS = object()


def spec_key(spec: Any) -> str:
    """Content hash of a study spec (any JSON-serializable object).

    Canonical JSON (sorted keys, no whitespace) keeps the hash stable
    across processes and Python versions; non-JSON leaves are rendered
    with ``str``.
    """
    canonical = json.dumps(
        spec, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _encode_value(value: Any) -> str:
    return base64.b64encode(
        pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def _decode_value(text: str) -> Any:
    return pickle.loads(base64.b64decode(text.encode("ascii")))


def _item_fingerprint(item: Any) -> Any:
    """A JSON-able identity check for a cell's input item.

    Integer items (the multistart seeds) are stored verbatim -- the
    journal then literally records which seed produced which cell.
    Anything else is hashed through its pickle.
    """
    if isinstance(item, int) and not isinstance(item, bool):
        return item
    digest = hashlib.sha256(
        pickle.dumps(item, protocol=pickle.HIGHEST_PROTOCOL)
    ).hexdigest()
    return f"sha256:{digest[:24]}"


class CheckpointJournal:
    """One study's journal file (see module docstring)."""

    def __init__(self, path: PathLike, spec: Any) -> None:
        self.path = Path(path)
        self.spec_hash = spec_key(spec)
        self._lines: list = []
        # (batch, index) -> {"item": fp, "value": encoded} | {"quarantined": ...}
        self._cells: Dict[Tuple[str, int], dict] = {}
        self.corrupt_lines = 0
        self.resumed = self.path.exists()
        if self.resumed:
            self._load(spec)
        else:
            header = {
                "kind": "header",
                "version": JOURNAL_VERSION,
                "spec_hash": self.spec_hash,
                "spec": json.loads(
                    json.dumps(spec, default=str)
                ) if spec is not None else None,
            }
            self._lines.append(json.dumps(header, sort_keys=True))
            self._flush()

    # -- persistence ---------------------------------------------------
    def _load(self, spec: Any) -> None:
        raw = self.path.read_text().splitlines()
        if not raw:
            raise CheckpointError(f"{self.path}: empty journal file")
        try:
            header = json.loads(raw[0])
            if header.get("kind") != "header":
                raise ValueError("first record is not a header")
        except ValueError as exc:
            raise CheckpointError(
                f"{self.path}: unreadable journal header ({exc}); "
                "delete the file to start over"
            ) from exc
        if header.get("spec_hash") != self.spec_hash:
            raise CheckpointError(
                f"{self.path}: journal was written by a different study "
                f"spec (journal {header.get('spec_hash')!r:.20}..., "
                f"this study {self.spec_hash!r:.20}...); refusing to "
                "splice unrelated results"
            )
        self._lines.append(raw[0])
        for line in raw[1:]:
            try:
                record = json.loads(line)
                if record.get("kind") != "cell":
                    raise ValueError("not a cell record")
                key = (str(record["batch"]), int(record["index"]))
                if "value" in record:
                    _decode_value(record["value"])  # must round-trip
                elif "quarantined" not in record:
                    raise ValueError("cell carries neither value nor "
                                     "quarantine reason")
            except (ValueError, KeyError, TypeError, EOFError,
                    pickle.UnpicklingError) as _exc:  # noqa: F841
                self.corrupt_lines += 1
                continue
            self._cells[key] = record
            self._lines.append(line)
        rec = _observe.active()
        if rec.enabled:
            rec.count("checkpoint.resumes")
            rec.count("checkpoint.loaded_cells", len(self._cells))
            if self.corrupt_lines:
                rec.count("checkpoint.corrupt_lines", self.corrupt_lines)

    def _flush(self) -> None:
        """Atomically persist the journal (tmp file + replace, fsync'd)."""
        tmp = self.path.with_name(self.path.name + ".tmp")
        payload = "\n".join(self._lines) + "\n"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        try:  # durability of the rename itself (best effort off Linux)
            dir_fd = os.open(self.path.parent or Path("."), os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        except OSError:  # pragma: no cover - platform-dependent
            pass

    # -- cell API ------------------------------------------------------
    def lookup(self, batch: str, index: int, item: Any) -> Any:
        """The journaled value of a cell, or the module-private miss.

        A cell only hits if its recorded item fingerprint matches --
        a journal whose seeds drifted (or whose record was corrupted)
        yields a miss and the cell is recomputed.  Quarantined cells
        miss by design (resume retries them).
        """
        record = self._cells.get((batch, index))
        if record is None or "value" not in record:
            return _MISS
        if record.get("item") != _item_fingerprint(item):
            return _MISS
        return _decode_value(record["value"])

    def record(self, batch: str, index: int, item: Any, value: Any) -> None:
        """Journal one completed cell (atomic, durable)."""
        record = {
            "kind": "cell",
            "batch": batch,
            "index": index,
            "item": _item_fingerprint(item),
            "value": _encode_value(value),
        }
        self._cells[(batch, index)] = record
        self._lines.append(json.dumps(record, sort_keys=True))
        self._flush()
        rec = _observe.active()
        if rec.enabled:
            rec.count("checkpoint.writes")

    def record_quarantine(
        self, batch: str, index: int, item: Any, reason: str
    ) -> None:
        """Journal a quarantined cell's reason (not a completion)."""
        record = {
            "kind": "cell",
            "batch": batch,
            "index": index,
            "item": _item_fingerprint(item),
            "quarantined": reason,
        }
        self._cells[(batch, index)] = record
        self._lines.append(json.dumps(record, sort_keys=True))
        self._flush()
        rec = _observe.active()
        if rec.enabled:
            rec.count("checkpoint.quarantine_writes")

    def completed_cells(self) -> int:
        """Number of journaled cells holding a value."""
        return sum(1 for r in self._cells.values() if "value" in r)

    def quarantined_cells(self) -> Dict[Tuple[str, int], str]:
        """Reasons of every quarantined cell (the study's hole report)."""
        return {
            key: r["quarantined"]
            for key, r in self._cells.items()
            if "quarantined" in r
        }

    # -- views ---------------------------------------------------------
    def batch(self, key: str) -> "CheckpointBatch":
        """The per-call-site view handed to ``parallel_map``."""
        return CheckpointBatch(self, key)

    def namespace(self, prefix: str) -> "JournalNamespace":
        """A view that prefixes every batch key (multi-circuit studies)."""
        return JournalNamespace(self, prefix)


class JournalNamespace:
    """Prefixes batch keys so sub-studies sharing a journal can't collide."""

    def __init__(self, journal: CheckpointJournal, prefix: str) -> None:
        self._journal = journal
        self._prefix = prefix

    def batch(self, key: str) -> "CheckpointBatch":
        return self._journal.batch(f"{self._prefix}/{key}")

    def namespace(self, prefix: str) -> "JournalNamespace":
        return JournalNamespace(self._journal, f"{self._prefix}/{prefix}")


class CheckpointBatch:
    """One ``parallel_map`` call site's window into a journal."""

    def __init__(self, journal: CheckpointJournal, key: str) -> None:
        self.journal = journal
        self.key = key
        self.hits = 0

    def lookup(self, index: int, item: Any) -> Any:
        value = self.journal.lookup(self.key, index, item)
        if value is not _MISS:
            self.hits += 1
        return value

    def record(self, index: int, item: Any, value: Any) -> None:
        self.journal.record(self.key, index, item, value)

    def record_quarantine(self, index: int, item: Any, reason: str) -> None:
        self.journal.record_quarantine(self.key, index, item, reason)


def is_miss(value: Any) -> bool:
    """True when a :meth:`CheckpointBatch.lookup` returned no hit."""
    return value is _MISS
