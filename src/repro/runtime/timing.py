"""Per-task timing captured inside the executing process.

Wall-clock seconds stop being a CPU-cost proxy the moment starts run
concurrently, so every task is timed with *both* clocks where it runs:

* ``seconds`` -- ``time.perf_counter`` wall clock;
* ``cpu_seconds`` -- ``time.process_time`` of the executing process,
  which is invariant under pool size and is what the paper's CPU-time
  traces (Figs. 1-2, Table III) should report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable


@dataclass(frozen=True)
class TimedCall:
    """Return value and both clock readings of one task execution."""

    value: Any
    seconds: float
    cpu_seconds: float


def timed_call(fn: Callable[..., Any], *args: Any) -> TimedCall:
    """Run ``fn(*args)`` and measure wall and CPU time around it."""
    cpu0 = time.process_time()
    t0 = time.perf_counter()
    value = fn(*args)
    seconds = time.perf_counter() - t0
    cpu_seconds = time.process_time() - cpu0
    return TimedCall(value=value, seconds=seconds, cpu_seconds=cpu_seconds)
