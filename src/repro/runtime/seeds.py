"""Deterministic per-task seed streams.

Every multistart/multirun driver in the repo draws its per-task seeds
as 32-bit integers from one ``random.Random(seed)`` stream, in task
order.  The functions here centralise that draw so the parallel
runtime can materialise the whole stream *up front*, hand task ``i``
seed ``i`` regardless of which worker executes it, and thereby return
results bit-identical to the serial path.
"""

from __future__ import annotations

import random
from typing import List

SEED_BITS = 32
"""Width of every derived seed (matches the historical serial draws)."""


def derive_start_seeds(seed: int, count: int) -> List[int]:
    """The first ``count`` task seeds of the stream keyed by ``seed``.

    Equivalent to ``count`` successive ``getrandbits(32)`` calls on
    ``random.Random(seed)`` -- exactly what the serial drivers always
    did, which is the backbone of the ``jobs=N == jobs=1`` determinism
    contract.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    rng = random.Random(seed)
    return [rng.getrandbits(SEED_BITS) for _ in range(count)]


def spawn_seed(rng: random.Random) -> int:
    """Draw one task seed from an existing stream (serial call sites)."""
    return rng.getrandbits(SEED_BITS)
