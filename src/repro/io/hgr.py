"""hMetis ``.hgr`` hypergraph format.

The de-facto interchange format of the multilevel-partitioning
literature (hMetis, KaHyPar, PaToH all read it).  Supported dialects,
selected by the header's ``fmt`` code:

* ``(none)`` -- unweighted: ``<nets> <vertices>`` then one line of
  1-based pin indices per net;
* ``1``  -- net weights: each net line starts with its weight;
* ``10`` -- vertex weights: vertex-weight lines follow the net lines;
* ``11`` -- both.

hMetis has a companion ``.fix`` file (one line per vertex: the target
partition or ``-1``), which is exactly the paper's hard-fixture vector;
:func:`read_fix_file` / :func:`write_fix_file` handle it.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.hypergraph.hypergraph import Hypergraph, HypergraphError
from repro.partition.solution import FREE

PathLike = Union[str, Path]


class HgrFormatError(HypergraphError):
    """Raised on malformed ``.hgr`` content.

    Parser errors carry the file name and 1-based line number
    (``file.hgr:3: ...``) so a bad line in a big netlist is findable.
    """


def write_hgr(graph: Hypergraph, path: PathLike) -> None:
    """Write ``graph`` in ``.hgr`` format.

    The dialect is chosen from the content: net weights are emitted iff
    any differ from 1, vertex weights iff any area differs from 1.
    Zero-pin nets cannot be represented and are rejected; areas are
    written as integers (rounded) because hMetis requires integral
    weights -- callers with fractional areas should pre-scale.
    """
    for e in range(graph.num_nets):
        if graph.net_size(e) == 0:
            raise HgrFormatError(f"net {e} has no pins")
    has_net_weights = any(
        graph.net_weight(e) != 1 for e in range(graph.num_nets)
    )
    has_vertex_weights = any(
        graph.area(v) != 1.0 for v in range(graph.num_vertices)
    )
    fmt = (10 if has_vertex_weights else 0) + (1 if has_net_weights else 0)

    lines = []
    header = f"{graph.num_nets} {graph.num_vertices}"
    if fmt:
        header += f" {fmt}"
    lines.append(header)
    for e in range(graph.num_nets):
        pins = " ".join(str(v + 1) for v in graph.net_pins(e))
        if has_net_weights:
            lines.append(f"{graph.net_weight(e)} {pins}")
        else:
            lines.append(pins)
    if has_vertex_weights:
        for v in range(graph.num_vertices):
            lines.append(str(round(graph.area(v))))
    Path(path).write_text("\n".join(lines) + "\n")


def read_hgr(path: PathLike) -> Hypergraph:
    """Parse a ``.hgr`` file into a :class:`Hypergraph`.

    Malformed content raises :class:`HgrFormatError` (a
    :class:`HypergraphError`) pointing at the offending
    ``file:lineno``.
    """
    name = Path(path).name
    # (1-based source line number, content) of every non-empty line,
    # with % comments stripped -- kept paired so errors can name the
    # actual line in the file, not its index among non-empty lines.
    lines: List[Tuple[int, str]] = []
    for lineno, raw in enumerate(
        Path(path).read_text().splitlines(), start=1
    ):
        stripped = raw.split("%", 1)[0].strip()
        if stripped:
            lines.append((lineno, stripped))
    if not lines:
        raise HgrFormatError(f"{name}: empty .hgr file")
    header_lineno, header_text = lines[0]
    header = header_text.split()
    if len(header) < 2:
        raise HgrFormatError(
            f"{name}:{header_lineno}: bad header: {header_text!r}"
        )
    try:
        num_nets = int(header[0])
        num_vertices = int(header[1])
        fmt = int(header[2]) if len(header) > 2 else 0
    except ValueError as exc:
        raise HgrFormatError(
            f"{name}:{header_lineno}: bad header: {header_text!r}"
        ) from exc
    if fmt not in (0, 1, 10, 11):
        raise HgrFormatError(
            f"{name}:{header_lineno}: unsupported fmt code {fmt}"
        )
    has_net_weights = fmt in (1, 11)
    has_vertex_weights = fmt in (10, 11)

    expected = 1 + num_nets + (num_vertices if has_vertex_weights else 0)
    if len(lines) != expected:
        raise HgrFormatError(
            f"{name}: expected {expected} non-empty lines, "
            f"found {len(lines)} (truncated or overlong file?)"
        )

    nets: List[List[int]] = []
    weights: List[int] = []
    for i in range(num_nets):
        lineno, text = lines[1 + i]
        tokens = text.split()
        try:
            values = [int(t) for t in tokens]
        except ValueError as exc:
            raise HgrFormatError(
                f"{name}:{lineno}: bad net line: {text!r}"
            ) from exc
        if has_net_weights:
            if len(values) < 2:
                raise HgrFormatError(
                    f"{name}:{lineno}: net line {i} lacks pins: {text!r}"
                )
            weights.append(values[0])
            pins = values[1:]
        else:
            if not values:
                raise HgrFormatError(
                    f"{name}:{lineno}: net line {i} is empty"
                )
            weights.append(1)
            pins = values
        for p in pins:
            if not 1 <= p <= num_vertices:
                raise HgrFormatError(
                    f"{name}:{lineno}: net {i} references vertex {p} "
                    f"outside [1, {num_vertices}]"
                )
        nets.append([p - 1 for p in pins])

    areas: Optional[List[float]] = None
    if has_vertex_weights:
        areas = []
        for v in range(num_vertices):
            lineno, text = lines[1 + num_nets + v]
            try:
                areas.append(float(int(text.split()[0])))
            except (ValueError, IndexError) as exc:
                raise HgrFormatError(
                    f"{name}:{lineno}: bad vertex-weight line: {text!r}"
                ) from exc

    return Hypergraph(
        nets,
        num_vertices=num_vertices,
        areas=areas,
        net_weights=weights,
    )


def write_fix_file(fixture: Sequence[int], path: PathLike) -> None:
    """Write an hMetis fix file: one target block (or -1) per line."""
    Path(path).write_text(
        "\n".join(str(f) for f in fixture) + "\n"
    )


def read_fix_file(
    path: PathLike, num_vertices: Optional[int] = None
) -> List[int]:
    """Read an hMetis fix file into a fixture vector."""
    name = Path(path).name
    values = []
    linenos = []
    for lineno, line in enumerate(
        Path(path).read_text().splitlines(), start=1
    ):
        stripped = line.split("%", 1)[0].strip()
        if not stripped:
            continue
        try:
            values.append(int(stripped))
        except ValueError as exc:
            raise HgrFormatError(
                f"{name}:{lineno}: bad fix value {stripped!r}"
            ) from exc
        linenos.append(lineno)
    if num_vertices is not None and len(values) != num_vertices:
        raise HgrFormatError(
            f"{name}: fix file has {len(values)} lines, "
            f"expected {num_vertices}"
        )
    for i, f in enumerate(values):
        if f < FREE:
            raise HgrFormatError(
                f"{name}:{linenos[i]}: fix entry {i} is {f}; "
                "must be >= -1"
            )
    return values


def roundtrip_check(graph: Hypergraph, path: PathLike) -> bool:
    """Write + re-read + structural comparison (testing helper)."""
    write_hgr(graph, path)
    return read_hgr(path).structurally_equal(graph)
