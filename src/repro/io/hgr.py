"""hMetis ``.hgr`` hypergraph format.

The de-facto interchange format of the multilevel-partitioning
literature (hMetis, KaHyPar, PaToH all read it).  Supported dialects,
selected by the header's ``fmt`` code:

* ``(none)`` -- unweighted: ``<nets> <vertices>`` then one line of
  1-based pin indices per net;
* ``1``  -- net weights: each net line starts with its weight;
* ``10`` -- vertex weights: vertex-weight lines follow the net lines;
* ``11`` -- both.

hMetis has a companion ``.fix`` file (one line per vertex: the target
partition or ``-1``), which is exactly the paper's hard-fixture vector;
:func:`read_fix_file` / :func:`write_fix_file` handle it.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.hypergraph.hypergraph import Hypergraph
from repro.partition.solution import FREE

PathLike = Union[str, Path]


class HgrFormatError(ValueError):
    """Raised on malformed ``.hgr`` content."""


def write_hgr(graph: Hypergraph, path: PathLike) -> None:
    """Write ``graph`` in ``.hgr`` format.

    The dialect is chosen from the content: net weights are emitted iff
    any differ from 1, vertex weights iff any area differs from 1.
    Zero-pin nets cannot be represented and are rejected; areas are
    written as integers (rounded) because hMetis requires integral
    weights -- callers with fractional areas should pre-scale.
    """
    for e in range(graph.num_nets):
        if graph.net_size(e) == 0:
            raise HgrFormatError(f"net {e} has no pins")
    has_net_weights = any(
        graph.net_weight(e) != 1 for e in range(graph.num_nets)
    )
    has_vertex_weights = any(
        graph.area(v) != 1.0 for v in range(graph.num_vertices)
    )
    fmt = (10 if has_vertex_weights else 0) + (1 if has_net_weights else 0)

    lines = []
    header = f"{graph.num_nets} {graph.num_vertices}"
    if fmt:
        header += f" {fmt}"
    lines.append(header)
    for e in range(graph.num_nets):
        pins = " ".join(str(v + 1) for v in graph.net_pins(e))
        if has_net_weights:
            lines.append(f"{graph.net_weight(e)} {pins}")
        else:
            lines.append(pins)
    if has_vertex_weights:
        for v in range(graph.num_vertices):
            lines.append(str(round(graph.area(v))))
    Path(path).write_text("\n".join(lines) + "\n")


def read_hgr(path: PathLike) -> Hypergraph:
    """Parse a ``.hgr`` file into a :class:`Hypergraph`."""
    raw_lines = [
        line.split("%", 1)[0].strip()
        for line in Path(path).read_text().splitlines()
    ]
    lines = [line for line in raw_lines if line]
    if not lines:
        raise HgrFormatError("empty .hgr file")
    header = lines[0].split()
    if len(header) < 2:
        raise HgrFormatError(f"bad header: {lines[0]!r}")
    try:
        num_nets = int(header[0])
        num_vertices = int(header[1])
        fmt = int(header[2]) if len(header) > 2 else 0
    except ValueError as exc:
        raise HgrFormatError(f"bad header: {lines[0]!r}") from exc
    if fmt not in (0, 1, 10, 11):
        raise HgrFormatError(f"unsupported fmt code {fmt}")
    has_net_weights = fmt in (1, 11)
    has_vertex_weights = fmt in (10, 11)

    expected = 1 + num_nets + (num_vertices if has_vertex_weights else 0)
    if len(lines) != expected:
        raise HgrFormatError(
            f"expected {expected} non-empty lines, found {len(lines)}"
        )

    nets: List[List[int]] = []
    weights: List[int] = []
    for i in range(num_nets):
        tokens = lines[1 + i].split()
        try:
            values = [int(t) for t in tokens]
        except ValueError as exc:
            raise HgrFormatError(f"bad net line: {lines[1 + i]!r}") from exc
        if has_net_weights:
            if len(values) < 2:
                raise HgrFormatError(
                    f"net line {i} lacks pins: {lines[1 + i]!r}"
                )
            weights.append(values[0])
            pins = values[1:]
        else:
            if not values:
                raise HgrFormatError(f"net line {i} is empty")
            weights.append(1)
            pins = values
        for p in pins:
            if not 1 <= p <= num_vertices:
                raise HgrFormatError(
                    f"net {i} references vertex {p} outside "
                    f"[1, {num_vertices}]"
                )
        nets.append([p - 1 for p in pins])

    areas: Optional[List[float]] = None
    if has_vertex_weights:
        areas = []
        for v in range(num_vertices):
            line = lines[1 + num_nets + v]
            try:
                areas.append(float(int(line.split()[0])))
            except (ValueError, IndexError) as exc:
                raise HgrFormatError(
                    f"bad vertex-weight line: {line!r}"
                ) from exc

    return Hypergraph(
        nets,
        num_vertices=num_vertices,
        areas=areas,
        net_weights=weights,
    )


def write_fix_file(fixture: Sequence[int], path: PathLike) -> None:
    """Write an hMetis fix file: one target block (or -1) per line."""
    Path(path).write_text(
        "\n".join(str(f) for f in fixture) + "\n"
    )


def read_fix_file(
    path: PathLike, num_vertices: Optional[int] = None
) -> List[int]:
    """Read an hMetis fix file into a fixture vector."""
    values = []
    for lineno, line in enumerate(
        Path(path).read_text().splitlines(), start=1
    ):
        stripped = line.split("%", 1)[0].strip()
        if not stripped:
            continue
        try:
            values.append(int(stripped))
        except ValueError as exc:
            raise HgrFormatError(
                f"{path}:{lineno}: bad fix value {stripped!r}"
            ) from exc
    if num_vertices is not None and len(values) != num_vertices:
        raise HgrFormatError(
            f"fix file has {len(values)} lines, expected {num_vertices}"
        )
    for i, f in enumerate(values):
        if f < FREE:
            raise HgrFormatError(
                f"fix entry {i} is {f}; must be >= -1"
            )
    return values


def roundtrip_check(graph: Hypergraph, path: PathLike) -> bool:
    """Write + re-read + structural comparison (testing helper)."""
    write_hgr(graph, path)
    return read_hgr(path).structurally_equal(graph)
