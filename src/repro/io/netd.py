"""Classic ACM/SIGDA ``.net`` / ``.are`` netlist format.

The pre-ISPD-98 partitioning benchmarks circulated as a ``.net`` file
(connectivity) plus an ``.are`` file (module areas).  The paper points
out that these files carry *no* fixed-vertex information -- which is
exactly the gap its proposed formats close -- but the classic format is
still the interchange baseline, so both directions are supported here.

Format summary (as used by the MCNC/ISPD-98 distributions):

``.net``::

    0
    <num_pins>
    <num_nets>
    <num_modules>
    <pad_offset>
    <module> s [dir]     # first pin of a net
    <module> l [dir]     # subsequent pins
    ...

Modules named ``a<i>`` are cells, ``p<i>`` are pads; ``pad_offset`` is
the number of cell modules (pads occupy the tail of the module index
space).  ``.are`` lines are ``<module> <area>``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.hypergraph.builder import HypergraphBuilder
from repro.hypergraph.hypergraph import Hypergraph, HypergraphError

PathLike = Union[str, Path]


class NetDFormatError(HypergraphError):
    """Raised on malformed ``.net`` / ``.are`` content.

    Parser errors carry the file name and 1-based line number
    (``chip.net:12: ...``) so a bad line in a big netlist is findable.
    """


def write_netd(
    graph: Hypergraph,
    net_path: PathLike,
    are_path: Optional[PathLike] = None,
    pad_vertices: Sequence[int] = (),
) -> None:
    """Write ``graph`` as a ``.net`` file (and optionally ``.are``).

    Vertices in ``pad_vertices`` are emitted with ``p`` names, everything
    else with ``a`` names.  Vertex names from the graph are *not* reused:
    the classic format's tooling assumes the ``a<i>``/``p<i>`` scheme.
    """
    pads = set(pad_vertices)
    names: Dict[int, str] = {}
    cell_count = 0
    pad_count = 0
    for v in range(graph.num_vertices):
        if v in pads:
            pad_count += 1
            names[v] = f"p{pad_count}"
        else:
            names[v] = f"a{cell_count}"
            cell_count += 1

    lines: List[str] = [
        "0",
        str(graph.num_pins),
        str(graph.num_nets),
        str(graph.num_vertices),
        str(cell_count),
    ]
    for e in range(graph.num_nets):
        for i, v in enumerate(graph.net_pins(e)):
            marker = "s" if i == 0 else "l"
            lines.append(f"{names[v]} {marker}")
    Path(net_path).write_text("\n".join(lines) + "\n")

    if are_path is not None:
        are_lines = [
            f"{names[v]} {_format_area(graph.area(v))}"
            for v in range(graph.num_vertices)
        ]
        Path(are_path).write_text("\n".join(are_lines) + "\n")


def _format_area(area: float) -> str:
    return str(int(area)) if float(area).is_integer() else repr(area)


def read_netd(
    net_path: PathLike,
    are_path: Optional[PathLike] = None,
) -> Tuple[Hypergraph, List[int]]:
    """Parse a ``.net`` (+ optional ``.are``) pair.

    Returns the hypergraph and the list of pad vertex ids (modules whose
    name starts with ``p``).  Pads default to zero area, cells to unit
    area, unless the ``.are`` file says otherwise.
    """
    net_name = Path(net_path).name
    # (1-based source line number, tokens) of each non-empty line, so
    # parse errors point at the real line in the file.
    numbered: List[Tuple[int, List[str]]] = []
    for lineno, line in enumerate(
        Path(net_path).read_text().splitlines(), start=1
    ):
        if line.strip():
            numbered.append((lineno, line.split()))
    if len(numbered) < 5:
        raise NetDFormatError(f"{net_name}: truncated .net header")
    header = numbered[:5]
    try:
        magic = int(header[0][1][0])
        num_pins = int(header[1][1][0])
        num_nets = int(header[2][1][0])
        num_modules = int(header[3][1][0])
        pad_offset = int(header[4][1][0])
    except (ValueError, IndexError) as exc:
        bad = next(
            (
                (lineno, tokens)
                for lineno, tokens in header
                if not (tokens and tokens[0].lstrip("-").isdigit())
            ),
            header[0],
        )
        raise NetDFormatError(
            f"{net_name}:{bad[0]}: bad .net header line: "
            f"{' '.join(bad[1])!r}"
        ) from exc
    if magic != 0:
        raise NetDFormatError(
            f"{net_name}:{header[0][0]}: unsupported .net magic {magic}"
        )
    if not 0 <= pad_offset <= num_modules:
        raise NetDFormatError(
            f"{net_name}:{header[4][0]}: pad offset {pad_offset} "
            f"outside [0, {num_modules}]"
        )

    builder = HypergraphBuilder()
    pad_ids: List[int] = []
    current: List[str] = []
    nets_seen = 0
    pins_seen = 0

    def flush() -> None:
        nonlocal nets_seen
        if current:
            builder.add_net_by_names(current, create_missing=True)
            nets_seen += 1
            current.clear()

    for lineno, tokens in numbered[5:]:
        name = tokens[0]
        if len(tokens) < 2 or tokens[1] not in ("s", "l"):
            raise NetDFormatError(
                f"{net_name}:{lineno}: bad pin line: "
                f"{' '.join(tokens)!r} (expected '<module> s|l [dir]')"
            )
        if tokens[1] == "s":
            flush()
        elif not current and nets_seen == 0:
            raise NetDFormatError(
                f"{net_name}:{lineno}: first pin line must start "
                "a net ('s')"
            )
        current.append(name)
        pins_seen += 1
    flush()

    if nets_seen != num_nets:
        raise NetDFormatError(
            f"{net_name}: declares {num_nets} nets but contains "
            f"{nets_seen}"
        )
    if pins_seen != num_pins:
        raise NetDFormatError(
            f"{net_name}: declares {num_pins} pins but contains "
            f"{pins_seen}"
        )

    areas_by_name: Dict[str, float] = {}
    if are_path is not None:
        are_name = Path(are_path).name
        for lineno, line in enumerate(
            Path(are_path).read_text().splitlines(), start=1
        ):
            tokens = line.split()
            if not tokens:
                continue
            if len(tokens) < 2:
                raise NetDFormatError(
                    f"{are_name}:{lineno}: bad .are line: {line!r}"
                )
            try:
                areas_by_name[tokens[0]] = float(tokens[1])
            except ValueError as exc:
                raise NetDFormatError(
                    f"{are_name}:{lineno}: bad area in .are line: "
                    f"{line!r}"
                ) from exc

    # Modules never referenced by a net still count toward num_modules.
    # The .are file names them; without one, synthesise placeholders so
    # vertex ids stay dense.
    for name in areas_by_name:
        if not builder.has_vertex(name):
            builder.add_vertex(name)
    extra = 0
    while builder.num_vertices < num_modules:
        builder.add_vertex(f"__isolated{extra}")
        extra += 1
    if builder.num_vertices != num_modules:
        raise NetDFormatError(
            f"{net_name}: declares {num_modules} modules but references "
            f"{builder.num_vertices}"
        )

    graph = builder.build()
    names = [graph.vertex_name(v) for v in range(graph.num_vertices)]

    areas = []
    for v, name in enumerate(names):
        is_pad = name.startswith("p") and name[1:].isdigit()
        if is_pad:
            pad_ids.append(v)
        if name in areas_by_name:
            areas.append(areas_by_name[name])
        else:
            areas.append(0.0 if is_pad else 1.0)

    rebuilt = Hypergraph(
        list(graph.nets()),
        num_vertices=graph.num_vertices,
        areas=areas,
        net_weights=list(graph.net_weights),
        vertex_names=names,
        net_names=[graph.net_name(e) for e in range(graph.num_nets)],
    )
    return rebuilt, pad_ids
