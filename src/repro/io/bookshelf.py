"""Bookshelf-style benchmark format with fixed terminals.

Section IV of the paper proposes a benchmark format for the
fixed-terminals regime with these features, all implemented here:

* multiple partitions with capacities and tolerances, in *absolute* or
  *relative* (percentage) semantics;
* multi-balanced problems: each node supplies ``k >= 1`` resource values
  ("multi-area" files -- multiple areas repeated on the node line), with
  a capacity/tolerance pair per resource per partition;
* flexible fixed assignments: a node may be fixed in one partition or in
  any of a set of partitions (OR semantics);
* terminal marking on node lines.

An instance called ``name`` is stored in a directory as ``name.nodes``,
``name.nets``, optional ``name.wts``, ``name.blk`` and optional
``name.fix``.  The syntax is line-oriented with ``#`` comments:

``name.nodes``::

    NumNodes : <n>
    NumTerminals : <t>
    <node> <area> [<area2> ...] [terminal]

``name.nets``::

    NumNets : <m>
    NumPins : <p>
    NetDegree : <d> [<netname>]
    <node>
    ...

``name.wts``::

    <netname> <weight>

``name.blk``::

    NumPartitions : <k>
    NumResources : <r>
    Semantics : relative | absolute
    <pid> capacity <c_0> ... <c_{r-1}> tolerance <t_0> ... <t_{r-1}>

  Relative semantics reads capacities and tolerances as percentages of
  the total of each resource (the paper's "2% balance" is capacity 50
  tolerance 2); absolute semantics reads raw capacity, with the
  tolerance added as absolute slack and no lower bound.

``name.fix``::

    <node> <pid> [<pid> ...]
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.instance import PartitioningInstance
from repro.hypergraph.hypergraph import Hypergraph
from repro.partition.balance import (
    BalanceConstraint,
    MultiBalanceConstraint,
)

PathLike = Union[str, Path]


class BookshelfFormatError(ValueError):
    """Raised on malformed bookshelf content."""


# ----------------------------------------------------------------------
# Writing
# ----------------------------------------------------------------------
def write_bookshelf(
    instance: PartitioningInstance,
    directory: PathLike,
    relative: bool = True,
) -> None:
    """Write ``instance`` into ``directory`` as ``<instance.name>.*``.

    With ``relative=True`` the ``.blk`` file uses percentage semantics
    derived from the instance's balance windows; with ``relative=False``
    the windows' upper bounds are written as absolute capacities.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    base = directory / instance.name
    graph = instance.graph
    pads = set(instance.pad_vertices)

    resources = graph.num_resources
    node_lines = [
        f"NumNodes : {graph.num_vertices}",
        f"NumTerminals : {len(pads)}",
    ]
    for v in range(graph.num_vertices):
        values = " ".join(
            _fmt(graph.resource(v, r)) for r in range(resources)
        )
        suffix = " terminal" if v in pads else ""
        node_lines.append(f"{graph.vertex_name(v)} {values}{suffix}")
    base.with_suffix(".nodes").write_text("\n".join(node_lines) + "\n")

    net_lines = [
        f"NumNets : {graph.num_nets}",
        f"NumPins : {graph.num_pins}",
    ]
    for e in range(graph.num_nets):
        net_lines.append(
            f"NetDegree : {graph.net_size(e)} {graph.net_name(e)}"
        )
        for v in graph.net_pins(e):
            net_lines.append(f"  {graph.vertex_name(v)}")
    base.with_suffix(".nets").write_text("\n".join(net_lines) + "\n")

    if any(graph.net_weight(e) != 1 for e in range(graph.num_nets)):
        wts_lines = [
            f"{graph.net_name(e)} {graph.net_weight(e)}"
            for e in range(graph.num_nets)
        ]
        base.with_suffix(".wts").write_text("\n".join(wts_lines) + "\n")

    blk_lines = _format_blk(instance, relative)
    base.with_suffix(".blk").write_text("\n".join(blk_lines) + "\n")

    fix_lines = []
    for v, fs in enumerate(instance.fixture_sets):
        if fs is not None:
            parts = " ".join(str(p) for p in sorted(fs))
            fix_lines.append(f"{graph.vertex_name(v)} {parts}")
    if fix_lines:
        base.with_suffix(".fix").write_text("\n".join(fix_lines) + "\n")


def _fmt(x: float) -> str:
    return str(int(x)) if float(x).is_integer() else repr(x)


def _format_blk(
    instance: PartitioningInstance,
    relative: bool,
) -> List[str]:
    balance = instance.balance
    if isinstance(balance, MultiBalanceConstraint):
        constraints = list(balance.constraints)
    else:
        constraints = [balance]
    k = instance.num_parts
    lines = [
        f"NumPartitions : {k}",
        f"NumResources : {len(constraints)}",
        f"Semantics : {'relative' if relative else 'absolute'}",
    ]
    totals = [
        sum(instance.graph.resource_vector(r))
        for r in range(len(constraints))
    ]
    for pid in range(k):
        caps = []
        tols = []
        for r, c in enumerate(constraints):
            hi = c.max_loads[pid]
            lo = c.min_loads[pid]
            if relative:
                total = totals[r] or 1.0
                center = (hi + lo) / 2.0
                caps.append(_fmt(100.0 * center / total))
                half_window = (hi - lo) / 2.0
                tols.append(
                    _fmt(100.0 * half_window / center if center else 0.0)
                )
            else:
                caps.append(_fmt(hi))
                tols.append(_fmt(0.0))
        lines.append(
            f"{pid} capacity {' '.join(caps)} tolerance {' '.join(tols)}"
        )
    return lines


# ----------------------------------------------------------------------
# Reading
# ----------------------------------------------------------------------
def read_bookshelf(directory: PathLike, name: str) -> PartitioningInstance:
    """Read the instance ``name`` from ``directory``."""
    base = Path(directory) / name
    nodes_path = base.with_suffix(".nodes")
    nets_path = base.with_suffix(".nets")
    blk_path = base.with_suffix(".blk")
    for required in (nodes_path, nets_path, blk_path):
        if not required.exists():
            raise BookshelfFormatError(f"missing file: {required}")

    names, resource_rows, terminals = _read_nodes(nodes_path)
    index = {node: i for i, node in enumerate(names)}
    nets, net_names = _read_nets(nets_path, index)

    weights = [1] * len(nets)
    wts_path = base.with_suffix(".wts")
    if wts_path.exists():
        by_name = {n: e for e, n in enumerate(net_names)}
        for lineno, tokens in _tokens(wts_path):
            if len(tokens) != 2:
                raise BookshelfFormatError(
                    f"{wts_path}:{lineno}: expected '<net> <weight>'"
                )
            if tokens[0] not in by_name:
                raise BookshelfFormatError(
                    f"{wts_path}:{lineno}: unknown net {tokens[0]!r}"
                )
            weights[by_name[tokens[0]]] = int(tokens[1])

    num_resources = len(resource_rows[0]) if resource_rows else 1
    areas = [row[0] for row in resource_rows]
    extra = [
        [row[r] for row in resource_rows]
        for r in range(1, num_resources)
    ]
    graph = Hypergraph(
        nets,
        num_vertices=len(names),
        areas=areas,
        net_weights=weights,
        vertex_names=names,
        net_names=net_names,
        extra_resources=extra or None,
    )

    num_parts, balance = _read_blk(blk_path, graph)

    fixture_sets: List[Optional[frozenset]] = [None] * graph.num_vertices
    fix_path = base.with_suffix(".fix")
    if fix_path.exists():
        for lineno, tokens in _tokens(fix_path):
            if len(tokens) < 2:
                raise BookshelfFormatError(
                    f"{fix_path}:{lineno}: expected '<node> <pid>...'"
                )
            if tokens[0] not in index:
                raise BookshelfFormatError(
                    f"{fix_path}:{lineno}: unknown node {tokens[0]!r}"
                )
            try:
                pids = frozenset(int(t) for t in tokens[1:])
            except ValueError as exc:
                raise BookshelfFormatError(
                    f"{fix_path}:{lineno}: bad partition id"
                ) from exc
            fixture_sets[index[tokens[0]]] = pids

    return PartitioningInstance(
        graph=graph,
        num_parts=num_parts,
        balance=balance,
        fixture_sets=fixture_sets,
        pad_vertices=terminals,
        name=name,
    )


def _tokens(path: Path) -> List[Tuple[int, List[str]]]:
    out = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        stripped = line.split("#", 1)[0].strip()
        if stripped:
            out.append((lineno, stripped.split()))
    return out


def _header_int(tokens: List[str], path: Path, lineno: int) -> int:
    # "Key : value" or "Key: value"
    try:
        return int(tokens[-1])
    except ValueError as exc:
        raise BookshelfFormatError(
            f"{path}:{lineno}: expected integer header value"
        ) from exc


def _read_nodes(
    path: Path,
) -> Tuple[List[str], List[List[float]], List[int]]:
    names: List[str] = []
    seen = set()
    rows: List[List[float]] = []
    terminals: List[int] = []
    declared_nodes = declared_terms = None
    width: Optional[int] = None
    for lineno, tokens in _tokens(path):
        if tokens[0] == "NumNodes":
            declared_nodes = _header_int(tokens, path, lineno)
            continue
        if tokens[0] == "NumTerminals":
            declared_terms = _header_int(tokens, path, lineno)
            continue
        name = tokens[0]
        rest = tokens[1:]
        is_terminal = bool(rest) and rest[-1].lower() == "terminal"
        if is_terminal:
            rest = rest[:-1]
        if not rest:
            raise BookshelfFormatError(
                f"{path}:{lineno}: node line needs at least one area"
            )
        try:
            values = [float(t) for t in rest]
        except ValueError as exc:
            raise BookshelfFormatError(
                f"{path}:{lineno}: bad area value"
            ) from exc
        if width is None:
            width = len(values)
        elif len(values) != width:
            raise BookshelfFormatError(
                f"{path}:{lineno}: expected {width} resource values, "
                f"got {len(values)}"
            )
        if name in seen:
            raise BookshelfFormatError(
                f"{path}:{lineno}: duplicate node {name!r}"
            )
        seen.add(name)
        if is_terminal:
            terminals.append(len(names))
        names.append(name)
        rows.append(values)
    if declared_nodes is not None and declared_nodes != len(names):
        raise BookshelfFormatError(
            f"{path}: NumNodes={declared_nodes} but {len(names)} node lines"
        )
    if declared_terms is not None and declared_terms != len(terminals):
        raise BookshelfFormatError(
            f"{path}: NumTerminals={declared_terms} but "
            f"{len(terminals)} terminal lines"
        )
    return names, rows, terminals


def _read_nets(
    path: Path, index: Dict[str, int]
) -> Tuple[List[List[int]], List[str]]:
    nets: List[List[int]] = []
    net_names: List[str] = []
    declared_nets = declared_pins = None
    expecting = 0
    for lineno, tokens in _tokens(path):
        if tokens[0] == "NumNets":
            declared_nets = _header_int(tokens, path, lineno)
            continue
        if tokens[0] == "NumPins":
            declared_pins = _header_int(tokens, path, lineno)
            continue
        if tokens[0] == "NetDegree":
            if expecting:
                raise BookshelfFormatError(
                    f"{path}:{lineno}: previous net short of "
                    f"{expecting} pin(s)"
                )
            expecting = _header_int(tokens[:2] + [tokens[2]], path, lineno)
            name = tokens[3] if len(tokens) > 3 else f"n{len(nets)}"
            nets.append([])
            net_names.append(name)
            continue
        if not nets or not expecting:
            raise BookshelfFormatError(
                f"{path}:{lineno}: pin line outside a NetDegree block"
            )
        if tokens[0] not in index:
            raise BookshelfFormatError(
                f"{path}:{lineno}: unknown node {tokens[0]!r}"
            )
        nets[-1].append(index[tokens[0]])
        expecting -= 1
    if expecting:
        raise BookshelfFormatError(
            f"{path}: final net short of {expecting} pin(s)"
        )
    if declared_nets is not None and declared_nets != len(nets):
        raise BookshelfFormatError(
            f"{path}: NumNets={declared_nets} but {len(nets)} nets"
        )
    total_pins = sum(len(p) for p in nets)
    if declared_pins is not None and declared_pins != total_pins:
        raise BookshelfFormatError(
            f"{path}: NumPins={declared_pins} but {total_pins} pins"
        )
    return nets, net_names


def _read_blk(
    path: Path, graph: Hypergraph
) -> Tuple[int, Union[BalanceConstraint, MultiBalanceConstraint]]:
    num_parts = None
    num_resources = 1
    relative = True
    rows: Dict[int, Tuple[List[float], List[float]]] = {}
    for lineno, tokens in _tokens(path):
        if tokens[0] == "NumPartitions":
            num_parts = _header_int(tokens, path, lineno)
            continue
        if tokens[0] == "NumResources":
            num_resources = _header_int(tokens, path, lineno)
            continue
        if tokens[0] == "Semantics":
            semantics = tokens[-1].lower()
            if semantics not in ("relative", "absolute"):
                raise BookshelfFormatError(
                    f"{path}:{lineno}: semantics must be "
                    "'relative' or 'absolute'"
                )
            relative = semantics == "relative"
            continue
        # "<pid> capacity c... tolerance t..."
        try:
            pid = int(tokens[0])
        except ValueError as exc:
            raise BookshelfFormatError(
                f"{path}:{lineno}: expected partition id"
            ) from exc
        try:
            cap_at = tokens.index("capacity")
            tol_at = tokens.index("tolerance")
            caps = [float(t) for t in tokens[cap_at + 1 : tol_at]]
            tols = [float(t) for t in tokens[tol_at + 1 :]]
        except (ValueError, IndexError) as exc:
            raise BookshelfFormatError(
                f"{path}:{lineno}: expected "
                "'<pid> capacity <c...> tolerance <t...>'"
            ) from exc
        if len(caps) != num_resources or len(tols) != num_resources:
            raise BookshelfFormatError(
                f"{path}:{lineno}: expected {num_resources} capacities "
                "and tolerances"
            )
        rows[pid] = (caps, tols)
    if num_parts is None:
        raise BookshelfFormatError(f"{path}: missing NumPartitions")
    if set(rows) != set(range(num_parts)):
        raise BookshelfFormatError(
            f"{path}: need one line per partition 0..{num_parts - 1}"
        )
    if num_resources > graph.num_resources:
        raise BookshelfFormatError(
            f"{path}: declares {num_resources} resources but nodes "
            f"carry {graph.num_resources}"
        )

    constraints = []
    for r in range(num_resources):
        total = sum(graph.resource_vector(r))
        mins = []
        maxs = []
        for pid in range(num_parts):
            cap, tol = rows[pid][0][r], rows[pid][1][r]
            if relative:
                center = total * cap / 100.0
                half = center * tol / 100.0
                mins.append(center - half)
                maxs.append(center + half)
            else:
                mins.append(0.0)
                maxs.append(cap + tol)
        constraints.append(
            BalanceConstraint(min_loads=mins, max_loads=maxs)
        )
    if len(constraints) == 1:
        return num_parts, constraints[0]
    return num_parts, MultiBalanceConstraint(constraints=constraints)
