"""Netlist and benchmark-instance I/O."""

from repro.io.bookshelf import (
    BookshelfFormatError,
    read_bookshelf,
    write_bookshelf,
)
from repro.io.hgr import (
    HgrFormatError,
    read_fix_file,
    read_hgr,
    write_fix_file,
    write_hgr,
)
from repro.io.netd import NetDFormatError, read_netd, write_netd

__all__ = [
    "BookshelfFormatError",
    "HgrFormatError",
    "NetDFormatError",
    "read_bookshelf",
    "read_fix_file",
    "read_hgr",
    "read_netd",
    "write_bookshelf",
    "write_fix_file",
    "write_hgr",
    "write_netd",
]
