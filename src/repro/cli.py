"""Command-line interface.

Exposes the library's main workflows without writing Python::

    python -m repro generate  --cells 1000 --out circ_dir --name mychip
    python -m repro partition --dir circ_dir --name mychip --engine multilevel
    python -m repro place     --cells 800 --suite-out suite_dir --name chip
    python -m repro stats     --dir circ_dir --name mychip
    python -m repro experiment table2 --profile quick

All subcommands are deterministic under ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.core import bipartition_instance, constraint_profile
from repro.core.instance import PartitioningInstance
from repro.hypergraph import CircuitSpec, compute_stats, generate_circuit
from repro.io import read_bookshelf, write_bookshelf, write_netd
from repro.partition import (
    FMConfig,
    block_loads,
    flat_fm_multistart,
    kway_multistart,
    multilevel_multistart,
    relative_balance,
)
from repro.placement import build_suite, format_table, place_circuit
from repro.runtime import jobs_from_env, parse_jobs
from repro.runtime import observe

ENGINES = ("multilevel", "fm", "kway")
EXPERIMENTS = (
    "table1",
    "table2",
    "table3",
    "table4",
    "fig1",
    "fig2",
    "multiway",
    "overconstrained",
    "suite-solutions",
)


def _jobs_arg(value: str) -> int:
    # Delegates to the runtime's parser so the CLI and the API reject a
    # bad --jobs with the same message (and the same rules).
    try:
        return parse_jobs(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def _default_jobs() -> int:
    """CLI default for --jobs: REPRO_JOBS if set (validated), else 1."""
    env = jobs_from_env()
    return 1 if env is None else env


def _timeout_arg(value: str) -> float:
    timeout = float(value)
    if timeout <= 0:
        raise argparse.ArgumentTypeError(
            f"must be positive seconds, got {timeout}"
        )
    return timeout


def _retries_arg(value: str) -> int:
    retries = int(value)
    if retries < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {retries}")
    return retries


def _add_runtime_args(parser: argparse.ArgumentParser) -> None:
    """The fault-tolerance knobs shared by partition and experiment."""
    parser.add_argument(
        "--resume", default=None, metavar="JOURNAL",
        help="checkpoint journal path; created on first use, resumed "
             "afterwards (completed cells are skipped bit-identically)",
    )
    parser.add_argument(
        "--timeout", type=_timeout_arg, default=None, metavar="SECS",
        help="per-item wall-clock deadline; expired items are retried "
             "on a fresh pool",
    )
    parser.add_argument(
        "--max-retries", type=_retries_arg, default=None, metavar="N",
        help="crash/timeout retries per item before it is quarantined "
             "as a null row (default 2 when --timeout is set)",
    )


def _add_observe_args(parser: argparse.ArgumentParser) -> None:
    """The tracing knobs shared by partition and experiment."""
    parser.add_argument(
        "--trace", default=None, metavar="TRACE.json",
        help="record a structured trace of this run (spans, counters, "
             "histograms) and write it to this path; results are "
             "bit-identical with or without tracing",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="METRICS.json",
        help="write just the counters/histograms to this path "
             "(lighter than a full --trace)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Hypergraph partitioning with fixed vertices "
            "(Alpert/Caldwell/Kahng/Markov reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser(
        "generate", help="synthesize a circuit and write it to disk"
    )
    gen.add_argument("--cells", type=int, default=1000)
    gen.add_argument("--name", default="circuit")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", required=True, help="output directory")
    gen.add_argument(
        "--format",
        choices=("bookshelf", "netd", "both"),
        default="bookshelf",
    )

    part = sub.add_parser(
        "partition", help="partition a saved bookshelf instance"
    )
    part.add_argument("--dir", required=True, help="instance directory")
    part.add_argument("--name", required=True, help="instance name")
    part.add_argument("--engine", choices=ENGINES, default="multilevel")
    part.add_argument("--starts", type=int, default=1)
    part.add_argument("--seed", type=int, default=0)
    part.add_argument(
        "--jobs", type=_jobs_arg, default=_default_jobs(),
        help="worker processes for independent starts "
             "(0 = all cores; REPRO_JOBS sets the default; results are "
             "identical to --jobs 1)",
    )
    part.add_argument(
        "--parts", type=int, default=None,
        help="override block count (kway engine only)",
    )
    part.add_argument(
        "--cutoff", type=float, default=1.0,
        help="pass move-limit fraction (Section III heuristic)",
    )
    part.add_argument(
        "--save", default=None,
        help="write the block of each vertex to this file",
    )
    _add_runtime_args(part)
    _add_observe_args(part)

    place = sub.add_parser(
        "place", help="place a synthetic circuit and derive benchmarks"
    )
    place.add_argument("--cells", type=int, default=800)
    place.add_argument("--name", default="chip")
    place.add_argument("--seed", type=int, default=0)
    place.add_argument(
        "--suite-out", default=None,
        help="write the derived A..D instances to this directory",
    )

    stats = sub.add_parser(
        "stats", help="print statistics of a saved instance"
    )
    stats.add_argument("--dir", required=True)
    stats.add_argument("--name", required=True)

    evaluate = sub.add_parser(
        "evaluate",
        help="verify a saved assignment against an instance",
    )
    evaluate.add_argument("--dir", required=True)
    evaluate.add_argument("--name", required=True)
    evaluate.add_argument(
        "--assignment", required=True,
        help="file of '<node> <block>' lines (see partition --save)",
    )

    exp = sub.add_parser("experiment", help="run a paper experiment")
    exp.add_argument("which", choices=EXPERIMENTS)
    exp.add_argument(
        "--profile", choices=("quick", "full"), default="quick"
    )
    exp.add_argument(
        "--jobs", type=_jobs_arg, default=_default_jobs(),
        help="worker processes for independent starts/runs "
             "(0 = all cores; REPRO_JOBS sets the default; results are "
             "identical to --jobs 1)",
    )
    _add_runtime_args(exp)
    _add_observe_args(exp)

    trace = sub.add_parser(
        "trace", help="inspect a trace written by --trace"
    )
    trace.add_argument("action", choices=("summarize",))
    trace.add_argument("path", help="trace JSON file")
    return parser


# ----------------------------------------------------------------------
def _cmd_generate(args: argparse.Namespace) -> int:
    circuit = generate_circuit(
        CircuitSpec(num_cells=args.cells, name=args.name), seed=args.seed
    )
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    if args.format in ("bookshelf", "both"):
        instance = bipartition_instance(
            circuit.graph,
            pad_vertices=circuit.pad_vertices,
            name=args.name,
        )
        write_bookshelf(instance, out)
    if args.format in ("netd", "both"):
        write_netd(
            circuit.graph,
            out / f"{args.name}.net",
            out / f"{args.name}.are",
            pad_vertices=circuit.pad_vertices,
        )
    s = compute_stats(circuit.graph)
    print(
        f"generated {args.name}: {circuit.num_cells} cells, "
        f"{len(circuit.pad_vertices)} pads, {s.num_nets} nets, "
        f"{s.num_pins} pins -> {out}/"
    )
    return 0


def _load(args: argparse.Namespace) -> PartitioningInstance:
    return read_bookshelf(args.dir, args.name)


def _partition_runtime(args: argparse.Namespace):
    """(policy, checkpoint) for the partition command's runtime flags."""
    from repro.experiments.reporting import RuntimeFlags

    flags = RuntimeFlags(
        resume=args.resume,
        timeout=args.timeout,
        max_retries=args.max_retries,
    )
    journal = flags.journal(
        {
            "command": "partition",
            "dir": str(args.dir),
            "name": args.name,
            "engine": args.engine,
            "starts": args.starts,
            "seed": args.seed,
            "parts": args.parts,
            "cutoff": args.cutoff,
        }
    )
    checkpoint = journal.batch("starts") if journal is not None else None
    return flags.execution_policy(), checkpoint


def _cmd_partition(args: argparse.Namespace) -> int:
    instance = _load(args)
    graph = instance.graph
    fixture = instance.hard_fixture()
    # Per-start seeds keep the historical ``seed + i`` convention, so a
    # given command line prints the same cut at every --jobs value (and
    # the same cut this CLI always printed).
    start_seeds = [args.seed + i for i in range(args.starts)]
    policy, checkpoint = _partition_runtime(args)
    t0 = time.perf_counter()
    if args.engine == "kway":
        num_parts = args.parts or instance.num_parts
        balance = relative_balance(graph.total_area, num_parts, 0.1)
        batch = kway_multistart(
            graph,
            balance,
            fixture=fixture if num_parts == instance.num_parts else None,
            num_starts=args.starts,
            seeds=start_seeds,
            jobs=args.jobs,
            policy=policy,
            checkpoint=checkpoint,
        )
    elif args.engine == "multilevel":
        if instance.num_parts != 2:
            print("multilevel engine is 2-way; use --engine kway")
            return 2
        batch = multilevel_multistart(
            graph,
            instance.balance,
            fixture=fixture,
            num_starts=args.starts,
            seeds=start_seeds,
            jobs=args.jobs,
            policy=policy,
            checkpoint=checkpoint,
        )
    else:  # flat FM
        if instance.num_parts != 2:
            print("fm engine is 2-way; use --engine kway")
            return 2
        batch = flat_fm_multistart(
            graph,
            instance.balance,
            fixture=fixture,
            config=FMConfig(pass_move_limit_fraction=args.cutoff),
            num_starts=args.starts,
            seeds=start_seeds,
            jobs=args.jobs,
            policy=policy,
            checkpoint=checkpoint,
        )
    best = batch.best()
    parts, cut = best.parts, best.cut
    elapsed = time.perf_counter() - t0
    if batch.num_quarantined:
        print(
            f"WARNING: {batch.num_quarantined} of {batch.num_starts} "
            "start(s) quarantined (see warnings above); best cut is "
            "over the surviving starts"
        )

    loads = block_loads(graph, parts, max(parts) + 1)
    print(
        f"{args.name}: cut {cut} with {args.engine} engine "
        f"({args.starts} start(s), {elapsed:.2f}s wall, "
        f"{batch.total_cpu_seconds():.2f}s CPU)"
    )
    print(
        "block loads: "
        + " ".join(f"{load:.1f}" for load in loads)
    )
    if not instance.is_assignment_legal(parts):
        print("WARNING: OR-fixture constraints not all satisfied")
    if args.save:
        Path(args.save).write_text(
            "\n".join(
                f"{graph.vertex_name(v)} {parts[v]}"
                for v in range(graph.num_vertices)
            )
            + "\n"
        )
        print(f"assignment written to {args.save}")
    return 0


def _cmd_place(args: argparse.Namespace) -> int:
    circuit = generate_circuit(
        CircuitSpec(num_cells=args.cells, name=args.name), seed=args.seed
    )
    placement = place_circuit(circuit, seed=args.seed)
    print(
        f"placed {args.name}: HPWL = "
        f"{placement.half_perimeter_wirelength():.0f}"
    )
    suite = build_suite(circuit, args.name, placement=placement)
    print(format_table([suite]))
    if args.suite_out:
        out = Path(args.suite_out)
        for entry in suite.entries:
            write_bookshelf(entry.instance, out)
        print(f"{len(suite.entries)} instances written to {out}/")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    instance = _load(args)
    s = compute_stats(instance.graph)
    print(f"instance {args.name}:")
    print(f"  {s.format_row()}")
    print(
        f"  partitions: {instance.num_parts}, fixed vertices: "
        f"{instance.num_fixed} ({instance.fixed_fraction:.1%}), "
        f"terminals: {len(instance.pad_vertices)}"
    )
    profile = constraint_profile(
        instance.graph, instance.hard_fixture()
    )
    print(profile.format_profile())
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.partition.solution import cut_size

    instance = _load(args)
    graph = instance.graph
    index = {
        graph.vertex_name(v): v for v in range(graph.num_vertices)
    }
    parts = [None] * graph.num_vertices
    for lineno, line in enumerate(
        Path(args.assignment).read_text().splitlines(), start=1
    ):
        tokens = line.split()
        if not tokens:
            continue
        if len(tokens) != 2 or tokens[0] not in index:
            print(f"{args.assignment}:{lineno}: bad line {line!r}")
            return 2
        try:
            block = int(tokens[1])
        except ValueError:
            print(f"{args.assignment}:{lineno}: bad block {tokens[1]!r}")
            return 2
        if not 0 <= block < instance.num_parts:
            print(
                f"{args.assignment}:{lineno}: block {block} outside "
                f"[0, {instance.num_parts})"
            )
            return 2
        parts[index[tokens[0]]] = block
    missing = [v for v, p in enumerate(parts) if p is None]
    if missing:
        print(
            f"assignment misses {len(missing)} vertex/vertices, "
            f"e.g. {graph.vertex_name(missing[0])}"
        )
        return 2

    cut = cut_size(graph, parts)
    loads = block_loads(graph, parts, instance.num_parts)
    legal_fixture = instance.is_assignment_legal(parts)
    balance = instance.balance
    if hasattr(balance, "constraints"):  # multi-resource instance
        per_resource = [
            [
                sum(
                    graph.resource(v, r)
                    for v in range(graph.num_vertices)
                    if parts[v] == b
                )
                for b in range(instance.num_parts)
            ]
            for r in range(balance.num_resources)
        ]
        feasible = balance.is_feasible(per_resource)
    else:
        feasible = balance.is_feasible(loads)
    print(f"{args.name}: cut {cut}")
    print(
        "block loads: " + " ".join(f"{load:.1f}" for load in loads)
    )
    print(f"fixture constraints : {'OK' if legal_fixture else 'VIOLATED'}")
    print(f"balance constraints : {'OK' if feasible else 'VIOLATED'}")
    return 0 if (legal_fixture and feasible) else 1


def _cmd_experiment(args: argparse.Namespace) -> int:
    jobs = str(args.jobs)
    # The sweep experiments understand the shared runtime flags (see
    # repro.experiments.reporting.parse_runtime_flags); forward them as
    # --k=v tokens so positional interfaces stay untouched.
    runtime = []
    if args.resume is not None:
        runtime.append(f"--resume={args.resume}")
    if args.timeout is not None:
        runtime.append(f"--timeout={args.timeout}")
    if args.max_retries is not None:
        runtime.append(f"--max-retries={args.max_retries}")
    if runtime and args.which in (
        "table1", "table4", "overconstrained", "suite-solutions"
    ):
        print(
            f"WARNING: {args.which} does not support "
            "--resume/--timeout/--max-retries; ignoring them"
        )
        runtime = []
    if args.which == "table1":
        from repro.experiments.table1 import main as run

        run()
    elif args.which == "table2":
        from repro.experiments.table2 import main as run

        run([args.profile, jobs] + runtime)
    elif args.which == "table3":
        from repro.experiments.table3 import main as run

        run([args.profile, jobs] + runtime)
    elif args.which == "table4":
        from repro.experiments.table4 import main as run

        run([args.profile])
    elif args.which in ("fig1", "fig2"):
        from repro.experiments.figures import main as run

        run([args.which, args.profile, jobs] + runtime)
    elif args.which == "multiway":
        from repro.experiments.multiway import main as run

        run([args.profile, jobs] + runtime)
    elif args.which == "suite-solutions":
        from repro.experiments.suite_solutions import main as run

        run([args.profile, jobs])
    else:
        from repro.experiments.overconstrained import main as run

        run([args.profile])
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    # Imported lazily: summarize pulls in the study drivers, which the
    # plain partition/experiment paths should not pay for.
    from repro.runtime.observe.summarize import summarize_path

    print(summarize_path(args.path))
    return 0


def _run_observed(handler, args: argparse.Namespace) -> int:
    """Run ``handler`` under a trace recorder and write the outputs."""
    recorder = observe.TraceRecorder(
        meta={"command": args.command, "argv": " ".join(sys.argv[1:])}
    )
    with observe.use(recorder):
        with recorder.span(f"cli.{args.command}"):
            code = handler(args)
    if args.trace:
        recorder.save(args.trace)
        print(f"trace written to {args.trace}")
    if args.metrics_out:
        recorder.save_metrics(args.metrics_out)
        print(f"metrics written to {args.metrics_out}")
    return code


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(
        list(argv) if argv is not None else sys.argv[1:]
    )
    handlers = {
        "generate": _cmd_generate,
        "partition": _cmd_partition,
        "place": _cmd_place,
        "stats": _cmd_stats,
        "evaluate": _cmd_evaluate,
        "experiment": _cmd_experiment,
        "trace": _cmd_trace,
    }
    handler = handlers[args.command]
    if getattr(args, "trace", None) or getattr(args, "metrics_out", None):
        return _run_observed(handler, args)
    return handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
