"""Quickstart: partition a hypergraph, then pin terminals and re-solve.

Run: ``python examples/quickstart.py``
"""

from repro.hypergraph import HypergraphBuilder
from repro.partition import (
    FREE,
    MultilevelBipartitioner,
    relative_bipartition_balance,
)


def main() -> None:
    # 1. Build a small netlist: 12 cells in two natural clusters joined
    #    by a couple of bridge nets.
    builder = HypergraphBuilder()
    for i in range(12):
        builder.add_vertex(f"cell{i}", area=1.0 + (i % 3))
    for base in (0, 6):  # two clusters of six cells each
        members = list(range(base, base + 6))
        for i in range(5):
            builder.add_net([members[i], members[i + 1]])
        builder.add_net(members[:3], name=f"clique{base}")
    builder.add_net([2, 8], name="bridge_a")
    builder.add_net([5, 6], name="bridge_b")
    graph = builder.build()

    # 2. Free bipartitioning under the paper's 2%-style balance (loose
    #    here: 20%, since 12 cells leave little room).
    balance = relative_bipartition_balance(graph.total_area, 0.2)
    engine = MultilevelBipartitioner(graph, balance=balance)
    free_solution = engine.run(seed=0).solution
    print(f"free instance: cut = {free_solution.cut}")
    print(f"  side 0: {[graph.vertex_name(v) for v, p in enumerate(free_solution.parts) if p == 0]}")
    print(f"  side 1: {[graph.vertex_name(v) for v, p in enumerate(free_solution.parts) if p == 1]}")

    # 3. Now pin two cells to specific sides -- the fixed-terminals
    #    regime the paper studies -- and solve again.
    fixture = [FREE] * graph.num_vertices
    fixture[0] = 1   # drag cell0 to the other side
    fixture[11] = 0  # and cell11 likewise
    pinned = MultilevelBipartitioner(
        graph, balance=balance, fixture=fixture
    ).run(seed=0).solution
    print(f"\nwith cell0->side1, cell11->side0 fixed: cut = {pinned.cut}")
    assert pinned.parts[0] == 1 and pinned.parts[11] == 0
    print("fixed vertices respected; the partitioner worked around them.")


if __name__ == "__main__":
    main()
