"""Top-down placement: the context that creates fixed-terminals instances.

Places a synthetic circuit by recursive min-cut bisection with terminal
propagation (the paper's motivating application), compares wirelength
against a random placement, and shows how deep placement blocks carry
ever-larger fixed fractions -- the paper's Table I mechanism, observed
live.

Run: ``python examples/topdown_placement.py``
"""

import random

from repro.core import constraint_profile
from repro.hypergraph import CircuitSpec, generate_circuit
from repro.placement import (
    Placement,
    build_suite,
    format_table,
    place_circuit,
)


def main() -> None:
    circuit = generate_circuit(
        CircuitSpec(num_cells=500, name="demo500"), seed=7
    )
    graph = circuit.graph
    print(
        f"circuit: {circuit.num_cells} cells, "
        f"{len(circuit.pad_vertices)} pads, {graph.num_nets} nets"
    )

    placement = place_circuit(circuit, die_size=1000.0, seed=1)
    hpwl = placement.half_perimeter_wirelength()

    rng = random.Random(0)
    scrambled = Placement(
        die=placement.die,
        positions=[
            (rng.uniform(0, 1000), rng.uniform(0, 1000))
            for _ in range(graph.num_vertices)
        ],
        graph=graph,
        pad_vertices=circuit.pad_vertices,
    )
    print(f"top-down placement HPWL: {hpwl:12.0f}")
    print(f"random placement HPWL  : {scrambled.half_perimeter_wirelength():12.0f}")

    # Derive the A..D block series and show the growing fixed fraction.
    suite = build_suite(circuit, "demo500", placement=placement)
    print("\nderived fixed-terminals instances (Table IV format):")
    print(format_table([suite]))

    print("\ndegree of constraint per block (deeper => more anchored):")
    for entry in suite.entries:
        if entry.cut_axis != "V":
            continue
        inst = entry.instance
        profile = constraint_profile(inst.graph, inst.hard_fixture())
        print(
            f"  {inst.name:<24s} fixed {profile.fixed_fraction:6.1%}  "
            f"anchored-free {profile.anchored_vertex_fraction:6.1%}  "
            f"anchored-nets {profile.anchored_net_fraction:6.1%}"
        )


if __name__ == "__main__":
    main()
