"""Placement-specific partitioning objectives (the paper's footnote 7).

Derives a fixed-terminals block instance from a placement, builds the
terminal-propagation wirelength cost model (net bounding boxes over
terminal locations + side representatives), and compares FM under that
objective against classic min-cut FM -- showing why the paper's
proposed benchmarks record terminal *locations*, not just sides.

Run: ``python examples/wirelength_objective.py``
"""

import random

from repro.hypergraph import CircuitSpec, generate_circuit
from repro.partition import (
    CostFMBipartitioner,
    FMBipartitioner,
    cut_size,
    random_balanced_bipartition,
    total_cost,
)
from repro.placement import (
    build_suite,
    midline,
    place_circuit,
    terminal_positions_from_placement,
    wirelength_cost_model,
)


def main() -> None:
    circuit = generate_circuit(
        CircuitSpec(num_cells=500, name="wl500"), seed=21
    )
    placement = place_circuit(circuit, seed=4)
    suite = build_suite(circuit, "wl500", placement=placement)
    entry = suite.entries[2]  # the B-level block, vertical cutline
    instance = entry.instance
    graph = instance.graph
    print(
        f"block instance {instance.name}: "
        f"{graph.num_vertices - instance.num_fixed} movable cells, "
        f"{instance.num_fixed} propagated terminals"
    )

    original_ids = {
        placement.graph.vertex_name(v): v
        for v in range(placement.graph.num_vertices)
    }
    positions = terminal_positions_from_placement(
        instance, placement.positions, original_ids
    )
    model = wirelength_cost_model(
        instance,
        entry.block,
        positions,
        cutline=midline(entry.block, entry.cut_axis),
        scale=0.1,
    )

    fixture = instance.hard_fixture()
    wl_engine = CostFMBipartitioner(
        graph, instance.balance, model, fixture=fixture
    )
    mc_engine = FMBipartitioner(graph, instance.balance, fixture=fixture)

    starts = 6
    rows = {"min-cut FM": [], "WL from scratch": [], "min-cut + WL polish": []}
    cuts = {k: [] for k in rows}
    for s in range(starts):
        init = random_balanced_bipartition(
            graph, instance.balance, fixture=fixture,
            rng=random.Random(100 + s),
        )
        mc = mc_engine.run(list(init)).solution
        wl = wl_engine.run(list(init))
        polish = wl_engine.run(list(mc.parts))
        rows["min-cut FM"].append(total_cost(graph, model, mc.parts))
        cuts["min-cut FM"].append(mc.cut)
        rows["WL from scratch"].append(wl.cost)
        cuts["WL from scratch"].append(cut_size(graph, wl.parts))
        rows["min-cut + WL polish"].append(polish.cost)
        cuts["min-cut + WL polish"].append(
            cut_size(graph, polish.parts)
        )

    def mean(xs):
        return sum(xs) / len(xs)

    print(
        f"\naverages over {starts} shared starts:"
        f"\n{'flow':<20s} {'est. wirelength':>16s} {'cut nets':>9s}"
    )
    for label in rows:
        print(
            f"{label:<20s} {mean(rows[label]):>16.0f} "
            f"{mean(cuts[label]):>9.1f}"
        )
    base = mean(rows["min-cut FM"])
    saved = 100.0 * (base - mean(rows["min-cut + WL polish"])) / base
    print(
        f"\nthe polish pass (WL-objective FM started from the min-cut "
        f"solution) never worsens the objective and saves {saved:.1f}% "
        "estimated wirelength here -- the practical way to use "
        "placement-specific objectives."
    )


if __name__ == "__main__":
    main()
