"""Tuning the Section III pass-cutoff heuristic for a workload.

The paper shows that cutting FM passes off early is safe once enough
terminals are fixed, and always saves time.  This example measures the
cut/runtime frontier on one instance at two terminal densities and
picks the tightest cutoff whose quality loss stays under 5% -- the kind
of decision a top-down placer integrating this library would make.

Run: ``python examples/pass_cutoff_tuning.py``
"""

from repro.core import run_cutoff_study
from repro.hypergraph import CircuitSpec, generate_circuit
from repro.partition import relative_bipartition_balance


def choose_cutoff(study, percent, max_quality_loss=0.05):
    """Tightest cutoff within the quality budget at one fixed%."""
    baseline = study.cell(percent, 1.0)
    chosen = 1.0
    for cutoff in sorted(study.cutoffs):  # tightest first
        cell = study.cell(percent, cutoff)
        if cell.avg_cut <= baseline.avg_cut * (1.0 + max_quality_loss):
            chosen = cutoff
            break
    return chosen, baseline


def main() -> None:
    circuit = generate_circuit(
        CircuitSpec(num_cells=700, name="tune700"), seed=5
    )
    balance = relative_bipartition_balance(
        circuit.graph.total_area, 0.02
    )
    study = run_cutoff_study(
        circuit.graph,
        balance,
        circuit_name="tune700",
        percents=(0.0, 25.0),
        cutoffs=(1.0, 0.5, 0.25, 0.1, 0.05),
        runs=8,
        seed=2,
    )
    print(study.format_table())
    print()
    for percent in (0.0, 25.0):
        cutoff, baseline = choose_cutoff(study, percent)
        cell = study.cell(percent, cutoff)
        speedup = baseline.avg_seconds / max(cell.avg_seconds, 1e-9)
        label = "no cutoff" if cutoff >= 1.0 else f"{cutoff:.0%} of moves"
        print(
            f"at {percent:4.0f}% fixed: choose {label:<14s} "
            f"({speedup:.1f}x faster, cut {baseline.avg_cut:.1f} -> "
            f"{cell.avg_cut:.1f})"
        )
    print(
        "\nthe free instance needs full passes; the terminal-rich one "
        "tolerates aggressive cutoffs -- the paper's Table III."
    )


if __name__ == "__main__":
    main()
