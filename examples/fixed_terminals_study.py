"""Miniature Section II study: how fixed terminals change difficulty.

Runs the paper's good/rand protocol on a small synthetic circuit and
prints the three findings:

1. randomly-fixed terminals drive the achievable cut up steeply;
2. once ~20% of vertices are fixed, one start is as good as many;
3. runtime falls as the fixed fraction grows.

Run: ``python examples/fixed_terminals_study.py``   (takes ~1 minute)
"""

from repro.core import format_study, run_difficulty_study
from repro.hypergraph import CircuitSpec, generate_circuit
from repro.partition import relative_bipartition_balance


def main() -> None:
    circuit = generate_circuit(
        CircuitSpec(num_cells=600, name="study600"), seed=3
    )
    balance = relative_bipartition_balance(
        circuit.graph.total_area, 0.02
    )
    study = run_difficulty_study(
        circuit.graph,
        balance,
        circuit_name="study600",
        percents=(0.0, 5.0, 20.0, 40.0),
        starts_list=(1, 2, 4),
        trials=2,
        seed=11,
    )
    print(format_study(study))

    one = dict(study.trace("rand", 1, "normalized_cut"))
    many = dict(study.trace("rand", 4, "normalized_cut"))
    print("\nfindings:")
    raw = dict(study.trace("rand", 1, "raw_cut"))
    print(
        f"  rand raw cut {raw[0.0]:.0f} -> {raw[40.0]:.0f} "
        "as fixed% grows (fixing random vertices constrains the cut)"
    )
    print(
        f"  multistart gap at 0% fixed : {one[0.0] - many[0.0]:+.3f} "
        "(extra starts help)"
    )
    print(
        f"  multistart gap at 40% fixed: {one[40.0] - many[40.0]:+.3f} "
        "(one start is enough -- the instance became easy)"
    )
    cpu = dict(study.trace("good", 1, "cpu_seconds"))
    print(
        f"  per-start CPU {cpu[0.0]:.2f}s -> {cpu[40.0]:.2f}s "
        "(fewer movable vertices, faster runs)"
    )


if __name__ == "__main__":
    main()
