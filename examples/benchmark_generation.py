"""Generate, save, reload and solve a fixed-terminals benchmark suite.

Reproduces the Section IV pipeline end to end: place a circuit, carve
the A..D block series with vertical/horizontal terminal assignments,
write each instance in the proposed bookshelf format (.nodes/.nets/
.blk/.fix with OR-capable fixed assignments), read one back and solve
it with the multilevel engine.

Run: ``python examples/benchmark_generation.py [output_dir]``
"""

import sys
from pathlib import Path

from repro.hypergraph import CircuitSpec, generate_circuit
from repro.io import read_bookshelf, write_bookshelf
from repro.partition import MultilevelBipartitioner, respect_fixture
from repro.placement import build_suite, format_table, place_circuit


def main() -> None:
    out_dir = Path(sys.argv[1] if len(sys.argv) > 1 else "benchmarks_out")
    circuit = generate_circuit(
        CircuitSpec(num_cells=400, name="gen400"), seed=13
    )
    placement = place_circuit(circuit, seed=2)
    suite = build_suite(circuit, "gen400", placement=placement)

    print("derived instances (Table IV format):")
    print(format_table([suite]))

    for entry in suite.entries:
        write_bookshelf(entry.instance, out_dir)
    print(f"\nwrote {len(suite.entries)} instances to {out_dir}/")

    # Reload the deepest instance and solve it.
    name = suite.entries[-1].instance.name
    instance = read_bookshelf(out_dir, name)
    fixture = instance.hard_fixture()
    engine = MultilevelBipartitioner(
        instance.graph,
        balance=instance.balance,
        fixture=fixture,
    )
    result = engine.run(seed=0)
    assert respect_fixture(result.solution.parts, fixture)
    assert instance.is_assignment_legal(result.solution.parts)
    print(
        f"reloaded {name}: {instance.graph.num_vertices} vertices, "
        f"{instance.num_fixed} fixed; solved to cut "
        f"{result.solution.cut}"
    )


if __name__ == "__main__":
    main()
