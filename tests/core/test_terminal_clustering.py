"""Tests for the Section V terminal-clustering equivalence transform."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import cluster_terminals, num_terminals_after_clustering
from repro.hypergraph import CircuitSpec, Hypergraph, generate_circuit
from repro.partition import FREE, cut_size


class TestClusterTerminals:
    def test_two_super_terminals(self):
        g = Hypergraph(
            [[0, 1], [1, 2], [2, 3], [3, 4]], num_vertices=5
        )
        fixture = [0, FREE, 0, 1, 1]
        result = cluster_terminals(g, fixture)
        # 1 free vertex + 2 super-terminals.
        assert result.graph.num_vertices == 3
        assert sorted(
            f for f in result.fixture if f != FREE
        ) == [0, 1]

    def test_areas_accumulate(self):
        g = Hypergraph([[0, 1]], num_vertices=3, areas=[2.0, 3.0, 4.0])
        result = cluster_terminals(g, [1, FREE, 1])
        super_t = result.mapping[0]
        assert result.graph.area(super_t) == 6.0

    def test_no_terminals_identity(self):
        g = Hypergraph([[0, 1]], num_vertices=2)
        result = cluster_terminals(g, [FREE, FREE])
        assert result.graph.num_vertices == 2
        assert result.fixture == [FREE, FREE]

    def test_one_sided(self):
        g = Hypergraph([[0, 1], [1, 2]], num_vertices=3)
        result = cluster_terminals(g, [0, FREE, 0])
        assert result.graph.num_vertices == 2
        assert num_terminals_after_clustering([0, FREE, 0]) == 1

    def test_invalid_fixture_rejected(self):
        g = Hypergraph([[0, 1]], num_vertices=2)
        with pytest.raises(ValueError):
            cluster_terminals(g, [5, FREE])
        with pytest.raises(ValueError):
            cluster_terminals(g, [FREE])

    def test_lift_and_push_roundtrip(self):
        g = Hypergraph([[0, 1], [1, 2], [2, 3]], num_vertices=4)
        fixture = [0, FREE, FREE, 1]
        result = cluster_terminals(g, fixture)
        parts = [0, 1, 0, 1]
        clustered = result.push_partition(parts)
        lifted = result.lift_partition(clustered)
        assert lifted == parts

    def test_cut_preserved_on_circuit(self):
        circ = generate_circuit(CircuitSpec(num_cells=150), seed=71)
        g = circ.graph
        rng = random.Random(0)
        fixture = [FREE] * g.num_vertices
        for v in rng.sample(range(g.num_vertices), 40):
            fixture[v] = rng.randrange(2)
        result = cluster_terminals(g, fixture)
        for trial in range(5):
            parts = [
                f if f != FREE else rng.randrange(2) for f in fixture
            ]
            clustered = result.push_partition(parts)
            assert cut_size(g, parts) == cut_size(
                result.graph, clustered
            )


@st.composite
def fixture_instances(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    num_nets = draw(st.integers(min_value=1, max_value=18))
    nets = []
    for _ in range(num_nets):
        size = draw(st.integers(min_value=2, max_value=min(4, n)))
        nets.append(
            draw(
                st.lists(
                    st.integers(min_value=0, max_value=n - 1),
                    min_size=size,
                    max_size=size,
                    unique=True,
                )
            )
        )
    weights = draw(
        st.lists(
            st.integers(min_value=1, max_value=4),
            min_size=num_nets,
            max_size=num_nets,
        )
    )
    fixture = draw(
        st.lists(
            st.sampled_from([FREE, 0, 1]), min_size=n, max_size=n
        )
    )
    sides = draw(
        st.lists(
            st.integers(min_value=0, max_value=1),
            min_size=n,
            max_size=n,
        )
    )
    g = Hypergraph(nets, num_vertices=n, net_weights=weights)
    return g, fixture, sides


@given(fixture_instances())
@settings(max_examples=120, deadline=None)
def test_equivalence_theorem(instance):
    """The paper's claim: clustering terminals per side preserves the
    cut of every fixture-respecting assignment."""
    g, fixture, sides = instance
    parts = [
        f if f != FREE else s for f, s in zip(fixture, sides)
    ]
    result = cluster_terminals(g, fixture)
    clustered = result.push_partition(parts)
    assert cut_size(g, parts) == cut_size(result.graph, clustered)
    # And the instance really has at most two terminals now.
    assert (
        sum(1 for f in result.fixture if f != FREE)
        == num_terminals_after_clustering(fixture)
        <= 2
    )
