"""Unit tests for fixed-vertex regimes and schedules."""

import pytest

from repro.core import (
    PAPER_PERCENTS,
    find_good_solution,
    fixture_summary,
    good_fixture,
    make_schedule,
    pad_schedule,
    rand_fixture,
    regime_fixture,
)
from repro.hypergraph import CircuitSpec, generate_circuit
from repro.partition import FREE, count_fixed, relative_bipartition_balance


@pytest.fixture(scope="module")
def circuit():
    return generate_circuit(CircuitSpec(num_cells=200, name="r200"), seed=61)


class TestSchedule:
    def test_counts(self, circuit):
        schedule = make_schedule(circuit.graph, seed=1)
        n = circuit.graph.num_vertices
        assert schedule.count_at(0.0) == 0
        assert schedule.count_at(50.0) == round(0.5 * n)
        assert schedule.count_at(0.1) == round(0.001 * n)

    def test_incremental_nesting(self, circuit):
        schedule = make_schedule(circuit.graph, seed=2)
        previous = set()
        for percent in PAPER_PERCENTS:
            current = set(schedule.fixed_at(percent))
            assert previous <= current
            previous = current

    def test_out_of_range_percent_rejected(self, circuit):
        schedule = make_schedule(circuit.graph, seed=3)
        with pytest.raises(ValueError):
            schedule.count_at(-1.0)
        with pytest.raises(ValueError):
            schedule.count_at(101.0)

    def test_undeclared_percent_accepted(self, circuit):
        schedule = make_schedule(circuit.graph, seed=3)
        n = circuit.graph.num_vertices
        assert schedule.count_at(25.0) == round(0.25 * n)

    def test_deterministic(self, circuit):
        a = make_schedule(circuit.graph, seed=4)
        b = make_schedule(circuit.graph, seed=4)
        assert a.order == b.order

    def test_pad_schedule_limited_by_pads(self, circuit):
        schedule = pad_schedule(
            circuit.graph, circuit.pad_vertices, seed=5
        )
        fixed = schedule.fixed_at(50.0)
        assert set(fixed) <= set(circuit.pad_vertices)
        assert len(fixed) == len(circuit.pad_vertices)


class TestFixtures:
    def test_good_fixture_consistent(self, circuit):
        schedule = make_schedule(circuit.graph, seed=6)
        reference = [v % 2 for v in range(circuit.graph.num_vertices)]
        fixture = good_fixture(schedule, 20.0, reference)
        assert count_fixed(fixture) == schedule.count_at(20.0)
        for v, f in enumerate(fixture):
            if f != FREE:
                assert f == reference[v]

    def test_rand_fixture_incremental_sides(self, circuit):
        schedule = make_schedule(circuit.graph, seed=7)
        f10 = rand_fixture(schedule, 10.0, seed=9)
        f30 = rand_fixture(schedule, 30.0, seed=9)
        for v in schedule.fixed_at(10.0):
            assert f10[v] == f30[v]

    def test_rand_fixture_uses_both_sides(self, circuit):
        schedule = make_schedule(circuit.graph, seed=8)
        fixture = rand_fixture(schedule, 50.0, seed=10)
        summary = fixture_summary(fixture)
        assert summary.get(0, 0) > 0
        assert summary.get(1, 0) > 0

    def test_regime_dispatch(self, circuit):
        schedule = make_schedule(circuit.graph, seed=11)
        reference = [0] * circuit.graph.num_vertices
        good = regime_fixture("good", schedule, 10.0, reference)
        rand = regime_fixture("rand", schedule, 10.0, seed=1)
        assert count_fixed(good) == count_fixed(rand)
        with pytest.raises(ValueError):
            regime_fixture("bad", schedule, 10.0)
        with pytest.raises(ValueError):
            regime_fixture("good", schedule, 10.0)  # missing reference

    def test_zero_percent_all_free(self, circuit):
        schedule = make_schedule(circuit.graph, seed=12)
        fixture = rand_fixture(schedule, 0.0, seed=0)
        assert count_fixed(fixture) == 0


class TestFindGoodSolution:
    def test_returns_verified_cut(self, circuit):
        balance = relative_bipartition_balance(
            circuit.graph.total_area, 0.02
        )
        good = find_good_solution(circuit.graph, balance, starts=2, seed=1)
        assert good.verify_cut(circuit.graph)

    def test_more_starts_never_worse(self, circuit):
        balance = relative_bipartition_balance(
            circuit.graph.total_area, 0.02
        )
        one = find_good_solution(circuit.graph, balance, starts=1, seed=2)
        four = find_good_solution(circuit.graph, balance, starts=4, seed=2)
        assert four.cut <= one.cut
