"""Tests for degree-of-constraint measures."""

import random

import pytest

from repro.core import cluster_terminals, constraint_profile
from repro.hypergraph import CircuitSpec, Hypergraph, generate_circuit
from repro.partition import FREE


class TestProfileBasics:
    def test_free_instance_all_zero(self, small_hypergraph):
        profile = constraint_profile(
            small_hypergraph, [FREE] * 6
        )
        assert profile.fixed_fraction == 0.0
        assert profile.anchored_vertex_fraction == 0.0
        assert profile.anchored_net_fraction == 0.0
        assert profile.contested_net_fraction == 0.0
        assert profile.terminal_weight_fraction == 0.0

    def test_hand_computed(self):
        # Nets: {0,1} {1,2} {2,3}; vertex 0 fixed in 0, vertex 3 in 1.
        g = Hypergraph([[0, 1], [1, 2], [2, 3]], num_vertices=4)
        profile = constraint_profile(g, [0, FREE, FREE, 1])
        assert profile.fixed_fraction == pytest.approx(0.5)
        # Nets touching fixed: {0,1} and {2,3} -> 2/3.
        assert profile.anchored_net_fraction == pytest.approx(2 / 3)
        # Free vertices 1 and 2 each touch an anchored net.
        assert profile.anchored_vertex_fraction == pytest.approx(1.0)
        # No net touches both sides' terminals.
        assert profile.contested_net_fraction == 0.0

    def test_contested_net(self):
        g = Hypergraph([[0, 1, 2]], num_vertices=3)
        profile = constraint_profile(g, [0, 1, FREE])
        assert profile.contested_net_fraction == pytest.approx(1.0)

    def test_fixture_length_checked(self, triangle):
        with pytest.raises(ValueError):
            constraint_profile(triangle, [FREE])

    def test_format(self, triangle):
        text = constraint_profile(triangle, [0, FREE, FREE]).format_profile()
        assert "fixed vertices" in text

    def test_more_fixing_more_constraint(self):
        circ = generate_circuit(CircuitSpec(num_cells=200), seed=81)
        g = circ.graph
        rng = random.Random(1)
        order = list(range(g.num_vertices))
        rng.shuffle(order)
        fixture = [FREE] * g.num_vertices
        previous = -1.0
        for count in (10, 50, 150):
            for v in order[:count]:
                fixture[v] = 0
            profile = constraint_profile(g, fixture)
            assert profile.anchored_net_fraction >= previous
            previous = profile.anchored_net_fraction


class TestClusteringInvariance:
    """The measures the paper asks for: invariant under the Section V
    terminal-clustering transform (unlike the raw fixed count)."""

    def _both_profiles(self, seed):
        circ = generate_circuit(CircuitSpec(num_cells=150), seed=seed)
        g = circ.graph
        rng = random.Random(seed)
        fixture = [FREE] * g.num_vertices
        for v in rng.sample(range(g.num_vertices), 50):
            fixture[v] = rng.randrange(2)
        original = constraint_profile(g, fixture)
        clustered = cluster_terminals(g, fixture)
        transformed = constraint_profile(
            clustered.graph, clustered.fixture
        )
        return original, transformed

    def test_fixed_fraction_not_invariant(self):
        original, transformed = self._both_profiles(1)
        assert transformed.fixed_fraction < original.fixed_fraction

    def test_anchored_vertex_fraction_invariant(self):
        original, transformed = self._both_profiles(2)
        assert transformed.anchored_vertex_fraction == pytest.approx(
            original.anchored_vertex_fraction
        )

    def test_terminal_weight_fraction_invariant(self):
        original, transformed = self._both_profiles(3)
        assert transformed.terminal_weight_fraction == pytest.approx(
            original.terminal_weight_fraction
        )
