"""Tests for the study harnesses (difficulty, pass stats, cutoff).

These run the real pipelines on very small circuits: they verify the
plumbing (protocol, normalization, pairing, record consistency), not the
paper's shapes -- benchmark runs at realistic sizes do that.
"""

import pytest

from repro.core import (
    make_schedule,
    run_cutoff_study,
    run_difficulty_study,
    run_pass_stats_study,
    wasted_move_trend,
)
from repro.core.difficulty import format_study
from repro.hypergraph import CircuitSpec, generate_circuit
from repro.partition import relative_bipartition_balance


@pytest.fixture(scope="module")
def instance():
    circ = generate_circuit(CircuitSpec(num_cells=150, name="s150"), seed=91)
    balance = relative_bipartition_balance(circ.graph.total_area, 0.03)
    return circ.graph, balance


class TestDifficultyStudy:
    @pytest.fixture(scope="class")
    def study(self, instance):
        graph, balance = instance
        return run_difficulty_study(
            graph,
            balance,
            circuit_name="s150",
            percents=(0.0, 20.0),
            starts_list=(1, 2),
            trials=2,
            seed=1,
        )

    def test_all_points_present(self, study):
        assert len(study.points) == 2 * 2 * 2  # regimes x percents x starts
        for regime in ("good", "rand"):
            for percent in (0.0, 20.0):
                for starts in (1, 2):
                    study.point(regime, percent, starts)

    def test_missing_point_raises(self, study):
        with pytest.raises(KeyError):
            study.point("good", 7.0, 1)

    def test_more_starts_never_worse(self, study):
        for regime in ("good", "rand"):
            for percent in (0.0, 20.0):
                one = study.point(regime, percent, 1)
                two = study.point(regime, percent, 2)
                assert two.raw_cut <= one.raw_cut + 1e-9
                assert two.cpu_seconds >= one.cpu_seconds

    def test_normalization_references(self, study):
        # good regime: normalized = raw / good_cut everywhere.
        p = study.point("good", 20.0, 1)
        assert p.normalized_cut == pytest.approx(
            p.raw_cut / max(1, study.good_cut)
        )
        # rand regime: normalized against per-instance best seen.
        q = study.point("rand", 20.0, 2)
        ref = study.best_seen[("rand", 20.0)]
        assert q.normalized_cut == pytest.approx(q.raw_cut / max(1, ref))
        assert q.normalized_cut >= 1.0 - 1e-9

    def test_trace_sorted(self, study):
        trace = study.trace("rand", 1, "raw_cut")
        assert [p for p, _ in trace] == [0.0, 20.0]
        with pytest.raises(ValueError):
            study.trace("rand", 1, "nonsense")

    def test_format(self, study):
        text = format_study(study)
        assert "regime: good" in text
        assert "regime: rand" in text

    def test_invalid_starts_list(self, instance):
        graph, balance = instance
        with pytest.raises(ValueError):
            run_difficulty_study(
                graph, balance, starts_list=(4, 2), trials=1
            )


class TestPassStatsStudy:
    def test_rows_and_trend(self, instance):
        graph, balance = instance
        study = run_pass_stats_study(
            graph,
            balance,
            circuit_name="s150",
            percents=(0.0, 30.0),
            runs=5,
            seed=2,
        )
        assert len(study.rows) == 2
        row = study.row(0.0)
        assert row.runs == 5
        assert row.avg_passes_per_run >= 1.0
        assert 0.0 <= row.avg_wasted_percent <= 100.0
        assert 0.0 <= row.avg_best_prefix_percent <= 100.0
        trend = wasted_move_trend(study)
        assert [p for p, _ in trend] == [0.0, 30.0]
        with pytest.raises(KeyError):
            study.row(50.0)

    def test_rand_regime_supported(self, instance):
        graph, balance = instance
        study = run_pass_stats_study(
            graph,
            balance,
            percents=(10.0,),
            regime="rand",
            runs=3,
            seed=3,
        )
        assert study.regime == "rand"
        assert study.rows[0].avg_final_cut > 0

    def test_format(self, instance):
        graph, balance = instance
        study = run_pass_stats_study(
            graph, balance, percents=(0.0,), runs=2, seed=4
        )
        assert "fixed%" in study.format_table()


class TestCutoffStudy:
    def test_cells_complete_and_paired(self, instance):
        graph, balance = instance
        study = run_cutoff_study(
            graph,
            balance,
            circuit_name="s150",
            percents=(0.0, 20.0),
            cutoffs=(1.0, 0.1),
            runs=4,
            seed=5,
        )
        assert len(study.cells) == 4
        for percent in (0.0, 20.0):
            baseline = study.cell(percent, 1.0)
            tight = study.cell(percent, 0.1)
            assert tight.avg_moves <= baseline.avg_moves
        with pytest.raises(KeyError):
            study.cell(0.0, 0.5)

    def test_format(self, instance):
        graph, balance = instance
        study = run_cutoff_study(
            graph,
            balance,
            percents=(0.0,),
            cutoffs=(1.0, 0.25),
            runs=2,
            seed=6,
        )
        text = study.format_table()
        assert "no cutoff" in text
        assert "25% moves" in text
