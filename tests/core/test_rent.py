"""Unit tests for the Rent's-rule model (Table I)."""

import pytest

from repro.core import (
    block_size_threshold,
    expected_terminals,
    fixed_fraction,
    format_table_one,
    table_one,
)


class TestExpectedTerminals:
    def test_power_law(self):
        assert expected_terminals(100, 0.5, pins_per_cell=2.0) == (
            pytest.approx(20.0)
        )

    def test_monotone_in_block_size(self):
        assert expected_terminals(200, 0.68) > expected_terminals(100, 0.68)

    def test_monotone_in_exponent(self):
        assert expected_terminals(1000, 0.75) > expected_terminals(1000, 0.6)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_terminals(-1, 0.5)
        with pytest.raises(ValueError):
            expected_terminals(10, 1.5)
        with pytest.raises(ValueError):
            expected_terminals(10, 0.5, pins_per_cell=0)


class TestFixedFraction:
    def test_decreases_with_block_size(self):
        fractions = [fixed_fraction(c, 0.68) for c in (10, 100, 1000, 10000)]
        assert fractions == sorted(fractions, reverse=True)

    def test_zero_block(self):
        assert fixed_fraction(0, 0.68) == 1.0

    def test_range(self):
        assert 0.0 < fixed_fraction(10_000, 0.68) < 1.0


class TestThreshold:
    def test_closed_form_consistency(self):
        for p in (0.55, 0.68, 0.75):
            for f in (0.05, 0.10, 0.20):
                c = block_size_threshold(f, p)
                assert fixed_fraction(c, p) == pytest.approx(f, rel=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            block_size_threshold(0.0, 0.68)
        with pytest.raises(ValueError):
            block_size_threshold(1.0, 0.68)
        with pytest.raises(ValueError):
            block_size_threshold(0.1, 1.0)


class TestTableOne:
    def test_row_structure(self):
        rows = table_one()
        assert len(rows) == 6
        for row in rows:
            assert len(row.block_sizes) == 3

    def test_paper_magnitudes(self):
        # At p = 0.68 and k = 3.5 the 20% threshold sits near 3.8k cells
        # and the 10% threshold near 48k -- "even rather sizable
        # subblocks can be expected to have a high proportion of fixed
        # terminals".
        rows = {r.rent_exponent: r for r in table_one()}
        assert 3500 <= rows[0.68].block_sizes[2] <= 4200
        assert 45000 <= rows[0.68].block_sizes[1] <= 52000

    def test_format(self):
        text = format_table_one(table_one())
        assert ">=5% fixed" in text
        assert "p=0.68" in text
