"""Integration tests: end-to-end flows across subsystems."""

import random

import pytest

from repro.core import (
    bipartition_instance,
    cluster_terminals,
    constraint_profile,
    find_good_solution,
    good_fixture,
    make_schedule,
)
from repro.hypergraph import CircuitSpec, generate_circuit
from repro.io import read_bookshelf, write_bookshelf, write_netd, read_netd
from repro.partition import (
    FREE,
    FMBipartitioner,
    FMConfig,
    MultilevelBipartitioner,
    block_loads,
    cut_size,
    multilevel_multistart,
    random_balanced_bipartition,
    relative_bipartition_balance,
    respect_fixture,
)
from repro.placement import build_suite, place_circuit


@pytest.fixture(scope="module")
def circuit():
    return generate_circuit(
        CircuitSpec(num_cells=260, name="int260"), seed=99
    )


@pytest.fixture(scope="module")
def balance(circuit):
    return relative_bipartition_balance(circuit.graph.total_area, 0.02)


class TestPaperPipeline:
    """Generate -> find good -> fix -> repartition: Section II's loop."""

    def test_good_regime_easy_with_many_terminals(self, circuit, balance):
        g = circuit.graph
        good = find_good_solution(g, balance, starts=4, seed=1)
        schedule = make_schedule(g, seed=2)
        fixture = good_fixture(schedule, 30.0, good.parts)
        single = multilevel_multistart(
            g, balance, fixture=fixture, num_starts=1, seed=3
        )
        # One start on a 30%-fixed good instance lands near the good cut.
        assert single.best().cut <= max(good.cut * 2, good.cut + 6)

    def test_cutoff_safe_with_terminals(self, circuit, balance):
        g = circuit.graph
        good = find_good_solution(g, balance, starts=2, seed=4)
        schedule = make_schedule(g, seed=5)
        fixture = good_fixture(schedule, 30.0, good.parts)
        init = random_balanced_bipartition(
            g, balance, fixture=fixture, rng=random.Random(6)
        )
        full = FMBipartitioner(g, balance, fixture=fixture).run(list(init))
        tight = FMBipartitioner(
            g,
            balance,
            fixture=fixture,
            config=FMConfig(pass_move_limit_fraction=0.1),
        ).run(list(init))
        assert tight.total_moves < full.total_moves
        assert tight.solution.cut <= full.solution.cut * 1.6 + 4

    def test_terminal_clustering_preserves_engine_behaviour(
        self, circuit, balance
    ):
        g = circuit.graph
        rng = random.Random(7)
        fixture = [FREE] * g.num_vertices
        for v in rng.sample(range(g.num_vertices), 60):
            fixture[v] = rng.randrange(2)
        clustered = cluster_terminals(g, fixture)
        engine = MultilevelBipartitioner(
            clustered.graph,
            balance=balance,
            fixture=clustered.fixture,
        )
        result = engine.run(seed=8)
        lifted = clustered.lift_partition(result.solution.parts)
        assert respect_fixture(lifted, fixture)
        assert cut_size(g, lifted) == result.solution.cut


class TestBenchmarkPipeline:
    """Place -> derive -> save -> load -> solve (Section IV end-to-end)."""

    def test_full_roundtrip(self, circuit, tmp_path):
        placement = place_circuit(circuit, seed=3)
        suite = build_suite(circuit, "int260", placement=placement)
        entry = suite.entries[0]
        write_bookshelf(entry.instance, tmp_path)
        loaded = read_bookshelf(tmp_path, entry.instance.name)
        assert loaded.graph.structurally_equal(entry.instance.graph)

        fixture = loaded.hard_fixture()
        engine = MultilevelBipartitioner(
            loaded.graph, balance=loaded.balance, fixture=fixture
        )
        result = engine.run(seed=9)
        assert respect_fixture(result.solution.parts, fixture)
        assert loaded.is_assignment_legal(result.solution.parts)
        loads = block_loads(loaded.graph, result.solution.parts, 2)
        assert loaded.balance.is_feasible(loads)

    def test_constraint_profile_of_derived_instance(self, circuit):
        placement = place_circuit(circuit, seed=4)
        suite = build_suite(circuit, "int260", placement=placement)
        deep = suite.entries[-1].instance
        profile = constraint_profile(deep.graph, deep.hard_fixture())
        assert profile.fixed_fraction > 0.05
        assert profile.anchored_vertex_fraction > profile.fixed_fraction / 2


class TestFormatsInterop:
    def test_netd_to_engine(self, circuit, balance, tmp_path):
        g = circuit.graph
        write_netd(
            g,
            tmp_path / "c.net",
            tmp_path / "c.are",
            pad_vertices=circuit.pad_vertices,
        )
        g2, pads = read_netd(tmp_path / "c.net", tmp_path / "c.are")
        balance2 = relative_bipartition_balance(g2.total_area, 0.02)
        result = MultilevelBipartitioner(g2, balance=balance2).run(seed=1)
        assert result.solution.verify_cut(g2)

    def test_instance_to_bookshelf_and_back_solves_same(
        self, circuit, tmp_path
    ):
        inst = bipartition_instance(
            circuit.graph,
            pad_vertices=circuit.pad_vertices,
            name="roundtrip",
        )
        for pad in circuit.pad_vertices[:10]:
            inst.fix_vertex(pad, pad % 2)
        write_bookshelf(inst, tmp_path)
        loaded = read_bookshelf(tmp_path, "roundtrip")
        a = MultilevelBipartitioner(
            inst.graph,
            balance=inst.balance,
            fixture=inst.hard_fixture(),
        ).run(seed=5)
        b = MultilevelBipartitioner(
            loaded.graph,
            balance=loaded.balance,
            fixture=loaded.hard_fixture(),
        ).run(seed=5)
        assert a.solution.cut == b.solution.cut
