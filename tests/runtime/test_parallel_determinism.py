"""The determinism contract: ``jobs=N`` reproduces ``jobs=1`` exactly.

This is the acceptance test of the parallel runtime -- cuts AND parts
of every start must be bit-identical between pool sizes, for both
engine multistart drivers and through the difficulty harness.
"""

import pytest

from repro.partition import (
    FMConfig,
    flat_fm_multistart,
    kway_multistart,
    multilevel_multistart,
    relative_balance,
)


def _assert_identical(serial, parallel):
    assert serial.num_starts == parallel.num_starts
    for s, p in zip(serial.starts, parallel.starts):
        assert s.cut == p.cut
        assert s.parts == p.parts


class TestMultistartDeterminism:
    def test_multilevel_jobs2_matches_serial(self, tiny_circuit, tiny_balance):
        kwargs = dict(num_starts=4, seed=123)
        serial = multilevel_multistart(
            tiny_circuit.graph, tiny_balance, jobs=1, **kwargs
        )
        parallel = multilevel_multistart(
            tiny_circuit.graph, tiny_balance, jobs=2, **kwargs
        )
        _assert_identical(serial, parallel)

    def test_multilevel_with_fixture(self, tiny_circuit, tiny_balance):
        fixture = [-1] * tiny_circuit.graph.num_vertices
        for pad in tiny_circuit.pad_vertices[:20]:
            fixture[pad] = pad % 2
        kwargs = dict(fixture=fixture, num_starts=3, seed=5)
        serial = multilevel_multistart(
            tiny_circuit.graph, tiny_balance, jobs=1, **kwargs
        )
        parallel = multilevel_multistart(
            tiny_circuit.graph, tiny_balance, jobs=3, **kwargs
        )
        _assert_identical(serial, parallel)

    def test_flat_fm_jobs2_matches_serial(self, tiny_circuit, tiny_balance):
        kwargs = dict(
            config=FMConfig(policy="clip"), num_starts=4, seed=99
        )
        serial = flat_fm_multistart(
            tiny_circuit.graph, tiny_balance, jobs=1, **kwargs
        )
        parallel = flat_fm_multistart(
            tiny_circuit.graph, tiny_balance, jobs=2, **kwargs
        )
        _assert_identical(serial, parallel)

    def test_kway_jobs2_matches_serial(self, tiny_circuit):
        balance = relative_balance(tiny_circuit.graph.total_area, 4, 0.1)
        kwargs = dict(num_starts=4, seed=11)
        serial = kway_multistart(
            tiny_circuit.graph, balance, jobs=1, **kwargs
        )
        parallel = kway_multistart(
            tiny_circuit.graph, balance, jobs=2, **kwargs
        )
        _assert_identical(serial, parallel)

    def test_explicit_seeds_override(self, tiny_circuit, tiny_balance):
        seeds = [100, 200, 300]
        serial = multilevel_multistart(
            tiny_circuit.graph, tiny_balance,
            num_starts=3, seeds=seeds, jobs=1,
        )
        parallel = multilevel_multistart(
            tiny_circuit.graph, tiny_balance,
            num_starts=3, seeds=seeds, jobs=2,
        )
        _assert_identical(serial, parallel)
        with pytest.raises(ValueError):
            multilevel_multistart(
                tiny_circuit.graph, tiny_balance, num_starts=2, seeds=seeds
            )

    def test_cpu_seconds_recorded(self, tiny_circuit, tiny_balance):
        batch = multilevel_multistart(
            tiny_circuit.graph, tiny_balance, num_starts=2, seed=0
        )
        assert all(s.cpu_seconds >= 0.0 for s in batch.starts)
        assert batch.total_cpu_seconds() == pytest.approx(
            batch.cpu_seconds_of_first(2)
        )


class TestHarnessDeterminism:
    def test_difficulty_study_jobs_invariant(self, tiny_circuit, tiny_balance):
        from repro.core.difficulty import run_difficulty_study

        kwargs = dict(
            percents=(0.0, 20.0),
            starts_list=(1, 2),
            trials=1,
            seed=3,
        )
        serial = run_difficulty_study(
            tiny_circuit.graph, tiny_balance, jobs=1, **kwargs
        )
        parallel = run_difficulty_study(
            tiny_circuit.graph, tiny_balance, jobs=2, **kwargs
        )
        assert serial.good_cut == parallel.good_cut
        for s, p in zip(serial.points, parallel.points):
            assert (s.regime, s.percent, s.starts) == (
                p.regime, p.percent, p.starts
            )
            assert s.raw_cut == p.raw_cut
            assert s.normalized_cut == p.normalized_cut

    def test_pass_stats_jobs_invariant(self, grid8x8):
        from repro.core.pass_stats import run_pass_stats_study
        from repro.partition import relative_bipartition_balance

        balance = relative_bipartition_balance(grid8x8.total_area, 0.1)
        kwargs = dict(
            percents=(0.0, 20.0), regime="rand", runs=4, seed=17
        )
        serial = run_pass_stats_study(grid8x8, balance, jobs=1, **kwargs)
        parallel = run_pass_stats_study(grid8x8, balance, jobs=2, **kwargs)
        for s, p in zip(serial.rows, parallel.rows):
            assert s.percent == p.percent
            assert s.avg_passes_per_run == p.avg_passes_per_run
            assert s.avg_final_cut == p.avg_final_cut
            assert s.avg_wasted_percent == p.avg_wasted_percent

    def test_cutoff_study_jobs_invariant(self, grid8x8):
        from repro.core.cutoff import run_cutoff_study
        from repro.partition import relative_bipartition_balance

        balance = relative_bipartition_balance(grid8x8.total_area, 0.1)
        kwargs = dict(
            percents=(0.0, 20.0),
            cutoffs=(1.0, 0.25),
            regime="rand",
            runs=3,
            seed=23,
        )
        serial = run_cutoff_study(grid8x8, balance, jobs=1, **kwargs)
        parallel = run_cutoff_study(grid8x8, balance, jobs=2, **kwargs)
        for s, p in zip(serial.cells, parallel.cells):
            assert (s.percent, s.cutoff) == (p.percent, p.cutoff)
            assert s.avg_cut == p.avg_cut
            assert s.avg_moves == p.avg_moves
