"""Unit tests for the tracing/metrics layer (``repro.runtime.observe``).

Covers the recorder pair (null + live), span stack semantics, the flat
stores, fragment export/merge, JSON round-trips, and the checkpoint
counters.  Pool integration lives in ``test_observe_pool.py``; golden
end-to-end traces in ``test_golden_traces.py``.
"""

import pickle

import pytest

from repro.runtime import observe
from repro.runtime.observe import (
    NullRecorder,
    TraceRecorder,
    TracedValue,
)
from repro.runtime.observe.recorder import _NULL_SPAN, active, set_recorder, use
from repro.runtime.observe.trace import (
    OPEN_DURATION,
    SCHEMA,
    Span,
    Trace,
    load_trace,
    merge_counters,
    merge_histograms,
    span_shape,
    trace_shape,
)


class TestNullRecorder:
    def test_is_the_default(self):
        assert isinstance(active(), NullRecorder)
        assert active().enabled is False

    def test_span_is_shared_noop(self):
        rec = NullRecorder()
        sp = rec.span("anything", k=1)
        assert sp is _NULL_SPAN
        with sp as inner:
            inner.set(more=2)  # must not raise

    def test_all_operations_are_noops(self):
        rec = NullRecorder()
        rec.count("c", 3)
        rec.hist("h", 7)
        rec.event("e", field=1)
        rec.merge_fragment({"counters": {"c": 1}})
        assert rec.fragment() == {
            "spans": [], "events": [], "counters": {}, "histograms": {}
        }

    def test_module_level_helpers_hit_the_active_recorder(self):
        rec = TraceRecorder()
        with use(rec):
            observe.count("helper.counter", 2)
            observe.hist("helper.hist", 5)
            observe.event("helper.event", x=1)
            with observe.span("helper.span", tag="t"):
                pass
        assert rec.counters == {"helper.counter": 2}
        assert rec.histograms == {"helper.hist": {5: 1}}
        assert rec.events[0]["name"] == "helper.event"
        assert rec.roots[0].name == "helper.span"


class TestActiveRecorderSwitch:
    def test_set_recorder_returns_previous_and_none_restores(self):
        rec = TraceRecorder()
        previous = set_recorder(rec)
        assert isinstance(previous, NullRecorder)
        assert active() is rec
        set_recorder(None)
        assert isinstance(active(), NullRecorder)

    def test_use_restores_on_exception(self):
        rec = TraceRecorder()
        with pytest.raises(RuntimeError):
            with use(rec):
                assert active() is rec
                raise RuntimeError("boom")
        assert isinstance(active(), NullRecorder)


class TestSpans:
    def test_nesting_and_timing(self):
        rec = TraceRecorder()
        with rec.span("outer", a=1) as outer:
            with rec.span("inner"):
                pass
            assert rec.current_span() is outer.span
        assert rec.current_span() is None
        root = rec.roots[0]
        assert root.name == "outer"
        assert root.attrs == {"a": 1}
        assert root.closed and root.duration >= 0.0
        (child,) = root.children
        assert child.name == "inner" and child.closed
        assert child.start >= root.start

    def test_set_attaches_attrs_on_live_span(self):
        rec = TraceRecorder()
        with rec.span("s", a=1) as sp:
            sp.set(b=2)
        assert rec.roots[0].attrs == {"a": 1, "b": 2}

    def test_exception_marks_error_attr(self):
        rec = TraceRecorder()
        with pytest.raises(ValueError):
            with rec.span("failing"):
                raise ValueError("nope")
        span = rec.roots[0]
        assert span.attrs["error"] == "ValueError"
        assert span.closed

    def test_closing_outer_closes_still_open_inner(self):
        rec = TraceRecorder()
        outer = rec.open_span("outer")
        inner = rec.open_span("inner")
        rec.close_span(outer)
        assert outer.closed and inner.closed
        assert rec.current_span() is None

    def test_double_close_is_ignored(self):
        rec = TraceRecorder()
        span = rec.open_span("s")
        rec.close_span(span)
        duration = span.duration
        rec.close_span(span)
        assert span.duration == duration

    def test_events_attach_to_innermost_open_span(self):
        rec = TraceRecorder()
        rec.event("top.level", x=0)
        with rec.span("s"):
            rec.event("inside", x=1)
        assert rec.events == [{"name": "top.level", "fields": {"x": 0}}]
        assert rec.roots[0].events == [
            {"name": "inside", "fields": {"x": 1}}
        ]

    def test_open_span_never_closed_keeps_sentinel(self):
        rec = TraceRecorder()
        span = rec.open_span("dangling")
        assert not span.closed
        assert span.duration == OPEN_DURATION


class TestFlatStores:
    def test_counters_accumulate(self):
        rec = TraceRecorder()
        rec.count("c")
        rec.count("c", 4)
        assert rec.counters == {"c": 5}

    def test_hist_buckets_by_int(self):
        rec = TraceRecorder()
        rec.hist("h", 3)
        rec.hist("h", 3.7)  # int() truncation
        rec.hist("h", 4)
        assert rec.histograms == {"h": {3: 2, 4: 1}}


class TestFragments:
    def _worker_fragment(self):
        worker = TraceRecorder()
        with worker.span("fm.run", seed=9):
            worker.count("fm.runs")
            worker.hist("fm.pass.moves", 12)
            worker.event("fm.pass", moves_made=12)
        return worker.fragment()

    def test_fragment_is_picklable(self):
        fragment = self._worker_fragment()
        assert pickle.loads(pickle.dumps(fragment)) == fragment

    def test_merge_into_open_span(self):
        parent = TraceRecorder()
        with parent.span("study.percent", percent=0.0):
            parent.merge_fragment(self._worker_fragment())
        percent = parent.roots[0]
        (run,) = percent.children
        assert run.name == "fm.run"
        assert run.events[0]["fields"] == {"moves_made": 12}
        assert parent.counters == {"fm.runs": 1}
        assert parent.histograms == {"fm.pass.moves": {12: 1}}

    def test_merge_without_open_span_appends_roots(self):
        parent = TraceRecorder()
        parent.merge_fragment(self._worker_fragment())
        assert [s.name for s in parent.roots] == ["fm.run"]

    def test_traced_value_round_trips_through_pickle(self):
        tv = TracedValue(("cut", 42), self._worker_fragment())
        clone = pickle.loads(pickle.dumps(tv))
        assert clone.value == tv.value
        assert clone.fragment == tv.fragment


class TestSerialization:
    def _recorded(self):
        rec = TraceRecorder(meta={"command": "test"})
        with rec.span("outer", a=1) as sp:
            rec.count("c", 2)
            rec.hist("h", -3)
            rec.event("e", k="v")
            with rec.span("inner"):
                pass
            sp.set(done=True)
        return rec

    def test_trace_round_trip_preserves_everything(self, tmp_path):
        rec = self._recorded()
        path = tmp_path / "trace.json"
        rec.save(path)
        loaded = load_trace(path)
        assert loaded.meta == {"command": "test"}
        assert loaded.counters == {"c": 2}
        assert loaded.histograms == {"h": {-3: 1}}
        assert trace_shape(loaded) == trace_shape(rec.trace())
        # Timing survives too (shape comparison strips it).
        assert loaded.spans[0].duration == rec.roots[0].duration

    def test_from_dict_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="schema"):
            Trace.from_dict({"schema": "not-a-trace/9"})

    def test_to_dict_carries_schema(self):
        assert self._recorded().to_dict()["schema"] == SCHEMA

    def test_metrics_dict_holds_only_flat_stores(self, tmp_path):
        import json

        rec = self._recorded()
        path = tmp_path / "metrics.json"
        rec.save_metrics(path)
        payload = json.loads(path.read_text())
        assert payload["counters"] == {"c": 2}
        assert payload["histograms"] == {"h": {"-3": 1}}
        assert "spans" not in payload

    def test_span_shape_strips_timing_only(self):
        span = Span("s", {"a": 1}, start=0.5, duration=0.25)
        shape = span_shape(span)
        assert shape == {
            "name": "s", "attrs": {"a": 1}, "events": [], "children": []
        }


class TestMergeHelpers:
    def test_merge_counters_adds(self):
        target = {"a": 1}
        merge_counters(target, {"a": 2, "b": 3})
        assert target == {"a": 3, "b": 3}

    def test_merge_histograms_normalizes_string_keys(self):
        target = {"h": {1: 1}}
        merge_histograms(target, {"h": {"1": 2, "5": 1}})
        assert target == {"h": {1: 3, 5: 1}}


class TestCheckpointCounters:
    def test_writes_resumes_and_loaded_cells_are_counted(self, tmp_path):
        from repro.runtime import CheckpointJournal

        path = tmp_path / "j.jsonl"
        rec = TraceRecorder()
        with use(rec):
            journal = CheckpointJournal(path, {"study": 1})
            batch = journal.batch("b")
            batch.record(0, 10, "value-0")
            batch.record_quarantine(1, 11, "reason")
        assert rec.counters["checkpoint.writes"] == 1
        assert rec.counters["checkpoint.quarantine_writes"] == 1
        assert "checkpoint.resumes" not in rec.counters

        rec2 = TraceRecorder()
        with use(rec2):
            CheckpointJournal(path, {"study": 1})
        assert rec2.counters["checkpoint.resumes"] == 1
        assert rec2.counters["checkpoint.loaded_cells"] == 2
