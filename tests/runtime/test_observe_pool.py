"""Tracing across the process-pool boundary.

Workers record into fresh per-item recorders and ship fragments home;
these tests pin the contract: pool traces equal serial traces, retried
items are counted **exactly once** (failed attempts leave no fragment),
and journal-resumed cells re-execute nothing (they leave no spans and
no task-side counts -- only the ``pool.journal_hits`` audit counter).
"""

import pytest

from repro.runtime import (
    CheckpointJournal,
    ExecutionPolicy,
    FaultPlan,
    Quarantined,
    QuarantineWarning,
    RetryPolicy,
    parallel_map,
)
from repro.runtime import observe
from repro.runtime.faults import FAULTS_ENV, STATE_ENV
from repro.runtime.observe import TraceRecorder
from repro.runtime.observe.recorder import use
from repro.runtime.observe.trace import trace_shape

FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base=0.01, backoff_max=0.05)


def _traced_square(x):
    """Module-level task (picklable) that records its own execution."""
    rec = observe.active()
    with rec.span("task.work", item=x):
        rec.count("test.task_calls")
        rec.hist("test.item", x)
    return x * x


class TestPoolEqualsSerial:
    def _run(self, jobs):
        rec = TraceRecorder()
        with use(rec):
            out = parallel_map(_traced_square, [3, 1, 4, 1, 5], jobs=jobs)
        return out, rec.trace()

    def test_counters_histograms_and_shape_match(self):
        out1, t1 = self._run(1)
        out2, t2 = self._run(2)
        assert out1 == out2 == [9, 1, 16, 1, 25]
        assert t1.counters == t2.counters
        assert t1.counters["test.task_calls"] == 5
        assert t1.counters["pool.items_executed"] == 5
        assert t1.histograms == t2.histograms
        # Fragments merge in item-index order, so even the span forest
        # is deterministic and identical to the serial trace.
        assert trace_shape(t1) == trace_shape(t2)
        assert [s.attrs["item"] for s in t2.spans] == [3, 1, 4, 1, 5]

    def test_worker_spans_nest_under_the_open_parent_span(self):
        rec = TraceRecorder()
        with use(rec):
            with rec.span("batch"):
                parallel_map(_traced_square, [1, 2], jobs=2)
        (batch,) = rec.roots
        assert [c.name for c in batch.children] == ["task.work"] * 2

    def test_untraced_pool_results_are_bare_values(self):
        # With the null recorder the worker protocol must stay exactly
        # what it was: no TracedValue wrappers anywhere.
        out = parallel_map(_traced_square, [2, 3], jobs=2)
        assert out == [4, 9]


class TestExactlyOnceUnderFaults:
    def test_crashed_attempt_leaves_no_counts(self, tmp_path):
        # Item 1's worker dies once; the retry succeeds.  The dead
        # attempt shipped no fragment, so every per-item stat appears
        # exactly once despite two executions being attempted.
        plan = FaultPlan(crash_on=(1,), state_dir=str(tmp_path))
        rec = TraceRecorder()
        with use(rec):
            out = parallel_map(
                _traced_square,
                [0, 1, 2, 3],
                jobs=2,
                policy=ExecutionPolicy(retry=FAST_RETRY),
                faults=plan,
            )
        assert out == [0, 1, 4, 9]
        assert rec.counters["test.task_calls"] == 4
        assert rec.counters["pool.items_executed"] == 4
        # A dying worker can take a second in-flight item down with it
        # (both get retried), so these are lower bounds -- the
        # exactly-once assertions above are the exact ones.
        assert rec.counters["pool.worker_crashes"] >= 1
        assert rec.counters["pool.retries"] >= 1
        assert rec.histograms["test.item"] == {0: 1, 1: 1, 2: 1, 3: 1}
        assert len(rec.trace().find_spans("task.work")) == 4

    def test_env_driven_faults_count_the_same(self, tmp_path, monkeypatch):
        # Same scenario via REPRO_FAULTS, the way the fault-injection
        # harness is driven from CI.
        monkeypatch.setenv(FAULTS_ENV, "crash@2")
        monkeypatch.setenv(STATE_ENV, str(tmp_path))
        rec = TraceRecorder()
        with use(rec):
            out = parallel_map(
                _traced_square,
                [0, 1, 2],
                jobs=2,
                policy=ExecutionPolicy(retry=FAST_RETRY),
            )
        assert out == [0, 1, 4]
        assert rec.counters["test.task_calls"] == 3
        assert rec.counters["pool.worker_crashes"] >= 1

    def test_quarantined_item_is_not_counted(self):
        # The injected raise fires before the task body on every
        # attempt, so the quarantined item contributes no task counts.
        plan = FaultPlan(raise_on=(2,))
        policy = ExecutionPolicy(retry=FAST_RETRY, quarantine=True)
        rec = TraceRecorder()
        with use(rec), pytest.warns(QuarantineWarning):
            out = parallel_map(
                _traced_square, [0, 1, 2, 3], jobs=2,
                policy=policy, faults=plan,
            )
        assert isinstance(out[2], Quarantined)
        assert rec.counters["test.task_calls"] == 3
        assert rec.counters["pool.quarantined"] == 1
        assert 2 not in rec.histograms["test.item"]


class TestResume:
    def test_journal_hits_reexecute_nothing(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j.jsonl", {"study": "s"})
        first = parallel_map(
            _traced_square, [1, 2, 3], jobs=1,
            checkpoint=journal.batch("b"),
        )

        rec = TraceRecorder()
        with use(rec):
            resumed_journal = CheckpointJournal(
                tmp_path / "j.jsonl", {"study": "s"}
            )
            second = parallel_map(
                _traced_square, [1, 2, 3], jobs=1,
                checkpoint=resumed_journal.batch("b"),
            )
        assert second == first == [1, 4, 9]
        assert rec.counters["pool.journal_hits"] == 3
        assert rec.counters["checkpoint.loaded_cells"] == 3
        # Nothing ran, so nothing was (double-)counted or traced.
        assert "test.task_calls" not in rec.counters
        assert rec.trace().find_spans("task.work") == []

    def test_partial_resume_counts_only_fresh_cells(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j.jsonl", {"study": "s"})
        batch = journal.batch("b")
        parallel_map(_traced_square, [1, 2], jobs=1, checkpoint=batch)

        # Same journal, wider batch: two journaled cells hit, two run.
        resumed = CheckpointJournal(tmp_path / "j.jsonl", {"study": "s"})
        rec = TraceRecorder()
        with use(rec):
            out = parallel_map(
                _traced_square, [1, 2, 5, 6], jobs=2,
                checkpoint=resumed.batch("b"),
            )
        assert out == [1, 4, 25, 36]
        assert rec.counters["pool.journal_hits"] == 2
        assert rec.counters["test.task_calls"] == 2
        assert rec.counters["pool.items_executed"] == 2
        assert rec.histograms["test.item"] == {5: 1, 6: 1}

    def test_resumed_checkpoint_still_stores_bare_values(self, tmp_path):
        # TracedValue must be unwrapped before journaling: a journal
        # written under tracing must resume cleanly without tracing.
        journal = CheckpointJournal(tmp_path / "j.jsonl", {"study": "s"})
        rec = TraceRecorder()
        with use(rec):
            parallel_map(
                _traced_square, [7, 8], jobs=2,
                checkpoint=journal.batch("b"),
            )
        resumed = CheckpointJournal(tmp_path / "j.jsonl", {"study": "s"})
        out = parallel_map(
            _traced_square, [7, 8], jobs=1,
            checkpoint=resumed.batch("b"),
        )
        assert out == [49, 64]
