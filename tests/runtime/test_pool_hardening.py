"""Tests for the fault-tolerant pool engine: crash-isolated retries,
per-item timeouts, quarantine, the deduplicated serial fallback, and
the unified ``jobs`` parsing."""

import warnings

import pytest

from repro.runtime import (
    ExecutionPolicy,
    FaultPlan,
    InjectedFault,
    ItemFailed,
    Quarantined,
    QuarantineWarning,
    RetryPolicy,
    SerialFallbackWarning,
    jobs_from_env,
    parallel_map,
    parse_jobs,
    resolve_jobs,
)
from repro.runtime.pool import JOBS_ENV


def _square(x):
    return x * x


def _reciprocal(x):
    return 1 / x


FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base=0.01, backoff_max=0.05)


class TestRetryPolicy:
    def test_delay_is_deterministic(self):
        retry = RetryPolicy(jitter_seed=9)
        assert retry.delay(3, 2) == retry.delay(3, 2)
        assert RetryPolicy(jitter_seed=9).delay(3, 2) == retry.delay(3, 2)

    def test_delay_grows_and_caps(self):
        retry = RetryPolicy(
            backoff_base=0.1, backoff_factor=2.0, backoff_max=0.3, jitter=0.0
        )
        assert retry.delay(0, 1) == pytest.approx(0.1)
        assert retry.delay(0, 2) == pytest.approx(0.2)
        assert retry.delay(0, 5) == pytest.approx(0.3)

    def test_jitter_varies_by_index_and_attempt(self):
        retry = RetryPolicy(jitter=0.5)
        assert retry.delay(0, 1) != retry.delay(1, 1)


class TestCrashRecovery:
    def test_worker_crash_is_retried_and_recovers(self, tmp_path):
        # The worker executing item 1 dies hard once; the respawned pool
        # must finish the map with correct, ordered results.
        plan = FaultPlan(crash_on=(1,), state_dir=str(tmp_path))
        out = parallel_map(
            _square,
            [0, 1, 2, 3],
            jobs=2,
            policy=ExecutionPolicy(retry=FAST_RETRY),
            faults=plan,
        )
        assert out == [0, 1, 4, 9]

    def test_persistent_crash_exhausts_as_quarantine(self, tmp_path):
        # No state dir: item 0 kills its worker on every attempt and
        # must end as a Quarantined null row naming the crash.
        plan = FaultPlan(crash_on=(0,))
        policy = ExecutionPolicy(
            retry=RetryPolicy(
                max_attempts=2, backoff_base=0.01, backoff_max=0.02
            ),
            quarantine=True,
        )
        with pytest.warns(QuarantineWarning, match="item 0"):
            out = parallel_map(
                _square, [0, 1, 2, 3], jobs=2, policy=policy, faults=plan
            )
        row = out[0]
        assert isinstance(row, Quarantined)
        assert not row  # null rows are falsy
        assert row.index == 0
        assert row.seed == 0
        assert row.attempts == 2
        assert "WorkerCrash" in row.reason
        assert out[1:] == [1, 4, 9]


class TestTimeouts:
    def test_hung_item_is_reclaimed_and_retried(self, tmp_path):
        # Item 1 sleeps past its budget once; the retry (marker armed)
        # runs clean and the map completes.
        plan = FaultPlan(sleep_on={1: 5.0}, state_dir=str(tmp_path))
        policy = ExecutionPolicy(timeout=0.75, retry=FAST_RETRY)
        out = parallel_map(
            _square, [0, 1, 2], jobs=2, policy=policy, faults=plan
        )
        assert out == [0, 1, 4]

    def test_timeout_exhaustion_raises_item_failed(self):
        # max_attempts=1: the first expiry is terminal and must surface
        # the structured taxonomy (index, seed, attempt).
        plan = FaultPlan(sleep_on={1: 5.0})
        policy = ExecutionPolicy(
            timeout=0.5, retry=RetryPolicy(max_attempts=1)
        )
        with pytest.raises(ItemFailed) as info:
            parallel_map(
                _square, [0, 1], jobs=2, policy=policy, faults=plan
            )
        failure = info.value
        assert failure.index == 1
        assert failure.seed == 1
        assert failure.attempt == 1
        assert "WorkerTimeout" in str(failure)


class TestQuarantine:
    def test_task_error_quarantines_with_reason(self):
        plan = FaultPlan(raise_on=(2,))
        policy = ExecutionPolicy(retry=FAST_RETRY, quarantine=True)
        with pytest.warns(QuarantineWarning):
            out = parallel_map(
                _square, [0, 1, 2, 3], jobs=2, policy=policy, faults=plan
            )
        assert isinstance(out[2], Quarantined)
        assert "InjectedFault" in out[2].reason
        assert out[0] == 0 and out[3] == 9

    def test_serial_path_quarantines_too(self):
        plan = FaultPlan(raise_on=(1,))
        policy = ExecutionPolicy(retry=FAST_RETRY, quarantine=True)
        with pytest.warns(QuarantineWarning):
            out = parallel_map(
                _square, [0, 1], jobs=1, policy=policy, faults=plan
            )
        assert out[0] == 0
        assert isinstance(out[1], Quarantined)


class TestTaskErrors:
    def test_exception_propagates_unchanged_without_retry(self):
        # Back-compat: a plain task error is the caller's exception, not
        # a wrapped ItemFailed, when no retry/quarantine was asked for.
        with pytest.raises(ZeroDivisionError):
            parallel_map(_reciprocal, [1, 0], jobs=2)
        with pytest.raises(ZeroDivisionError):
            parallel_map(_reciprocal, [1, 0], jobs=1)

    def test_retry_task_errors_recovers_injected_flakiness(self, tmp_path):
        plan = FaultPlan(raise_on=(0,), state_dir=str(tmp_path))
        policy = ExecutionPolicy(
            retry=RetryPolicy(
                max_attempts=3,
                backoff_base=0.01,
                backoff_max=0.02,
                retry_task_errors=True,
            )
        )
        out = parallel_map(
            _square, [0, 1], jobs=1, policy=policy, faults=plan
        )
        assert out == [0, 1]

    def test_serial_retry_exhaustion_raises_item_failed(self):
        plan = FaultPlan(raise_on=(0,))  # fires every attempt
        policy = ExecutionPolicy(
            retry=RetryPolicy(
                max_attempts=2,
                backoff_base=0.01,
                backoff_max=0.02,
                retry_task_errors=True,
            )
        )
        with pytest.raises(ItemFailed) as info:
            parallel_map(_square, [0], jobs=1, policy=policy, faults=plan)
        assert info.value.attempt == 2
        assert isinstance(info.value.__cause__, InjectedFault)
        assert "InjectedFault" in (info.value.traceback_text or "")


class TestSerialFallback:
    def test_unpicklable_task_warns_once_with_cause(self):
        state = []

        def closure(x):  # closures cannot cross a process boundary
            state.append(x)
            return x + 1

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            out = parallel_map(closure, [1, 2, 3, 4], jobs=2)
        fallbacks = [
            w for w in caught
            if issubclass(w.category, SerialFallbackWarning)
        ]
        assert out == [2, 3, 4, 5]
        assert state == [1, 2, 3, 4]
        # Deduplicated: one warning for the whole call, not one per item,
        # and the triggering exception is chained for diagnosis.
        assert len(fallbacks) == 1
        warning = fallbacks[0].message
        assert warning.cause is not None
        assert warning.__cause__ is warning.cause

    def test_fallback_still_honors_checkpoint(self, tmp_path):
        from repro.runtime import CheckpointJournal

        journal = CheckpointJournal(tmp_path / "j.jsonl", {"s": 1})
        batch = journal.batch("b")

        def closure(x):
            return x * 10

        with pytest.warns(SerialFallbackWarning):
            out = parallel_map(closure, [1, 2], jobs=2, checkpoint=batch)
        assert out == [10, 20]
        assert journal.completed_cells() == 2


class TestJobsParsing:
    def test_parse_jobs_accepts_ints_and_strings(self):
        assert parse_jobs(4) == 4
        assert parse_jobs("4") == 4
        assert parse_jobs(" 0 ") == 0

    @pytest.mark.parametrize("bad", [-1, "-1", "zero", 1.5, True])
    def test_parse_jobs_rejects_with_unified_message(self, bad):
        with pytest.raises(ValueError, match=r"jobs must be >= 0"):
            parse_jobs(bad)

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert jobs_from_env() is None
        assert jobs_from_env(default=1) == 1
        monkeypatch.setenv(JOBS_ENV, "3")
        assert jobs_from_env() == 3

    def test_env_validation(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "-2")
        with pytest.raises(ValueError, match=r"jobs must be >= 0"):
            jobs_from_env()

    def test_resolve_jobs_consults_env_when_unset(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "2")
        assert resolve_jobs(None) == 2
        monkeypatch.delenv(JOBS_ENV)
        assert resolve_jobs(None) >= 1

    def test_resolve_jobs_accepts_strings(self):
        assert resolve_jobs("3") == 3
