"""Tests for the deterministic fault-injection harness."""

import pytest

from repro.runtime import (
    FaultPlan,
    InjectedFault,
    parse_fault_spec,
    plan_from_env,
)
from repro.runtime.faults import FAULTS_ENV, STATE_ENV


class TestParseFaultSpec:
    def test_full_spec(self):
        plan = parse_fault_spec("crash@3,sleep@1:2.5,raise@0")
        assert plan.crash_on == (3,)
        assert plan.raise_on == (0,)
        assert plan.sleep_on == {1: 2.5}

    def test_sleep_defaults_to_one_second(self):
        assert parse_fault_spec("sleep@4").sleep_on == {4: 1.0}

    def test_empty_tokens_ignored(self):
        plan = parse_fault_spec(" crash@1 , ,raise@2 ")
        assert plan.crash_on == (1,)
        assert plan.raise_on == (2,)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="bad fault token"):
            parse_fault_spec("explode@1")

    def test_bad_index_rejected(self):
        with pytest.raises(ValueError, match="bad fault token"):
            parse_fault_spec("crash@abc")


class TestPlanFromEnv:
    def test_absent_means_none(self):
        assert plan_from_env({}) is None
        assert plan_from_env({FAULTS_ENV: "  "}) is None

    def test_spec_and_state_dir(self, tmp_path):
        plan = plan_from_env(
            {FAULTS_ENV: "raise@2", STATE_ENV: str(tmp_path)}
        )
        assert plan.raise_on == (2,)
        assert plan.state_dir == str(tmp_path)


class TestFiring:
    def test_raise_fault_fires(self):
        plan = FaultPlan(raise_on=(5,))
        plan.fire(4)  # not armed for this index
        with pytest.raises(InjectedFault, match="item 5"):
            plan.fire(5)

    def test_without_state_dir_fires_every_attempt(self):
        plan = FaultPlan(raise_on=(1,))
        for _ in range(3):
            with pytest.raises(InjectedFault):
                plan.fire(1)

    def test_state_dir_makes_faults_one_shot(self, tmp_path):
        plan = FaultPlan(raise_on=(1,), state_dir=str(tmp_path))
        with pytest.raises(InjectedFault):
            plan.fire(1)
        plan.fire(1)  # marker exists: the retried item succeeds
        assert (tmp_path / "raise-1").exists()

    def test_sleep_fault_sleeps(self):
        import time

        plan = FaultPlan(sleep_on={0: 0.05})
        t0 = time.monotonic()
        plan.fire(0)
        assert time.monotonic() - t0 >= 0.04
