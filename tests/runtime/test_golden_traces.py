"""Golden-trace tests: two small seeded studies, frozen shapes.

The timing-free shape of a trace (span tree + attrs + events + counter
and histogram totals) is deterministic for a seeded study.  These tests
freeze that shape for two studies on the ``tiny01`` circuit:

* the Table II pass-statistics study (``study.pass_stats`` spans), and
* a multilevel multistart batch (``multistart``/``multilevel`` spans);

and further pin the two load-bearing contracts of the whole layer:
tracing changes **no result bit** (traced and untraced runs compare
equal), and ``repro trace summarize`` reconstructs Table II
**byte-for-byte** from the trace alone.

Regenerate the golden files after an intentional instrumentation
change::

    PYTHONPATH=src python tests/runtime/test_golden_traces.py --regen
"""

import json
from pathlib import Path

import pytest

from repro.core.pass_stats import run_pass_stats_study
from repro.experiments.circuits import load_instance
from repro.partition.multistart import multilevel_multistart
from repro.runtime.observe import TraceRecorder
from repro.runtime.observe.recorder import use
from repro.runtime.observe.trace import trace_shape

GOLDEN_DIR = Path(__file__).parent / "golden"

PASS_STATS_KW = dict(
    circuit_name="tiny01",
    percents=(0.0, 30.0),
    regime="rand",
    runs=4,
    seed=7,
)
MULTISTART_KW = dict(num_starts=2, seed=5, jobs=1)


def _tiny01():
    circuit, balance = load_instance("tiny01")
    return circuit.graph, balance


def _record_pass_stats():
    graph, balance = _tiny01()
    recorder = TraceRecorder()
    with use(recorder):
        study = run_pass_stats_study(graph, balance, **PASS_STATS_KW)
    return study, recorder


def _record_multistart():
    graph, balance = _tiny01()
    recorder = TraceRecorder()
    with use(recorder):
        batch = multilevel_multistart(graph, balance, **MULTISTART_KW)
    return batch, recorder


def _load_golden(name):
    return json.loads((GOLDEN_DIR / name).read_text(encoding="utf-8"))


@pytest.fixture(scope="module")
def pass_stats_run():
    return _record_pass_stats()


@pytest.fixture(scope="module")
def multistart_run():
    return _record_multistart()


class TestPassStatsGolden:
    def test_shape_matches_golden(self, pass_stats_run):
        _, recorder = pass_stats_run
        golden = _load_golden("pass_stats_trace.json")
        assert trace_shape(recorder.trace()) == golden

    def test_tracing_is_bit_identical(self, pass_stats_run):
        study, _ = pass_stats_run
        graph, balance = _tiny01()
        untraced = run_pass_stats_study(graph, balance, **PASS_STATS_KW)
        assert study == untraced

    def test_span_tree_has_the_documented_topology(self, pass_stats_run):
        _, recorder = pass_stats_run
        trace = recorder.trace()
        (study_span,) = trace.find_spans("study.pass_stats")
        percents = [
            c for c in study_span.children if c.name == "study.percent"
        ]
        assert [p.attrs["percent"] for p in percents] == [0.0, 30.0]
        for percent_span in percents:
            runs = [
                c for c in percent_span.children if c.name == "fm.run"
            ]
            assert len(runs) == PASS_STATS_KW["runs"]
            for run_span in runs:
                passes = [
                    e for e in run_span.events if e["name"] == "fm.pass"
                ]
                assert len(passes) == run_span.attrs["passes"]

    def test_counter_totals_are_consistent(self, pass_stats_run):
        _, recorder = pass_stats_run
        counters = recorder.counters
        # 2 percents x 4 runs, all executed through the pool layer.
        assert counters["fm.runs"] == 8
        assert counters["pool.items_executed"] == 8
        # Every move popped a bucket entry, and the wasted/best split
        # partitions the moves of each pass.
        assert counters["fm.moves"] == counters["fm.bucket.pops"]
        assert (
            counters["fm.best_prefix_moves"] + counters["fm.wasted_moves"]
            == counters["fm.moves"]
        )
        hist = recorder.histograms["fm.pass.moves"]
        assert sum(hist.values()) == counters["fm.passes"]

    def test_summarize_reconstructs_table_ii_byte_for_byte(
        self, pass_stats_run
    ):
        from repro.runtime.observe.summarize import (
            reconstruct_pass_stats,
            summarize_trace,
        )

        study, recorder = pass_stats_run
        (rebuilt,) = reconstruct_pass_stats(recorder.trace())
        assert rebuilt.format_table() == study.format_table()
        assert study.format_table() in summarize_trace(recorder.trace())

    def test_summarize_round_trips_through_disk(
        self, pass_stats_run, tmp_path
    ):
        from repro.runtime.observe.summarize import summarize_path

        study, recorder = pass_stats_run
        path = tmp_path / "trace.json"
        recorder.save(path)
        assert study.format_table() in summarize_path(path)


class TestMultistartGolden:
    def test_shape_matches_golden(self, multistart_run):
        _, recorder = multistart_run
        golden = _load_golden("multistart_trace.json")
        assert trace_shape(recorder.trace()) == golden

    def test_tracing_is_bit_identical(self, multistart_run):
        batch, _ = multistart_run
        graph, balance = _tiny01()
        untraced = multilevel_multistart(graph, balance, **MULTISTART_KW)
        assert [(s.cut, s.parts) for s in batch.starts] == [
            (s.cut, s.parts) for s in untraced.starts
        ]

    def test_pool_trace_matches_golden_up_to_the_jobs_attr(self):
        graph, balance = _tiny01()
        recorder = TraceRecorder()
        with use(recorder):
            multilevel_multistart(
                graph, balance,
                **{**MULTISTART_KW, "jobs": 2},
            )
        shape = trace_shape(recorder.trace())
        # The batch span records the jobs it actually used; everything
        # else -- worker-recorded spans included -- is identical.
        (root,) = shape["spans"]
        assert root["attrs"].pop("jobs") == 2
        golden = _load_golden("multistart_trace.json")
        golden["spans"][0]["attrs"].pop("jobs")
        assert shape == golden

    def test_every_multilevel_span_is_fully_attributed(self, multistart_run):
        _, recorder = multistart_run
        for span in recorder.trace().find_spans("multilevel"):
            assert span.attrs["levels"] >= 1
            assert span.attrs["final_cut"] >= 0
            names = {c.name for c in span.children}
            assert {"coarsen", "initial_partition", "refine"} <= names


def _regen():
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, recorder in (
        ("pass_stats_trace.json", _record_pass_stats()[1]),
        ("multistart_trace.json", _record_multistart()[1]),
    ):
        path = GOLDEN_DIR / name
        path.write_text(
            json.dumps(trace_shape(recorder.trace()), indent=1,
                       sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {path}")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
