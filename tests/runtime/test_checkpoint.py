"""Tests for the durable checkpoint journal (resume semantics)."""

import json

import pytest

from repro.runtime import (
    CheckpointError,
    CheckpointJournal,
    corrupt_checkpoint_record,
    parallel_map,
    spec_key,
)
from repro.runtime.checkpoint import is_miss


def _square(x):
    return x * x


SPEC = {"experiment": "unit", "seed": 7, "percents": [0.0, 20.0]}


class TestSpecKey:
    def test_stable_across_key_order(self):
        assert spec_key({"a": 1, "b": 2}) == spec_key({"b": 2, "a": 1})

    def test_distinguishes_content(self):
        assert spec_key({"a": 1}) != spec_key({"a": 2})

    def test_non_json_leaves_stringified(self):
        assert spec_key({"p": (0.0, 1.5)}) == spec_key({"p": [0.0, 1.5]})


class TestJournalBasics:
    def test_fresh_file_has_header(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CheckpointJournal(path, SPEC)
        assert not journal.resumed
        header = json.loads(path.read_text().splitlines()[0])
        assert header["kind"] == "header"
        assert header["spec_hash"] == spec_key(SPEC)

    def test_record_and_lookup_roundtrip(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j.jsonl", SPEC)
        batch = journal.batch("b")
        batch.record(0, 17, {"cut": 5, "parts": [0, 1]})
        assert batch.lookup(0, 17) == {"cut": 5, "parts": [0, 1]}
        assert batch.hits == 1

    def test_lookup_misses_on_item_mismatch(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j.jsonl", SPEC)
        batch = journal.batch("b")
        batch.record(0, 17, "value")
        # Same index, different seed: the journal must not serve it.
        assert is_miss(journal.lookup("b", 0, 18))

    def test_no_tmp_file_left_behind(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j.jsonl", SPEC)
        journal.record("b", 0, 1, "v")
        assert list(tmp_path.iterdir()) == [tmp_path / "j.jsonl"]

    def test_resume_sees_previous_cells(self, tmp_path):
        path = tmp_path / "j.jsonl"
        CheckpointJournal(path, SPEC).record("b", 3, 99, [1, 2, 3])
        journal = CheckpointJournal(path, SPEC)
        assert journal.resumed
        assert journal.completed_cells() == 1
        assert journal.lookup("b", 3, 99) == [1, 2, 3]

    def test_spec_mismatch_refused(self, tmp_path):
        path = tmp_path / "j.jsonl"
        CheckpointJournal(path, SPEC)
        with pytest.raises(CheckpointError, match="different study"):
            CheckpointJournal(path, {"experiment": "other"})

    def test_namespace_prefixes_batch_keys(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j.jsonl", SPEC)
        ns = journal.namespace("ibm01s")
        ns.batch("good:0.0").record(0, 5, "a")
        assert journal.lookup("ibm01s/good:0.0", 0, 5) == "a"
        nested = ns.namespace("inner")
        nested.batch("k").record(1, 6, "b")
        assert journal.lookup("ibm01s/inner/k", 1, 6) == "b"


class TestQuarantineRecords:
    def test_quarantined_cells_miss_on_lookup(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j.jsonl", SPEC)
        journal.record_quarantine("b", 2, 44, "WorkerCrash: boom")
        assert is_miss(journal.lookup("b", 2, 44))
        assert journal.completed_cells() == 0
        assert journal.quarantined_cells() == {("b", 2): "WorkerCrash: boom"}

    def test_resume_heals_quarantined_cell(self, tmp_path):
        path = tmp_path / "j.jsonl"
        CheckpointJournal(path, SPEC).record_quarantine("b", 0, 3, "reason")
        journal = CheckpointJournal(path, SPEC)
        batch = journal.batch("b")
        out = parallel_map(_square, [3], jobs=1, checkpoint=batch)
        assert out == [9]
        assert batch.hits == 0  # recomputed, not served from journal
        assert journal.completed_cells() == 1
        assert journal.quarantined_cells() == {}


class TestCorruption:
    def test_corrupt_record_is_skipped_and_recomputed(self, tmp_path):
        path = tmp_path / "j.jsonl"
        first = CheckpointJournal(path, SPEC)
        batch = first.batch("b")
        parallel_map(_square, [2, 3, 4], jobs=1, checkpoint=batch)
        victim = corrupt_checkpoint_record(path, record_index=-1)
        assert json.loads(victim)["index"] == 2

        journal = CheckpointJournal(path, SPEC)
        assert journal.corrupt_lines == 1
        assert journal.completed_cells() == 2
        resumed = journal.batch("b")
        out = parallel_map(_square, [2, 3, 4], jobs=1, checkpoint=resumed)
        assert out == [4, 9, 16]
        assert resumed.hits == 2  # only the destroyed cell was recomputed
        assert CheckpointJournal(path, SPEC).completed_cells() == 3

    def test_corrupt_header_refused(self, tmp_path):
        path = tmp_path / "j.jsonl"
        CheckpointJournal(path, SPEC)
        corrupt_checkpoint_record(path, record_index=0)
        with pytest.raises(CheckpointError, match="header"):
            CheckpointJournal(path, SPEC)


class TestParallelMapIntegration:
    def test_second_invocation_skips_all_items(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j.jsonl", SPEC)
        items = list(range(6))
        first = parallel_map(
            _square, items, jobs=1, checkpoint=journal.batch("b")
        )
        resumed_batch = journal.batch("b")
        second = parallel_map(
            _square, items, jobs=1, checkpoint=resumed_batch
        )
        assert first == second == [i * i for i in items]
        assert resumed_batch.hits == len(items)

    def test_partial_journal_resumes_mid_batch(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j.jsonl", SPEC)
        half = journal.batch("b")
        parallel_map(_square, [0, 1, 2], jobs=1, checkpoint=half)
        # A "killed" sweep left 3 of 6 cells; the re-invocation computes
        # exactly the missing tail.
        resumed = CheckpointJournal(tmp_path / "j.jsonl", SPEC).batch("b")
        out = parallel_map(
            _square, [0, 1, 2, 3, 4, 5], jobs=1, checkpoint=resumed
        )
        assert out == [0, 1, 4, 9, 16, 25]
        assert resumed.hits == 3

    def test_parallel_pool_writes_journal(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j.jsonl", SPEC)
        out = parallel_map(
            _square, list(range(5)), jobs=2, checkpoint=journal.batch("b")
        )
        assert out == [0, 1, 4, 9, 16]
        assert journal.completed_cells() == 5
