"""Property tests for the tracing layer (Hypothesis).

Three guarantees the rest of the PR leans on:

* span nesting is **well-formed under arbitrary open/close
  interleavings** -- closing a span closes anything still open above
  it, double-closes are no-ops, and the resulting forest is a proper
  tree (every child's lifetime sits inside its parent's);
* counter/histogram **merging is associative and commutative**, which
  is what lets the pool fold worker fragments in any grouping without
  changing a single total;
* traces **survive serialization round-trips** exactly (modulo the
  float identity of JSON, which is exact for Python floats).
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.observe import TraceRecorder
from repro.runtime.observe.trace import (
    Trace,
    merge_counters,
    merge_histograms,
    trace_shape,
)

# -- span nesting -----------------------------------------------------

# A program is a list of operations: "open" pushes a new span; an int k
# closes the span opened k-th (if still open -- possibly a double
# close); "event" attaches an event to whatever is innermost.
_OPS = st.lists(
    st.one_of(
        st.just("open"),
        st.integers(min_value=0, max_value=30),
        st.just("event"),
    ),
    max_size=60,
)


@given(ops=_OPS)
@settings(max_examples=200, deadline=None)
def test_span_nesting_well_formed_under_any_interleaving(ops):
    rec = TraceRecorder()
    opened = []
    for op in ops:
        if op == "open":
            opened.append(rec.open_span(f"s{len(opened)}"))
        elif op == "event":
            rec.event("e", n=len(opened))
        elif op < len(opened):
            rec.close_span(opened[op])
    # Close everything still open, in an arbitrary (reversed-open) order;
    # implicit closing must cope.
    for span in reversed(opened):
        rec.close_span(span)

    assert rec.current_span() is None
    seen = set()
    for root in rec.roots:
        for span in root.walk():
            # A proper forest: each span appears exactly once.
            assert id(span) not in seen
            seen.add(id(span))
            assert span.closed
            for child in span.children:
                # Child lifetimes nest inside the parent's.
                assert child.start >= span.start
                assert (
                    child.start + child.duration
                    <= span.start + span.duration + 1e-9
                )
    assert len(seen) == len(opened)


@given(ops=_OPS, close_order=st.permutations(list(range(31))))
@settings(max_examples=100, deadline=None)
def test_any_close_order_leaves_no_open_span(ops, close_order):
    rec = TraceRecorder()
    opened = []
    for op in ops:
        if op == "open":
            opened.append(rec.open_span(f"s{len(opened)}"))
        elif op != "event" and op < len(opened):
            rec.close_span(opened[op])
    for index in close_order:
        if index < len(opened):
            rec.close_span(opened[index])
    assert rec.current_span() is None
    assert all(span.closed for span in opened)


# -- merge algebra ----------------------------------------------------

_COUNTERS = st.dictionaries(
    st.sampled_from(["a", "b", "c", "d"]),
    st.integers(min_value=-10**6, max_value=10**6),
    max_size=4,
)

_HISTOGRAMS = st.dictionaries(
    st.sampled_from(["h1", "h2"]),
    st.dictionaries(
        st.integers(min_value=-50, max_value=50),
        st.integers(min_value=1, max_value=100),
        max_size=5,
    ),
    max_size=2,
)


def _merged_counters(*parts):
    out = {}
    for part in parts:
        merge_counters(out, part)
    return out


def _merged_histograms(*parts):
    out = {}
    for part in parts:
        merge_histograms(out, part)
    return out


@given(a=_COUNTERS, b=_COUNTERS)
def test_counter_merge_commutative(a, b):
    assert _merged_counters(a, b) == _merged_counters(b, a)


@given(a=_COUNTERS, b=_COUNTERS, c=_COUNTERS)
def test_counter_merge_associative(a, b, c):
    left = _merged_counters(_merged_counters(a, b), c)
    right = _merged_counters(a, _merged_counters(b, c))
    assert left == right


@given(a=_HISTOGRAMS, b=_HISTOGRAMS)
def test_histogram_merge_commutative(a, b):
    assert _merged_histograms(a, b) == _merged_histograms(b, a)


@given(a=_HISTOGRAMS, b=_HISTOGRAMS, c=_HISTOGRAMS)
def test_histogram_merge_associative(a, b, c):
    left = _merged_histograms(_merged_histograms(a, b), c)
    right = _merged_histograms(a, _merged_histograms(b, c))
    assert left == right


@given(a=_HISTOGRAMS, b=_HISTOGRAMS)
def test_histogram_merge_accepts_json_string_keys(a, b):
    # Fresh-off-JSON fragments carry string bucket keys; merging them
    # must land in the same integer buckets.
    b_as_json = {
        name: {str(k): v for k, v in buckets.items()}
        for name, buckets in b.items()
    }
    assert _merged_histograms(a, b_as_json) == _merged_histograms(a, b)


# -- serialization round-trip -----------------------------------------

_ATTR_VALUES = st.one_of(
    st.integers(min_value=-10**9, max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=12),
    st.booleans(),
)


@st.composite
def _recorders(draw):
    rec = TraceRecorder(meta=draw(
        st.dictionaries(st.text(max_size=6), _ATTR_VALUES, max_size=3)
    ))
    for name, value in draw(_COUNTERS).items():
        rec.count(name, value)
    for name, buckets in draw(_HISTOGRAMS).items():
        for key, occurrences in buckets.items():
            for _ in range(min(occurrences, 3)):
                rec.hist(name, key)
    ops = draw(_OPS)
    opened = []
    for op in ops:
        if op == "open":
            attrs = draw(st.dictionaries(
                st.sampled_from(["x", "y"]), _ATTR_VALUES, max_size=2
            ))
            opened.append(rec.open_span(f"s{len(opened)}", attrs))
        elif op == "event":
            rec.event("e", n=len(opened))
        elif op < len(opened):
            rec.close_span(opened[op])
    for span in reversed(opened):
        rec.close_span(span)
    return rec


@given(rec=_recorders())
@settings(max_examples=100, deadline=None)
def test_trace_serialization_round_trips(rec):
    payload = rec.to_dict()
    # Through actual JSON text, not just dict structure.
    reloaded = Trace.from_dict(json.loads(json.dumps(payload)))
    assert reloaded.to_dict() == payload
    assert trace_shape(reloaded) == trace_shape(rec.trace())
    assert reloaded.meta == rec.meta


@given(rec=_recorders())
@settings(max_examples=50, deadline=None)
def test_fragment_merge_into_fresh_recorder_preserves_totals(rec):
    parent = TraceRecorder()
    parent.merge_fragment(rec.fragment())
    assert parent.counters == rec.counters
    assert parent.histograms == rec.histograms
    assert [s.name for s in parent.roots] == [s.name for s in rec.roots]
