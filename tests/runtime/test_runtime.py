"""Unit tests for the process-parallel runtime primitives."""

import random

import pytest

from repro.runtime import (
    SerialFallbackWarning,
    TimedCall,
    derive_start_seeds,
    parallel_map,
    resolve_jobs,
    timed_call,
)


def _square(x):
    return x * x


class TestSeeds:
    def test_matches_serial_stream(self):
        rng = random.Random(42)
        expected = [rng.getrandbits(32) for _ in range(10)]
        assert derive_start_seeds(42, 10) == expected

    def test_prefix_property(self):
        assert derive_start_seeds(7, 8)[:3] == derive_start_seeds(7, 3)

    def test_empty_and_negative(self):
        assert derive_start_seeds(0, 0) == []
        with pytest.raises(ValueError):
            derive_start_seeds(0, -1)


class TestResolveJobs:
    def test_literal(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(5) == 5

    def test_auto(self):
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) >= 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-2)


class TestParallelMap:
    def test_serial_identity(self):
        assert parallel_map(_square, [1, 2, 3], jobs=1) == [1, 4, 9]

    def test_parallel_matches_serial_in_order(self):
        items = list(range(20))
        assert parallel_map(_square, items, jobs=2) == [
            _square(i) for i in items
        ]

    def test_empty_items(self):
        assert parallel_map(_square, [], jobs=4) == []

    def test_timed_wraps_results(self):
        calls = parallel_map(_square, [3], jobs=1, timed=True)
        assert isinstance(calls[0], TimedCall)
        assert calls[0].value == 9
        assert calls[0].seconds >= 0.0
        assert calls[0].cpu_seconds >= 0.0

    def test_unpicklable_task_falls_back_serially(self):
        captured = []

        def closure(x):  # closures cannot cross a process boundary
            captured.append(x)
            return x + 1

        with pytest.warns(SerialFallbackWarning):
            out = parallel_map(closure, [1, 2], jobs=2)
        assert out == [2, 3]
        assert captured == [1, 2]

    def test_task_exception_propagates(self):
        with pytest.raises(ZeroDivisionError):
            parallel_map(_reciprocal, [1, 0], jobs=2)


def _reciprocal(x):
    return 1 / x


class TestTimedCall:
    def test_value_and_clocks(self):
        call = timed_call(_square, 6)
        assert call.value == 36
        assert call.seconds >= 0.0
        assert call.cpu_seconds >= 0.0
