"""Overhead-regression test: the disabled recorder must stay ~free.

A fast in-suite version of ``benchmarks/observe_overhead.py`` (which
measures the same contract on bigger instances and writes
``BENCH_observe.json``): the public ``run()`` under the default null
recorder must stay within a fixed wall-time ratio of the engine body
called directly, and results must be bit-identical across
uninstrumented, disabled and fully traced runs.

The ratio bound is deliberately looser than the benchmark's (shared CI
runners; a ~50 ms workload) -- its job is to catch an accidental
always-on allocation or lock on the hot path, which shows up as 2x+,
not to certify the exact margin.
"""

import gc
import random
import time

from repro.partition.fm import FMBipartitioner, FMConfig
from repro.partition.multilevel import MultilevelBipartitioner
from repro.runtime.observe import TraceRecorder
from repro.runtime.observe.recorder import use

DISABLED_RATIO_MAX = 1.5
REPS = 5


def _best_of(run_all, reps=REPS):
    best = float("inf")
    results = None
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(reps):
            t0 = time.perf_counter()
            results = run_all()
            elapsed = time.perf_counter() - t0
            best = min(best, elapsed)
    finally:
        if gc_was_enabled:
            gc.enable()
    return best, results


def _fingerprints(results):
    return [
        (r.solution.cut, tuple(r.solution.parts), tuple(r.passes))
        for r in results
    ]


def test_disabled_fm_overhead_is_bounded(tiny_circuit, tiny_balance):
    graph = tiny_circuit.graph
    engine = FMBipartitioner(
        graph, tiny_balance, config=FMConfig(policy="clip")
    )
    rng = random.Random(3)
    starts = [
        [rng.randint(0, 1) for _ in range(graph.num_vertices)]
        for _ in range(3)
    ]

    bare_s, bare = _best_of(
        lambda: [engine._run(parts) for parts in starts]
    )
    disabled_s, disabled = _best_of(
        lambda: [engine.run(parts) for parts in starts]
    )

    def _traced():
        with use(TraceRecorder()):
            return [engine.run(parts) for parts in starts]

    _, traced = _best_of(_traced, reps=1)

    assert _fingerprints(bare) == _fingerprints(disabled)
    assert _fingerprints(bare) == _fingerprints(traced)
    assert disabled_s <= DISABLED_RATIO_MAX * bare_s, (
        f"disabled recorder costs {disabled_s / bare_s:.2f}x "
        f"the uninstrumented engine (bound {DISABLED_RATIO_MAX}x)"
    )


def test_disabled_multilevel_is_bit_identical_and_bounded(
    tiny_circuit, tiny_balance
):
    graph = tiny_circuit.graph
    engine = MultilevelBipartitioner(graph, tiny_balance)
    seeds = [0, 1]

    bare_s, bare = _best_of(
        lambda: [engine._run(seed) for seed in seeds], reps=3
    )
    disabled_s, disabled = _best_of(
        lambda: [engine.run(seed) for seed in seeds], reps=3
    )

    def _traced():
        with use(TraceRecorder()):
            return [engine.run(seed) for seed in seeds]

    _, traced = _best_of(_traced, reps=1)

    def fp(results):
        return [
            (r.solution.cut, tuple(r.solution.parts), r.num_levels)
            for r in results
        ]

    assert fp(bare) == fp(disabled) == fp(traced)
    assert disabled_s <= DISABLED_RATIO_MAX * bare_s
