"""Unit tests for coarsening matchings."""

import random

import pytest

from repro.hypergraph import Hypergraph, HypergraphError, clustered_hypergraph
from repro.partition import (
    FREE,
    coarsen,
    heavy_edge_matching,
    random_matching,
)


def cluster_sizes(labels):
    from collections import Counter

    return Counter(labels)


class TestHeavyEdgeMatching:
    def test_labels_contiguous(self, clusters4, rng):
        labels = heavy_edge_matching(clusters4, rng=rng)
        assert set(labels) == set(range(max(labels) + 1))

    def test_clusters_at_most_pairs(self, clusters4, rng):
        labels = heavy_edge_matching(clusters4, rng=rng)
        assert max(cluster_sizes(labels).values()) <= 2

    def test_shrinks_connected_graph(self, clusters4, rng):
        labels = heavy_edge_matching(clusters4, rng=rng)
        assert max(labels) + 1 < clusters4.num_vertices

    def test_prefers_heavy_nets(self, rng):
        # Heavy pairs (0,1) and (2,3) joined by a light (1,2) bridge.
        # Whatever vertex is visited first, its best unmatched neighbour
        # is its heavy partner, so the heavy pairs always form.
        g = Hypergraph(
            [[0, 1], [2, 3], [1, 2]],
            num_vertices=4,
            net_weights=[10, 10, 1],
        )
        for seed in range(10):
            labels = heavy_edge_matching(g, rng=random.Random(seed))
            assert labels[0] == labels[1]
            assert labels[2] == labels[3]
            assert labels[0] != labels[2]

    def test_respects_area_cap(self, rng):
        g = Hypergraph(
            [[0, 1]], num_vertices=2, areas=[5.0, 6.0]
        )
        labels = heavy_edge_matching(g, rng=rng, max_cluster_area=10.0)
        assert labels[0] != labels[1]
        labels = heavy_edge_matching(g, rng=rng, max_cluster_area=11.0)
        assert labels[0] == labels[1]

    def test_fixed_different_sides_never_merge(self, rng):
        g = Hypergraph([[0, 1]], num_vertices=2, net_weights=[100])
        labels = heavy_edge_matching(g, fixture=[0, 1], rng=rng)
        assert labels[0] != labels[1]

    def test_fixed_same_side_may_merge(self, rng):
        g = Hypergraph([[0, 1]], num_vertices=2)
        labels = heavy_edge_matching(g, fixture=[1, 1], rng=rng)
        assert labels[0] == labels[1]

    def test_fixed_free_may_merge(self, rng):
        g = Hypergraph([[0, 1]], num_vertices=2)
        labels = heavy_edge_matching(g, fixture=[0, FREE], rng=rng)
        assert labels[0] == labels[1]

    def test_huge_nets_ignored(self, rng):
        # A single net over everything gives no signal when above the
        # size cap; all vertices stay singletons.
        g = Hypergraph([list(range(10))], num_vertices=10)
        labels = heavy_edge_matching(g, rng=rng, max_net_size=5)
        assert max(labels) + 1 == 10

    def test_fixture_validated_against_num_parts(self, rng):
        # The multilevel driver partitions 2-way; a fixture block id
        # outside [0, num_parts) is a caller bug, caught up front.
        g = Hypergraph([[0, 1]], num_vertices=2)
        with pytest.raises(ValueError):
            heavy_edge_matching(g, fixture=[0, 2], rng=rng, num_parts=2)
        with pytest.raises(ValueError):
            heavy_edge_matching(g, fixture=[0, -2], rng=rng, num_parts=2)
        # Block 2 is legal when the caller really has three parts.
        labels = heavy_edge_matching(
            g, fixture=[0, 2], rng=rng, num_parts=3
        )
        assert len(labels) == 2


class TestRandomMatching:
    def test_pairs_only(self, clusters4, rng):
        labels = random_matching(clusters4, rng=rng)
        assert max(cluster_sizes(labels).values()) <= 2

    def test_respects_fixture(self, rng):
        g = Hypergraph([[0, 1]], num_vertices=2)
        labels = random_matching(g, fixture=[0, 1], rng=rng)
        assert labels[0] != labels[1]

    def test_respects_area_cap(self, rng):
        g = Hypergraph([[0, 1]], num_vertices=2, areas=[5.0, 6.0])
        labels = random_matching(g, rng=rng, max_cluster_area=10.0)
        assert labels[0] != labels[1]

    def test_fixture_validated_against_num_parts(self, rng):
        g = Hypergraph([[0, 1]], num_vertices=2)
        with pytest.raises(ValueError):
            random_matching(g, fixture=[0, 2], rng=rng, num_parts=2)
        labels = random_matching(g, fixture=[0, 2], rng=rng, num_parts=3)
        assert len(labels) == 2


class TestCoarsen:
    def test_fixture_propagates(self, rng):
        g = Hypergraph([[0, 1], [2, 3]], num_vertices=4)
        labels = [0, 0, 1, 2]
        level = coarsen(g, [0, FREE, 1, FREE], labels)
        assert level.fixture == [0, 1, FREE]

    def test_conflicting_fixture_rejected(self):
        g = Hypergraph([[0, 1]], num_vertices=2)
        with pytest.raises(ValueError):
            coarsen(g, [0, 1], [0, 0])

    def test_conflicting_fixture_error_names_cluster_and_blocks(self):
        # The error is a HypergraphError (like contract's own failures)
        # and names the offending cluster and both blocks.
        g = Hypergraph([[0, 1]], num_vertices=2)
        with pytest.raises(
            HypergraphError,
            match=r"cluster 0 merges vertices fixed in blocks 0 and 1",
        ):
            coarsen(g, [0, 1], [0, 0])

    def test_project(self):
        g = Hypergraph([[0, 1], [1, 2]], num_vertices=4)
        level = coarsen(g, [FREE] * 4, [0, 0, 1, 1])
        assert level.project([1, 0]) == [1, 1, 0, 0]

    def test_coarse_graph_areas(self):
        g = Hypergraph(
            [[0, 1]], num_vertices=3, areas=[1.0, 2.0, 3.0]
        )
        level = coarsen(g, [FREE] * 3, [0, 0, 1])
        assert level.coarse.area(0) == 3.0
        assert level.coarse.area(1) == 3.0

    def test_matching_plus_coarsen_shrinks_clusters(self, clusters4, rng):
        labels = heavy_edge_matching(clusters4, rng=rng)
        level = coarsen(clusters4, [FREE] * clusters4.num_vertices, labels)
        assert level.coarse.num_vertices < clusters4.num_vertices
        assert level.coarse.total_area == pytest.approx(
            clusters4.total_area
        )
