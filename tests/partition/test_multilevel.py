"""Unit tests for the multilevel partitioner."""

import random

import pytest

from repro.hypergraph import (
    CircuitSpec,
    chain_hypergraph,
    clustered_hypergraph,
    generate_circuit,
    grid_hypergraph,
)
from repro.partition import (
    FREE,
    FMBipartitioner,
    MultilevelBipartitioner,
    MultilevelConfig,
    block_loads,
    random_balanced_bipartition,
    relative_bipartition_balance,
    respect_fixture,
)


class TestBasics:
    def test_grid_near_optimal(self):
        g = grid_hypergraph(8, 16)  # optimal bisection cut = 8
        balance = relative_bipartition_balance(g.total_area, 0.02)
        engine = MultilevelBipartitioner(g, balance=balance)
        best = min(engine.run(seed=s).solution.cut for s in range(3))
        assert best <= 12

    def test_chain_optimal(self):
        g = chain_hypergraph(64)
        balance = relative_bipartition_balance(g.total_area, 0.05)
        engine = MultilevelBipartitioner(g, balance=balance)
        assert engine.run(seed=0).solution.cut == 1

    def test_cut_is_exact(self, tiny_circuit, tiny_balance):
        g = tiny_circuit.graph
        engine = MultilevelBipartitioner(g, balance=tiny_balance)
        result = engine.run(seed=1)
        assert result.solution.verify_cut(g)

    def test_result_feasible(self, tiny_circuit, tiny_balance):
        g = tiny_circuit.graph
        engine = MultilevelBipartitioner(g, balance=tiny_balance)
        result = engine.run(seed=2)
        loads = block_loads(g, result.solution.parts, 2)
        assert tiny_balance.is_feasible(loads)

    def test_deterministic_in_seed(self, tiny_circuit, tiny_balance):
        engine = MultilevelBipartitioner(
            tiny_circuit.graph, balance=tiny_balance
        )
        a = engine.run(seed=5)
        b = engine.run(seed=5)
        assert a.solution.parts == b.solution.parts

    def test_beats_flat_fm(self):
        circ = generate_circuit(CircuitSpec(num_cells=800), seed=21)
        g = circ.graph
        balance = relative_bipartition_balance(g.total_area, 0.02)
        ml = MultilevelBipartitioner(g, balance=balance)
        ml_best = min(ml.run(seed=s).solution.cut for s in range(3))
        flat = FMBipartitioner(g, balance)
        flat_best = min(
            flat.run(
                random_balanced_bipartition(
                    g, balance, rng=random.Random(s)
                )
            ).solution.cut
            for s in range(3)
        )
        assert ml_best < flat_best

    def test_builds_hierarchy(self, tiny_circuit, tiny_balance):
        engine = MultilevelBipartitioner(
            tiny_circuit.graph,
            balance=tiny_balance,
            config=MultilevelConfig(coarsest_size=40),
        )
        result = engine.run(seed=0)
        assert result.num_levels >= 2
        assert result.coarsest_vertices <= tiny_circuit.graph.num_vertices

    def test_small_graph_no_hierarchy(self):
        g = chain_hypergraph(10)
        balance = relative_bipartition_balance(g.total_area, 0.2)
        engine = MultilevelBipartitioner(
            g, balance=balance, config=MultilevelConfig(coarsest_size=120)
        )
        result = engine.run(seed=0)
        assert result.num_levels == 0
        assert result.solution.cut == 1


class TestFixedVertices:
    def test_fixture_respected(self, tiny_circuit, tiny_balance):
        g = tiny_circuit.graph
        rng = random.Random(3)
        fixture = [FREE] * g.num_vertices
        for v in rng.sample(range(g.num_vertices), g.num_vertices // 4):
            fixture[v] = rng.randrange(2)
        engine = MultilevelBipartitioner(
            g, balance=tiny_balance, fixture=fixture
        )
        result = engine.run(seed=4)
        assert respect_fixture(result.solution.parts, fixture)
        assert result.solution.verify_cut(g)

    def test_good_fixture_recovers_good_cut(self, tiny_circuit, tiny_balance):
        g = tiny_circuit.graph
        free_engine = MultilevelBipartitioner(g, balance=tiny_balance)
        good = min(
            (free_engine.run(seed=s).solution for s in range(4)),
            key=lambda sol: sol.cut,
        )
        rng = random.Random(9)
        fixture = [FREE] * g.num_vertices
        for v in rng.sample(range(g.num_vertices), g.num_vertices // 3):
            fixture[v] = good.parts[v]
        fixed_engine = MultilevelBipartitioner(
            g, balance=tiny_balance, fixture=fixture
        )
        result = fixed_engine.run(seed=1)
        assert result.solution.cut <= int(good.cut * 1.5) + 2

    def test_all_fixed(self):
        g = chain_hypergraph(6)
        fixture = [0, 0, 0, 1, 1, 1]
        balance = relative_bipartition_balance(6.0, 0.1)
        engine = MultilevelBipartitioner(
            g, balance=balance, fixture=fixture
        )
        result = engine.run(seed=0)
        assert result.solution.parts == fixture
        assert result.solution.cut == 1


class TestConfig:
    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            MultilevelConfig(matching="best")
        with pytest.raises(ValueError):
            MultilevelConfig(clustering_ratio=1.5)
        with pytest.raises(ValueError):
            MultilevelConfig(coarsest_size=1)
        with pytest.raises(ValueError):
            MultilevelConfig(initial_starts=0)
        with pytest.raises(ValueError):
            MultilevelConfig(vcycles=-1)

    def test_random_matching_works(self, tiny_circuit, tiny_balance):
        engine = MultilevelBipartitioner(
            tiny_circuit.graph,
            balance=tiny_balance,
            config=MultilevelConfig(matching="random"),
        )
        result = engine.run(seed=0)
        assert result.solution.verify_cut(tiny_circuit.graph)

    def test_vcycle_runs_and_does_not_hurt(self, tiny_circuit, tiny_balance):
        g = tiny_circuit.graph
        base = MultilevelBipartitioner(
            g, balance=tiny_balance, config=MultilevelConfig(vcycles=0)
        ).run(seed=7)
        vcycled = MultilevelBipartitioner(
            g, balance=tiny_balance, config=MultilevelConfig(vcycles=1)
        ).run(seed=7)
        assert vcycled.vcycles_run == 1
        assert vcycled.solution.verify_cut(g)
        # A V-cycle refines an existing solution: never worse.
        assert vcycled.solution.cut <= base.solution.cut

    def test_kway_balance_rejected(self):
        from repro.partition import relative_balance

        g = chain_hypergraph(4)
        with pytest.raises(ValueError):
            MultilevelBipartitioner(
                g, balance=relative_balance(4.0, 3, 0.1)
            )

    def test_default_balance_is_papers(self):
        g = chain_hypergraph(100)
        engine = MultilevelBipartitioner(g)
        assert engine.balance.min_loads[0] == pytest.approx(49.0)
        assert engine.balance.max_loads[0] == pytest.approx(51.0)

    def test_planted_clusters_recovered(self):
        g = clustered_hypergraph(
            num_clusters=4, cluster_size=16, intra_nets=60, inter_nets=8,
            seed=5,
        )
        balance = relative_bipartition_balance(g.total_area, 0.05)
        engine = MultilevelBipartitioner(g, balance=balance)
        best = min(engine.run(seed=s).solution.cut for s in range(3))
        # The planted inter-cluster bridges bound a good bisection.
        assert best <= 8
