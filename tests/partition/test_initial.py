"""Unit tests for initial-solution construction."""

import random

import pytest

from repro.hypergraph import CircuitSpec, generate_circuit, grid_hypergraph
from repro.partition import (
    FREE,
    block_loads,
    greedy_bfs_bipartition,
    random_balanced_bipartition,
    random_side_assignment,
    relative_balance,
    relative_bipartition_balance,
    respect_fixture,
    cut_size,
    terminal_seeded_bipartition,
)


class TestRandomBalanced:
    def test_feasible_on_unit_areas(self, rng):
        g = grid_hypergraph(6, 6)
        balance = relative_bipartition_balance(g.total_area, 0.1)
        parts = random_balanced_bipartition(g, balance, rng=rng)
        assert balance.is_feasible(block_loads(g, parts, 2))

    def test_feasible_on_skewed_areas(self, rng):
        circ = generate_circuit(CircuitSpec(num_cells=400), seed=3)
        g = circ.graph
        balance = relative_bipartition_balance(g.total_area, 0.02)
        for _ in range(5):
            parts = random_balanced_bipartition(g, balance, rng=rng)
            assert balance.is_feasible(block_loads(g, parts, 2))

    def test_respects_fixture(self, rng):
        g = grid_hypergraph(4, 4)
        fixture = [FREE] * 16
        fixture[0] = 1
        fixture[5] = 0
        balance = relative_bipartition_balance(g.total_area, 0.2)
        parts = random_balanced_bipartition(
            g, balance, fixture=fixture, rng=rng
        )
        assert respect_fixture(parts, fixture)

    def test_randomness(self):
        g = grid_hypergraph(6, 6)
        balance = relative_bipartition_balance(g.total_area, 0.2)
        a = random_balanced_bipartition(g, balance, rng=random.Random(1))
        b = random_balanced_bipartition(g, balance, rng=random.Random(2))
        assert a != b

    def test_deterministic_given_rng(self):
        g = grid_hypergraph(6, 6)
        balance = relative_bipartition_balance(g.total_area, 0.2)
        a = random_balanced_bipartition(g, balance, rng=random.Random(7))
        b = random_balanced_bipartition(g, balance, rng=random.Random(7))
        assert a == b

    def test_kway_balance_rejected(self):
        g = grid_hypergraph(2, 2)
        with pytest.raises(ValueError):
            random_balanced_bipartition(
                g, relative_balance(4.0, 3, 0.1)
            )


class TestRandomSideAssignment:
    def test_respects_fixture(self, rng):
        fixture = [1, FREE, 0, FREE]
        g = grid_hypergraph(2, 2)
        parts = random_side_assignment(g, fixture=fixture, rng=rng)
        assert parts[0] == 1 and parts[2] == 0

    def test_multiway(self, rng):
        g = grid_hypergraph(10, 10)
        parts = random_side_assignment(g, rng=rng, num_parts=4)
        assert set(parts) <= {0, 1, 2, 3}
        assert len(set(parts)) > 1


class TestTerminalSeeded:
    def test_respects_fixture_and_balance(self, rng):
        circ = generate_circuit(CircuitSpec(num_cells=300), seed=17)
        g = circ.graph
        balance = relative_bipartition_balance(g.total_area, 0.05)
        fixture = [FREE] * g.num_vertices
        for v in rng.sample(range(g.num_vertices), 60):
            fixture[v] = rng.randrange(2)
        parts = terminal_seeded_bipartition(g, balance, fixture, rng=rng)
        assert respect_fixture(parts, fixture)
        assert balance.is_feasible(block_loads(g, parts, 2))

    def test_better_than_random_in_good_regime(self, rng):
        from repro.partition import MultilevelBipartitioner

        circ = generate_circuit(CircuitSpec(num_cells=400), seed=18)
        g = circ.graph
        balance = relative_bipartition_balance(g.total_area, 0.02)
        good = MultilevelBipartitioner(g, balance=balance).run(
            seed=0
        ).solution
        fixture = [FREE] * g.num_vertices
        for v in rng.sample(range(g.num_vertices), g.num_vertices // 4):
            fixture[v] = good.parts[v]
        seeded = terminal_seeded_bipartition(
            g, balance, fixture, rng=random.Random(1)
        )
        rand = random_balanced_bipartition(
            g, balance, fixture=fixture, rng=random.Random(1)
        )
        assert cut_size(g, seeded) < cut_size(g, rand)

    def test_falls_back_when_nothing_fixed(self, rng):
        g = grid_hypergraph(6, 6)
        balance = relative_bipartition_balance(g.total_area, 0.1)
        parts = terminal_seeded_bipartition(
            g, balance, [FREE] * 36, rng=rng
        )
        assert balance.is_feasible(block_loads(g, parts, 2))

    def test_isolated_vertices_assigned(self, rng):
        from repro.hypergraph import Hypergraph

        g = Hypergraph([[0, 1]], num_vertices=4)
        balance = relative_bipartition_balance(4.0, 0.6)
        parts = terminal_seeded_bipartition(
            g, balance, [0, FREE, FREE, FREE], rng=rng
        )
        assert all(p in (0, 1) for p in parts)

    def test_kway_rejected(self, rng):
        g = grid_hypergraph(2, 2)
        with pytest.raises(ValueError):
            terminal_seeded_bipartition(
                g, relative_balance(4.0, 3, 0.2), [FREE] * 4, rng=rng
            )


class TestGreedyBFS:
    def test_better_than_random_on_local_graph(self):
        g = grid_hypergraph(10, 10)
        balance = relative_bipartition_balance(g.total_area, 0.1)
        greedy_cuts = []
        random_cuts = []
        for s in range(5):
            greedy_cuts.append(
                cut_size(
                    g,
                    greedy_bfs_bipartition(
                        g, balance, rng=random.Random(s)
                    ),
                )
            )
            random_cuts.append(
                cut_size(
                    g,
                    random_balanced_bipartition(
                        g, balance, rng=random.Random(s)
                    ),
                )
            )
        assert sum(greedy_cuts) < sum(random_cuts)

    def test_grows_from_fixed_side0(self, rng):
        g = grid_hypergraph(4, 4)
        fixture = [FREE] * 16
        fixture[0] = 0
        balance = relative_bipartition_balance(g.total_area, 0.3)
        parts = greedy_bfs_bipartition(g, balance, fixture=fixture, rng=rng)
        assert parts[0] == 0
        assert respect_fixture(parts, fixture)
        # Roughly half the grid ends up on side 0.
        assert 4 <= sum(1 for p in parts if p == 0) <= 12

    def test_disconnected_graph_still_fills(self, rng):
        from repro.hypergraph import Hypergraph

        g = Hypergraph([[0, 1], [2, 3]], num_vertices=8)
        balance = relative_bipartition_balance(8.0, 0.3)
        parts = greedy_bfs_bipartition(g, balance, rng=rng)
        loads = block_loads(g, parts, 2)
        assert balance.is_feasible(loads)

    def test_all_fixed(self, rng):
        g = grid_hypergraph(2, 2)
        fixture = [0, 0, 1, 1]
        balance = relative_bipartition_balance(4.0, 0.3)
        parts = greedy_bfs_bipartition(g, balance, fixture=fixture, rng=rng)
        assert parts == [0, 0, 1, 1]
