"""Unit tests for the generalized-cost FM engine and cost models."""

import random

import pytest

from repro.hypergraph import CircuitSpec, Hypergraph, generate_circuit
from repro.partition import (
    FREE,
    CostFMBipartitioner,
    CostFMConfig,
    FMBipartitioner,
    NetCostModel,
    cut_size,
    min_cut_cost_model,
    random_balanced_bipartition,
    relative_bipartition_balance,
    total_cost,
)


class TestNetCostModel:
    def test_state_cost(self):
        model = NetCostModel(cost0=[2], cost1=[5], cost_cut=[9])
        assert model.state_cost(0, 3, 0) == 2
        assert model.state_cost(0, 0, 3) == 5
        assert model.state_cost(0, 1, 2) == 9
        assert model.state_cost(0, 0, 0) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            NetCostModel(cost0=[1], cost1=[1, 2], cost_cut=[1])
        with pytest.raises(ValueError):
            NetCostModel(cost0=[-1], cost1=[0], cost_cut=[0])
        with pytest.raises(ValueError):
            NetCostModel(cost0=[0.5], cost1=[0], cost_cut=[0])

    def test_min_cut_model_matches_cut_size(self, small_hypergraph):
        model = min_cut_cost_model(small_hypergraph)
        parts = [0, 1, 0, 1, 0, 1]
        assert total_cost(small_hypergraph, model, parts) == cut_size(
            small_hypergraph, parts
        )


class TestCostFM:
    def _instance(self, seed=1):
        circ = generate_circuit(CircuitSpec(num_cells=150), seed=seed)
        g = circ.graph
        balance = relative_bipartition_balance(g.total_area, 0.05)
        return g, balance

    def test_min_cut_model_behaves_like_fm(self):
        g, balance = self._instance(2)
        model = min_cut_cost_model(g)
        init = random_balanced_bipartition(
            g, balance, rng=random.Random(3)
        )
        generic = CostFMBipartitioner(g, balance, model).run(list(init))
        classic = FMBipartitioner(g, balance).run(list(init))
        assert generic.cost == cut_size(g, generic.parts)
        # Same objective, same neighborhood structure: comparable cuts.
        assert generic.cost <= classic.solution.cut * 1.5 + 5
        assert classic.solution.cut <= generic.cost * 1.5 + 5

    def test_reported_cost_exact(self):
        g, balance = self._instance(4)
        rng = random.Random(5)
        model = NetCostModel(
            cost0=[rng.randint(0, 5) for _ in range(g.num_nets)],
            cost1=[rng.randint(0, 5) for _ in range(g.num_nets)],
            cost_cut=[rng.randint(0, 9) for _ in range(g.num_nets)],
        )
        init = random_balanced_bipartition(g, balance, rng=rng)
        result = CostFMBipartitioner(g, balance, model).run(list(init))
        assert result.cost == total_cost(g, model, result.parts)
        assert result.cost <= result.initial_cost

    def test_asymmetric_costs_bias_sides(self):
        # A single free vertex on a net whose all-on-side-1 state is
        # cheap must end on side 1.
        from repro.partition import BalanceConstraint

        g = Hypergraph([[0, 1]], num_vertices=2, areas=[1.0, 1.0])
        model = NetCostModel(cost0=[10], cost1=[0], cost_cut=[5])
        balance = BalanceConstraint(
            min_loads=[0.0, 0.0], max_loads=[2.0, 2.0]
        )
        engine = CostFMBipartitioner(
            g, balance, model, fixture=[FREE, 1]
        )
        result = engine.run([0, 1])
        assert result.parts == [1, 1]
        assert result.cost == 0

    def test_fixture_respected(self):
        g, balance = self._instance(6)
        rng = random.Random(7)
        fixture = [FREE] * g.num_vertices
        pinned = rng.sample(range(g.num_vertices), 25)
        for v in pinned:
            fixture[v] = rng.randrange(2)
        model = min_cut_cost_model(g)
        init = random_balanced_bipartition(
            g, balance, fixture=fixture, rng=rng
        )
        result = CostFMBipartitioner(
            g, balance, model, fixture=fixture
        ).run(init)
        for v in pinned:
            assert result.parts[v] == fixture[v]

    def test_pass_cutoff(self):
        g, balance = self._instance(8)
        model = min_cut_cost_model(g)
        init = random_balanced_bipartition(
            g, balance, rng=random.Random(9)
        )
        full = CostFMBipartitioner(g, balance, model).run(list(init))
        tight = CostFMBipartitioner(
            g,
            balance,
            model,
            config=CostFMConfig(pass_move_limit_fraction=0.1),
        ).run(list(init))
        assert tight.total_moves <= full.total_moves

    def test_validation(self):
        g, balance = self._instance(10)
        short_model = NetCostModel(cost0=[0], cost1=[0], cost_cut=[1])
        with pytest.raises(ValueError):
            CostFMBipartitioner(g, balance, short_model)
        model = min_cut_cost_model(g)
        engine = CostFMBipartitioner(g, balance, model)
        with pytest.raises(ValueError):
            engine.run([0])
        with pytest.raises(ValueError):
            CostFMConfig(max_passes=0)


class TestWirelengthModel:
    @pytest.fixture(scope="class")
    def derived(self):
        from repro.placement import (
            build_suite,
            place_circuit,
            terminal_positions_from_placement,
            wirelength_cost_model,
        )

        circ = generate_circuit(
            CircuitSpec(num_cells=220, name="w220"), seed=33
        )
        placement = place_circuit(circ, seed=2)
        suite = build_suite(circ, "w220", placement=placement)
        entry = suite.entries[2]
        original_ids = {
            placement.graph.vertex_name(v): v
            for v in range(placement.graph.num_vertices)
        }
        positions = terminal_positions_from_placement(
            entry.instance, placement.positions, original_ids
        )
        from repro.placement import midline

        model = wirelength_cost_model(
            entry.instance,
            entry.block,
            positions,
            cutline=midline(entry.block, entry.cut_axis),
            scale=0.1,
        )
        return entry, model, positions

    def test_model_covers_all_nets(self, derived):
        entry, model, _ = derived
        assert model.num_nets == entry.instance.graph.num_nets

    def test_cut_state_never_cheaper_than_best_side(self, derived):
        # The cut bbox contains both side points, so it dominates both
        # single-side bboxes.
        _, model, _ = derived
        for e in range(model.num_nets):
            assert model.cost_cut[e] >= min(
                model.cost0[e], model.cost1[e]
            )

    def test_terminal_pull(self, derived):
        # For nets with terminals on exactly one side of the cut, the
        # preferred side is usually the terminal side.
        entry, model, positions = derived
        inst = entry.instance
        cut_axis_positions = {
            t: positions[t] for t in inst.pad_vertices
        }
        del cut_axis_positions
        preferred_matches = 0
        considered = 0
        for e in range(model.num_nets):
            pins = inst.graph.net_pins(e)
            sides = {
                next(iter(inst.fixture_sets[v]))
                for v in pins
                if inst.fixture_sets[v] is not None
            }
            if len(sides) != 1:
                continue
            considered += 1
            side = next(iter(sides))
            cheaper = 0 if model.cost0[e] < model.cost1[e] else 1
            if model.cost0[e] != model.cost1[e] and cheaper == side:
                preferred_matches += 1
        assert considered > 0
        assert preferred_matches > 0.6 * considered

    def test_optimizing_wl_beats_min_cut_on_wl(self, derived):
        entry, model, _ = derived
        inst = entry.instance
        g = inst.graph
        fixture = inst.hard_fixture()
        init = random_balanced_bipartition(
            g, inst.balance, fixture=fixture, rng=random.Random(4)
        )
        wl_engine = CostFMBipartitioner(
            g, inst.balance, model, fixture=fixture
        )
        wl_result = wl_engine.run(list(init))
        mc_result = FMBipartitioner(
            g, inst.balance, fixture=fixture
        ).run(list(init))
        assert wl_result.cost <= total_cost(
            g, model, mc_result.solution.parts
        )
