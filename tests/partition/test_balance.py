"""Unit tests for balance constraints."""

import pytest

from repro.partition import (
    BalanceConstraint,
    MultiBalanceConstraint,
    absolute_balance,
    relative_balance,
    relative_bipartition_balance,
)


class TestBalanceConstraint:
    def test_feasibility(self):
        c = BalanceConstraint(min_loads=[4, 4], max_loads=[6, 6])
        assert c.is_feasible([5, 5])
        assert c.is_feasible([4, 6])
        assert not c.is_feasible([3, 7])

    def test_violation(self):
        c = BalanceConstraint(min_loads=[4, 4], max_loads=[6, 6])
        assert c.violation([5, 5]) == 0.0
        assert c.violation([3, 7]) == pytest.approx(2.0)
        assert c.violation([2, 8]) == pytest.approx(4.0)

    def test_num_parts(self):
        c = BalanceConstraint(min_loads=[0, 0, 0], max_loads=[1, 2, 3])
        assert c.num_parts == 3

    def test_invalid_windows(self):
        with pytest.raises(ValueError):
            BalanceConstraint(min_loads=[5], max_loads=[4])
        with pytest.raises(ValueError):
            BalanceConstraint(min_loads=[0, 0], max_loads=[1])
        with pytest.raises(ValueError):
            BalanceConstraint(min_loads=[-2], max_loads=[-1])

    def test_allows_move_basic(self):
        c = BalanceConstraint(min_loads=[4, 4], max_loads=[6, 6])
        loads = [5.0, 5.0]
        assert c.allows_move(loads, 1.0, 0, 1)
        assert not c.allows_move(loads, 2.0, 0, 1)  # 3/7 infeasible

    def test_allows_move_repairs_infeasible(self):
        c = BalanceConstraint(min_loads=[4, 4], max_loads=[6, 6])
        loads = [8.0, 2.0]  # violation 4
        # Moving 2.0 from 0 to 1 -> [6, 4]: feasible, allowed.
        assert c.allows_move(loads, 2.0, 0, 1)
        # Moving 1.0 -> [7, 3]: still infeasible but strictly better.
        assert c.allows_move(loads, 1.0, 0, 1)
        # Moving the wrong way is rejected.
        assert not c.allows_move(loads, 1.0, 1, 0)

    def test_allows_move_same_block(self):
        c = BalanceConstraint(min_loads=[0], max_loads=[1])
        assert c.allows_move([5.0], 3.0, 0, 0)


class TestFactories:
    def test_relative_bipartition(self):
        c = relative_bipartition_balance(100.0, 0.02)
        assert c.min_loads[0] == pytest.approx(49.0)
        assert c.max_loads[1] == pytest.approx(51.0)

    def test_relative_bipartition_bad_tolerance(self):
        with pytest.raises(ValueError):
            relative_bipartition_balance(100.0, 1.5)

    def test_relative_kway(self):
        c = relative_balance(90.0, 3, 0.1)
        assert c.num_parts == 3
        assert c.min_loads[2] == pytest.approx(27.0)
        assert c.max_loads[0] == pytest.approx(33.0)

    def test_relative_kway_bad_parts(self):
        with pytest.raises(ValueError):
            relative_balance(10.0, 0, 0.1)

    def test_absolute(self):
        c = absolute_balance([10.0, 20.0], slack=1.0)
        assert c.min_loads == [0.0, 0.0]
        assert c.max_loads == [11.0, 21.0]
        assert c.is_feasible([0.0, 21.0])
        assert not c.is_feasible([12.0, 0.0])


class TestMultiBalance:
    def _multi(self):
        area = BalanceConstraint(min_loads=[4, 4], max_loads=[6, 6])
        power = BalanceConstraint(min_loads=[0, 0], max_loads=[10, 10])
        return MultiBalanceConstraint(constraints=[area, power])

    def test_counts(self):
        m = self._multi()
        assert m.num_parts == 2
        assert m.num_resources == 2

    def test_feasible_requires_all(self):
        m = self._multi()
        assert m.is_feasible([[5, 5], [9, 9]])
        assert not m.is_feasible([[5, 5], [11, 9]])
        assert not m.is_feasible([[3, 7], [9, 9]])

    def test_resource_count_mismatch(self):
        m = self._multi()
        with pytest.raises(ValueError):
            m.is_feasible([[5, 5]])

    def test_allows_move_requires_all(self):
        m = self._multi()
        loads = [[5.0, 5.0], [10.0, 0.0]]
        # Area move of 1.0 fine; power move of 1.0 repairs nothing but
        # stays feasible (10 -> 9, 0 -> 1).
        assert m.allows_move(loads, [1.0, 1.0], 0, 1)
        # An area move of 2.0 breaks resource 0 even if power is fine.
        assert not m.allows_move(loads, [2.0, 0.0], 0, 1)

    def test_mismatched_parts_rejected(self):
        a = BalanceConstraint(min_loads=[0], max_loads=[1])
        b = BalanceConstraint(min_loads=[0, 0], max_loads=[1, 1])
        with pytest.raises(ValueError):
            MultiBalanceConstraint(constraints=[a, b])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MultiBalanceConstraint(constraints=[])
