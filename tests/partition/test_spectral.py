"""Unit tests for the spectral baseline."""

import numpy as np
import pytest

from repro.hypergraph import (
    CircuitSpec,
    Hypergraph,
    chain_hypergraph,
    clustered_hypergraph,
    generate_circuit,
    grid_hypergraph,
)
from repro.partition import (
    FREE,
    cut_size,
    random_baseline,
    relative_bipartition_balance,
    spectral_bipartition,
    spectral_plus_fm,
    sweep_cut,
)
from repro.partition.spectral import clique_laplacian, fiedler_vector


class TestLaplacian:
    def test_rows_sum_to_zero(self, small_hypergraph):
        lap = clique_laplacian(small_hypergraph).toarray()
        assert np.allclose(lap.sum(axis=1), 0.0)

    def test_symmetric(self, small_hypergraph):
        lap = clique_laplacian(small_hypergraph).toarray()
        assert np.allclose(lap, lap.T)

    def test_two_pin_weights(self):
        g = Hypergraph([[0, 1]], num_vertices=2, net_weights=[3])
        lap = clique_laplacian(g).toarray()
        assert lap[0, 1] == pytest.approx(-3.0)
        assert lap[0, 0] == pytest.approx(3.0)

    def test_quadratic_form_nonnegative(self, clusters4):
        lap = clique_laplacian(clusters4).toarray()
        rng = np.random.default_rng(0)
        for _ in range(5):
            x = rng.standard_normal(clusters4.num_vertices)
            assert x @ lap @ x >= -1e-8


class TestFiedler:
    def test_chain_is_monotone(self):
        g = chain_hypergraph(20)
        f = fiedler_vector(g, seed=1)
        order = np.argsort(f)
        # The Fiedler vector of a path is monotone along the path.
        assert list(order) == list(range(20)) or list(order) == list(
            reversed(range(20))
        )

    def test_separates_planted_clusters(self):
        g = clustered_hypergraph(
            num_clusters=2, cluster_size=12, intra_nets=40, inter_nets=2,
            seed=3,
        )
        f = fiedler_vector(g, seed=1)
        side_a = set(np.argsort(f)[:12])
        cluster_a = set(range(12))
        # Up to sign, the split matches the planted clusters.
        assert side_a in (cluster_a, set(range(12, 24)))

    def test_tiny_graph(self):
        g = Hypergraph([[0, 1]], num_vertices=2)
        f = fiedler_vector(g)
        assert len(f) == 2


class TestSweepCut:
    def test_chain_prefix_is_optimal(self):
        g = chain_hypergraph(10)
        balance = relative_bipartition_balance(10.0, 0.2)
        parts, cut = sweep_cut(g, list(range(10)), balance)
        assert cut == 1
        assert cut_size(g, parts) == 1

    def test_fixture_loads_accounted(self):
        g = chain_hypergraph(6)
        fixture = [0, FREE, FREE, FREE, FREE, 1]
        balance = relative_bipartition_balance(6.0, 0.4)
        parts, cut = sweep_cut(g, [1, 2, 3, 4], balance, fixture)
        assert parts[0] == 0 and parts[5] == 1
        assert cut == cut_size(g, parts)

    def test_rejects_fixed_vertex_in_order(self):
        g = chain_hypergraph(4)
        balance = relative_bipartition_balance(4.0, 0.5)
        with pytest.raises(ValueError):
            sweep_cut(g, [0, 1], balance, fixture=[0, FREE, FREE, FREE])


class TestSpectralBipartition:
    def test_chain_optimal(self):
        g = chain_hypergraph(40)
        balance = relative_bipartition_balance(g.total_area, 0.1)
        assert spectral_bipartition(g, balance).cut == 1

    def test_grid_optimal(self):
        g = grid_hypergraph(8, 16)
        balance = relative_bipartition_balance(g.total_area, 0.05)
        assert spectral_bipartition(g, balance).cut == 8

    def test_cut_exact_and_feasible(self):
        circ = generate_circuit(CircuitSpec(num_cells=200), seed=5)
        g = circ.graph
        balance = relative_bipartition_balance(g.total_area, 0.05)
        sol = spectral_bipartition(g, balance)
        assert sol.verify_cut(g)
        loads = [0.0, 0.0]
        for v in range(g.num_vertices):
            loads[sol.parts[v]] += g.area(v)
        assert balance.is_feasible(loads)

    def test_fixture_respected(self):
        circ = generate_circuit(CircuitSpec(num_cells=150), seed=6)
        g = circ.graph
        fixture = [FREE] * g.num_vertices
        fixture[3] = 1
        fixture[7] = 0
        balance = relative_bipartition_balance(g.total_area, 0.05)
        sol = spectral_bipartition(g, balance, fixture=fixture)
        assert sol.parts[3] == 1 and sol.parts[7] == 0

    def test_beats_random_on_structured_graph(self):
        g = clustered_hypergraph(
            num_clusters=2, cluster_size=20, intra_nets=80, inter_nets=4,
            seed=7,
        )
        balance = relative_bipartition_balance(g.total_area, 0.1)
        spectral = spectral_bipartition(g, balance)
        rand = random_baseline(g, balance, seed=0)
        assert spectral.cut < rand.cut

    def test_kway_rejected(self):
        from repro.partition import relative_balance

        g = chain_hypergraph(6)
        with pytest.raises(ValueError):
            spectral_bipartition(g, relative_balance(6.0, 3, 0.2))


class TestSpectralPlusFM:
    def test_refinement_never_worse(self):
        circ = generate_circuit(CircuitSpec(num_cells=250), seed=8)
        g = circ.graph
        balance = relative_bipartition_balance(g.total_area, 0.05)
        raw = spectral_bipartition(g, balance, seed=1)
        refined = spectral_plus_fm(g, balance, seed=1)
        assert refined.cut <= raw.cut
        assert refined.verify_cut(g)
