"""Property-based tests for the multilevel engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypergraph import Hypergraph
from repro.partition import (
    FREE,
    MultilevelBipartitioner,
    MultilevelConfig,
    block_loads,
    relative_bipartition_balance,
    respect_fixture,
)


@st.composite
def ml_instances(draw):
    n = draw(st.integers(min_value=4, max_value=24))
    num_nets = draw(st.integers(min_value=2, max_value=40))
    nets = []
    for _ in range(num_nets):
        size = draw(st.integers(min_value=2, max_value=min(4, n)))
        nets.append(
            draw(
                st.lists(
                    st.integers(min_value=0, max_value=n - 1),
                    min_size=size,
                    max_size=size,
                    unique=True,
                )
            )
        )
    areas = draw(
        st.lists(
            st.sampled_from([1.0, 1.0, 2.0, 3.0]),
            min_size=n,
            max_size=n,
        )
    )
    weights = draw(
        st.lists(
            st.integers(min_value=1, max_value=4),
            min_size=num_nets,
            max_size=num_nets,
        )
    )
    fixture = draw(
        st.lists(
            st.sampled_from([FREE, FREE, FREE, 0, 1]),
            min_size=n,
            max_size=n,
        )
    )
    if all(f != FREE for f in fixture):
        fixture[0] = FREE
    coarsest = draw(st.sampled_from([4, 8, 120]))
    vcycles = draw(st.integers(min_value=0, max_value=1))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    graph = Hypergraph(nets, num_vertices=n, areas=areas, net_weights=weights)
    return graph, fixture, coarsest, vcycles, seed


def _feasible_assignment_exists(graph, balance, fixture):
    """Subset-sum oracle: can any fixture-respecting assignment meet
    the balance window?  (Integer areas make this a small DP.)"""
    fixed0 = sum(
        graph.area(v)
        for v in range(graph.num_vertices)
        if fixture[v] == 0
    )
    free_areas = [
        int(graph.area(v))
        for v in range(graph.num_vertices)
        if fixture[v] == FREE
    ]
    reachable = {0}
    for a in free_areas:
        reachable |= {s + a for s in reachable}
    lo, hi = balance.min_loads[0], balance.max_loads[0]
    return any(lo <= fixed0 + s <= hi for s in reachable)


@given(ml_instances())
@settings(max_examples=60, deadline=None)
def test_multilevel_invariants(instance):
    """Exact cut, fixture respect, feasibility on random instances."""
    graph, fixture, coarsest, vcycles, seed = instance
    balance = relative_bipartition_balance(graph.total_area, 0.4)
    engine = MultilevelBipartitioner(
        graph,
        balance=balance,
        fixture=fixture,
        config=MultilevelConfig(
            coarsest_size=coarsest,
            initial_starts=2,
            vcycles=vcycles,
        ),
    )
    result = engine.run(seed=seed)
    assert result.solution.verify_cut(graph)
    assert respect_fixture(result.solution.parts, fixture)
    if _feasible_assignment_exists(graph, balance, fixture):
        loads = block_loads(graph, result.solution.parts, 2)
        assert balance.is_feasible(loads)
    assert result.vcycles_run == vcycles


@given(ml_instances())
@settings(max_examples=30, deadline=None)
def test_multilevel_deterministic(instance):
    """Same seed, same solution."""
    graph, fixture, coarsest, vcycles, seed = instance
    balance = relative_bipartition_balance(graph.total_area, 0.4)
    config = MultilevelConfig(
        coarsest_size=coarsest, initial_starts=2, vcycles=vcycles
    )
    a = MultilevelBipartitioner(
        graph, balance=balance, fixture=fixture, config=config
    ).run(seed=seed)
    b = MultilevelBipartitioner(
        graph, balance=balance, fixture=fixture, config=config
    ).run(seed=seed)
    assert a.solution.parts == b.solution.parts
    assert a.solution.cut == b.solution.cut
