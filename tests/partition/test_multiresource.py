"""Unit tests for the multi-balanced FM engine."""

import random

import pytest

from repro.hypergraph import CircuitSpec, Hypergraph, generate_circuit
from repro.partition import (
    FREE,
    BalanceConstraint,
    MultiBalanceConstraint,
    MultiResourceFMBipartitioner,
    MultiResourceFMConfig,
    cut_size,
    multi_resource_initial,
)


def two_resource_graph(seed=0, num_cells=120):
    """Circuit whose cells carry area plus a synthetic power value."""
    circ = generate_circuit(CircuitSpec(num_cells=num_cells), seed=seed)
    g = circ.graph
    rng = random.Random(seed)
    power = [
        0.0 if circ.is_pad(v) else rng.uniform(0.5, 4.0)
        for v in range(g.num_vertices)
    ]
    return Hypergraph(
        list(g.nets()),
        num_vertices=g.num_vertices,
        areas=list(g.areas),
        net_weights=list(g.net_weights),
        extra_resources=[power],
    )


def multi_balance(graph, tolerances=(0.05, 0.15)):
    constraints = []
    for r, tol in enumerate(tolerances):
        total = sum(graph.resource_vector(r))
        half = total / 2.0
        constraints.append(
            BalanceConstraint(
                min_loads=[half * (1 - tol)] * 2,
                max_loads=[half * (1 + tol)] * 2,
            )
        )
    return MultiBalanceConstraint(constraints=constraints)


def resource_loads(graph, parts, resources):
    loads = [[0.0, 0.0] for _ in range(resources)]
    for v in range(graph.num_vertices):
        for r in range(resources):
            loads[r][parts[v]] += graph.resource(v, r)
    return loads


class TestEngine:
    def test_improves_and_reports_exact_cut(self):
        g = two_resource_graph(seed=1)
        balance = multi_balance(g)
        init = multi_resource_initial(g, balance, seed=2)
        engine = MultiResourceFMBipartitioner(g, balance)
        result = engine.run(init)
        assert result.solution.verify_cut(g)
        assert result.solution.cut <= result.initial_cut

    def test_all_resources_balanced(self):
        g = two_resource_graph(seed=3)
        balance = multi_balance(g)
        init = multi_resource_initial(g, balance, seed=4)
        result = MultiResourceFMBipartitioner(g, balance).run(init)
        loads = resource_loads(g, result.solution.parts, 2)
        assert balance.is_feasible(loads)

    def test_fixture_respected(self):
        g = two_resource_graph(seed=5)
        rng = random.Random(6)
        fixture = [FREE] * g.num_vertices
        pinned = rng.sample(range(g.num_vertices), 20)
        for v in pinned:
            fixture[v] = rng.randrange(2)
        balance = multi_balance(g)
        init = multi_resource_initial(g, balance, fixture=fixture, seed=7)
        result = MultiResourceFMBipartitioner(
            g, balance, fixture=fixture
        ).run(init)
        for v in pinned:
            assert result.solution.parts[v] == fixture[v]

    def test_tight_second_resource_changes_solution(self):
        # When the second resource is concentrated on one clique, a
        # tight window on it must split that clique even at cut cost.
        nets = [[0, 1], [1, 2], [2, 3], [3, 4], [4, 5], [0, 5]]
        power = [10.0, 10.0, 10.0, 0.1, 0.1, 0.1]
        g = Hypergraph(
            nets,
            num_vertices=6,
            areas=[1.0] * 6,
            extra_resources=[power],
        )
        power_tight = MultiBalanceConstraint(
            constraints=[
                BalanceConstraint(min_loads=[2, 2], max_loads=[4, 4]),
                BalanceConstraint(min_loads=[8, 8], max_loads=[22, 22]),
            ]
        )
        # The natural cut-2 bisection piles all three 10-power cells on
        # one side (power 30 / 0.3), violating the power window...
        init = [0, 0, 0, 1, 1, 1]
        init_power = resource_loads(g, init, 2)[1]
        assert not power_tight.constraints[1].is_feasible(init_power)
        # ...so the engine must split the tens 2/1 while keeping areas
        # legal, repairing the violation from an infeasible start.
        tight = MultiResourceFMBipartitioner(g, power_tight).run(list(init))
        loads = resource_loads(g, tight.solution.parts, 2)
        assert power_tight.is_feasible(loads)
        assert tight.solution.cut <= 3  # ring cuts cannot go below 2

    def test_pass_cutoff(self):
        g = two_resource_graph(seed=8)
        balance = multi_balance(g)
        init = multi_resource_initial(g, balance, seed=9)
        full = MultiResourceFMBipartitioner(g, balance).run(list(init))
        limited = MultiResourceFMBipartitioner(
            g,
            balance,
            config=MultiResourceFMConfig(pass_move_limit_fraction=0.1),
        ).run(list(init))
        assert limited.total_moves <= full.total_moves
        assert limited.solution.verify_cut(g)

    def test_validation(self):
        g = two_resource_graph(seed=10)
        balance = multi_balance(g)
        three_way = MultiBalanceConstraint(
            constraints=[
                BalanceConstraint(
                    min_loads=[0, 0, 0], max_loads=[9, 9, 9]
                )
            ]
        )
        with pytest.raises(ValueError):
            MultiResourceFMBipartitioner(g, three_way)
        too_many = MultiBalanceConstraint(
            constraints=[
                BalanceConstraint(min_loads=[0, 0], max_loads=[9, 9])
            ]
            * 3
        )
        with pytest.raises(ValueError):
            MultiResourceFMBipartitioner(g, too_many)
        engine = MultiResourceFMBipartitioner(g, balance)
        with pytest.raises(ValueError):
            engine.run([0, 1])
        with pytest.raises(ValueError):
            MultiResourceFMConfig(pass_move_limit_fraction=0.0)

    def test_single_resource_matches_scalar_fm_quality(self):
        # With one resource the engine should behave like scalar FM.
        from repro.partition import (
            FMBipartitioner,
            random_balanced_bipartition,
            relative_bipartition_balance,
        )

        circ = generate_circuit(CircuitSpec(num_cells=150), seed=11)
        g = circ.graph
        scalar_balance = relative_bipartition_balance(g.total_area, 0.05)
        vector_balance = MultiBalanceConstraint(
            constraints=[scalar_balance]
        )
        init = random_balanced_bipartition(
            g, scalar_balance, rng=random.Random(12)
        )
        scalar = FMBipartitioner(g, scalar_balance).run(list(init))
        vector = MultiResourceFMBipartitioner(g, vector_balance).run(
            list(init)
        )
        assert vector.solution.cut <= scalar.solution.cut * 1.5 + 5
        assert scalar.solution.cut <= vector.solution.cut * 1.5 + 5


class TestInitialConstruction:
    def test_feasible_on_two_resources(self):
        g = two_resource_graph(seed=13)
        balance = multi_balance(g, tolerances=(0.1, 0.25))
        parts = multi_resource_initial(g, balance, seed=14)
        loads = resource_loads(g, parts, 2)
        assert balance.is_feasible(loads)

    def test_respects_fixture(self):
        g = two_resource_graph(seed=15)
        balance = multi_balance(g)
        fixture = [FREE] * g.num_vertices
        fixture[0] = 1
        parts = multi_resource_initial(
            g, balance, fixture=fixture, seed=16
        )
        assert parts[0] == 1
