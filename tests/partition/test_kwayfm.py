"""Unit tests for the direct k-way FM engine."""

import random

import pytest

from repro.hypergraph import (
    CircuitSpec,
    clustered_hypergraph,
    generate_circuit,
    grid_hypergraph,
)
from repro.partition import (
    FREE,
    cut_size,
    recursive_bisection,
    relative_balance,
    relative_bipartition_balance,
)
from repro.partition.kwayfm import (
    KWayFMConfig,
    KWayFMRefiner,
    kway_fm_partition,
)


class TestRefiner:
    def test_two_way_agrees_with_cut_size(self, tiny_circuit):
        g = tiny_circuit.graph
        balance = relative_bipartition_balance(g.total_area, 0.05)
        result = kway_fm_partition(g, balance, seed=1)
        assert result.cut == cut_size(g, result.parts)
        assert result.cut <= result.initial_cut

    def test_four_way_valid_and_improving(self, tiny_circuit):
        g = tiny_circuit.graph
        balance = relative_balance(g.total_area, 4, 0.1)
        result = kway_fm_partition(g, balance, seed=2)
        assert set(result.parts) <= {0, 1, 2, 3}
        assert result.cut == cut_size(g, result.parts)
        assert result.cut < result.initial_cut

    def test_balance_respected(self, tiny_circuit):
        g = tiny_circuit.graph
        balance = relative_balance(g.total_area, 4, 0.1)
        result = kway_fm_partition(g, balance, seed=3)
        loads = [0.0] * 4
        for v in range(g.num_vertices):
            loads[result.parts[v]] += g.area(v)
        assert balance.is_feasible(loads)

    def test_fixture_respected(self, tiny_circuit):
        g = tiny_circuit.graph
        balance = relative_balance(g.total_area, 4, 0.15)
        rng = random.Random(4)
        fixture = [FREE] * g.num_vertices
        pinned = rng.sample(range(g.num_vertices), 40)
        for v in pinned:
            fixture[v] = rng.randrange(4)
        result = kway_fm_partition(g, balance, fixture=fixture, seed=5)
        for v in pinned:
            assert result.parts[v] == fixture[v]

    def test_planted_clusters(self):
        g = clustered_hypergraph(
            num_clusters=4, cluster_size=12, intra_nets=48, inter_nets=8,
            seed=6,
        )
        balance = relative_balance(g.total_area, 4, 0.1)
        best = min(
            kway_fm_partition(g, balance, seed=s).cut for s in range(4)
        )
        # The 8 planted bridges bound a perfect quadrisection.
        assert best <= 8

    def test_competitive_with_recursive_bisection(self):
        circ = generate_circuit(CircuitSpec(num_cells=250), seed=7)
        g = circ.graph
        balance = relative_balance(g.total_area, 4, 0.15)
        direct = min(
            kway_fm_partition(g, balance, seed=s).cut for s in range(3)
        )
        recursive = recursive_bisection(g, 4, tolerance=0.15, seed=8).cut
        # Flat greedy k-way from random starts will not beat the
        # multilevel recursive engine, but must be in its ballpark.
        assert direct <= 3.0 * recursive + 20

    def test_all_fixed(self):
        g = grid_hypergraph(2, 2)
        balance = relative_balance(4.0, 2, 0.5)
        refiner = KWayFMRefiner(g, balance, fixture=[0, 0, 1, 1])
        result = refiner.run([0, 0, 1, 1])
        assert result.num_passes == 0
        assert result.cut == 2

    def test_initial_parts_validation(self):
        g = grid_hypergraph(2, 2)
        balance = relative_balance(4.0, 2, 0.5)
        refiner = KWayFMRefiner(g, balance)
        with pytest.raises(ValueError):
            refiner.run([0, 1])
        with pytest.raises(ValueError):
            refiner.run([0, 1, 2, 0])

    def test_config_validation(self):
        with pytest.raises(ValueError):
            KWayFMConfig(pass_move_limit_fraction=0.0)
        with pytest.raises(ValueError):
            KWayFMConfig(max_passes=0)
        g = grid_hypergraph(2, 2)
        with pytest.raises(ValueError):
            KWayFMRefiner(
                g, relative_balance(4.0, 1, 0.5)
            )

    def test_pass_cutoff_limits_moves(self):
        circ = generate_circuit(CircuitSpec(num_cells=150), seed=9)
        g = circ.graph
        balance = relative_balance(g.total_area, 4, 0.15)
        full = kway_fm_partition(g, balance, seed=10)
        limited = kway_fm_partition(
            g,
            balance,
            config=KWayFMConfig(pass_move_limit_fraction=0.1),
            seed=10,
        )
        if len(limited.pass_moves) > 1:
            limit = max(1, int(0.1 * g.num_vertices))
            assert all(m <= limit for m in limited.pass_moves[1:])
        assert limited.cut == cut_size(g, limited.parts)
        del full

    def test_deterministic(self, tiny_circuit):
        g = tiny_circuit.graph
        balance = relative_balance(g.total_area, 3, 0.12)
        a = kway_fm_partition(g, balance, seed=11)
        b = kway_fm_partition(g, balance, seed=11)
        assert a.parts == b.parts

    def test_grid_quadrisection_quality(self):
        g = grid_hypergraph(8, 8)
        balance = relative_balance(g.total_area, 4, 0.1)
        best = min(
            kway_fm_partition(g, balance, seed=s).cut for s in range(5)
        )
        # Ideal quadrisection of an 8x8 grid cuts 16 edges.
        assert best <= 30
