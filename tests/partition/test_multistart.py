"""Unit tests for the multistart driver."""

import pytest

from repro.hypergraph import chain_hypergraph
from repro.partition import (
    Bipartition,
    FMConfig,
    cut_size,
    flat_fm_multistart,
    multilevel_multistart,
    relative_bipartition_balance,
    run_multistart,
)


class TestRunMultistart:
    def _runner(self, graph):
        def run_one(seed):
            parts = [(seed >> v) & 1 for v in range(graph.num_vertices)]
            return Bipartition(parts=parts, cut=cut_size(graph, parts))

        return run_one

    def test_counts_and_order(self, chain20):
        result = run_multistart(self._runner(chain20), 5, seed=1)
        assert result.num_starts == 5

    def test_deterministic(self, chain20):
        a = run_multistart(self._runner(chain20), 4, seed=9)
        b = run_multistart(self._runner(chain20), 4, seed=9)
        assert [s.cut for s in a.starts] == [s.cut for s in b.starts]

    def test_best_of_prefix_monotone(self, chain20):
        result = run_multistart(self._runner(chain20), 8, seed=2)
        cuts = [result.best_of_first(n).cut for n in range(1, 9)]
        assert cuts == sorted(cuts, reverse=True) or all(
            cuts[i] >= cuts[i + 1] for i in range(len(cuts) - 1)
        )

    def test_best_is_minimum(self, chain20):
        result = run_multistart(self._runner(chain20), 6, seed=3)
        assert result.best().cut == min(s.cut for s in result.starts)

    def test_prefix_bounds(self, chain20):
        result = run_multistart(self._runner(chain20), 3, seed=4)
        with pytest.raises(ValueError):
            result.best_of_first(0)
        with pytest.raises(ValueError):
            result.best_of_first(4)
        with pytest.raises(ValueError):
            result.seconds_of_first(9)

    def test_times_accumulate(self, chain20):
        result = run_multistart(self._runner(chain20), 4, seed=5)
        assert result.total_seconds() == pytest.approx(
            result.seconds_of_first(4)
        )
        assert result.seconds_of_first(2) <= result.total_seconds()

    def test_zero_starts_rejected(self, chain20):
        with pytest.raises(ValueError):
            run_multistart(self._runner(chain20), 0)


class TestEngineMultistarts:
    def test_multilevel_multistart(self, tiny_circuit, tiny_balance):
        result = multilevel_multistart(
            tiny_circuit.graph, tiny_balance, num_starts=3, seed=1
        )
        assert result.num_starts == 3
        best = result.best()
        assert cut_size(tiny_circuit.graph, best.parts) == best.cut

    def test_flat_fm_multistart(self, tiny_circuit, tiny_balance):
        result = flat_fm_multistart(
            tiny_circuit.graph,
            tiny_balance,
            config=FMConfig(policy="clip"),
            num_starts=3,
            seed=1,
        )
        assert result.num_starts == 3
        assert result.best().cut <= max(s.cut for s in result.starts)

    def test_multistart_improves_over_single(self):
        g = chain_hypergraph(60)
        balance = relative_bipartition_balance(g.total_area, 0.05)
        result = flat_fm_multistart(g, balance, num_starts=8, seed=3)
        assert result.best().cut <= result.starts[0].cut
