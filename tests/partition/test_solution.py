"""Unit tests for solution representation and cut evaluation."""

import pytest

from repro.hypergraph import Hypergraph
from repro.partition import (
    FREE,
    Bipartition,
    apply_fixture,
    block_loads,
    count_fixed,
    cut_nets,
    cut_size,
    free_fixture,
    hamming_distance,
    movable_vertices,
    pins_per_block,
    respect_fixture,
    symmetric_distance,
    validate_fixture,
)
from repro.partition.solution import block_resource_loads


class TestCutSize:
    def test_uncut(self, triangle):
        assert cut_size(triangle, [0, 0, 0]) == 0

    def test_fully_cut(self, triangle):
        assert cut_size(triangle, [0, 1, 0]) == 2

    def test_weighted(self, weighted_hypergraph):
        # nets: {0,1}w1 {1,2}w2 {2,3}w1 {3,0}w3 {0,2}w2
        parts = [0, 0, 1, 1]
        assert cut_size(weighted_hypergraph, parts) == 2 + 3 + 2

    def test_multiway(self):
        g = Hypergraph([[0, 1, 2], [0, 1]], num_vertices=3)
        assert cut_size(g, [0, 1, 2]) == 2
        assert cut_size(g, [0, 0, 1]) == 1

    def test_empty_net_not_cut(self):
        g = Hypergraph([[], [0, 1]], num_vertices=2)
        assert cut_size(g, [0, 1]) == 1

    def test_cut_nets_ids(self, small_hypergraph):
        parts = [0, 0, 1, 1, 1, 0]
        # cut nets: {1,2,3} (0/1), {4,5} (1/0), {0,5}? both 0 -> no.
        assert cut_nets(small_hypergraph, parts) == [1, 3]


class TestLoads:
    def test_block_loads(self, weighted_hypergraph):
        loads = block_loads(weighted_hypergraph, [0, 1, 0, 1], 2)
        assert loads == [4.0, 4.0]

    def test_resource_loads(self):
        g = Hypergraph(
            [[0, 1]],
            num_vertices=2,
            areas=[1, 2],
            extra_resources=[[10.0, 20.0]],
        )
        assert block_resource_loads(g, [0, 1], 2, 1) == [10.0, 20.0]

    def test_pins_per_block(self, small_hypergraph):
        assert pins_per_block(small_hypergraph, 1, [0, 0, 1, 1, 0, 0], 2) == [
            1,
            2,
        ]


class TestBipartition:
    def test_copy_is_deep(self, triangle):
        a = Bipartition(parts=[0, 1, 0], cut=2)
        b = a.copy()
        b.parts[0] = 1
        assert a.parts[0] == 0

    def test_verify_cut(self, triangle):
        good = Bipartition(parts=[0, 1, 0], cut=2)
        bad = Bipartition(parts=[0, 1, 0], cut=1)
        assert good.verify_cut(triangle)
        assert not bad.verify_cut(triangle)


class TestFixture:
    def test_free_fixture(self):
        f = free_fixture(4)
        assert f == [FREE] * 4
        assert count_fixed(f) == 0
        assert movable_vertices(f) == [0, 1, 2, 3]

    def test_respect(self):
        assert respect_fixture([0, 1, 1], [FREE, 1, FREE])
        assert not respect_fixture([0, 0, 1], [FREE, 1, FREE])

    def test_apply(self):
        parts = [0, 0, 0]
        apply_fixture(parts, [FREE, 1, FREE])
        assert parts == [0, 1, 0]

    def test_validate_ok(self):
        validate_fixture([FREE, 0, 1], 3, 2)

    def test_validate_bad_length(self):
        with pytest.raises(ValueError):
            validate_fixture([FREE], 3, 2)

    def test_validate_bad_block(self):
        with pytest.raises(ValueError):
            validate_fixture([2], 1, 2)
        with pytest.raises(ValueError):
            validate_fixture([-3], 1, 2)

    def test_count_and_movable(self):
        f = [0, FREE, 1, FREE]
        assert count_fixed(f) == 2
        assert movable_vertices(f) == [1, 3]


class TestDistances:
    def test_hamming(self):
        assert hamming_distance([0, 1, 0], [0, 0, 0]) == 1

    def test_hamming_length_mismatch(self):
        with pytest.raises(ValueError):
            hamming_distance([0], [0, 1])

    def test_symmetric(self):
        # Complement of [0,1,0] is [1,0,1]: distance 0 up to relabeling.
        assert symmetric_distance([0, 1, 0], [1, 0, 1]) == 0
        assert symmetric_distance([0, 1, 0], [0, 1, 0]) == 0
        assert symmetric_distance([0, 0, 0, 1], [0, 0, 1, 1]) == 1
