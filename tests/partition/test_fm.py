"""Unit tests for the flat FM engine.

The heart of the library: correctness of gains, cut bookkeeping,
fixture handling, rollback, pass records and the cutoff knob.
"""

import itertools
import random

import pytest

from repro.hypergraph import (
    Hypergraph,
    chain_hypergraph,
    generate_circuit,
    grid_hypergraph,
    CircuitSpec,
)
from repro.partition import (
    FREE,
    BalanceConstraint,
    FMBipartitioner,
    FMConfig,
    cut_size,
    random_balanced_bipartition,
    relative_bipartition_balance,
    respect_fixture,
)


def brute_force_best_cut(graph, balance, fixture=None):
    """Exhaustive optimum over feasible, fixture-respecting solutions."""
    n = graph.num_vertices
    if fixture is None:
        fixture = [FREE] * n
    best = None
    free = [v for v in range(n) if fixture[v] == FREE]
    base = [f if f != FREE else 0 for f in fixture]
    for bits in itertools.product((0, 1), repeat=len(free)):
        parts = list(base)
        for v, b in zip(free, bits):
            parts[v] = b
        loads = [0.0, 0.0]
        for v in range(n):
            loads[parts[v]] += graph.area(v)
        if not balance.is_feasible(loads):
            continue
        c = cut_size(graph, parts)
        if best is None or c < best:
            best = c
    return best


class TestOptimalityOnSmallInstances:
    @pytest.mark.parametrize("policy", ["lifo", "fifo", "clip"])
    def test_chain_reaches_optimum(self, policy):
        g = chain_hypergraph(16)
        balance = relative_bipartition_balance(g.total_area, 0.1)
        engine = FMBipartitioner(g, balance, config=FMConfig(policy=policy))
        best = min(
            engine.run(
                random_balanced_bipartition(
                    g, balance, rng=random.Random(s)
                )
            ).solution.cut
            for s in range(5)
        )
        assert best == 1

    def test_matches_brute_force_free(self, rng):
        g = Hypergraph(
            [[0, 1], [1, 2, 3], [3, 4], [4, 5], [0, 5], [2, 5]],
            num_vertices=6,
            net_weights=[1, 2, 1, 1, 3, 1],
        )
        balance = relative_bipartition_balance(g.total_area, 0.34)
        optimum = brute_force_best_cut(g, balance)
        engine = FMBipartitioner(g, balance)
        best = min(
            engine.run(
                random_balanced_bipartition(g, balance, rng=rng)
            ).solution.cut
            for _ in range(10)
        )
        assert best == optimum

    def test_matches_brute_force_with_fixture(self, rng):
        g = Hypergraph(
            [[0, 1], [1, 2], [2, 3], [3, 4], [4, 5], [5, 0], [1, 4]],
            num_vertices=6,
        )
        fixture = [0, FREE, FREE, 1, FREE, FREE]
        balance = relative_bipartition_balance(g.total_area, 0.34)
        optimum = brute_force_best_cut(g, balance, fixture)
        engine = FMBipartitioner(g, balance, fixture=fixture)
        best = min(
            engine.run(
                random_balanced_bipartition(
                    g, balance, fixture=fixture, rng=rng
                )
            ).solution.cut
            for _ in range(10)
        )
        assert best == optimum


class TestInvariants:
    def _engine_and_init(self, seed, fixture=None, config=None):
        circ = generate_circuit(CircuitSpec(num_cells=120), seed=seed)
        g = circ.graph
        balance = relative_bipartition_balance(g.total_area, 0.05)
        engine = FMBipartitioner(g, balance, fixture=fixture, config=config)
        init = random_balanced_bipartition(
            g, balance, fixture=fixture, rng=random.Random(seed)
        )
        return g, balance, engine, init

    @pytest.mark.parametrize("policy", ["lifo", "fifo", "clip"])
    def test_reported_cut_is_exact(self, policy):
        g, _, engine, init = self._engine_and_init(
            3, config=FMConfig(policy=policy)
        )
        result = engine.run(init)
        assert result.solution.verify_cut(g)

    def test_never_worse_than_initial(self):
        g, balance, engine, init = self._engine_and_init(4)
        result = engine.run(init)
        assert result.solution.cut <= result.initial_cut

    def test_final_solution_feasible(self):
        g, balance, engine, init = self._engine_and_init(5)
        result = engine.run(init)
        loads = [0.0, 0.0]
        for v in range(g.num_vertices):
            loads[result.solution.parts[v]] += g.area(v)
        assert balance.is_feasible(loads)

    def test_fixture_respected(self):
        circ = generate_circuit(CircuitSpec(num_cells=120), seed=6)
        g = circ.graph
        fixture = [FREE] * g.num_vertices
        rng = random.Random(0)
        for v in rng.sample(range(g.num_vertices), 30):
            fixture[v] = rng.randrange(2)
        balance = relative_bipartition_balance(g.total_area, 0.05)
        engine = FMBipartitioner(g, balance, fixture=fixture)
        init = random_balanced_bipartition(
            g, balance, fixture=fixture, rng=rng
        )
        result = engine.run(init)
        assert respect_fixture(result.solution.parts, fixture)

    def test_fixture_forced_even_if_initial_disagrees(self):
        g = chain_hypergraph(6)
        fixture = [0, FREE, FREE, FREE, FREE, 1]
        balance = relative_bipartition_balance(g.total_area, 0.5)
        engine = FMBipartitioner(g, balance, fixture=fixture)
        # Initial assignment contradicts the fixture on both ends.
        result = engine.run([1, 1, 1, 0, 0, 0])
        assert result.solution.parts[0] == 0
        assert result.solution.parts[5] == 1

    def test_all_fixed_returns_immediately(self):
        g = chain_hypergraph(4)
        fixture = [0, 0, 1, 1]
        balance = BalanceConstraint(min_loads=[0, 0], max_loads=[4, 4])
        engine = FMBipartitioner(g, balance, fixture=fixture)
        result = engine.run([0, 0, 1, 1])
        assert result.num_passes == 0
        assert result.solution.cut == 1

    def test_pass_records_consistent(self):
        g, _, engine, init = self._engine_and_init(7)
        result = engine.run(init)
        assert result.num_passes >= 1
        for record in result.passes:
            assert 0 <= record.best_prefix <= record.moves_made
            assert record.moves_made <= record.movable
            assert record.cut_after <= record.cut_before
            assert record.wasted_moves == (
                record.moves_made - record.best_prefix
            )
        # Last pass is the non-improving one.
        assert result.passes[-1].cut_after == result.passes[-1].cut_before

    def test_first_pass_moves_everything_when_unconstrained(self):
        g = chain_hypergraph(10)
        balance = BalanceConstraint(min_loads=[0, 0], max_loads=[10, 10])
        engine = FMBipartitioner(g, balance)
        result = engine.run([v % 2 for v in range(10)])
        assert result.passes[0].moves_made == 10

    def test_balance_repair_from_infeasible_start(self):
        g = chain_hypergraph(10)
        balance = relative_bipartition_balance(g.total_area, 0.2)
        engine = FMBipartitioner(g, balance)
        result = engine.run([0] * 10)  # everything on one side
        loads = [0.0, 0.0]
        for v in range(10):
            loads[result.solution.parts[v]] += 1.0
        assert balance.is_feasible(loads)
        assert result.solution.cut == 1


class TestTermination:
    def test_no_imbalance_only_pass_chains(self):
        """Regression: passes must not chain on epsilon imbalance gains.

        This configuration (120-cell circuit, loose placer-style
        tolerance) previously looped for millions of passes improving
        only the load imbalance while the cut was stuck.
        """
        circ = generate_circuit(CircuitSpec(num_cells=120), seed=42)
        g = circ.graph
        balance = relative_bipartition_balance(g.total_area, 0.1)
        engine = FMBipartitioner(g, balance)
        init = random_balanced_bipartition(
            g, balance, rng=random.Random(3)
        )
        result = engine.run(init)
        assert result.num_passes < 50
        # Consecutive improving passes must improve cut or feasibility.
        for a, b in zip(result.passes, result.passes[1:]):
            assert b.cut_before == a.cut_after
            if b is not result.passes[-1]:
                assert b.cut_after < b.cut_before or not a.feasible_after


class TestPassCutoff:
    def test_cutoff_limits_moves_after_first_pass(self):
        circ = generate_circuit(CircuitSpec(num_cells=200), seed=9)
        g = circ.graph
        balance = relative_bipartition_balance(g.total_area, 0.05)
        config = FMConfig(pass_move_limit_fraction=0.1)
        engine = FMBipartitioner(g, balance, config=config)
        init = random_balanced_bipartition(
            g, balance, rng=random.Random(1)
        )
        result = engine.run(init)
        movable = g.num_vertices
        limit = max(1, int(0.1 * movable))
        assert result.passes[0].moves_made > limit  # first pass uncut
        for record in result.passes[1:]:
            assert record.moves_made <= limit

    def test_cutoff_reduces_total_moves(self):
        circ = generate_circuit(CircuitSpec(num_cells=200), seed=10)
        g = circ.graph
        balance = relative_bipartition_balance(g.total_area, 0.05)
        init = random_balanced_bipartition(
            g, balance, rng=random.Random(2)
        )
        full = FMBipartitioner(g, balance).run(list(init))
        cut = FMBipartitioner(
            g, balance, config=FMConfig(pass_move_limit_fraction=0.05)
        ).run(list(init))
        assert cut.total_moves < full.total_moves

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            FMConfig(pass_move_limit_fraction=0.0)
        with pytest.raises(ValueError):
            FMConfig(pass_move_limit_fraction=1.5)


class TestConfigValidation:
    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            FMConfig(policy="dfs")

    def test_zero_max_passes(self):
        with pytest.raises(ValueError):
            FMConfig(max_passes=0)

    def test_max_passes_respected(self):
        g = grid_hypergraph(4, 4)
        balance = relative_bipartition_balance(g.total_area, 0.25)
        engine = FMBipartitioner(
            g, balance, config=FMConfig(max_passes=1)
        )
        result = engine.run([v % 2 for v in range(16)])
        assert result.num_passes == 1

    def test_kway_balance_rejected(self):
        g = chain_hypergraph(4)
        bad = BalanceConstraint(min_loads=[0, 0, 0], max_loads=[4, 4, 4])
        with pytest.raises(ValueError):
            FMBipartitioner(g, bad)

    def test_bad_initial_length(self):
        g = chain_hypergraph(4)
        balance = relative_bipartition_balance(4.0, 0.5)
        engine = FMBipartitioner(g, balance)
        with pytest.raises(ValueError):
            engine.run([0, 1])

    def test_bad_initial_side(self):
        g = chain_hypergraph(4)
        balance = relative_bipartition_balance(4.0, 0.5)
        engine = FMBipartitioner(g, balance)
        with pytest.raises(ValueError):
            engine.run([0, 1, 2, 0])


class TestGainCorrectness:
    def test_first_move_is_best_gain(self):
        # Star: center 0 connected to 1..4; 0 alone on side 0.
        g = Hypergraph(
            [[0, 1], [0, 2], [0, 3], [0, 4]], num_vertices=5
        )
        balance = BalanceConstraint(min_loads=[0, 0], max_loads=[5, 5])
        engine = FMBipartitioner(g, balance, config=FMConfig(max_passes=1))
        result = engine.run([0, 1, 1, 1, 1])
        # Moving 0 to side 1 removes all 4 cut nets.
        assert result.solution.cut == 0
        assert result.passes[0].best_prefix == 1

    def test_weighted_gains(self):
        # Net weights make moving vertex 1 the best first move.
        g = Hypergraph(
            [[0, 1], [1, 2], [2, 3]],
            num_vertices=4,
            net_weights=[5, 5, 1],
        )
        balance = BalanceConstraint(min_loads=[0, 0], max_loads=[4, 4])
        engine = FMBipartitioner(g, balance)
        result = engine.run([0, 1, 0, 1])
        # Optimal: {0,1} vs {2,3} or {0,1,2} vs {3} etc -> cut 1 or less.
        assert result.solution.cut <= 1
