"""Differential tests: flat-array FM kernels vs. the retained reference.

The kernel engines (:mod:`repro.partition.fm`, :mod:`repro.partition.kwayfm`)
promise *bit-identical* behaviour to the reference implementations in
:mod:`repro.partition.fm_reference`: same pre-rollback move sequences,
same pass records, same final cuts and parts, for every policy and any
fixture.  These tests drive both sides over random instances and compare
the full fingerprints.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypergraph import Hypergraph
from repro.partition import (
    FREE,
    FMBipartitioner,
    FMConfig,
    KWayFMConfig,
    KWayFMRefiner,
    ReferenceFMBipartitioner,
    ReferenceKWayFMRefiner,
    cut_size,
    relative_balance,
    relative_bipartition_balance,
)

FIXED_FRACTIONS = (0.0, 0.2, 0.5)


def _fm_fingerprint(result):
    """Everything result-bearing in an FMResult."""
    return (
        result.initial_cut,
        result.solution.cut,
        tuple(result.solution.parts),
        tuple(result.passes),
        tuple(tuple(log) for log in result.move_logs),
    )


def _kway_fingerprint(result):
    return (
        result.initial_cut,
        result.cut,
        tuple(result.parts),
        result.num_passes,
        result.total_moves,
        tuple(result.pass_moves),
        tuple(tuple(log) for log in result.move_logs),
    )


@st.composite
def kernel_instances(draw):
    """Random (graph, seed) pairs; areas include non-integer values so
    the restore paths exercise exact float load arithmetic."""
    n = draw(st.integers(min_value=2, max_value=16))
    num_nets = draw(st.integers(min_value=1, max_value=28))
    nets = []
    for _ in range(num_nets):
        size = draw(st.integers(min_value=2, max_value=min(6, n)))
        pins = draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=size,
                max_size=size,
                unique=True,
            )
        )
        nets.append(pins)
    weights = draw(
        st.lists(
            st.integers(min_value=0, max_value=5),
            min_size=num_nets,
            max_size=num_nets,
        )
    )
    areas = draw(
        st.lists(
            st.sampled_from([0.0, 0.5, 1.0, 1.5, 2.0, 3.0]),
            min_size=n,
            max_size=n,
        )
    )
    if sum(areas) == 0:
        areas[0] = 1.0
    seed = draw(st.integers(min_value=0, max_value=2**31))
    graph = Hypergraph(
        nets, num_vertices=n, areas=areas, net_weights=weights
    )
    return graph, seed


def _random_fixture(graph, fraction, num_parts, rng):
    fixture = [FREE] * graph.num_vertices
    if fraction > 0.0:
        for v in range(graph.num_vertices):
            if rng.random() < fraction:
                fixture[v] = rng.randrange(num_parts)
    # Keep at least one movable vertex so a pass has work to do.
    if all(f != FREE for f in fixture):
        fixture[0] = FREE
    return fixture


@pytest.mark.parametrize("policy", ["lifo", "fifo", "clip"])
@pytest.mark.parametrize("fraction", FIXED_FRACTIONS)
@given(instance=kernel_instances())
@settings(max_examples=25, deadline=None)
def test_fm_kernel_matches_reference(policy, fraction, instance):
    """Kernel and reference produce identical move logs, pass records
    and final cuts for every policy and fixed fraction."""
    graph, seed = instance
    rng = random.Random(seed)
    fixture = _random_fixture(graph, fraction, 2, rng)
    balance = relative_bipartition_balance(
        graph.total_area, rng.choice([0.1, 0.3, 0.8])
    )
    config = FMConfig(
        policy=policy,
        pass_move_limit_fraction=rng.choice([1.0, 0.5]),
        record_moves=True,
    )
    parts = [rng.randint(0, 1) for _ in range(graph.num_vertices)]

    reference = ReferenceFMBipartitioner(
        graph, balance, fixture=fixture, config=config
    )
    kernel = FMBipartitioner(
        graph, balance, fixture=fixture, config=config
    )
    assert _fm_fingerprint(reference.run(list(parts))) == _fm_fingerprint(
        kernel.run(list(parts))
    )


@given(instance=kernel_instances())
@settings(max_examples=30, deadline=None)
def test_fm_kernel_engine_reuse_and_initial_cut(instance):
    """A single kernel engine re-run over many starts (with and without
    an explicit ``initial_cut``) matches a fresh reference every time --
    the persistent buffers carry no state across runs."""
    graph, seed = instance
    rng = random.Random(seed)
    policy = rng.choice(["lifo", "fifo", "clip"])
    balance = relative_bipartition_balance(graph.total_area, 0.3)
    config = FMConfig(policy=policy, record_moves=True)
    kernel = FMBipartitioner(graph, balance, config=config)
    reference = ReferenceFMBipartitioner(graph, balance, config=config)
    for trial in range(4):
        parts = [rng.randint(0, 1) for _ in range(graph.num_vertices)]
        initial_cut = cut_size(graph, parts) if trial % 2 else None
        assert _fm_fingerprint(
            reference.run(list(parts))
        ) == _fm_fingerprint(
            kernel.run(list(parts), initial_cut=initial_cut)
        )


@pytest.mark.parametrize("fraction", FIXED_FRACTIONS)
@given(instance=kernel_instances())
@settings(max_examples=20, deadline=None)
def test_kway_kernel_matches_reference(fraction, instance):
    """The k-way kernel matches its reference over random instances,
    block counts and fixtures."""
    graph, seed = instance
    rng = random.Random(seed)
    k = rng.choice([2, 3, 4])
    fixture = _random_fixture(graph, fraction, k, rng)
    balance = relative_balance(
        graph.total_area, k, rng.choice([0.2, 0.5])
    )
    config = KWayFMConfig(
        pass_move_limit_fraction=rng.choice([1.0, 0.5]),
        record_moves=True,
    )
    parts = [rng.randrange(k) for _ in range(graph.num_vertices)]
    pass_seed = rng.getrandbits(32)

    reference = ReferenceKWayFMRefiner(
        graph, balance, fixture=fixture, config=config
    )
    kernel = KWayFMRefiner(
        graph, balance, fixture=fixture, config=config
    )
    assert _kway_fingerprint(
        reference.run(list(parts), seed=pass_seed)
    ) == _kway_fingerprint(kernel.run(list(parts), seed=pass_seed))
