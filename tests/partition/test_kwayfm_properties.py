"""Property-based tests for the direct k-way FM engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypergraph import Hypergraph
from repro.partition import (
    FREE,
    cut_size,
    relative_balance,
)
from repro.partition.kwayfm import KWayFMRefiner, kway_fm_partition


@st.composite
def kway_instances(draw):
    n = draw(st.integers(min_value=3, max_value=12))
    k = draw(st.integers(min_value=2, max_value=min(4, n)))
    num_nets = draw(st.integers(min_value=1, max_value=18))
    nets = []
    for _ in range(num_nets):
        size = draw(st.integers(min_value=2, max_value=min(4, n)))
        nets.append(
            draw(
                st.lists(
                    st.integers(min_value=0, max_value=n - 1),
                    min_size=size,
                    max_size=size,
                    unique=True,
                )
            )
        )
    weights = draw(
        st.lists(
            st.integers(min_value=1, max_value=4),
            min_size=num_nets,
            max_size=num_nets,
        )
    )
    fixture = draw(
        st.lists(
            st.integers(min_value=-1, max_value=k - 1),
            min_size=n,
            max_size=n,
        )
    )
    if all(f != FREE for f in fixture):
        fixture[0] = FREE
    seed = draw(st.integers(min_value=0, max_value=2**31))
    graph = Hypergraph(nets, num_vertices=n, net_weights=weights)
    return graph, k, fixture, seed


@given(kway_instances())
@settings(max_examples=100, deadline=None)
def test_kway_fm_invariants(instance):
    """Exact cut, fixture respect, monotone improvement, valid blocks."""
    graph, k, fixture, seed = instance
    balance = relative_balance(graph.total_area, k, 0.9)
    result = kway_fm_partition(
        graph, balance, fixture=fixture, seed=seed
    )
    # 1. Reported cut is the true cut-nets value.
    assert result.cut == cut_size(graph, result.parts)
    # 2. Never worse than the constructed start.
    assert result.cut <= result.initial_cut
    # 3. Fixed vertices stayed in their blocks.
    for v, f in enumerate(fixture):
        if f != FREE:
            assert result.parts[v] == f
    # 4. Blocks are in range.
    assert all(0 <= p < k for p in result.parts)


@given(kway_instances())
@settings(max_examples=60, deadline=None)
def test_kway_refiner_idempotent(instance):
    """Re-refining the engine's own output cannot worsen it."""
    graph, k, fixture, seed = instance
    balance = relative_balance(graph.total_area, k, 0.9)
    refiner = KWayFMRefiner(graph, balance, fixture=fixture)
    first = kway_fm_partition(graph, balance, fixture=fixture, seed=seed)
    second = refiner.run(list(first.parts), seed=seed)
    assert second.cut <= first.cut


@given(kway_instances())
@settings(max_examples=60, deadline=None)
def test_kway_two_blocks_matches_bipartition_semantics(instance):
    """With k=2 the cut-nets objective equals the 2-way cut."""
    graph, _, fixture, seed = instance
    fixture2 = [f if f in (FREE, 0, 1) else FREE for f in fixture]
    balance = relative_balance(graph.total_area, 2, 0.9)
    result = kway_fm_partition(
        graph, balance, fixture=fixture2, seed=seed
    )
    assert result.cut == cut_size(graph, result.parts)
    assert set(result.parts) <= {0, 1}
