"""Differential tests: flat-array coarsening kernels vs. the reference.

The kernel matchers (:mod:`repro.partition.matching`) and contraction
(:mod:`repro.hypergraph.contraction`) promise *bit-identical* behaviour
to the retained references in :mod:`repro.partition.matching_reference`
and :mod:`repro.hypergraph.contraction_reference`: the same cluster
labels for every seed, fixture, area cap and net-size cutoff (same rng
consumption, same float score accumulation order, same tie-breaks), and
the same coarse hypergraph down to the CSR buffers (same net order,
sorted pin lists, summed weights and float areas).  These tests drive
both sides over random instances -- including repeated rounds on one
graph, which flips the matchers from their direct first-round path onto
the graph-cached adjacency path -- and compare full fingerprints.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypergraph import Hypergraph, contract, reference_contract
from repro.partition import (
    FREE,
    coarsen,
    heavy_edge_matching,
    random_matching,
    reference_coarsen,
    reference_heavy_edge_matching,
    reference_random_matching,
)

FIXED_FRACTIONS = (0.0, 0.2, 0.5)

MATCHERS = {
    "heavy": (heavy_edge_matching, reference_heavy_edge_matching),
    "random": (random_matching, reference_random_matching),
}


def _graph_fingerprint(graph):
    """Every buffer of a Hypergraph, down to the CSR arrays."""
    return (
        graph.num_vertices,
        graph.num_nets,
        list(graph._net_ptr),
        list(graph._net_pins),
        list(graph._vtx_ptr),
        list(graph._vtx_nets),
        list(graph._net_weights),
        list(graph._areas),
    )


@st.composite
def coarsening_instances(draw):
    """Random (graph, seed) pairs; areas include non-integer values so
    the area-cap filters exercise exact float arithmetic."""
    n = draw(st.integers(min_value=2, max_value=16))
    num_nets = draw(st.integers(min_value=1, max_value=28))
    nets = []
    for _ in range(num_nets):
        size = draw(st.integers(min_value=2, max_value=min(6, n)))
        pins = draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=size,
                max_size=size,
                unique=True,
            )
        )
        nets.append(pins)
    weights = draw(
        st.lists(
            st.integers(min_value=0, max_value=5),
            min_size=num_nets,
            max_size=num_nets,
        )
    )
    areas = draw(
        st.lists(
            st.sampled_from([0.0, 0.5, 1.0, 1.5, 2.0, 3.0]),
            min_size=n,
            max_size=n,
        )
    )
    if sum(areas) == 0:
        areas[0] = 1.0
    seed = draw(st.integers(min_value=0, max_value=2**31))
    graph = Hypergraph(
        nets, num_vertices=n, areas=areas, net_weights=weights
    )
    return graph, seed


def _random_fixture(graph, fraction, rng):
    fixture = [FREE] * graph.num_vertices
    if fraction > 0.0:
        for v in range(graph.num_vertices):
            if rng.random() < fraction:
                fixture[v] = rng.randrange(2)
    return fixture


@pytest.mark.parametrize("scheme", sorted(MATCHERS))
@pytest.mark.parametrize("fraction", FIXED_FRACTIONS)
@given(instance=coarsening_instances())
@settings(max_examples=25, deadline=None)
def test_matching_matches_reference(scheme, fraction, instance):
    """Kernel and reference matchers produce identical labels for every
    scheme, fixed fraction, area cap and net-size cutoff -- across
    repeated rounds, which cover both the direct first-round path and
    the cached-adjacency path."""
    graph, seed = instance
    kernel, reference = MATCHERS[scheme]
    rng = random.Random(seed)
    fixture = _random_fixture(graph, fraction, rng)
    cap = rng.choice([None, 0.5 * graph.total_area, 2.0])
    kwargs = {"fixture": fixture, "max_cluster_area": cap}
    if scheme == "heavy":
        kwargs["max_net_size"] = rng.choice([2, 3, 64])
    for round_seed in (seed, seed + 1, seed + 2):
        got = kernel(
            graph, rng=random.Random(round_seed), num_parts=2, **kwargs
        )
        want = reference(graph, rng=random.Random(round_seed), **kwargs)
        assert got == want


@pytest.mark.parametrize("scheme", sorted(MATCHERS))
@given(instance=coarsening_instances())
@settings(max_examples=25, deadline=None)
def test_guard_restricted_matching_matches_reference(scheme, instance):
    """V-cycle-style matching, where an existing partition is handed to
    the matcher as a pseudo-fixture with no free vertices, stays
    bit-identical (every merge must be within one block)."""
    graph, seed = instance
    kernel, reference = MATCHERS[scheme]
    rng = random.Random(seed)
    guard = [rng.randint(0, 1) for _ in range(graph.num_vertices)]
    got = kernel(graph, fixture=guard, rng=random.Random(seed), num_parts=2)
    want = reference(graph, fixture=guard, rng=random.Random(seed))
    assert got == want
    by_label = {}
    for v, lab in enumerate(got):
        by_label.setdefault(lab, set()).add(guard[v])
    assert all(len(blocks) == 1 for blocks in by_label.values())


@pytest.mark.parametrize("fraction", FIXED_FRACTIONS)
@given(instance=coarsening_instances())
@settings(max_examples=25, deadline=None)
def test_contraction_matches_reference(fraction, instance):
    """The buffer-built coarse graph is bit-identical to the reference's
    constructor-built one, for matcher-produced labels."""
    graph, seed = instance
    rng = random.Random(seed)
    fixture = _random_fixture(graph, fraction, rng)
    labels = heavy_edge_matching(
        graph, fixture=fixture, rng=random.Random(seed), num_parts=2
    )
    got = coarsen(graph, fixture, labels)
    want = reference_coarsen(graph, fixture, labels)
    assert _graph_fingerprint(got.coarse) == _graph_fingerprint(want.coarse)
    assert got.fixture == want.fixture
    assert (
        got.contraction.fine_to_coarse == want.contraction.fine_to_coarse
    )
    assert got.contraction.coarse_to_fine == want.contraction.coarse_to_fine


@pytest.mark.parametrize("scheme", sorted(MATCHERS))
@pytest.mark.parametrize("fraction", FIXED_FRACTIONS)
@given(instance=coarsening_instances())
@settings(max_examples=10, deadline=None)
def test_hierarchy_matches_reference(scheme, fraction, instance):
    """Whole coarsening hierarchies -- match, contract, propagate the
    fixture, repeat to a floor -- are level-by-level bit-identical."""
    graph, seed = instance
    kernel, reference = MATCHERS[scheme]
    rng = random.Random(seed)
    fixture = _random_fixture(graph, fraction, rng)
    cap = 0.5 * graph.total_area

    def build(matcher, contractor, top):
        levels = []
        g, fx = top, list(fixture)
        hierarchy_rng = random.Random(seed)
        for _ in range(6):
            if g.num_vertices <= 2:
                break
            labels = matcher(g, fx, hierarchy_rng)
            if max(labels) + 1 >= g.num_vertices:
                break
            level = contractor(g, fx, labels)
            levels.append(level)
            g, fx = level.coarse, level.fixture
        return levels

    got = build(
        lambda g, fx, r: kernel(
            g, fixture=fx, rng=r, max_cluster_area=cap, num_parts=2
        ),
        coarsen,
        graph,
    )
    want = build(
        lambda g, fx, r: reference(
            g, fixture=fx, rng=r, max_cluster_area=cap
        ),
        reference_coarsen,
        graph,
    )
    assert len(got) == len(want)
    for level_got, level_want in zip(got, want):
        assert _graph_fingerprint(level_got.coarse) == _graph_fingerprint(
            level_want.coarse
        )
        assert level_got.fixture == level_want.fixture
        assert (
            level_got.contraction.fine_to_coarse
            == level_want.contraction.fine_to_coarse
        )


@given(instance=coarsening_instances())
@settings(max_examples=25, deadline=None)
def test_contraction_random_labels_match_reference(instance):
    """Arbitrary (non-matching) contiguous cluster vectors contract
    identically -- covers nets collapsing to any size, parallel-net
    merging, and nets vanishing inside one cluster."""
    graph, seed = instance
    rng = random.Random(seed)
    n = graph.num_vertices
    k = rng.randint(1, n)
    raw = [rng.randrange(k) for _ in range(n)]
    used = sorted(set(raw))
    remap = {c: i for i, c in enumerate(used)}
    labels = [remap[c] for c in raw]
    got = contract(graph, labels)
    want = reference_contract(graph, labels)
    assert _graph_fingerprint(got.coarse) == _graph_fingerprint(want.coarse)
    assert got.fine_to_coarse == want.fine_to_coarse
