"""Property-based tests for the FM engine."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypergraph import Hypergraph
from repro.partition import (
    FREE,
    FMBipartitioner,
    FMConfig,
    block_loads,
    cut_size,
    random_balanced_bipartition,
    relative_bipartition_balance,
    respect_fixture,
)


@st.composite
def fm_instances(draw):
    """Small random (graph, fixture) instances for FM."""
    n = draw(st.integers(min_value=2, max_value=14))
    num_nets = draw(st.integers(min_value=1, max_value=24))
    nets = []
    for _ in range(num_nets):
        size = draw(st.integers(min_value=2, max_value=min(4, n)))
        pins = draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=size,
                max_size=size,
                unique=True,
            )
        )
        nets.append(pins)
    weights = draw(
        st.lists(
            st.integers(min_value=1, max_value=5),
            min_size=num_nets,
            max_size=num_nets,
        )
    )
    areas = draw(
        st.lists(
            st.sampled_from([0.0, 1.0, 2.0, 3.0]),
            min_size=n,
            max_size=n,
        )
    )
    if sum(areas) == 0:
        areas[0] = 1.0
    fixture = draw(
        st.lists(
            st.sampled_from([FREE, FREE, FREE, 0, 1]),
            min_size=n,
            max_size=n,
        )
    )
    if all(f != FREE for f in fixture):
        fixture[0] = FREE
    policy = draw(st.sampled_from(["lifo", "fifo", "clip"]))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    graph = Hypergraph(nets, num_vertices=n, areas=areas, net_weights=weights)
    return graph, fixture, policy, seed


@given(fm_instances())
@settings(max_examples=120, deadline=None)
def test_fm_core_invariants(instance):
    """Cut exactness, fixture respect, monotone improvement, records."""
    graph, fixture, policy, seed = instance
    balance = relative_bipartition_balance(graph.total_area, 0.3)
    engine = FMBipartitioner(
        graph, balance, fixture=fixture, config=FMConfig(policy=policy)
    )
    rng = random.Random(seed)
    init = random_balanced_bipartition(
        graph, balance, fixture=fixture, rng=rng
    )
    result = engine.run(init)

    # 1. The reported cut is the true cut.
    assert result.solution.verify_cut(graph)
    # 2. Fixed vertices stayed put.
    assert respect_fixture(result.solution.parts, fixture)
    # 3. FM never returns worse than its start.
    assert result.solution.cut <= result.initial_cut
    # 4. Pass records are internally consistent and non-increasing.
    cuts = [p.cut_before for p in result.passes] + (
        [result.passes[-1].cut_after] if result.passes else []
    )
    assert cuts == sorted(cuts, reverse=True)
    for p in result.passes:
        assert 0 <= p.best_prefix <= p.moves_made <= p.movable


@given(fm_instances())
@settings(max_examples=60, deadline=None)
def test_fm_feasibility_when_start_feasible(instance):
    """A feasible start never degrades to an infeasible result."""
    graph, fixture, policy, seed = instance
    balance = relative_bipartition_balance(graph.total_area, 0.5)
    engine = FMBipartitioner(
        graph, balance, fixture=fixture, config=FMConfig(policy=policy)
    )
    init = random_balanced_bipartition(
        graph, balance, fixture=fixture, rng=random.Random(seed)
    )
    loads0 = [0.0, 0.0]
    for v in range(graph.num_vertices):
        side = fixture[v] if fixture[v] != FREE else init[v]
        loads0[side] += graph.area(v)
    result = engine.run(init)
    if balance.is_feasible(loads0):
        loads1 = block_loads(graph, result.solution.parts, 2)
        assert balance.is_feasible(loads1)


@given(fm_instances(), st.floats(min_value=0.05, max_value=0.5))
@settings(max_examples=60, deadline=None)
def test_cutoff_never_exceeds_uncut_moves(instance, fraction):
    """Pass cutoffs only remove moves, never add them, and preserve all
    core invariants."""
    graph, fixture, policy, seed = instance
    balance = relative_bipartition_balance(graph.total_area, 0.3)
    init = random_balanced_bipartition(
        graph, balance, fixture=fixture, rng=random.Random(seed)
    )
    full = FMBipartitioner(
        graph, balance, fixture=fixture, config=FMConfig(policy=policy)
    ).run(list(init))
    limited = FMBipartitioner(
        graph,
        balance,
        fixture=fixture,
        config=FMConfig(policy=policy, pass_move_limit_fraction=fraction),
    ).run(list(init))
    assert limited.solution.verify_cut(graph)
    assert limited.solution.cut <= limited.initial_cut
    movable = sum(1 for f in fixture if f == FREE)
    limit = max(1, int(fraction * movable))
    for record in limited.passes[1:]:
        assert record.moves_made <= limit


@given(fm_instances())
@settings(max_examples=40, deadline=None)
def test_fm_idempotent_on_own_output(instance):
    """Re-running FM on its own output cannot improve by more than a
    pass-tie artifact (i.e. result is pass-stable)."""
    graph, fixture, policy, seed = instance
    balance = relative_bipartition_balance(graph.total_area, 0.3)
    engine = FMBipartitioner(
        graph, balance, fixture=fixture, config=FMConfig(policy=policy)
    )
    init = random_balanced_bipartition(
        graph, balance, fixture=fixture, rng=random.Random(seed)
    )
    first = engine.run(init)
    second = engine.run(list(first.solution.parts))
    assert second.solution.cut <= first.solution.cut
