"""Unit and model-based tests for the FM gain bucket."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.partition import GainBucket


class TestBasics:
    def test_empty(self):
        b = GainBucket(4, 3)
        assert len(b) == 0
        assert b.max_key() is None
        assert b.peek_max() is None
        assert b.pop_max() is None

    def test_insert_and_pop(self):
        b = GainBucket(4, 3)
        b.insert(0, 2)
        b.insert(1, -1)
        b.insert(2, 3)
        assert len(b) == 3
        assert b.max_key() == 3
        assert b.pop_max() == 2
        assert b.pop_max() == 0
        assert b.pop_max() == 1
        assert b.pop_max() is None

    def test_lifo_within_bucket(self):
        b = GainBucket(4, 2)
        b.insert(0, 1)
        b.insert(1, 1)
        b.insert(2, 1)
        assert b.pop_max() == 2  # most recently inserted first
        assert b.pop_max() == 1

    def test_fifo_within_bucket(self):
        b = GainBucket(4, 2)
        b.insert(0, 1)
        b.insert(1, 1)
        b.insert(2, 1)
        assert b.pop_max(fifo=True) == 0  # oldest first
        assert b.pop_max(fifo=True) == 1

    def test_contains_and_key(self):
        b = GainBucket(3, 5)
        b.insert(1, -4)
        assert 1 in b
        assert 0 not in b
        assert b.key_of(1) == -4

    def test_remove_middle_of_chain(self):
        b = GainBucket(5, 2)
        for v in range(4):
            b.insert(v, 0)
        b.remove(2)
        assert list(b.iter_bucket(0)) == [3, 1, 0]

    def test_update_moves_bucket(self):
        b = GainBucket(3, 5)
        b.insert(0, 1)
        b.update(0, -2)
        assert b.key_of(0) == -2
        assert b.max_key() == -2

    def test_adjust(self):
        b = GainBucket(3, 5)
        b.insert(0, 1)
        b.adjust(0, 3)
        assert b.key_of(0) == 4

    def test_max_pointer_decays(self):
        b = GainBucket(3, 5)
        b.insert(0, 5)
        b.insert(1, -5)
        b.remove(0)
        assert b.max_key() == -5

    def test_double_insert_rejected(self):
        b = GainBucket(2, 1)
        b.insert(0, 0)
        with pytest.raises(ValueError):
            b.insert(0, 1)

    def test_remove_absent_rejected(self):
        b = GainBucket(2, 1)
        with pytest.raises(ValueError):
            b.remove(0)

    def test_key_out_of_range_rejected(self):
        b = GainBucket(2, 3)
        with pytest.raises(ValueError):
            b.insert(0, 4)
        with pytest.raises(ValueError):
            b.insert(0, -4)

    def test_negative_limit_rejected(self):
        with pytest.raises(ValueError):
            GainBucket(2, -1)

    def test_zero_limit(self):
        b = GainBucket(2, 0)
        b.insert(0, 0)
        assert b.pop_max() == 0

    def test_iter_descending(self):
        b = GainBucket(6, 3)
        b.insert(0, 1)
        b.insert(1, 3)
        b.insert(2, 1)
        b.insert(3, -2)
        assert list(b.iter_descending()) == [1, 2, 0, 3]

    def test_iter_descending_fifo(self):
        b = GainBucket(6, 3)
        b.insert(0, 1)
        b.insert(2, 1)
        assert list(b.iter_descending(fifo=True)) == [0, 2]

    def test_clear(self):
        b = GainBucket(4, 2)
        b.insert(0, 1)
        b.insert(1, 2)
        b.clear()
        assert len(b) == 0
        assert b.max_key() is None
        b.insert(0, -2)
        assert b.pop_max() == 0

    def test_clear_skips_below_lowest_occupied(self):
        """clear() walks down from the max pointer and stops once every
        member is unlinked; buckets below stay untouched but the
        structure must still be fully reusable afterwards."""
        b = GainBucket(8, 50)
        b.insert(0, 40)
        b.insert(1, 40)
        b.insert(2, 37)
        b.clear()
        assert len(b) == 0
        for v, k in ((3, -50), (4, 40), (5, 37), (0, 0)):
            b.insert(v, k)
        assert b.pop_max() == 4
        assert b.pop_max() == 5
        assert b.pop_max() == 0
        assert b.pop_max() == 3
        assert b.pop_max() is None

    def test_reset_reuses_across_passes(self):
        """reset() (the FM per-pass entry point) leaves the bucket
        indistinguishable from a fresh allocation."""
        b = GainBucket(6, 4)
        fresh = GainBucket(6, 4)
        for v in range(6):
            b.insert(v, v - 3)
        b.pop_max()
        b.pop_max()
        b.reset()
        inserts = [(2, 1), (0, 1), (5, -4), (3, 4)]
        for v, k in inserts:
            b.insert(v, k)
            fresh.insert(v, k)
        assert list(b.iter_descending()) == list(fresh.iter_descending())
        assert b.max_key() == fresh.max_key()
        assert len(b) == len(fresh)

    def test_adjust_saturates_at_limit(self):
        """Regression: CLIP-style accumulated adjusts that would leave
        the key range clamp at +/-limit instead of crashing."""
        b = GainBucket(3, 4)
        b.insert(0, 3)
        b.adjust(0, 3)  # would be 6 > limit
        assert b.key_of(0) == 4
        b.adjust(0, 100)
        assert b.key_of(0) == 4
        b.adjust(0, -9)  # would be -5 < -limit
        assert b.key_of(0) == -4
        assert b.max_key() == -4

    def test_adjust_dense_net_drives_keys_past_old_limit(self):
        """A dense weighted net adjusts one vertex once per neighbour
        move; the accumulated CLIP key walks far past the plain
        ``max_gain`` limit (the historical bucket size) and must stay
        within the ``2 * max_gain`` bound without saturating."""
        w = 3
        neighbours = 10
        max_gain = neighbours * w  # one clique-ish net of weight 3
        b = GainBucket(neighbours + 1, 2 * max_gain)
        b.insert(0, 0)  # CLIP inserts everything at key 0
        # First the net loses pins on vertex 0's side (gain rises by w
        # each time), then the direction flips; the extremes are +/-
        # the total incident weight, beyond the old one-sided limit.
        for _ in range(neighbours):
            b.adjust(0, w)
        assert b.key_of(0) == max_gain
        for _ in range(neighbours * 2):
            b.adjust(0, -w)
        assert b.key_of(0) == -max_gain
        assert len(b) == 1


class BucketModel(RuleBasedStateMachine):
    """Compare GainBucket against a dict model."""

    LIMIT = 8
    N = 12

    def __init__(self):
        super().__init__()
        self.bucket = GainBucket(self.N, self.LIMIT)
        self.model = {}

    @rule(v=st.integers(0, N - 1), k=st.integers(-LIMIT, LIMIT))
    def insert(self, v, k):
        if v in self.model:
            with pytest.raises(ValueError):
                self.bucket.insert(v, k)
        else:
            self.bucket.insert(v, k)
            self.model[v] = k

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def remove(self, data):
        v = data.draw(st.sampled_from(sorted(self.model)))
        self.bucket.remove(v)
        del self.model[v]

    @precondition(lambda self: self.model)
    @rule(data=st.data(), k=st.integers(-LIMIT, LIMIT))
    def update(self, data, k):
        v = data.draw(st.sampled_from(sorted(self.model)))
        self.bucket.update(v, k)
        self.model[v] = k

    @precondition(lambda self: self.model)
    @rule()
    def pop(self):
        v = self.bucket.pop_max()
        assert self.model[v] == max(self.model.values())
        del self.model[v]

    @invariant()
    def sizes_match(self):
        assert len(self.bucket) == len(self.model)

    @invariant()
    def max_matches(self):
        expected = max(self.model.values()) if self.model else None
        assert self.bucket.max_key() == expected

    @invariant()
    def keys_match(self):
        for v, k in self.model.items():
            assert v in self.bucket
            assert self.bucket.key_of(v) == k


TestBucketModel = BucketModel.TestCase
TestBucketModel.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)


@given(
    st.lists(
        st.tuples(st.integers(0, 19), st.integers(-6, 6)),
        max_size=20,
    )
)
@settings(max_examples=60, deadline=None)
def test_drain_returns_descending_keys(pairs):
    """Popping everything yields non-increasing keys."""
    b = GainBucket(20, 6)
    seen = set()
    for v, k in pairs:
        if v not in seen:
            b.insert(v, k)
            seen.add(v)
    keys = []
    while len(b):
        keys.append(b.max_key())
        b.pop_max()
    assert keys == sorted(keys, reverse=True)
