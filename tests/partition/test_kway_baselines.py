"""Unit tests for recursive k-way bisection and the baselines."""

import pytest

from repro.hypergraph import CircuitSpec, generate_circuit, grid_hypergraph
from repro.partition import (
    FREE,
    annealing_baseline,
    cut_size,
    greedy_baseline,
    random_baseline,
    recursive_bisection,
    relative_bipartition_balance,
)
from repro.partition.kway import kway_balance_check


class TestRecursiveBisection:
    def test_two_way_matches_bipartition(self, tiny_circuit):
        g = tiny_circuit.graph
        result = recursive_bisection(g, 2, tolerance=0.05, seed=1)
        assert set(result.parts) <= {0, 1}
        assert result.cut == cut_size(g, result.parts)

    def test_four_way_grid(self):
        g = grid_hypergraph(8, 8)
        result = recursive_bisection(g, 4, tolerance=0.1, seed=2)
        assert set(result.parts) == {0, 1, 2, 3}
        assert kway_balance_check(g, result, 0.25)
        # A good quadrisection of an 8x8 grid cuts ~16 mesh edges.
        assert result.cut <= 32

    def test_three_way(self):
        g = grid_hypergraph(6, 9)
        result = recursive_bisection(g, 3, tolerance=0.15, seed=3)
        assert set(result.parts) == {0, 1, 2}
        loads = [0.0, 0.0, 0.0]
        for v in range(g.num_vertices):
            loads[result.parts[v]] += g.area(v)
        assert max(loads) <= 1.5 * min(loads)

    def test_one_way(self, chain20):
        result = recursive_bisection(chain20, 1, seed=0)
        assert set(result.parts) == {0}
        assert result.cut == 0

    def test_fixture_routed_to_blocks(self):
        g = grid_hypergraph(6, 6)
        fixture = [FREE] * 36
        fixture[0] = 0
        fixture[35] = 3
        result = recursive_bisection(
            g, 4, tolerance=0.2, fixture=fixture, seed=4
        )
        assert result.parts[0] == 0
        assert result.parts[35] == 3

    def test_invalid_num_parts(self, chain20):
        with pytest.raises(ValueError):
            recursive_bisection(chain20, 0)

    def test_invalid_fixture_block(self, chain20):
        fixture = [FREE] * 20
        fixture[0] = 5
        with pytest.raises(ValueError):
            recursive_bisection(chain20, 4, fixture=fixture)

    def test_deterministic(self, tiny_circuit):
        a = recursive_bisection(tiny_circuit.graph, 4, seed=7)
        b = recursive_bisection(tiny_circuit.graph, 4, seed=7)
        assert a.parts == b.parts


class TestBaselines:
    def test_random_baseline_feasible(self, tiny_circuit, tiny_balance):
        sol = random_baseline(tiny_circuit.graph, tiny_balance, seed=1)
        assert sol.verify_cut(tiny_circuit.graph)

    def test_greedy_beats_random(self):
        circ = generate_circuit(CircuitSpec(num_cells=400), seed=31)
        g = circ.graph
        balance = relative_bipartition_balance(g.total_area, 0.05)
        rnd = sum(
            random_baseline(g, balance, seed=s).cut for s in range(3)
        )
        grd = sum(
            greedy_baseline(g, balance, seed=s).cut for s in range(3)
        )
        assert grd < rnd

    def test_annealing_beats_random(self):
        circ = generate_circuit(CircuitSpec(num_cells=150), seed=32)
        g = circ.graph
        balance = relative_bipartition_balance(g.total_area, 0.1)
        rnd = random_baseline(g, balance, seed=2).cut
        ann = annealing_baseline(
            g, balance, seed=2, moves_per_temperature=400, cooling=0.8
        )
        assert ann.verify_cut(g)
        assert ann.cut < rnd

    def test_annealing_respects_fixture(self):
        g = grid_hypergraph(5, 5)
        fixture = [FREE] * 25
        fixture[0] = 0
        fixture[24] = 1
        balance = relative_bipartition_balance(g.total_area, 0.2)
        sol = annealing_baseline(
            g, balance, fixture=fixture, seed=3,
            moves_per_temperature=200, cooling=0.7,
        )
        assert sol.parts[0] == 0
        assert sol.parts[24] == 1

    def test_annealing_all_fixed(self):
        g = grid_hypergraph(2, 2)
        fixture = [0, 1, 0, 1]
        balance = relative_bipartition_balance(4.0, 0.3)
        sol = annealing_baseline(g, balance, fixture=fixture, seed=1)
        assert sol.parts == fixture

    def test_fm_beats_annealing_per_unit_effort(self, tiny_circuit, tiny_balance):
        # Not a strict benchmark, just the sanity direction: one FM run
        # should be at least competitive with a short annealing run.
        from repro.partition import flat_fm_multistart

        g = tiny_circuit.graph
        fm = flat_fm_multistart(g, tiny_balance, num_starts=2, seed=5)
        ann = annealing_baseline(
            g, tiny_balance, seed=5, moves_per_temperature=300, cooling=0.7
        )
        assert fm.best().cut <= ann.cut * 2
