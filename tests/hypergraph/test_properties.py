"""Property-based tests for the hypergraph substrate."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypergraph import (
    Hypergraph,
    contract,
    validate_hypergraph,
    vertex_induced_subhypergraph,
)
from repro.partition import cut_size


@st.composite
def hypergraphs(draw, max_vertices=16, max_nets=20):
    """Random small hypergraphs with weights and areas."""
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    num_nets = draw(st.integers(min_value=0, max_value=max_nets))
    nets = []
    for _ in range(num_nets):
        size = draw(st.integers(min_value=1, max_value=min(5, n)))
        pins = draw(
            st.lists(
                st.integers(min_value=0, max_value=n - 1),
                min_size=size,
                max_size=size,
                unique=True,
            )
        )
        nets.append(pins)
    areas = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0),
            min_size=n,
            max_size=n,
        )
    )
    weights = draw(
        st.lists(
            st.integers(min_value=0, max_value=9),
            min_size=num_nets,
            max_size=num_nets,
        )
    )
    return Hypergraph(nets, num_vertices=n, areas=areas, net_weights=weights)


@given(hypergraphs())
@settings(max_examples=60, deadline=None)
def test_csr_duality(g):
    """Net->pin and vertex->net views describe the same incidences."""
    forward = {
        (e, v) for e in range(g.num_nets) for v in g.net_pins(e)
    }
    backward = {
        (e, v)
        for v in range(g.num_vertices)
        for e in g.vertex_nets(v)
    }
    assert forward == backward
    assert len(forward) == g.num_pins


@given(hypergraphs())
@settings(max_examples=60, deadline=None)
def test_validation_accepts_generated(g):
    assert validate_hypergraph(g).ok


@given(hypergraphs(), st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_contraction_preserves_area_and_cut(g, seed):
    """Contracting within the blocks of a partition preserves its cut."""
    rng = random.Random(seed)
    parts = [rng.randrange(2) for _ in range(g.num_vertices)]
    # Cluster only same-part pairs: label = (part, group) compacted.
    labels = []
    mapping = {}
    for v in range(g.num_vertices):
        key = (parts[v], rng.randrange(2))  # up to 2 clusters per side
        if key not in mapping:
            mapping[key] = len(mapping)
        labels.append(mapping[key])
    result = contract(g, labels)
    coarse_parts = [0] * result.coarse.num_vertices
    for v, c in enumerate(labels):
        coarse_parts[c] = parts[v]
    assert result.coarse.total_area == sum(g.areas) or abs(
        result.coarse.total_area - sum(g.areas)
    ) < 1e-6
    assert cut_size(result.coarse, coarse_parts) == cut_size(g, parts)


@given(hypergraphs())
@settings(max_examples=60, deadline=None)
def test_contraction_projection_roundtrip(g):
    """Projecting a coarse partition assigns each fine vertex its
    cluster's side."""
    labels = [v % max(1, g.num_vertices // 2) for v in range(g.num_vertices)]
    # Compact labels.
    remap = {}
    labels = [remap.setdefault(c, len(remap)) for c in labels]
    result = contract(g, labels)
    coarse_parts = [c % 2 for c in range(result.coarse.num_vertices)]
    fine = result.project_partition(coarse_parts)
    for v in range(g.num_vertices):
        assert fine[v] == coarse_parts[labels[v]]


@given(hypergraphs(), st.data())
@settings(max_examples=60, deadline=None)
def test_induced_subhypergraph_cut_consistency(g, data):
    """A net kept in the induced subgraph is cut there iff it is cut in
    the full graph under any assignment extending the sub-assignment."""
    if g.num_vertices < 2:
        return
    k = data.draw(
        st.integers(min_value=2, max_value=g.num_vertices)
    )
    subset = list(range(k))
    sub, order = vertex_induced_subhypergraph(g, subset)
    assert order == subset
    assert sub.num_vertices == k
    # Every kept net has >= 2 pins and all pins map back into subset.
    for e in range(sub.num_nets):
        assert sub.net_size(e) >= 2
