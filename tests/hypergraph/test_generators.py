"""Unit tests for the synthetic generators."""

import pytest

from repro.hypergraph import (
    CircuitSpec,
    chain_hypergraph,
    clustered_hypergraph,
    compute_stats,
    generate_circuit,
    grid_hypergraph,
    random_k_uniform,
    rent_exponent_estimate,
    validate_hypergraph,
)


class TestCircuitGenerator:
    def test_deterministic(self):
        a = generate_circuit(CircuitSpec(num_cells=200), seed=5)
        b = generate_circuit(CircuitSpec(num_cells=200), seed=5)
        assert a.graph.structurally_equal(b.graph)

    def test_seed_changes_output(self):
        a = generate_circuit(CircuitSpec(num_cells=200), seed=5)
        b = generate_circuit(CircuitSpec(num_cells=200), seed=6)
        assert not a.graph.structurally_equal(b.graph)

    def test_sizes(self):
        circ = generate_circuit(CircuitSpec(num_cells=500), seed=1)
        g = circ.graph
        assert circ.num_cells == 500
        assert g.num_vertices == 500 + len(circ.pad_vertices)
        assert len(circ.pad_vertices) == circ.spec.resolved_num_pads()

    def test_pads_have_zero_area(self):
        circ = generate_circuit(CircuitSpec(num_cells=300), seed=2)
        assert all(circ.graph.area(p) == 0.0 for p in circ.pad_vertices)
        assert all(circ.is_pad(p) for p in circ.pad_vertices)
        assert not circ.is_pad(0)

    def test_pins_per_cell_near_target(self):
        spec = CircuitSpec(num_cells=2000, pins_per_cell=3.5)
        circ = generate_circuit(spec, seed=3)
        # Pins on cells only (exclude pad pins) per cell.
        cell_pins = sum(
            circ.graph.vertex_degree(v) for v in circ.cell_vertices
        )
        assert 3.0 <= cell_pins / spec.num_cells <= 4.3

    def test_net_sizes_bounded_and_dominated_by_small(self):
        spec = CircuitSpec(num_cells=2000, net_size_cap=12)
        circ = generate_circuit(spec, seed=4)
        stats = compute_stats(circ.graph)
        assert max(stats.net_size_histogram) <= 12
        two_three = stats.net_size_histogram.get(2, 0) + (
            stats.net_size_histogram.get(3, 0)
        )
        assert two_three > 0.6 * circ.graph.num_nets

    def test_large_cells_present(self):
        spec = CircuitSpec(
            num_cells=1000, num_large_cells=3, large_cell_area_percent=2.0
        )
        circ = generate_circuit(spec, seed=5)
        stats = compute_stats(circ.graph)
        assert stats.max_area_percent == pytest.approx(2.0, rel=0.05)

    def test_no_large_cells_option(self):
        spec = CircuitSpec(num_cells=500, num_large_cells=0)
        circ = generate_circuit(spec, seed=5)
        stats = compute_stats(circ.graph)
        assert stats.max_area_percent < 1.0

    def test_structurally_valid(self):
        circ = generate_circuit(CircuitSpec(num_cells=400), seed=6)
        report = validate_hypergraph(circ.graph)
        assert report.ok, report.errors

    def test_explicit_pad_count(self):
        spec = CircuitSpec(num_cells=300, num_pads=10)
        circ = generate_circuit(spec, seed=7)
        assert len(circ.pad_vertices) == 10

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            generate_circuit(CircuitSpec(num_cells=1), seed=0)

    def test_low_pins_rejected(self):
        with pytest.raises(ValueError):
            generate_circuit(
                CircuitSpec(num_cells=100, pins_per_cell=1.5), seed=0
            )

    def test_dominating_large_cells_rejected(self):
        with pytest.raises(ValueError):
            generate_circuit(
                CircuitSpec(
                    num_cells=100,
                    num_large_cells=30,
                    large_cell_area_percent=2.0,
                ),
                seed=0,
            )

    def test_locality_controls_rent_exponent(self):
        # More local nets (higher locality shape) => lower Rent exponent.
        # Pads and large cells are disabled to isolate the locality
        # signal, and estimates are averaged over seeds (single-seed
        # estimates on 1.5k cells are noisy).
        def estimate(locality):
            values = []
            for seed in (1, 2, 3):
                circ = generate_circuit(
                    CircuitSpec(
                        num_cells=1500,
                        locality=locality,
                        num_pads=0,
                        num_large_cells=0,
                    ),
                    seed=seed,
                )
                blocks = [
                    range(start, start + size)
                    for size in (32, 64, 128, 256, 512)
                    for start in (0, 200, 400, 600, 800)
                ]
                values.append(
                    rent_exponent_estimate(circ.graph, blocks)
                )
            return sum(values) / len(values)

        assert estimate(3.0) < estimate(0.9) - 0.1


class TestStructuredGenerators:
    def test_chain(self):
        g = chain_hypergraph(10)
        assert g.num_vertices == 10
        assert g.num_nets == 9
        assert all(g.net_size(e) == 2 for e in range(g.num_nets))

    def test_grid(self):
        g = grid_hypergraph(3, 4)
        assert g.num_vertices == 12
        # 3 rows x 3 horizontal + 2 x 4 vertical = 9 + 8
        assert g.num_nets == 17

    def test_random_k_uniform(self):
        g = random_k_uniform(20, 15, 4, seed=1)
        assert g.num_nets == 15
        assert all(g.net_size(e) == 4 for e in range(15))
        assert all(len(set(g.net_pins(e))) == 4 for e in range(15))

    def test_random_k_uniform_k_too_large(self):
        with pytest.raises(ValueError):
            random_k_uniform(3, 1, 5)

    def test_clustered(self):
        g = clustered_hypergraph(3, 5, intra_nets=10, inter_nets=2, seed=2)
        assert g.num_vertices == 15
        assert g.num_nets == 32
