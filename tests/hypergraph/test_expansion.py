"""Unit tests for graph expansions."""

import pytest

from repro.hypergraph import Hypergraph
from repro.hypergraph.expansion import (
    clique_expansion,
    connectivity_components,
    star_expansion,
)


class TestCliqueExpansion:
    def test_two_pin_net_weight(self):
        g = Hypergraph([[0, 1]], num_vertices=2, net_weights=[3])
        cg = clique_expansion(g)
        assert cg[0][1]["weight"] == pytest.approx(3.0)

    def test_three_pin_net_shares(self):
        g = Hypergraph([[0, 1, 2]], num_vertices=3, net_weights=[4])
        cg = clique_expansion(g)
        for u, v in ((0, 1), (1, 2), (0, 2)):
            assert cg[u][v]["weight"] == pytest.approx(2.0)  # 4 / (3-1)

    def test_overlapping_nets_accumulate(self):
        g = Hypergraph([[0, 1], [0, 1, 2]], num_vertices=3)
        cg = clique_expansion(g)
        assert cg[0][1]["weight"] == pytest.approx(1.0 + 0.5)

    def test_single_pin_net_ignored(self):
        g = Hypergraph([[0]], num_vertices=2)
        cg = clique_expansion(g)
        assert cg.number_of_edges() == 0
        assert cg.number_of_nodes() == 2

    def test_cut_lower_bound_property(self, small_hypergraph):
        # For any bipartition, the clique-expansion cut weight of a net
        # that is split is >= its weight; so graph cut >= hypergraph cut.
        from repro.partition import cut_size

        cg = clique_expansion(small_hypergraph)
        parts = [0, 0, 0, 1, 1, 1]
        graph_cut = sum(
            d["weight"]
            for u, v, d in cg.edges(data=True)
            if parts[u] != parts[v]
        )
        assert graph_cut >= cut_size(small_hypergraph, parts) - 1e-9


class TestStarExpansion:
    def test_hub_per_net(self, small_hypergraph):
        sg, hubs = star_expansion(small_hypergraph)
        assert len(hubs) == small_hypergraph.num_nets
        assert sg.number_of_nodes() == (
            small_hypergraph.num_vertices + small_hypergraph.num_nets
        )

    def test_spokes(self):
        g = Hypergraph([[0, 1, 2]], num_vertices=3, net_weights=[7])
        sg, hubs = star_expansion(g)
        hub = hubs[0]
        assert sorted(sg.neighbors(hub)) == [0, 1, 2]
        assert sg[hub][0]["weight"] == 7

    def test_small_nets_skipped(self):
        g = Hypergraph([[0]], num_vertices=1)
        sg, hubs = star_expansion(g)
        assert hubs == {}


class TestConnectivity:
    def test_connected(self, triangle):
        assert connectivity_components(triangle) == 1

    def test_disconnected(self):
        g = Hypergraph([[0, 1], [2, 3]], num_vertices=5)
        assert connectivity_components(g) == 3  # {0,1}, {2,3}, {4}
