"""Property tests for the flat-buffer round trip of :class:`Hypergraph`."""

import pickle
from array import array

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypergraph.hypergraph import Hypergraph, HypergraphError


@st.composite
def hypergraphs(draw):
    """Random small hypergraphs with optional weights and names."""
    num_vertices = draw(st.integers(min_value=0, max_value=12))
    if num_vertices == 0:
        nets = []
    else:
        pin_sets = st.sets(
            st.integers(min_value=0, max_value=num_vertices - 1),
            min_size=1,
            max_size=num_vertices,
        )
        nets = [sorted(pins) for pins in draw(
            st.lists(pin_sets, max_size=8)
        )]
    areas = None
    if num_vertices and draw(st.booleans()):
        areas = draw(
            st.lists(
                st.floats(
                    min_value=0.0, max_value=100.0, allow_nan=False
                ),
                min_size=num_vertices,
                max_size=num_vertices,
            )
        )
    net_weights = None
    if nets and draw(st.booleans()):
        net_weights = draw(
            st.lists(
                st.integers(min_value=0, max_value=50),
                min_size=len(nets),
                max_size=len(nets),
            )
        )
    vertex_names = None
    if num_vertices and draw(st.booleans()):
        vertex_names = [f"cell_{v}" for v in range(num_vertices)]
    extras = None
    if num_vertices and draw(st.booleans()):
        extras = [
            draw(
                st.lists(
                    st.floats(
                        min_value=0.0, max_value=10.0, allow_nan=False
                    ),
                    min_size=num_vertices,
                    max_size=num_vertices,
                )
            )
        ]
    return Hypergraph(
        nets,
        num_vertices=num_vertices,
        areas=areas,
        net_weights=net_weights,
        vertex_names=vertex_names,
        extra_resources=extras,
    )


class TestBufferRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(graph=hypergraphs())
    def test_round_trip_preserves_everything(self, graph):
        back = Hypergraph.from_buffers(graph.to_buffers())
        assert back.structurally_equal(graph)
        assert back.num_vertices == graph.num_vertices
        assert back.num_nets == graph.num_nets
        assert back.num_pins == graph.num_pins
        assert back.total_area == pytest.approx(graph.total_area)
        assert back.num_resources == graph.num_resources
        for e in range(graph.num_nets):
            assert back.net_pins(e) == graph.net_pins(e)
            assert back.net_weight(e) == graph.net_weight(e)
            assert back.net_name(e) == graph.net_name(e)
        for v in range(graph.num_vertices):
            assert back.vertex_nets(v) == graph.vertex_nets(v)
            assert back.area(v) == graph.area(v)
            assert back.vertex_name(v) == graph.vertex_name(v)
            for r in range(graph.num_resources):
                assert back.resource(v, r) == graph.resource(v, r)

    @settings(max_examples=25, deadline=None)
    @given(graph=hypergraphs())
    def test_pickle_uses_buffer_path(self, graph):
        back = pickle.loads(pickle.dumps(graph))
        assert back.structurally_equal(graph)
        assert [graph.net_pins(e) for e in range(graph.num_nets)] == [
            back.net_pins(e) for e in range(back.num_nets)
        ]

    def test_buffers_are_typed_arrays(self, small_hypergraph):
        buffers = small_hypergraph.to_buffers()
        for key in ("net_ptr", "net_pins", "vtx_ptr", "vtx_nets"):
            assert isinstance(buffers[key], array)
            assert buffers[key].typecode == "q"
        assert buffers["areas"].typecode == "d"

    def test_from_buffers_accepts_plain_sequences(self):
        g = Hypergraph([[0, 1], [1, 2]], num_vertices=3)
        buffers = {
            key: (value.tolist() if isinstance(value, array) else value)
            for key, value in g.to_buffers().items()
        }
        back = Hypergraph.from_buffers(buffers)
        assert back.structurally_equal(g)

    def test_corrupt_buffers_rejected(self, small_hypergraph):
        buffers = dict(small_hypergraph.to_buffers())
        buffers["net_pins"] = buffers["net_pins"][:-1]
        with pytest.raises(HypergraphError):
            Hypergraph.from_buffers(buffers)

    def test_vertex_count_mismatch_rejected(self, small_hypergraph):
        buffers = dict(small_hypergraph.to_buffers())
        buffers["num_vertices"] = buffers["num_vertices"] + 1
        with pytest.raises(HypergraphError):
            Hypergraph.from_buffers(buffers)
