"""Unit tests for validation and statistics."""

import pytest

from repro.hypergraph import (
    Hypergraph,
    compute_stats,
    external_nets,
    pins_per_cell,
    rent_exponent_estimate,
    validate_hypergraph,
)


class TestValidate:
    def test_clean_graph_ok(self, small_hypergraph):
        report = validate_hypergraph(small_hypergraph)
        assert report.ok
        assert not report.warnings

    def test_single_pin_net_warns(self):
        g = Hypergraph([[0], [0, 1]], num_vertices=2)
        report = validate_hypergraph(g)
        assert report.ok
        assert any("single-pin" in w for w in report.warnings)

    def test_empty_net_warns(self):
        g = Hypergraph([[], [0, 1]], num_vertices=2)
        report = validate_hypergraph(g)
        assert any("empty net" in w for w in report.warnings)

    def test_isolated_vertex_warns(self):
        g = Hypergraph([[0, 1]], num_vertices=3)
        report = validate_hypergraph(g)
        assert any("isolated" in w for w in report.warnings)

    def test_zero_weight_warns(self):
        g = Hypergraph([[0, 1]], num_vertices=2, net_weights=[0])
        report = validate_hypergraph(g)
        assert any("zero-weight" in w for w in report.warnings)

    def test_raise_on_error_noop_when_clean(self, triangle):
        validate_hypergraph(triangle).raise_on_error()

    def test_raise_on_error(self):
        report = validate_hypergraph(
            Hypergraph([[0, 1]], num_vertices=2)
        )
        report.errors.append("synthetic failure")
        with pytest.raises(ValueError, match="synthetic failure"):
            report.raise_on_error()


class TestStats:
    def test_basic_stats(self, weighted_hypergraph):
        s = compute_stats(weighted_hypergraph)
        assert s.num_vertices == 4
        assert s.num_nets == 5
        assert s.num_pins == 10
        assert s.total_area == 8.0
        assert s.max_area == 3.0
        assert s.max_area_percent == pytest.approx(37.5)
        assert s.net_size_histogram == {2: 5}
        assert s.average_net_size == pytest.approx(2.0)

    def test_empty_graph_stats(self):
        s = compute_stats(Hypergraph([], num_vertices=0))
        assert s.max_area_percent == 0.0
        assert s.total_area == 0.0

    def test_format_row(self, triangle):
        row = compute_stats(triangle).format_row()
        assert "|V|=3" in row and "|E|=3" in row

    def test_external_nets(self, small_hypergraph):
        # Nets touching vertex 0: {0,1} and {0,5}.
        assert external_nets(small_hypergraph, [0]) == 2
        assert external_nets(small_hypergraph, []) == 0
        assert external_nets(small_hypergraph, [0, 4]) == 4

    def test_pins_per_cell(self, triangle):
        assert pins_per_cell(triangle) == pytest.approx(2.0)


class TestRentEstimate:
    def test_needs_two_sizes(self, triangle):
        with pytest.raises(ValueError):
            rent_exponent_estimate(triangle, [[0]])

    def test_exponent_in_unit_range_for_grid(self):
        from repro.hypergraph import grid_hypergraph

        g = grid_hypergraph(16, 16)
        blocks = []
        for size in (2, 4, 8):
            for r0 in (0, 8):
                blocks.append(
                    [
                        r * 16 + c
                        for r in range(r0, r0 + size)
                        for c in range(size)
                    ]
                )
        p = rent_exponent_estimate(g, blocks)
        # A 2D mesh has perimeter ~ sqrt(area): Rent exponent ~ 0.5.
        assert 0.3 < p < 0.7
