"""Unit tests for HypergraphBuilder."""

import pytest

from repro.hypergraph import HypergraphBuilder, HypergraphError


class TestAddVertex:
    def test_ids_are_dense(self):
        b = HypergraphBuilder()
        assert b.add_vertex("a") == 0
        assert b.add_vertex("b") == 1
        assert b.num_vertices == 2

    def test_default_names(self):
        b = HypergraphBuilder()
        b.add_vertex()
        b.add_vertex()
        g = b.build()
        assert g.vertex_name(0) == "v0"
        assert g.vertex_name(1) == "v1"

    def test_duplicate_name_rejected(self):
        b = HypergraphBuilder()
        b.add_vertex("x")
        with pytest.raises(HypergraphError):
            b.add_vertex("x")

    def test_negative_area_rejected(self):
        b = HypergraphBuilder()
        with pytest.raises(HypergraphError):
            b.add_vertex("x", area=-1.0)

    def test_vertex_lookup(self):
        b = HypergraphBuilder()
        b.add_vertex("pad3")
        assert b.has_vertex("pad3")
        assert not b.has_vertex("pad4")
        assert b.vertex_id("pad3") == 0


class TestAddNet:
    def test_basic(self):
        b = HypergraphBuilder()
        b.add_vertex("a")
        b.add_vertex("b")
        assert b.add_net([0, 1], weight=3, name="clk") == 0
        g = b.build()
        assert list(g.net_pins(0)) == [0, 1]
        assert g.net_weight(0) == 3
        assert g.net_name(0) == "clk"

    def test_duplicate_pins_deduplicated(self):
        b = HypergraphBuilder()
        b.add_vertex("a")
        b.add_vertex("b")
        b.add_net([0, 1, 0, 1])
        g = b.build()
        assert list(g.net_pins(0)) == [0, 1]

    def test_unknown_pin_rejected(self):
        b = HypergraphBuilder()
        b.add_vertex("a")
        with pytest.raises(HypergraphError):
            b.add_net([0, 7])

    def test_by_names(self):
        b = HypergraphBuilder()
        b.add_vertex("a")
        b.add_vertex("b")
        b.add_net_by_names(["a", "b"])
        g = b.build()
        assert g.num_nets == 1

    def test_by_names_unknown_rejected(self):
        b = HypergraphBuilder()
        b.add_vertex("a")
        with pytest.raises(HypergraphError):
            b.add_net_by_names(["a", "mystery"])

    def test_by_names_create_missing(self):
        b = HypergraphBuilder()
        b.add_net_by_names(["a", "b", "c"], create_missing=True)
        assert b.num_vertices == 3
        g = b.build()
        assert g.area(0) == 1.0


class TestSetArea:
    def test_late_area_assignment(self):
        b = HypergraphBuilder()
        v = b.add_vertex("a")
        b.set_area(v, 9.5)
        assert b.build().area(v) == 9.5

    def test_negative_rejected(self):
        b = HypergraphBuilder()
        v = b.add_vertex("a")
        with pytest.raises(HypergraphError):
            b.set_area(v, -1)


class TestBuild:
    def test_roundtrip_structure(self):
        b = HypergraphBuilder()
        for name in "abcd":
            b.add_vertex(name, area=2.0)
        b.add_net([0, 1, 2], name="n_a")
        b.add_net([2, 3], weight=2)
        g = b.build()
        assert g.num_vertices == 4
        assert g.num_nets == 2
        assert g.total_area == 8.0
        assert g.net_weight(1) == 2

    def test_empty_build(self):
        g = HypergraphBuilder().build()
        assert g.num_vertices == 0
        assert g.num_nets == 0
