"""Unit tests for clustering/contraction."""

import pytest

from repro.hypergraph import (
    Hypergraph,
    HypergraphError,
    contract,
    normalize_clusters,
)


class TestContract:
    def test_pairwise_merge(self, small_hypergraph):
        # Merge (0,1) and (4,5); keep 2 and 3 as singletons.
        result = contract(small_hypergraph, [0, 0, 1, 2, 3, 3])
        coarse = result.coarse
        assert coarse.num_vertices == 4
        # {0,1}->internal (dropped), {1,2,3}->{0,1,2}, {3,4}->{2,3},
        # {4,5}->internal (dropped), {0,5}->{0,3}
        pin_sets = {frozenset(p) for p in coarse.nets()}
        assert pin_sets == {
            frozenset({0, 1, 2}),
            frozenset({2, 3}),
            frozenset({0, 3}),
        }

    def test_areas_sum(self):
        g = Hypergraph([[0, 1]], num_vertices=3, areas=[1.0, 2.0, 4.0])
        result = contract(g, [0, 0, 1])
        assert result.coarse.area(0) == 3.0
        assert result.coarse.area(1) == 4.0

    def test_parallel_nets_merge_weights(self):
        g = Hypergraph(
            [[0, 1], [0, 2], [1, 2]],
            num_vertices=4,
            net_weights=[1, 2, 5],
        )
        # Merge 1 and 2: nets {0,1} and {0,2} become parallel {0,1}-pairs.
        result = contract(g, [0, 1, 1, 2])
        coarse = result.coarse
        assert coarse.num_nets == 1
        assert coarse.net_weight(0) == 3  # 1 + 2; {1,2} became internal

    def test_parallel_nets_kept_when_disabled(self):
        g = Hypergraph([[0, 1], [0, 2]], num_vertices=3)
        result = contract(g, [0, 1, 1], merge_parallel_nets=False)
        assert result.coarse.num_nets == 2

    def test_mapping_directions(self):
        g = Hypergraph([[0, 1], [1, 2]], num_vertices=4)
        result = contract(g, [1, 0, 0, 1])
        assert result.fine_to_coarse == [1, 0, 0, 1]
        assert result.coarse_to_fine == [[1, 2], [0, 3]]

    def test_project_partition(self):
        g = Hypergraph([[0, 1]], num_vertices=4)
        result = contract(g, [0, 0, 1, 1])
        assert result.project_partition([1, 0]) == [1, 1, 0, 0]

    def test_noncontiguous_ids_rejected(self, triangle):
        with pytest.raises(HypergraphError):
            contract(triangle, [0, 2, 2])

    def test_length_mismatch_rejected(self, triangle):
        with pytest.raises(HypergraphError):
            contract(triangle, [0, 1])

    def test_out_of_range_rejected(self, triangle):
        with pytest.raises(HypergraphError):
            contract(triangle, [0, 1, -1])

    def test_identity_contraction(self, small_hypergraph):
        g = small_hypergraph
        result = contract(g, list(range(g.num_vertices)))
        assert result.coarse.num_vertices == g.num_vertices
        assert result.coarse.num_nets == g.num_nets

    def test_total_area_invariant(self, weighted_hypergraph):
        g = weighted_hypergraph
        result = contract(g, [0, 0, 1, 1])
        assert result.coarse.total_area == pytest.approx(g.total_area)

    def test_empty_graph(self):
        result = contract(Hypergraph([], num_vertices=0), [])
        assert result.coarse.num_vertices == 0


class TestNormalizeClusters:
    def test_none_becomes_singleton(self):
        assert normalize_clusters([None, None]) == [0, 1]

    def test_labels_compacted(self):
        assert normalize_clusters([7, 7, 3]) == [0, 0, 1]

    def test_mixed(self):
        out = normalize_clusters([5, None, 5, None])
        assert out[0] == out[2]
        assert len(set(out)) == 3
        assert sorted(set(out)) == [0, 1, 2]

    def test_empty(self):
        assert normalize_clusters([]) == []
