"""Unit tests for the core Hypergraph structure."""

import pytest

from repro.hypergraph import (
    Hypergraph,
    HypergraphError,
    vertex_induced_subhypergraph,
)


class TestConstruction:
    def test_counts(self, small_hypergraph):
        g = small_hypergraph
        assert g.num_vertices == 6
        assert g.num_nets == 5
        assert g.num_pins == 11

    def test_empty_hypergraph(self):
        g = Hypergraph([], num_vertices=0)
        assert g.num_vertices == 0
        assert g.num_nets == 0
        assert g.num_pins == 0
        assert g.total_area == 0.0

    def test_isolated_vertices_allowed(self):
        g = Hypergraph([[0, 1]], num_vertices=5)
        assert g.vertex_degree(4) == 0
        assert g.num_pins == 2

    def test_default_unit_areas(self, triangle):
        assert triangle.total_area == 3.0
        assert triangle.area(1) == 1.0

    def test_default_unit_net_weights(self, triangle):
        assert all(triangle.net_weight(e) == 1 for e in range(3))

    def test_negative_vertex_id_rejected(self):
        with pytest.raises(HypergraphError):
            Hypergraph([[-1, 0]], num_vertices=2)

    def test_out_of_range_vertex_rejected(self):
        with pytest.raises(HypergraphError):
            Hypergraph([[0, 3]], num_vertices=3)

    def test_duplicate_pin_rejected(self):
        with pytest.raises(HypergraphError):
            Hypergraph([[0, 1, 0]], num_vertices=2)

    def test_negative_area_rejected(self):
        with pytest.raises(HypergraphError):
            Hypergraph([[0, 1]], num_vertices=2, areas=[1.0, -2.0])

    def test_negative_weight_rejected(self):
        with pytest.raises(HypergraphError):
            Hypergraph([[0, 1]], num_vertices=2, net_weights=[-1])

    def test_area_length_mismatch_rejected(self):
        with pytest.raises(HypergraphError):
            Hypergraph([[0, 1]], num_vertices=2, areas=[1.0])

    def test_weight_length_mismatch_rejected(self):
        with pytest.raises(HypergraphError):
            Hypergraph([[0, 1]], num_vertices=2, net_weights=[1, 2])

    def test_negative_num_vertices_rejected(self):
        with pytest.raises(HypergraphError):
            Hypergraph([], num_vertices=-1)

    def test_name_length_mismatch_rejected(self):
        with pytest.raises(HypergraphError):
            Hypergraph([[0, 1]], num_vertices=2, vertex_names=["a"])


class TestAdjacency:
    def test_net_pins(self, small_hypergraph):
        assert list(small_hypergraph.net_pins(1)) == [1, 2, 3]

    def test_vertex_nets_cross_consistency(self, small_hypergraph):
        g = small_hypergraph
        for e in range(g.num_nets):
            for v in g.net_pins(e):
                assert e in list(g.vertex_nets(v))
        for v in range(g.num_vertices):
            for e in g.vertex_nets(v):
                assert v in list(g.net_pins(e))

    def test_degrees(self, small_hypergraph):
        g = small_hypergraph
        assert g.vertex_degree(0) == 2
        assert g.vertex_degree(1) == 2
        assert g.vertex_degree(3) == 2
        assert g.net_size(1) == 3
        assert g.net_size(0) == 2

    def test_neighbors(self, small_hypergraph):
        assert sorted(small_hypergraph.neighbors(1)) == [0, 2, 3]

    def test_neighbors_exclude_self(self, triangle):
        assert 0 not in triangle.neighbors(0)

    def test_nets_iterator(self, triangle):
        assert [list(p) for p in triangle.nets()] == [[0, 1], [1, 2], [0, 2]]

    def test_averages(self, small_hypergraph):
        g = small_hypergraph
        assert g.average_net_size() == pytest.approx(11 / 5)
        assert g.average_degree() == pytest.approx(11 / 6)

    def test_averages_empty(self):
        g = Hypergraph([], num_vertices=0)
        assert g.average_net_size() == 0.0
        assert g.average_degree() == 0.0


class TestResources:
    def test_primary_resource_is_area(self, weighted_hypergraph):
        g = weighted_hypergraph
        assert g.resource(2, 0) == 3.0
        assert list(g.resource_vector(0)) == [1.0, 2.0, 3.0, 2.0]

    def test_extra_resources(self):
        g = Hypergraph(
            [[0, 1]],
            num_vertices=2,
            extra_resources=[[5.0, 6.0], [0.5, 0.25]],
        )
        assert g.num_resources == 3
        assert g.resource(1, 1) == 6.0
        assert g.resource(0, 2) == 0.5

    def test_missing_resource_raises(self, triangle):
        with pytest.raises(IndexError):
            triangle.resource(0, 1)
        with pytest.raises(IndexError):
            triangle.resource_vector(3)

    def test_extra_resource_length_mismatch(self):
        with pytest.raises(HypergraphError):
            Hypergraph([[0, 1]], num_vertices=2, extra_resources=[[1.0]])


class TestNames:
    def test_default_names(self, triangle):
        assert triangle.vertex_name(2) == "v2"
        assert triangle.net_name(0) == "n0"
        assert not triangle.has_names

    def test_explicit_names(self):
        g = Hypergraph(
            [[0, 1]],
            num_vertices=2,
            vertex_names=["alpha", "beta"],
            net_names=["clk"],
        )
        assert g.vertex_name(1) == "beta"
        assert g.net_name(0) == "clk"
        assert g.has_names


class TestEquality:
    def test_structural_equality(self, triangle):
        other = Hypergraph([[1, 0], [2, 1], [2, 0]], num_vertices=3)
        assert triangle.structurally_equal(other)

    def test_inequality_different_nets(self, triangle):
        other = Hypergraph([[0, 1], [1, 2], [1, 2]], num_vertices=3)
        assert not triangle.structurally_equal(other)

    def test_inequality_different_areas(self, triangle):
        other = Hypergraph(
            [[0, 1], [1, 2], [0, 2]], num_vertices=3, areas=[1, 1, 2]
        )
        assert not triangle.structurally_equal(other)

    def test_repr(self, triangle):
        assert "num_vertices=3" in repr(triangle)


class TestInducedSubhypergraph:
    def test_keeps_internal_nets(self, small_hypergraph):
        sub, order = vertex_induced_subhypergraph(small_hypergraph, [0, 1, 5])
        assert order == [0, 1, 5]
        pin_sets = {frozenset(p) for p in sub.nets()}
        # nets {0,1} and {0,5} survive; {1,2,3} loses pins 2,3 -> 1 pin.
        assert pin_sets == {frozenset({0, 1}), frozenset({0, 2})}

    def test_preserves_areas_and_names(self):
        g = Hypergraph(
            [[0, 1], [1, 2]],
            num_vertices=3,
            areas=[3, 4, 5],
            vertex_names=["a", "b", "c"],
        )
        sub, order = vertex_induced_subhypergraph(g, [2, 1])
        assert sub.area(0) == 5.0
        assert sub.vertex_name(1) == "b"

    def test_duplicate_subset_rejected(self, triangle):
        with pytest.raises(HypergraphError):
            vertex_induced_subhypergraph(triangle, [0, 0])

    def test_empty_subset(self, triangle):
        sub, order = vertex_induced_subhypergraph(triangle, [])
        assert sub.num_vertices == 0
        assert sub.num_nets == 0
