"""Unit tests for the executable shape checks (on synthetic studies).

The shape checks encode the paper's claims; these tests pin down what
each check accepts and rejects using hand-built study objects, so a
regression in the checks themselves cannot silently pass bad data.
"""

import pytest

from repro.core.difficulty import DifficultyPoint, DifficultyStudy
from repro.core.pass_stats import PassStatsRow, PassStatsStudy
from repro.experiments.figures import shape_checks as figure_checks
from repro.experiments.table2 import shape_checks as table2_checks


def build_difficulty_study(rand_growth=6.0, gaps=(0.2, 0.05), cpu=(0.5, 0.1)):
    """A two-percent, two-start study with controllable shapes."""
    study = DifficultyStudy(
        circuit_name="synthetic",
        percents=(0.0, 40.0),
        starts_list=(1, 4),
        trials=3,
        good_cut=100,
    )
    base = 120.0
    # Normalization references mirror the real harness: the good
    # regime shares the good cut; each rand percentage has its own
    # per-instance best.
    references = {
        ("good", 0.0): 100.0,
        ("good", 40.0): 100.0,
        ("rand", 0.0): 100.0,
        ("rand", 40.0): base * rand_growth / 1.1,
    }

    def add(regime, percent, starts, raw, cpu_s):
        study.points.append(
            DifficultyPoint(
                regime=regime,
                percent=percent,
                starts=starts,
                raw_cut=raw,
                normalized_cut=raw / references[(regime, percent)],
                cpu_seconds=cpu_s,
            )
        )

    # good regime: norm gap at 0% = gaps[0], at 40% = gaps[1].
    add("good", 0.0, 1, base, cpu[0])
    add("good", 0.0, 4, base - 100.0 * gaps[0], cpu[0] * 4)
    add("good", 40.0, 1, 105.0, cpu[1])
    add("good", 40.0, 4, 105.0 - 100.0 * gaps[1], cpu[1] * 4)
    # rand regime: raw grows by rand_growth.
    ref40 = references[("rand", 40.0)]
    add("rand", 0.0, 1, base, cpu[0])
    add("rand", 0.0, 4, base - 100.0 * gaps[0], cpu[0] * 4)
    add("rand", 40.0, 1, ref40 * (1.0 + gaps[1]), cpu[1])
    add("rand", 40.0, 4, ref40, cpu[1] * 4)
    study.best_seen = {
        key: int(value) for key, value in references.items()
    }
    return study


class TestFigureChecks:
    def test_healthy_study_passes(self):
        study = build_difficulty_study()
        assert all(ok for _, ok in figure_checks(study))

    def test_flat_rand_growth_fails(self):
        study = build_difficulty_study(rand_growth=1.2)
        labels = {
            label: ok for label, ok in figure_checks(study)
        }
        growth = next(
            ok for label, ok in labels.items() if "raw cut grows" in label
        )
        assert not growth

    def test_widening_gap_fails(self):
        study = build_difficulty_study(gaps=(0.05, 0.5))
        failing = [
            label
            for label, ok in figure_checks(study)
            if "gap shrinks" in label and not ok
        ]
        assert failing

    def test_rising_cpu_fails(self):
        study = build_difficulty_study(cpu=(0.1, 0.5))
        failing = [
            label
            for label, ok in figure_checks(study)
            if "CPU decreases" in label and not ok
        ]
        assert len(failing) == 2


def build_pass_stats(wasted=(80.0, 98.0), prefix=(20.0, 2.0)):
    study = PassStatsStudy(circuit_name="synthetic", regime="good")
    for i, percent in enumerate((0.0, 30.0)):
        study.rows.append(
            PassStatsRow(
                percent=percent,
                runs=10,
                avg_passes_per_run=5.0 - i,
                avg_moved_percent=99.0,
                avg_best_prefix_percent=prefix[i],
                avg_wasted_percent=wasted[i],
                avg_final_cut=100.0,
            )
        )
    return study


class TestTable2Checks:
    def test_healthy_passes(self):
        study = build_pass_stats()
        assert all(ok for _, ok in table2_checks(study))

    def test_shrinking_waste_fails(self):
        study = build_pass_stats(wasted=(98.0, 80.0))
        failing = [
            label
            for label, ok in table2_checks(study)
            if "wasted" in label and not ok
        ]
        assert failing

    def test_prefix_moving_late_fails(self):
        study = build_pass_stats(prefix=(2.0, 20.0))
        failing = [
            label
            for label, ok in table2_checks(study)
            if "best prefix" in label and not ok
        ]
        assert failing

    def test_row_lookup_error(self):
        study = build_pass_stats()
        with pytest.raises(KeyError):
            study.row(77.0)
