"""Fast plumbing tests for the extension experiments.

These exercise the harness machinery on tiny inputs; the benchmark
suite runs the real profiles and asserts the shapes.
"""

import pytest

from repro.experiments.multiway import (
    MultiwayStudy,
    run_multiway_study,
)
from repro.experiments.overconstrained import (
    OverconstrainedReport,
)
from repro.experiments.suite_solutions import (
    SolutionTable,
    solve_suite,
)
from repro.hypergraph import CircuitSpec, generate_circuit
from repro.placement import build_suite


class TestMultiwayHarness:
    @pytest.fixture(scope="class")
    def study(self):
        circ = generate_circuit(CircuitSpec(num_cells=150), seed=121)
        return run_multiway_study(
            circ.graph,
            num_parts=3,
            circuit_name="m150",
            percents=(0.0, 20.0),
            starts_list=(1, 2),
            trials=2,
            seed=1,
        )

    def test_points_complete(self, study):
        assert isinstance(study, MultiwayStudy)
        assert len(study.points) == 2 * 2 * 2
        study.point("good", 20.0, 2)
        with pytest.raises(KeyError):
            study.point("good", 50.0, 1)

    def test_more_starts_never_worse(self, study):
        for regime in ("good", "rand"):
            for percent in (0.0, 20.0):
                one = study.point(regime, percent, 1)
                two = study.point(regime, percent, 2)
                assert two.raw_cut <= one.raw_cut + 1e-9

    def test_format(self, study):
        text = study.format_table()
        assert "3-way" in text
        assert "regime: rand" in text

    def test_bad_starts_list(self):
        circ = generate_circuit(CircuitSpec(num_cells=60), seed=122)
        with pytest.raises(ValueError):
            run_multiway_study(circ.graph, starts_list=(2, 1))


class TestOverconstrainedReport:
    def test_bump_math(self):
        report = OverconstrainedReport(
            circuit_name="x",
            percents=(0.0, 5.0, 10.0, 30.0),
            good_cut=100,
            single_start_cuts=[100.0, 130.0, 120.0, 105.0],
        )
        assert report.bump == pytest.approx(25.0)
        assert report.bump_percent == 5.0
        assert "+25.0" in report.format_report()

    def test_negative_bump_formatting(self):
        report = OverconstrainedReport(
            circuit_name="x",
            percents=(0.0, 5.0, 30.0),
            good_cut=100,
            single_start_cuts=[100.0, 90.0, 105.0],
        )
        assert report.bump == pytest.approx(-15.0)
        assert "-15.0" in report.format_report()

    def test_no_interior(self):
        report = OverconstrainedReport(
            circuit_name="x",
            percents=(0.0, 30.0),
            good_cut=10,
            single_start_cuts=[10.0, 12.0],
        )
        assert report.bump == 0.0


class TestSuiteSolutions:
    def test_solve_suite_rows(self):
        circ = generate_circuit(CircuitSpec(num_cells=150), seed=123)
        suite = build_suite(circ, "s150", min_block_cells=8, seed=1)
        table = solve_suite(suite, starts=1, seed=2)
        assert isinstance(table, SolutionTable)
        assert len(table.rows) == len(suite.entries)
        for row in table.rows:
            assert row.best_cut <= row.avg_cut + 1e-9
            assert row.avg_seconds > 0
        text = table.format_table()
        assert "best" in text.splitlines()[1]
