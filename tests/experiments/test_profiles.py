"""Profile-dispatch tests for the experiment entry points."""

import pytest

from repro.experiments.figures import PROFILES, run_figure
from repro.experiments.multiway import run_multiway
from repro.experiments.overconstrained import run_overconstrained
from repro.experiments.suite_solutions import run_suite_solutions
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4


class TestProfileDispatch:
    def test_figure_profiles_registered(self):
        assert ("fig1", "full") in PROFILES
        assert ("fig2", "quick") in PROFILES
        # Full profiles follow the paper's percent schedule.
        full = PROFILES[("fig1", "full")]
        assert len(full.percents) == 12
        assert full.starts_list == (1, 2, 4, 8)

    def test_unknown_figure_rejected(self):
        with pytest.raises(KeyError):
            run_figure("fig9", "quick")
        with pytest.raises(KeyError):
            run_figure("fig1", "medium")

    @pytest.mark.parametrize(
        "runner",
        [
            run_table2,
            run_table3,
            run_table4,
            run_multiway,
            run_overconstrained,
            run_suite_solutions,
        ],
    )
    def test_unknown_profile_rejected(self, runner):
        with pytest.raises(KeyError):
            runner("warp-speed")

    def test_quick_profiles_use_small_circuits(self):
        from repro.experiments.multiway import (
            PROFILE_SETTINGS as multiway_settings,
        )
        from repro.experiments.table2 import (
            PROFILE_SETTINGS as t2_settings,
        )

        assert all(
            name.startswith("quick")
            for name in t2_settings["quick"]["circuits"]
        )
        assert multiway_settings["quick"]["circuit"].startswith("quick")
        # Full profiles target the ibm-scale analogues.
        assert all(
            name.startswith("ibm")
            for name in t2_settings["full"]["circuits"]
        )
