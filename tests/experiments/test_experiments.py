"""Tests for the experiment harness (circuits registry + Table I +
lightweight smoke of the heavier experiment entry points)."""

import pytest

from repro.experiments import CIRCUITS, load_circuit, load_instance
from repro.experiments.table1 import run_table1, shape_checks
from repro.experiments.reporting import check, emit, ratio


class TestCircuitsRegistry:
    def test_known_names(self):
        for name in ("ibm01s", "ibm03s", "tiny01", "quick01"):
            assert name in CIRCUITS

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            load_circuit("ibm99")

    def test_cached_identity(self):
        a = load_circuit("tiny01")
        b = load_circuit("tiny01")
        assert a is b

    def test_sizes_match_definition(self):
        circ = load_circuit("tiny01")
        assert circ.num_cells == CIRCUITS["tiny01"].spec.num_cells

    def test_load_instance_balance(self):
        circ, balance = load_instance("tiny01")
        total = circ.graph.total_area
        assert balance.min_loads[0] == pytest.approx(0.49 * total)
        assert balance.max_loads[0] == pytest.approx(0.51 * total)

    def test_suite_scaling_order(self):
        sizes = [
            CIRCUITS[name].spec.num_cells
            for name in ("ibm01s", "ibm02s", "ibm03s", "ibm04s", "ibm05s")
        ]
        assert sizes == sorted(sizes)


class TestTable1Experiment:
    def test_all_shape_checks_pass(self):
        rows = run_table1()
        for label, ok in shape_checks(rows):
            assert ok, label


class TestReporting:
    def test_emit_writes_file(self, tmp_path):
        emit("hello", name="x", results_dir=tmp_path, quiet=True)
        assert (tmp_path / "x.txt").read_text() == "hello\n"

    def test_emit_without_name(self, capsys):
        emit("to stdout only")
        assert "to stdout only" in capsys.readouterr().out

    def test_ratio(self):
        assert ratio(4.0, 2.0) == 2.0
        assert ratio(1.0, 0.0) == float("inf")

    def test_check_format(self):
        assert check("ok", True).startswith("[PASS]")
        assert check("bad", False).startswith("[FAIL]")
