"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def generated(tmp_path):
    """A small circuit written as a bookshelf instance."""
    rc = main(
        [
            "generate",
            "--cells",
            "80",
            "--name",
            "clic",
            "--seed",
            "1",
            "--out",
            str(tmp_path),
        ]
    )
    assert rc == 0
    return tmp_path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "--out", "x"])
        assert args.cells == 1000
        assert args.format == "bookshelf"


class TestGenerate:
    def test_bookshelf_files_written(self, generated):
        assert (generated / "clic.nodes").exists()
        assert (generated / "clic.nets").exists()
        assert (generated / "clic.blk").exists()

    def test_netd_format(self, tmp_path):
        rc = main(
            [
                "generate",
                "--cells",
                "50",
                "--name",
                "nd",
                "--out",
                str(tmp_path),
                "--format",
                "both",
            ]
        )
        assert rc == 0
        assert (tmp_path / "nd.net").exists()
        assert (tmp_path / "nd.are").exists()
        assert (tmp_path / "nd.nodes").exists()


class TestPartition:
    @pytest.mark.parametrize("engine", ["multilevel", "fm", "kway"])
    def test_engines_run(self, generated, engine, capsys):
        rc = main(
            [
                "partition",
                "--dir",
                str(generated),
                "--name",
                "clic",
                "--engine",
                engine,
                "--starts",
                "1",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "cut" in out
        assert "block loads" in out

    def test_save_assignment(self, generated, tmp_path, capsys):
        save = tmp_path / "assignment.txt"
        rc = main(
            [
                "partition",
                "--dir",
                str(generated),
                "--name",
                "clic",
                "--save",
                str(save),
            ]
        )
        assert rc == 0
        lines = save.read_text().splitlines()
        assert lines
        assert all(line.split()[1] in ("0", "1") for line in lines)

    def test_cutoff_option(self, generated, capsys):
        rc = main(
            [
                "partition",
                "--dir",
                str(generated),
                "--name",
                "clic",
                "--engine",
                "fm",
                "--cutoff",
                "0.25",
            ]
        )
        assert rc == 0


class TestStats:
    def test_prints_profile(self, generated, capsys):
        rc = main(["stats", "--dir", str(generated), "--name", "clic"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fixed vertices" in out
        assert "|V|=" in out


class TestPlace:
    def test_place_and_derive(self, tmp_path, capsys):
        rc = main(
            [
                "place",
                "--cells",
                "120",
                "--name",
                "pl",
                "--seed",
                "2",
                "--suite-out",
                str(tmp_path / "suite"),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "HPWL" in out
        assert (tmp_path / "suite").exists()
        nodes = list((tmp_path / "suite").glob("*.nodes"))
        assert len(nodes) >= 6


class TestEvaluate:
    def test_roundtrip_ok(self, generated, tmp_path, capsys):
        save = tmp_path / "assignment.txt"
        assert (
            main(
                [
                    "partition",
                    "--dir",
                    str(generated),
                    "--name",
                    "clic",
                    "--save",
                    str(save),
                ]
            )
            == 0
        )
        capsys.readouterr()
        rc = main(
            [
                "evaluate",
                "--dir",
                str(generated),
                "--name",
                "clic",
                "--assignment",
                str(save),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "fixture constraints : OK" in out
        assert "balance constraints : OK" in out

    def test_bad_block_rejected(self, generated, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("c0 7\n")
        rc = main(
            [
                "evaluate",
                "--dir",
                str(generated),
                "--name",
                "clic",
                "--assignment",
                str(bad),
            ]
        )
        assert rc == 2

    def test_missing_vertices_rejected(self, generated, tmp_path, capsys):
        partial = tmp_path / "partial.txt"
        partial.write_text("c0 0\n")
        rc = main(
            [
                "evaluate",
                "--dir",
                str(generated),
                "--name",
                "clic",
                "--assignment",
                str(partial),
            ]
        )
        assert rc == 2

    def test_infeasible_flagged(self, generated, tmp_path, capsys):
        from repro.io import read_bookshelf

        instance = read_bookshelf(generated, "clic")
        g = instance.graph
        lopsided = tmp_path / "lop.txt"
        lopsided.write_text(
            "\n".join(
                f"{g.vertex_name(v)} 0" for v in range(g.num_vertices)
            )
            + "\n"
        )
        rc = main(
            [
                "evaluate",
                "--dir",
                str(generated),
                "--name",
                "clic",
                "--assignment",
                str(lopsided),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "balance constraints : VIOLATED" in out


class TestExperiment:
    def test_table1(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc = main(["experiment", "table1"])
        assert rc == 0
        assert "PASS" in capsys.readouterr().out
