"""Unit tests for benchmark derivation and suite construction."""

import pytest

from repro.hypergraph import CircuitSpec, generate_circuit
from repro.placement import (
    HORIZONTAL,
    VERTICAL,
    Cutline,
    Rect,
    build_suite,
    derive_instance,
    format_table,
    instance_parameters,
    midline,
    place_circuit,
)


@pytest.fixture(scope="module")
def placed():
    circ = generate_circuit(CircuitSpec(num_cells=260, name="d260"), seed=51)
    return circ, place_circuit(circ, die_size=100.0, seed=2)


class TestDeriveInstance:
    def test_whole_die_block(self, placed):
        circ, placement = placed
        inst = derive_instance(
            placement, placement.die, axis=VERTICAL, name="die_v"
        )
        params = instance_parameters(inst)
        assert params.num_cells == circ.num_cells
        # Pads adjacent to cells become terminals.
        assert params.num_terminals > 0
        assert inst.num_fixed == params.num_terminals

    def test_terminals_are_zero_area(self, placed):
        _, placement = placed
        inst = derive_instance(
            placement, placement.die, axis=HORIZONTAL, name="die_h"
        )
        for t in inst.pad_vertices:
            assert inst.graph.area(t) == 0.0

    def test_terminals_fixed_to_closest_side(self, placed):
        _, placement = placed
        block = placement.die
        cut = midline(block, VERTICAL)
        inst = derive_instance(placement, block, cutline=cut, name="x")
        # Every terminal's fixed side matches its position vs the cut.
        for t in inst.pad_vertices:
            name = inst.graph.vertex_name(t)
            orig = next(
                v
                for v in range(placement.graph.num_vertices)
                if placement.graph.vertex_name(v) == name
            )
            x, y = placement.positions[orig]
            expected = cut.side_of(x, y)
            assert inst.fixture_sets[t] == frozenset([expected])

    def test_half_die_block(self, placed):
        circ, placement = placed
        left = Rect(0, 0, 50, 100)
        inst = derive_instance(placement, left, axis=HORIZONTAL, name="half")
        params = instance_parameters(inst)
        assert 0 < params.num_cells < circ.num_cells
        # Cells outside the block must appear only as terminals.
        assert (
            inst.graph.num_vertices
            == params.num_cells + params.num_terminals
        )

    def test_nets_have_at_least_two_pins(self, placed):
        _, placement = placed
        inst = derive_instance(
            placement, Rect(0, 0, 50, 50), axis=VERTICAL, name="q"
        )
        for e in range(inst.graph.num_nets):
            assert inst.graph.net_size(e) >= 2

    def test_requires_axis_or_cutline(self, placed):
        _, placement = placed
        with pytest.raises(ValueError):
            derive_instance(placement, placement.die)

    def test_explicit_cutline(self, placed):
        _, placement = placed
        cut = Cutline(axis=VERTICAL, position=30.0)
        inst = derive_instance(
            placement, placement.die, cutline=cut, name="c30"
        )
        assert inst.num_fixed > 0


class TestSuite:
    def test_builds_all_series(self, placed):
        circ, placement = placed
        suite = build_suite(
            circ, "d260", placement=placement, min_block_cells=8
        )
        names = [e.instance.name for e in suite.entries]
        # A..D blocks x V/H cutlines, with possibly small ones dropped.
        assert len(names) >= 6
        assert any("A_L0_V" in n for n in names)
        assert any("_H" in n for n in names)

    def test_table_format(self, placed):
        circ, placement = placed
        suite = build_suite(circ, "d260", placement=placement)
        text = format_table([suite])
        assert "instance" in text.splitlines()[0]
        assert len(text.splitlines()) == 1 + len(suite.entries)

    def test_instance_lookup(self, placed):
        circ, placement = placed
        suite = build_suite(circ, "d260", placement=placement)
        entry = suite.entries[0]
        assert suite.instance(entry.instance.name) is entry.instance
        with pytest.raises(KeyError):
            suite.instance("missing")

    def test_deeper_blocks_smaller(self, placed):
        circ, placement = placed
        suite = build_suite(circ, "d260", placement=placement)
        sizes_by_level = {}
        for entry in suite.entries:
            sizes_by_level.setdefault(len(entry.path), set()).add(
                entry.parameters.num_cells
            )
        levels = sorted(sizes_by_level)
        for earlier, later in zip(levels, levels[1:]):
            assert max(sizes_by_level[later]) < max(
                sizes_by_level[earlier]
            )

    def test_derived_instances_solvable(self, placed):
        """End to end: a derived instance partitions cleanly."""
        from repro.partition import (
            MultilevelBipartitioner,
            respect_fixture,
        )

        circ, placement = placed
        suite = build_suite(circ, "d260", placement=placement)
        entry = suite.entries[-1]
        inst = entry.instance
        engine = MultilevelBipartitioner(
            inst.graph,
            balance=inst.balance,
            fixture=inst.hard_fixture(),
        )
        result = engine.run(seed=0)
        assert result.solution.verify_cut(inst.graph)
        assert respect_fixture(
            result.solution.parts, inst.hard_fixture()
        )
