"""Unit tests for placement-driven net cost models."""

import pytest

from repro.core import PartitioningInstance
from repro.hypergraph import Hypergraph
from repro.partition import BalanceConstraint
from repro.placement import Cutline, Rect, VERTICAL, midline
from repro.placement.objective import (
    _bbox_half_perimeter,
    terminal_positions_from_placement,
    wirelength_cost_model,
)


def make_instance(nets, num_vertices, terminals, fixture_sides):
    """A tiny instance: zero-area terminals with given fixed sides."""
    areas = [0.0 if v in terminals else 1.0 for v in range(num_vertices)]
    graph = Hypergraph(nets, num_vertices=num_vertices, areas=areas)
    balance = BalanceConstraint(
        min_loads=[0.0, 0.0],
        max_loads=[sum(areas), sum(areas)],
    )
    fixture_sets = [None] * num_vertices
    for t, side in zip(terminals, fixture_sides):
        fixture_sets[t] = frozenset([side])
    return PartitioningInstance(
        graph=graph,
        num_parts=2,
        balance=balance,
        fixture_sets=fixture_sets,
        pad_vertices=list(terminals),
        name="obj",
    )


class TestBBox:
    def test_single_point(self):
        assert _bbox_half_perimeter([(3.0, 4.0)]) == 0.0

    def test_two_points(self):
        assert _bbox_half_perimeter([(0, 0), (3, 4)]) == 7.0

    def test_interior_points_free(self):
        assert _bbox_half_perimeter(
            [(0, 0), (3, 4), (1, 1), (2, 2)]
        ) == 7.0


class TestWirelengthModel:
    def test_terminal_pull_direction(self):
        # One movable cell (0) on a net with a terminal (1) far on the
        # low-x side of the cut: the all-low state must be cheaper.
        block = Rect(0, 0, 100, 100)
        cut = Cutline(axis=VERTICAL, position=50.0)
        instance = make_instance(
            nets=[[0, 1]], num_vertices=2, terminals=[1],
            fixture_sides=[0],
        )
        model = wirelength_cost_model(
            instance, block, {1: (5.0, 50.0)}, cutline=cut
        )
        assert model.cost0[0] < model.cost1[0]
        assert model.cost_cut[0] >= model.cost0[0]

    def test_no_terminal_net_costs_center_distance_when_cut(self):
        block = Rect(0, 0, 100, 100)
        cut = midline(block, VERTICAL)
        instance = make_instance(
            nets=[[0, 1]], num_vertices=2, terminals=[],
            fixture_sides=[],
        )
        model = wirelength_cost_model(
            instance, block, {}, cutline=cut
        )
        assert model.cost0[0] == 0
        assert model.cost1[0] == 0
        # centres (25,50) and (75,50): half-perimeter 50.
        assert model.cost_cut[0] == 50

    def test_terminal_only_net_is_constant(self):
        block = Rect(0, 0, 10, 10)
        instance = make_instance(
            nets=[[0, 1]], num_vertices=2, terminals=[0, 1],
            fixture_sides=[0, 1],
        )
        model = wirelength_cost_model(
            instance,
            block,
            {0: (0.0, 0.0), 1: (4.0, 3.0)},
            cutline=midline(block, VERTICAL),
        )
        assert model.cost0[0] == model.cost1[0] == model.cost_cut[0] == 7

    def test_scale(self):
        block = Rect(0, 0, 100, 100)
        instance = make_instance(
            nets=[[0, 1]], num_vertices=2, terminals=[],
            fixture_sides=[],
        )
        coarse = wirelength_cost_model(
            instance, block, {}, cutline=midline(block, VERTICAL),
            scale=1.0,
        )
        fine = wirelength_cost_model(
            instance, block, {}, cutline=midline(block, VERTICAL),
            scale=10.0,
        )
        assert fine.cost_cut[0] == 10 * coarse.cost_cut[0]

    def test_net_weight_scales_cost(self):
        block = Rect(0, 0, 100, 100)
        g = Hypergraph(
            [[0, 1]], num_vertices=2, areas=[1.0, 1.0], net_weights=[3]
        )
        instance = PartitioningInstance(
            graph=g,
            num_parts=2,
            balance=BalanceConstraint(
                min_loads=[0, 0], max_loads=[2, 2]
            ),
            name="w",
        )
        model = wirelength_cost_model(
            instance, block, {}, cutline=midline(block, VERTICAL)
        )
        assert model.cost_cut[0] == 150  # 3 * 50


class TestTerminalPositions:
    def test_requires_id_map(self):
        instance = make_instance(
            nets=[[0, 1]], num_vertices=2, terminals=[1],
            fixture_sides=[0],
        )
        with pytest.raises(ValueError):
            terminal_positions_from_placement(instance, [(0, 0)] * 2)

    def test_unknown_terminal(self):
        instance = make_instance(
            nets=[[0, 1]], num_vertices=2, terminals=[1],
            fixture_sides=[0],
        )
        with pytest.raises(KeyError):
            terminal_positions_from_placement(
                instance, [(0, 0)] * 2, original_ids={"other": 0}
            )

    def test_resolution_by_name(self):
        instance = make_instance(
            nets=[[0, 1]], num_vertices=2, terminals=[1],
            fixture_sides=[0],
        )
        name = instance.graph.vertex_name(1)
        positions = terminal_positions_from_placement(
            instance,
            [(1.0, 2.0), (3.0, 4.0)],
            original_ids={name: 1},
        )
        assert positions == {1: (3.0, 4.0)}
