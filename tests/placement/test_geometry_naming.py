"""Unit tests for placement geometry and block naming."""

import pytest

from repro.placement import (
    HORIZONTAL,
    VERTICAL,
    Cutline,
    Rect,
    block_name,
    block_region,
    midline,
    parse_block_name,
)


class TestRect:
    def test_dimensions(self):
        r = Rect(0, 0, 4, 2)
        assert r.width == 4
        assert r.height == 2
        assert r.area == 8
        assert r.center == (2.0, 1.0)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Rect(1, 0, 0, 1)

    def test_contains(self):
        r = Rect(0, 0, 2, 2)
        assert r.contains(1, 1)
        assert r.contains(0, 0)  # closed boundary
        assert r.contains(2, 2)
        assert not r.contains(2.1, 1)

    def test_long_axis(self):
        assert Rect(0, 0, 4, 2).long_axis() == VERTICAL
        assert Rect(0, 0, 2, 4).long_axis() == HORIZONTAL
        assert Rect(0, 0, 2, 2).long_axis() == VERTICAL  # tie

    def test_split_vertical(self):
        low, high = Rect(0, 0, 4, 2).split(VERTICAL)
        assert low == Rect(0, 0, 2, 2)
        assert high == Rect(2, 0, 4, 2)

    def test_split_horizontal_fraction(self):
        low, high = Rect(0, 0, 4, 10).split(HORIZONTAL, 0.3)
        assert low.height == pytest.approx(3.0)
        assert high.height == pytest.approx(7.0)

    def test_split_bad_fraction(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 1, 1).split(VERTICAL, 0.0)
        with pytest.raises(ValueError):
            Rect(0, 0, 1, 1).split(VERTICAL, 1.0)

    def test_split_bad_axis(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 1, 1).split("D")


class TestCutline:
    def test_side_of_vertical(self):
        c = Cutline(axis=VERTICAL, position=5.0)
        assert c.side_of(4.9, 100) == 0
        assert c.side_of(5.0, 0) == 0  # on-line convention
        assert c.side_of(5.1, 0) == 1

    def test_side_of_horizontal(self):
        c = Cutline(axis=HORIZONTAL, position=2.0)
        assert c.side_of(0, 1.0) == 0
        assert c.side_of(0, 3.0) == 1

    def test_bad_axis(self):
        with pytest.raises(ValueError):
            Cutline(axis="Q", position=0.0)

    def test_midline(self):
        r = Rect(0, 0, 10, 4)
        assert midline(r, VERTICAL).position == 5.0
        assert midline(r, HORIZONTAL).position == 2.0


class TestNaming:
    def test_die_is_l0(self):
        assert block_name([]) == "L0"

    def test_nested_names(self):
        assert block_name([(VERTICAL, 0)]) == "L1_V0"
        assert (
            block_name([(VERTICAL, 0), (HORIZONTAL, 1)]) == "L2_V0_H1"
        )

    def test_bad_side(self):
        with pytest.raises(ValueError):
            block_name([(VERTICAL, 2)])

    def test_bad_axis(self):
        with pytest.raises(ValueError):
            block_name([("Q", 0)])

    def test_parse_roundtrip(self):
        for path in (
            [],
            [(VERTICAL, 0)],
            [(VERTICAL, 1), (HORIZONTAL, 0), (VERTICAL, 1)],
        ):
            assert parse_block_name(block_name(path)) == path

    def test_parse_errors(self):
        with pytest.raises(ValueError):
            parse_block_name("V0")
        with pytest.raises(ValueError):
            parse_block_name("L2_V0")  # level/step count mismatch
        with pytest.raises(ValueError):
            parse_block_name("L1_X0")

    def test_block_region(self):
        die = Rect(0, 0, 8, 8)
        region = block_region(die, [(VERTICAL, 0), (HORIZONTAL, 1)])
        assert region == Rect(0, 4, 4, 8)

    def test_block_region_die(self):
        die = Rect(0, 0, 8, 8)
        assert block_region(die, []) == die
