"""Unit tests for the top-down placer."""

import random

import pytest

from repro.hypergraph import CircuitSpec, generate_circuit
from repro.placement import (
    Placement,
    PlacerConfig,
    Rect,
    TopDownPlacer,
    perimeter_pad_positions,
    place_circuit,
)


@pytest.fixture(scope="module")
def placed():
    circ = generate_circuit(CircuitSpec(num_cells=220, name="p220"), seed=41)
    return circ, place_circuit(circ, die_size=100.0, seed=1)


class TestPadPositions:
    def test_on_boundary(self):
        die = Rect(0, 0, 10, 10)
        positions = perimeter_pad_positions(die, list(range(12)))
        assert len(positions) == 12
        for x, y in positions.values():
            on_edge = (
                x in (die.x0, die.x1) or y in (die.y0, die.y1)
            )
            assert on_edge
            assert die.contains(x, y)

    def test_spread_over_all_sides(self):
        die = Rect(0, 0, 10, 10)
        positions = perimeter_pad_positions(die, list(range(40)))
        sides = set()
        for x, y in positions.values():
            if y == die.y0:
                sides.add("bottom")
            elif y == die.y1:
                sides.add("top")
            elif x == die.x0:
                sides.add("left")
            elif x == die.x1:
                sides.add("right")
        assert sides == {"bottom", "top", "left", "right"}

    def test_empty(self):
        assert perimeter_pad_positions(Rect(0, 0, 1, 1), []) == {}


class TestPlacer:
    def test_all_cells_inside_die(self, placed):
        circ, placement = placed
        for v in circ.cell_vertices:
            x, y = placement.positions[v]
            assert placement.die.contains(x, y)

    def test_pads_on_given_positions(self, placed):
        circ, placement = placed
        expected = perimeter_pad_positions(
            placement.die, circ.pad_vertices
        )
        for pad in circ.pad_vertices:
            assert placement.positions[pad] == expected[pad]

    def test_beats_random_placement_on_hpwl(self, placed):
        circ, placement = placed
        rng = random.Random(0)
        random_positions = [
            (rng.uniform(0, 100), rng.uniform(0, 100))
            for _ in range(circ.graph.num_vertices)
        ]
        random_placement = Placement(
            die=placement.die,
            positions=random_positions,
            graph=circ.graph,
            pad_vertices=circ.pad_vertices,
        )
        assert (
            placement.half_perimeter_wirelength()
            < 0.6 * random_placement.half_perimeter_wirelength()
        )

    def test_deterministic(self):
        circ = generate_circuit(CircuitSpec(num_cells=120), seed=42)
        a = place_circuit(circ, seed=3)
        b = place_circuit(circ, seed=3)
        assert a.positions == b.positions

    def test_missing_pad_position_rejected(self):
        circ = generate_circuit(CircuitSpec(num_cells=50), seed=43)
        die = Rect(0, 0, 10, 10)
        with pytest.raises(ValueError, match="no position"):
            TopDownPlacer(
                circ.graph,
                die,
                pad_positions={},
                pad_vertices=circ.pad_vertices,
            )

    def test_leaf_size_config(self):
        circ = generate_circuit(CircuitSpec(num_cells=60), seed=44)
        placement = place_circuit(
            circ,
            config=PlacerConfig(leaf_size=30),
            seed=1,
        )
        assert len(placement.positions) == circ.graph.num_vertices

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PlacerConfig(leaf_size=0)
        with pytest.raises(ValueError):
            PlacerConfig(tolerance=0.0)

    def test_cells_spread_not_stacked(self, placed):
        circ, placement = placed
        cell_positions = {
            placement.positions[v] for v in circ.cell_vertices
        }
        # Leaf grids may coincide occasionally; require broad spread.
        assert len(cell_positions) > 0.8 * circ.num_cells

    def test_hpwl_nonnegative(self, placed):
        _, placement = placed
        assert placement.half_perimeter_wirelength() >= 0.0
