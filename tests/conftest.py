"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.runtime.observe import recorder as _observe_recorder

from repro.hypergraph import (
    CircuitSpec,
    Hypergraph,
    chain_hypergraph,
    clustered_hypergraph,
    generate_circuit,
    grid_hypergraph,
)
from repro.partition import relative_bipartition_balance


@pytest.fixture(autouse=True)
def _reset_observe_recorder():
    """Restore the global null recorder, even if a test failed mid-use."""
    yield
    _observe_recorder.set_recorder(None)


@pytest.fixture
def triangle() -> Hypergraph:
    """Three vertices, three 2-pin nets forming a triangle."""
    return Hypergraph([[0, 1], [1, 2], [0, 2]], num_vertices=3)


@pytest.fixture
def small_hypergraph() -> Hypergraph:
    """A hand-checkable 6-vertex hypergraph with a 3-pin net.

    Nets: {0,1}, {1,2,3}, {3,4}, {4,5}, {0,5}.  Unit areas, unit weights.
    """
    return Hypergraph(
        [[0, 1], [1, 2, 3], [3, 4], [4, 5], [0, 5]],
        num_vertices=6,
    )


@pytest.fixture
def weighted_hypergraph() -> Hypergraph:
    """Varied areas and net weights for balance/gain testing."""
    return Hypergraph(
        [[0, 1], [1, 2], [2, 3], [3, 0], [0, 2]],
        num_vertices=4,
        areas=[1.0, 2.0, 3.0, 2.0],
        net_weights=[1, 2, 1, 3, 2],
    )


@pytest.fixture
def chain20() -> Hypergraph:
    """20-vertex path; minimum bisection cut is exactly 1."""
    return chain_hypergraph(20)


@pytest.fixture
def grid8x8() -> Hypergraph:
    """8x8 grid; minimum bisection cut is exactly 8."""
    return grid_hypergraph(8, 8)


@pytest.fixture
def clusters4() -> Hypergraph:
    """Four dense 8-vertex clusters with sparse bridges."""
    return clustered_hypergraph(
        num_clusters=4, cluster_size=8, intra_nets=24, inter_nets=6, seed=11
    )


@pytest.fixture(scope="session")
def tiny_circuit():
    """A 300-cell synthetic circuit shared across integration tests."""
    return generate_circuit(CircuitSpec(num_cells=300, name="t300"), seed=77)


@pytest.fixture(scope="session")
def tiny_balance(tiny_circuit):
    """The paper's 2% balance for the tiny circuit."""
    return relative_bipartition_balance(tiny_circuit.graph.total_area, 0.02)


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG."""
    return random.Random(12345)
