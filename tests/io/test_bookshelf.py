"""Unit tests for the bookshelf fixed-terminals format."""

import pytest

from repro.core import PartitioningInstance, bipartition_instance
from repro.hypergraph import CircuitSpec, Hypergraph, generate_circuit
from repro.io import BookshelfFormatError, read_bookshelf, write_bookshelf
from repro.partition import (
    BalanceConstraint,
    MultiBalanceConstraint,
)


def make_instance(name="demo", num_cells=60):
    circ = generate_circuit(CircuitSpec(num_cells=num_cells), seed=5)
    inst = bipartition_instance(
        circ.graph,
        pad_vertices=circ.pad_vertices,
        name=name,
    )
    inst.fix_vertex(0, 0)
    inst.fix_vertex(3, 1)
    inst.fix_vertex(7, [0, 1])
    return inst


class TestRoundTrip:
    def test_structure(self, tmp_path):
        inst = make_instance()
        write_bookshelf(inst, tmp_path)
        back = read_bookshelf(tmp_path, "demo")
        assert back.graph.structurally_equal(inst.graph)
        assert back.num_parts == 2
        assert back.pad_vertices == inst.pad_vertices

    def test_fixture_sets(self, tmp_path):
        inst = make_instance()
        write_bookshelf(inst, tmp_path)
        back = read_bookshelf(tmp_path, "demo")
        assert back.fixture_sets[0] == frozenset({0})
        assert back.fixture_sets[3] == frozenset({1})
        assert back.fixture_sets[7] == frozenset({0, 1})
        assert back.fixture_sets[1] is None
        assert back.num_fixed == 3
        assert back.num_hard_fixed == 2

    def test_relative_balance_roundtrip(self, tmp_path):
        inst = make_instance()
        write_bookshelf(inst, tmp_path)
        back = read_bookshelf(tmp_path, "demo")
        for a, b in zip(back.balance.min_loads, inst.balance.min_loads):
            assert a == pytest.approx(b)
        for a, b in zip(back.balance.max_loads, inst.balance.max_loads):
            assert a == pytest.approx(b)

    def test_absolute_semantics(self, tmp_path):
        inst = make_instance()
        write_bookshelf(inst, tmp_path, relative=False)
        back = read_bookshelf(tmp_path, "demo")
        assert back.balance.min_loads[0] == 0.0
        assert back.balance.max_loads[0] == pytest.approx(
            inst.balance.max_loads[0]
        )

    def test_net_weights_roundtrip(self, tmp_path):
        g = Hypergraph(
            [[0, 1], [1, 2]], num_vertices=3, net_weights=[4, 1]
        )
        inst = bipartition_instance(g, name="wts")
        write_bookshelf(inst, tmp_path)
        back = read_bookshelf(tmp_path, "wts")
        assert list(back.graph.net_weights) == [4, 1]

    def test_multi_resource_roundtrip(self, tmp_path):
        g = Hypergraph(
            [[0, 1], [1, 2]],
            num_vertices=3,
            areas=[1.0, 2.0, 3.0],
            extra_resources=[[10.0, 0.0, 5.0]],
        )
        area = BalanceConstraint(min_loads=[2.4, 2.4], max_loads=[3.6, 3.6])
        power = BalanceConstraint(min_loads=[6.0, 6.0], max_loads=[9.0, 9.0])
        inst = PartitioningInstance(
            graph=g,
            num_parts=2,
            balance=MultiBalanceConstraint(constraints=[area, power]),
            name="multi",
        )
        write_bookshelf(inst, tmp_path)
        back = read_bookshelf(tmp_path, "multi")
        assert back.graph.num_resources == 2
        assert isinstance(back.balance, MultiBalanceConstraint)
        assert back.balance.num_resources == 2
        assert back.balance.constraints[1].max_loads[0] == pytest.approx(9.0)

    def test_no_fix_file_when_all_free(self, tmp_path):
        circ = generate_circuit(CircuitSpec(num_cells=30), seed=1)
        inst = bipartition_instance(circ.graph, name="free")
        write_bookshelf(inst, tmp_path)
        assert not (tmp_path / "free.fix").exists()
        back = read_bookshelf(tmp_path, "free")
        assert back.num_fixed == 0


class TestErrors:
    def test_missing_files(self, tmp_path):
        with pytest.raises(BookshelfFormatError, match="missing"):
            read_bookshelf(tmp_path, "ghost")

    def _base(self, tmp_path):
        inst = make_instance()
        write_bookshelf(inst, tmp_path)
        return tmp_path

    def test_unknown_node_in_nets(self, tmp_path):
        d = self._base(tmp_path)
        nets = d / "demo.nets"
        nets.write_text(
            "NumNets : 1\nNumPins : 2\nNetDegree : 2 n0\n ghost\n c1\n"
        )
        with pytest.raises(BookshelfFormatError, match="unknown node"):
            read_bookshelf(d, "demo")

    def test_short_net(self, tmp_path):
        d = self._base(tmp_path)
        (d / "demo.nets").write_text(
            "NumNets : 1\nNumPins : 2\nNetDegree : 3 n0\n c0\n c1\n"
        )
        with pytest.raises(BookshelfFormatError, match="short"):
            read_bookshelf(d, "demo")

    def test_num_nodes_mismatch(self, tmp_path):
        d = self._base(tmp_path)
        nodes = d / "demo.nodes"
        content = nodes.read_text().replace(
            "NumNodes : ", "NumNodes : 9"
        )
        nodes.write_text(content)
        with pytest.raises(BookshelfFormatError, match="NumNodes"):
            read_bookshelf(d, "demo")

    def test_bad_fix_node(self, tmp_path):
        d = self._base(tmp_path)
        (d / "demo.fix").write_text("ghost 0\n")
        with pytest.raises(BookshelfFormatError, match="unknown node"):
            read_bookshelf(d, "demo")

    def test_bad_fix_pid(self, tmp_path):
        d = self._base(tmp_path)
        (d / "demo.fix").write_text("c0 zero\n")
        with pytest.raises(BookshelfFormatError, match="partition id"):
            read_bookshelf(d, "demo")

    def test_missing_partition_row(self, tmp_path):
        d = self._base(tmp_path)
        (d / "demo.blk").write_text(
            "NumPartitions : 2\nNumResources : 1\nSemantics : relative\n"
            "0 capacity 50 tolerance 2\n"
        )
        with pytest.raises(BookshelfFormatError, match="one line per"):
            read_bookshelf(d, "demo")

    def test_bad_semantics(self, tmp_path):
        d = self._base(tmp_path)
        blk = d / "demo.blk"
        blk.write_text(blk.read_text().replace("relative", "sideways"))
        with pytest.raises(BookshelfFormatError, match="semantics"):
            read_bookshelf(d, "demo")

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        d = self._base(tmp_path)
        fix = d / "demo.fix"
        fix.write_text("# comment\n\nc0 1\n")
        back = read_bookshelf(d, "demo")
        assert back.fixture_sets[0] == frozenset({1})


class TestInstanceModel:
    def test_hard_fixture_reduction(self):
        inst = make_instance()
        fixture = inst.hard_fixture()
        assert fixture[0] == 0
        assert fixture[3] == 1
        assert fixture[7] == -1  # OR set relaxed to free
        assert fixture[1] == -1

    def test_is_assignment_legal(self):
        inst = make_instance()
        n = inst.graph.num_vertices
        parts = [0] * n
        parts[3] = 1
        assert inst.is_assignment_legal(parts)
        parts[0] = 1
        assert not inst.is_assignment_legal(parts)

    def test_or_semantics(self):
        inst = make_instance()
        n = inst.graph.num_vertices
        for side in (0, 1):
            parts = [0] * n
            parts[3] = 1
            parts[7] = side
            assert inst.is_assignment_legal(parts)

    def test_fix_and_free(self):
        inst = make_instance()
        inst.fix_vertex(10, 1)
        assert inst.fixture_sets[10] == frozenset({1})
        inst.free_vertex(10)
        assert inst.fixture_sets[10] is None

    def test_invalid_fix_rejected(self):
        inst = make_instance()
        with pytest.raises(ValueError):
            inst.fix_vertex(0, 5)
        with pytest.raises(ValueError):
            inst.fix_vertex(0, [])

    def test_fixed_fraction(self):
        inst = make_instance()
        assert inst.fixed_fraction == pytest.approx(
            3 / inst.graph.num_vertices
        )

    def test_balance_parts_mismatch_rejected(self):
        g = Hypergraph([[0, 1]], num_vertices=2)
        bad = BalanceConstraint(min_loads=[0], max_loads=[2])
        with pytest.raises(ValueError):
            PartitioningInstance(
                graph=g, num_parts=2, balance=bad, name="bad"
            )

    def test_empty_fixture_set_rejected(self):
        g = Hypergraph([[0, 1]], num_vertices=2)
        balance = BalanceConstraint(min_loads=[0, 0], max_loads=[2, 2])
        with pytest.raises(ValueError):
            PartitioningInstance(
                graph=g,
                num_parts=2,
                balance=balance,
                fixture_sets=[frozenset(), None],
            )
