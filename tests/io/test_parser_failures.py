"""Parser-failure tests: truncated and garbage netlists must raise
:class:`HypergraphError` subclasses that name the file and the 1-based
line of the offending content."""

import pytest

from repro.hypergraph.hypergraph import HypergraphError
from repro.io.hgr import HgrFormatError, read_fix_file, read_hgr
from repro.io.netd import NetDFormatError, read_netd


def _write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return path


class TestHgrFailures:
    def test_error_is_a_hypergraph_error(self, tmp_path):
        path = _write(tmp_path, "bad.hgr", "not a header\n")
        with pytest.raises(HypergraphError):
            read_hgr(path)

    def test_empty_file(self, tmp_path):
        path = _write(tmp_path, "empty.hgr", "% only a comment\n\n")
        with pytest.raises(HgrFormatError, match=r"empty\.hgr: empty"):
            read_hgr(path)

    def test_garbage_header_names_line(self, tmp_path):
        path = _write(tmp_path, "g.hgr", "% banner\ntwo three\n")
        with pytest.raises(HgrFormatError, match=r"g\.hgr:2: bad header"):
            read_hgr(path)

    def test_unsupported_fmt_code(self, tmp_path):
        path = _write(tmp_path, "f.hgr", "1 2 7\n1 2\n")
        with pytest.raises(
            HgrFormatError, match=r"f\.hgr:1: unsupported fmt code 7"
        ):
            read_hgr(path)

    def test_truncated_file(self, tmp_path):
        path = _write(tmp_path, "t.hgr", "3 4\n1 2\n2 3\n")
        with pytest.raises(HgrFormatError, match=r"truncated"):
            read_hgr(path)

    def test_garbage_net_line_names_line(self, tmp_path):
        path = _write(tmp_path, "n.hgr", "2 3\n1 2\n2 x\n")
        with pytest.raises(
            HgrFormatError, match=r"n\.hgr:3: bad net line"
        ):
            read_hgr(path)

    def test_pin_out_of_range_names_line(self, tmp_path):
        path = _write(tmp_path, "r.hgr", "1 2\n1 5\n")
        with pytest.raises(
            HgrFormatError, match=r"r\.hgr:2: net 0 references vertex 5"
        ):
            read_hgr(path)

    def test_comment_lines_do_not_shift_reported_lineno(self, tmp_path):
        # The bad net line is the 5th physical line; comments and blanks
        # above it must not make the parser report line 3.
        text = "% header comment\n\n2 2\n1 2\n% mid comment\nbogus\n"
        path = _write(tmp_path, "c.hgr", text)
        with pytest.raises(
            HgrFormatError, match=r"c\.hgr:6: bad net line"
        ):
            read_hgr(path)

    def test_garbage_vertex_weight_names_line(self, tmp_path):
        path = _write(tmp_path, "w.hgr", "1 2 10\n1 2\n3\nheavy\n")
        with pytest.raises(
            HgrFormatError, match=r"w\.hgr:4: bad vertex-weight line"
        ):
            read_hgr(path)


class TestFixFileFailures:
    def test_garbage_value_names_line(self, tmp_path):
        path = _write(tmp_path, "v.fix", "0\n1\nmaybe\n")
        with pytest.raises(
            HgrFormatError, match=r"v\.fix:3: bad fix value"
        ):
            read_fix_file(path)

    def test_out_of_range_value_names_line(self, tmp_path):
        path = _write(tmp_path, "o.fix", "0\n-3\n")
        with pytest.raises(HgrFormatError, match=r"o\.fix:2: fix entry 1"):
            read_fix_file(path)

    def test_length_mismatch_names_file(self, tmp_path):
        path = _write(tmp_path, "l.fix", "0\n1\n")
        with pytest.raises(
            HgrFormatError, match=r"l\.fix: fix file has 2 lines"
        ):
            read_fix_file(path, num_vertices=3)


GOOD_NET = "0\n4\n2\n3\n3\na0 s\na1 l\na1 s\na2 l\n"


class TestNetDFailures:
    def test_error_is_a_hypergraph_error(self, tmp_path):
        path = _write(tmp_path, "x.net", "garbage\n")
        with pytest.raises(HypergraphError):
            read_netd(path)

    def test_truncated_header(self, tmp_path):
        path = _write(tmp_path, "t.net", "0\n4\n")
        with pytest.raises(
            NetDFormatError, match=r"t\.net: truncated \.net header"
        ):
            read_netd(path)

    def test_garbage_header_names_line(self, tmp_path):
        path = _write(tmp_path, "h.net", "0\n4\ntwo\n3\n3\n")
        with pytest.raises(
            NetDFormatError, match=r"h\.net:3: bad \.net header"
        ):
            read_netd(path)

    def test_bad_magic_names_line(self, tmp_path):
        path = _write(tmp_path, "m.net", "9\n4\n2\n3\n3\na0 s\n")
        with pytest.raises(
            NetDFormatError, match=r"m\.net:1: unsupported \.net magic 9"
        ):
            read_netd(path)

    def test_bad_pin_line_names_line(self, tmp_path):
        text = "0\n4\n2\n3\n3\na0 s\na1 q\na1 s\na2 l\n"
        path = _write(tmp_path, "p.net", text)
        with pytest.raises(
            NetDFormatError, match=r"p\.net:7: bad pin line"
        ):
            read_netd(path)

    def test_first_pin_must_start_a_net(self, tmp_path):
        path = _write(tmp_path, "s.net", "0\n1\n1\n1\n1\na0 l\n")
        with pytest.raises(
            NetDFormatError, match=r"s\.net:6: first pin line"
        ):
            read_netd(path)

    def test_count_mismatch_names_file(self, tmp_path):
        path = _write(tmp_path, "c.net", "0\n4\n5\n3\n3\na0 s\na1 l\n")
        with pytest.raises(
            NetDFormatError, match=r"c\.net: declares 5 nets"
        ):
            read_netd(path)

    def test_bad_are_line_names_line(self, tmp_path):
        net = _write(tmp_path, "ok.net", GOOD_NET)
        are = _write(tmp_path, "bad.are", "a0 1\na1 wide\na2 1\n")
        with pytest.raises(
            NetDFormatError, match=r"bad\.are:2: bad area"
        ):
            read_netd(net, are)

    def test_short_are_line_names_line(self, tmp_path):
        net = _write(tmp_path, "ok.net", GOOD_NET)
        are = _write(tmp_path, "short.are", "a0 1\na1\n")
        with pytest.raises(
            NetDFormatError, match=r"short\.are:2: bad \.are line"
        ):
            read_netd(net, are)
