"""Unit and property tests for the hMetis .hgr format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypergraph import CircuitSpec, Hypergraph, generate_circuit
from repro.io import (
    HgrFormatError,
    read_fix_file,
    read_hgr,
    write_fix_file,
    write_hgr,
)
from repro.partition import FREE


class TestRoundTrip:
    def test_unweighted(self, tmp_path):
        g = Hypergraph([[0, 1], [1, 2, 3]], num_vertices=4)
        p = tmp_path / "a.hgr"
        write_hgr(g, p)
        assert p.read_text().splitlines()[0] == "2 4"
        assert read_hgr(p).structurally_equal(g)

    def test_net_weights(self, tmp_path):
        g = Hypergraph(
            [[0, 1], [1, 2]], num_vertices=3, net_weights=[5, 1]
        )
        p = tmp_path / "b.hgr"
        write_hgr(g, p)
        assert p.read_text().splitlines()[0] == "2 3 1"
        assert read_hgr(p).structurally_equal(g)

    def test_vertex_weights(self, tmp_path):
        g = Hypergraph(
            [[0, 1]], num_vertices=2, areas=[3.0, 7.0]
        )
        p = tmp_path / "c.hgr"
        write_hgr(g, p)
        assert p.read_text().splitlines()[0] == "1 2 10"
        assert read_hgr(p).structurally_equal(g)

    def test_both_weights(self, tmp_path):
        g = Hypergraph(
            [[0, 1], [0, 2]],
            num_vertices=3,
            areas=[2.0, 1.0, 4.0],
            net_weights=[3, 1],
        )
        p = tmp_path / "d.hgr"
        write_hgr(g, p)
        assert p.read_text().splitlines()[0] == "2 3 11"
        assert read_hgr(p).structurally_equal(g)

    def test_circuit_roundtrip(self, tmp_path):
        circ = generate_circuit(CircuitSpec(num_cells=120), seed=4)
        p = tmp_path / "e.hgr"
        write_hgr(circ.graph, p)
        back = read_hgr(p)
        assert back.num_vertices == circ.graph.num_vertices
        assert back.num_nets == circ.graph.num_nets
        assert back.num_pins == circ.graph.num_pins

    def test_empty_net_rejected(self, tmp_path):
        g = Hypergraph([[]], num_vertices=1)
        with pytest.raises(HgrFormatError):
            write_hgr(g, tmp_path / "f.hgr")


class TestReadErrors:
    def _read(self, tmp_path, text):
        p = tmp_path / "bad.hgr"
        p.write_text(text)
        return read_hgr(p)

    def test_empty_file(self, tmp_path):
        with pytest.raises(HgrFormatError, match="empty"):
            self._read(tmp_path, "")

    def test_bad_header(self, tmp_path):
        with pytest.raises(HgrFormatError, match="header"):
            self._read(tmp_path, "5\n")

    def test_unsupported_fmt(self, tmp_path):
        with pytest.raises(HgrFormatError, match="fmt"):
            self._read(tmp_path, "1 2 7\n1 2\n")

    def test_line_count_mismatch(self, tmp_path):
        with pytest.raises(HgrFormatError, match="lines"):
            self._read(tmp_path, "2 3\n1 2\n")

    def test_pin_out_of_range(self, tmp_path):
        with pytest.raises(HgrFormatError, match="outside"):
            self._read(tmp_path, "1 2\n1 3\n")

    def test_comments_ignored(self, tmp_path):
        g = self._read(tmp_path, "% header comment\n1 2\n1 2 % trailing\n")
        assert g.num_nets == 1
        assert list(g.net_pins(0)) == [0, 1]

    def test_weighted_net_without_pins(self, tmp_path):
        with pytest.raises(HgrFormatError, match="pins"):
            self._read(tmp_path, "1 2 1\n5\n")


class TestFixFile:
    def test_roundtrip(self, tmp_path):
        fixture = [FREE, 0, 1, FREE]
        p = tmp_path / "x.fix"
        write_fix_file(fixture, p)
        assert read_fix_file(p, num_vertices=4) == fixture

    def test_length_check(self, tmp_path):
        p = tmp_path / "y.fix"
        write_fix_file([0, 1], p)
        with pytest.raises(HgrFormatError, match="lines"):
            read_fix_file(p, num_vertices=3)

    def test_bad_value(self, tmp_path):
        p = tmp_path / "z.fix"
        p.write_text("0\n-5\n")
        with pytest.raises(HgrFormatError, match=">= -1"):
            read_fix_file(p)

    def test_non_integer(self, tmp_path):
        p = tmp_path / "w.fix"
        p.write_text("zero\n")
        with pytest.raises(HgrFormatError, match="bad fix"):
            read_fix_file(p)


@st.composite
def integer_hypergraphs(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    num_nets = draw(st.integers(min_value=1, max_value=15))
    nets = []
    for _ in range(num_nets):
        size = draw(st.integers(min_value=1, max_value=min(4, n)))
        nets.append(
            draw(
                st.lists(
                    st.integers(min_value=0, max_value=n - 1),
                    min_size=size,
                    max_size=size,
                    unique=True,
                )
            )
        )
    areas = draw(
        st.lists(
            st.integers(min_value=1, max_value=20),
            min_size=n,
            max_size=n,
        )
    )
    weights = draw(
        st.lists(
            st.integers(min_value=1, max_value=9),
            min_size=num_nets,
            max_size=num_nets,
        )
    )
    return Hypergraph(
        nets,
        num_vertices=n,
        areas=[float(a) for a in areas],
        net_weights=weights,
    )


@given(integer_hypergraphs())
@settings(max_examples=60, deadline=None)
def test_hgr_roundtrip_property(g):
    # hypothesis and pytest tmp_path don't mix; use a manual tmp dir.
    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as d:
        path = Path(d) / "g.hgr"
        write_hgr(g, path)
        assert read_hgr(path).structurally_equal(g)
