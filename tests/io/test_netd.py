"""Unit tests for the .net/.are reader and writer."""

import pytest

from repro.hypergraph import CircuitSpec, Hypergraph, generate_circuit
from repro.io import NetDFormatError, read_netd, write_netd


class TestRoundTrip:
    def test_structure_preserved(self, tmp_path):
        circ = generate_circuit(CircuitSpec(num_cells=80), seed=9)
        net = tmp_path / "c.net"
        are = tmp_path / "c.are"
        write_netd(circ.graph, net, are, pad_vertices=circ.pad_vertices)
        g2, pads = read_netd(net, are)
        assert g2.num_vertices == circ.graph.num_vertices
        assert g2.num_nets == circ.graph.num_nets
        assert g2.num_pins == circ.graph.num_pins
        assert len(pads) == len(circ.pad_vertices)
        assert sorted(g2.areas) == sorted(circ.graph.areas)

    def test_net_sizes_preserved(self, tmp_path):
        g = Hypergraph([[0, 1, 2], [2, 3], [0, 3]], num_vertices=4)
        net = tmp_path / "x.net"
        write_netd(g, net)
        g2, _ = read_netd(net)
        assert sorted(g2.net_size(e) for e in range(3)) == [2, 2, 3]

    def test_without_are_file(self, tmp_path):
        g = Hypergraph([[0, 1]], num_vertices=2)
        net = tmp_path / "x.net"
        write_netd(g, net)
        g2, pads = read_netd(net)
        assert g2.area(0) == 1.0
        assert pads == []

    def test_pads_get_zero_default_area(self, tmp_path):
        g = Hypergraph([[0, 1]], num_vertices=2)
        net = tmp_path / "x.net"
        write_netd(g, net, pad_vertices=[1])
        g2, pads = read_netd(net)
        assert len(pads) == 1
        assert g2.area(pads[0]) == 0.0

    def test_isolated_module_with_area(self, tmp_path):
        g = Hypergraph([[0, 1]], num_vertices=3, areas=[1.0, 1.0, 7.0])
        net = tmp_path / "x.net"
        are = tmp_path / "x.are"
        write_netd(g, net, are)
        g2, _ = read_netd(net, are)
        assert g2.num_vertices == 3
        assert sorted(g2.areas) == [1.0, 1.0, 7.0]


class TestHeaderValidation:
    def _write(self, tmp_path, text):
        p = tmp_path / "bad.net"
        p.write_text(text)
        return p

    def test_truncated_header(self, tmp_path):
        p = self._write(tmp_path, "0\n2\n1\n")
        with pytest.raises(NetDFormatError, match="truncated"):
            read_netd(p)

    def test_bad_magic(self, tmp_path):
        p = self._write(tmp_path, "9\n2\n1\n2\n2\na0 s\na1 l\n")
        with pytest.raises(NetDFormatError, match="magic"):
            read_netd(p)

    def test_wrong_net_count(self, tmp_path):
        p = self._write(tmp_path, "0\n2\n5\n2\n2\na0 s\na1 l\n")
        with pytest.raises(NetDFormatError, match="nets"):
            read_netd(p)

    def test_wrong_pin_count(self, tmp_path):
        p = self._write(tmp_path, "0\n9\n1\n2\n2\na0 s\na1 l\n")
        with pytest.raises(NetDFormatError, match="pins"):
            read_netd(p)

    def test_bad_pad_offset(self, tmp_path):
        p = self._write(tmp_path, "0\n2\n1\n2\n5\na0 s\na1 l\n")
        with pytest.raises(NetDFormatError, match="pad offset"):
            read_netd(p)

    def test_first_line_must_start_net(self, tmp_path):
        p = self._write(tmp_path, "0\n2\n1\n2\n2\na0 l\na1 l\n")
        with pytest.raises(NetDFormatError, match="first pin"):
            read_netd(p)

    def test_bad_pin_marker(self, tmp_path):
        p = self._write(tmp_path, "0\n2\n1\n2\n2\na0 s\na1 x\n")
        with pytest.raises(NetDFormatError, match="pin line"):
            read_netd(p)

    def test_bad_are_line(self, tmp_path):
        net = self._write(tmp_path, "0\n2\n1\n2\n2\na0 s\na1 l\n")
        are = tmp_path / "bad.are"
        are.write_text("a0\n")
        with pytest.raises(NetDFormatError, match=".are"):
            read_netd(net, are)

    def test_bad_are_value(self, tmp_path):
        net = self._write(tmp_path, "0\n2\n1\n2\n2\na0 s\na1 l\n")
        are = tmp_path / "bad.are"
        are.write_text("a0 plenty\n")
        with pytest.raises(NetDFormatError, match="area"):
            read_netd(net, are)

    def test_module_count_mismatch(self, tmp_path):
        # Declares 1 module but references 2.
        p = self._write(tmp_path, "0\n2\n1\n1\n1\na0 s\na1 l\n")
        with pytest.raises(NetDFormatError, match="modules"):
            read_netd(p)
