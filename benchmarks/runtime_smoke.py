"""Parallel-vs-serial smoke benchmark for the process-pool runtime.

Runs the Fig. 1 quick difficulty sweep twice -- ``jobs=1`` and
``jobs=4`` -- asserts the two studies are bit-identical (the runtime's
determinism contract), and writes a ``BENCH_runtime.json`` artifact
with the measured wall/CPU seconds and the speedup.

Not collected by pytest (no ``test_`` prefix); run directly:

    PYTHONPATH=src python benchmarks/runtime_smoke.py [out.json] [jobs]
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import List, Tuple

from repro.experiments.figures import run_figure

DEFAULT_JOBS = 4


def _fingerprint(study) -> List[Tuple]:
    """Everything result-bearing in a study, excluding the clocks."""
    points = [
        (p.regime, p.percent, p.starts, p.raw_cut, p.normalized_cut)
        for p in study.points
    ]
    return [("good_cut", study.good_cut)] + points


def _timed_run(jobs: int):
    wall0 = time.perf_counter()
    cpu0 = sum(os.times()[:4])  # self + children, user + system
    study = run_figure("fig1", "quick", seed=0, jobs=jobs)
    wall = time.perf_counter() - wall0
    cpu = sum(os.times()[:4]) - cpu0
    return study, wall, cpu


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    out_path = args[0] if args else "BENCH_runtime.json"
    jobs = int(args[1]) if len(args) > 1 else DEFAULT_JOBS

    cores = len(os.sched_getaffinity(0)) if hasattr(
        os, "sched_getaffinity"
    ) else os.cpu_count()

    print(f"runtime smoke: fig1 quick sweep, serial vs jobs={jobs} "
          f"({cores} core(s) available)")
    serial_study, serial_wall, serial_cpu = _timed_run(jobs=1)
    print(f"  jobs=1: {serial_wall:.2f}s wall, {serial_cpu:.2f}s CPU")
    parallel_study, parallel_wall, parallel_cpu = _timed_run(jobs=jobs)
    print(f"  jobs={jobs}: {parallel_wall:.2f}s wall, "
          f"{parallel_cpu:.2f}s CPU")

    identical = _fingerprint(serial_study) == _fingerprint(parallel_study)
    speedup = serial_wall / parallel_wall if parallel_wall > 0 else 0.0
    print(f"  identical results: {identical}, speedup: {speedup:.2f}x")

    payload = {
        "benchmark": "fig1-quick difficulty sweep",
        "python": platform.python_version(),
        "cpu_count": cores,
        "jobs": jobs,
        "serial_wall_seconds": round(serial_wall, 3),
        "parallel_wall_seconds": round(parallel_wall, 3),
        "serial_cpu_seconds": round(serial_cpu, 3),
        "parallel_cpu_seconds": round(parallel_cpu, 3),
        "speedup": round(speedup, 3),
        "results_identical": identical,
    }
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"  wrote {out_path}")

    # The determinism contract is the point of the exercise; a speedup
    # below 1 is expected on starved machines and is not a failure.
    return 0 if identical else 1


if __name__ == "__main__":
    raise SystemExit(main())
