"""Microbenchmarks of the engines themselves.

Not paper tables -- these track the throughput of the primitives that
dominate every experiment's runtime, so engine regressions surface in
``pytest benchmarks/ --benchmark-only`` output directly.
"""

import random

from repro.experiments.circuits import load_instance
from repro.hypergraph import contract
from repro.partition import (
    FMBipartitioner,
    FMConfig,
    GainBucket,
    MultilevelBipartitioner,
    heavy_edge_matching,
    random_balanced_bipartition,
)


def test_bench_gainbucket_churn(benchmark):
    """Insert/update/pop cycles over a 10k-vertex bucket."""
    n = 10_000
    bucket = GainBucket(n, 64)

    def churn():
        for v in range(n):
            bucket.insert(v, (v * 37) % 129 - 64)
        for v in range(0, n, 2):
            bucket.adjust(v, 1 if bucket.key_of(v) < 64 else -1)
        while len(bucket):
            bucket.pop_max()

    benchmark(churn)


def test_bench_flat_fm_run(benchmark):
    """One full flat CLIP-FM run on the quick01 circuit."""
    circuit, balance = load_instance("quick01")
    engine = FMBipartitioner(
        circuit.graph, balance, config=FMConfig(policy="clip")
    )
    init = random_balanced_bipartition(
        circuit.graph, balance, rng=random.Random(21)
    )
    result = benchmark(lambda: engine.run(list(init)))
    assert result.solution.verify_cut(circuit.graph)


def test_bench_multilevel_start(benchmark):
    """One multilevel start on the quick01 circuit."""
    circuit, balance = load_instance("quick01")
    engine = MultilevelBipartitioner(circuit.graph, balance=balance)
    result = benchmark(lambda: engine.run(seed=22))
    assert result.solution.verify_cut(circuit.graph)


def test_bench_heavy_edge_matching(benchmark):
    """One heavy-edge matching round on the quick03 circuit."""
    circuit, _ = load_instance("quick03")

    def match():
        return heavy_edge_matching(
            circuit.graph, rng=random.Random(23)
        )

    labels = benchmark(match)
    assert max(labels) + 1 < circuit.graph.num_vertices


def test_bench_contract(benchmark):
    """One contraction of the quick03 circuit."""
    circuit, _ = load_instance("quick03")
    labels = heavy_edge_matching(circuit.graph, rng=random.Random(24))
    result = benchmark(lambda: contract(circuit.graph, labels))
    assert result.coarse.num_vertices == max(labels) + 1
