"""The engine ladder: every partitioner on one instance.

Not a paper table -- a library-level quality/runtime comparison that
documents where each engine sits: random construction < greedy growth
< simulated annealing ~ spectral sweep < spectral+FM ~ flat CLIP FM <
multilevel.  The assertions pin the ladder's coarse order so an engine
regression is caught by the benchmark suite.
"""

import random
import statistics
import time

from repro.experiments.circuits import load_instance
from repro.experiments.reporting import emit
from repro.partition import (
    FMBipartitioner,
    FMConfig,
    MultilevelBipartitioner,
    annealing_baseline,
    cut_size,
    greedy_baseline,
    random_balanced_bipartition,
    random_baseline,
    spectral_bipartition,
    spectral_plus_fm,
)

STARTS = 3


def _flat_fm(graph, balance, seed):
    engine = FMBipartitioner(
        graph, balance, config=FMConfig(policy="clip")
    )
    init = random_balanced_bipartition(
        graph, balance, rng=random.Random(seed)
    )
    return engine.run(init).solution


def test_bench_engine_ladder(benchmark):
    circuit, balance = load_instance("quick01")
    graph = circuit.graph

    engines = {
        "random": lambda seed: random_baseline(graph, balance, seed=seed),
        "greedy-bfs": lambda seed: greedy_baseline(
            graph, balance, seed=seed
        ),
        "annealing": lambda seed: annealing_baseline(
            graph,
            balance,
            seed=seed,
            moves_per_temperature=2 * graph.num_vertices,
            cooling=0.85,
        ),
        "spectral": lambda seed: spectral_bipartition(
            graph, balance, seed=seed
        ),
        "spectral+fm": lambda seed: spectral_plus_fm(
            graph, balance, seed=seed
        ),
        "flat-clip-fm": lambda seed: _flat_fm(graph, balance, seed),
        "multilevel": lambda seed: MultilevelBipartitioner(
            graph, balance=balance
        ).run(seed=seed).solution,
    }

    def run():
        table = {}
        for name, runner in engines.items():
            cuts = []
            seconds = []
            for s in range(STARTS):
                t0 = time.perf_counter()
                solution = runner(31 + s)
                seconds.append(time.perf_counter() - t0)
                assert cut_size(graph, solution.parts) == solution.cut
                cuts.append(solution.cut)
            table[name] = (
                statistics.mean(cuts),
                statistics.mean(seconds),
            )
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        f"{'engine':<14s} {'avg cut':>9s} {'avg sec':>9s}\n"
        + "\n".join(
            f"{name:<14s} {cut:>9.1f} {sec:>9.3f}"
            for name, (cut, sec) in table.items()
        ),
        name="bench_engine_ladder",
        quiet=True,
    )

    # The coarse ladder ordering (generous factors absorb seed noise).
    assert table["multilevel"][0] <= table["random"][0] * 0.5
    assert table["flat-clip-fm"][0] <= table["random"][0]
    assert table["spectral+fm"][0] <= table["spectral"][0]
    assert table["greedy-bfs"][0] <= table["random"][0]
    assert table["multilevel"][0] <= table["flat-clip-fm"][0] * 1.2
