"""Kill-and-resume chaos benchmark for the fault-tolerant runtime.

The proof the checkpoint/retry machinery exists to deliver: a small
difficulty study runs under injected faults (one worker crash, one hung
start that exceeds its ``--timeout``), the driver process is SIGKILLed
mid-sweep, the study is resumed from its ``--resume`` journal, and the
final table must be bit-identical to an uninterrupted serial run.

Orchestrator mode (the default) does four things:

1. runs the study serially in-process -- no journal, no faults -- to
   get the reference fingerprint;
2. spawns a child (``--child`` mode) with ``REPRO_FAULTS`` set and a
   ``--resume`` journal, and SIGKILLs its process group once at least
   ``KILL_AFTER_CELLS`` cells are journaled;
3. re-runs the child with the same journal (fault markers are one-shot,
   so the injected failures do not re-fire) and lets it finish;
4. compares the resumed study's fingerprint against the reference and
   writes ``BENCH_chaos.json``.

Not collected by pytest (no ``test_`` prefix); run directly:

    PYTHONPATH=src python benchmarks/chaos_smoke.py [out.json]
"""

from __future__ import annotations

import json
import os
import platform
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.experiments.circuits import load_instance
from repro.core.difficulty import run_difficulty_study
from repro.experiments.reporting import parse_runtime_flags
from repro.runtime import CheckpointJournal

CIRCUIT = "tiny01"
PERCENTS = (0.0, 20.0)
STARTS_LIST = (1, 2, 4)
TRIALS = 2
SEED = 3
REFERENCE_STARTS = 4
JOBS = 2
TIMEOUT = "6"
MAX_RETRIES = "2"
# crash@0: the worker running start 0 dies hard (fires once).
# sleep@3:30: start 3 hangs for 30s, far past --timeout (fires once).
FAULT_SPEC = "crash@0,sleep@3:30"
KILL_AFTER_CELLS = 5
TOTAL_CELLS = REFERENCE_STARTS + (
    2 * len(PERCENTS) * TRIALS * max(STARTS_LIST)
)

SPEC = {
    "experiment": "chaos-smoke",
    "circuit": CIRCUIT,
    "percents": PERCENTS,
    "starts_list": STARTS_LIST,
    "trials": TRIALS,
    "seed": SEED,
    "reference_starts": REFERENCE_STARTS,
}


def _fingerprint(study):
    """Everything result-bearing in a study, excluding the clocks."""
    points = [
        [p.regime, p.percent, p.starts, p.raw_cut, p.normalized_cut]
        for p in study.points
    ]
    return [["good_cut", study.good_cut]] + points


def _run_study(jobs, policy=None, journal=None):
    circuit, balance = load_instance(CIRCUIT)
    return run_difficulty_study(
        circuit.graph,
        balance,
        circuit_name=CIRCUIT,
        percents=PERCENTS,
        starts_list=STARTS_LIST,
        trials=TRIALS,
        seed=SEED,
        reference_starts=REFERENCE_STARTS,
        jobs=jobs,
        policy=policy,
        journal=journal,
    )


def child_main(argv) -> int:
    """Run the study under ``--resume/--timeout/--max-retries`` flags.

    The orchestrator passes the same flag tokens the experiment CLIs
    accept; faults arrive via ``REPRO_FAULTS`` in the environment.  The
    clock-free fingerprint is written next to the journal on success.
    """
    rest, flags = parse_runtime_flags(argv)
    if rest:
        raise SystemExit(f"unexpected child arguments: {rest}")
    journal = flags.journal(SPEC)
    study = _run_study(
        jobs=JOBS, policy=flags.execution_policy(), journal=journal
    )
    result_path = Path(flags.resume).with_suffix(".result.json")
    result_path.write_text(json.dumps(_fingerprint(study)) + "\n")
    return 0


def _journal_records(path: Path) -> int:
    """Data records currently in the journal (0 if absent/header-only)."""
    try:
        lines = path.read_text().splitlines()
    except OSError:
        return 0
    return max(0, len([ln for ln in lines if ln.strip()]) - 1)


def _spawn_child(journal_path: Path, state_dir: Path):
    env = dict(
        os.environ,
        PYTHONPATH="src",
        REPRO_FAULTS=FAULT_SPEC,
        REPRO_FAULT_STATE=str(state_dir),
    )
    return subprocess.Popen(
        [
            sys.executable,
            __file__,
            "--child",
            f"--resume={journal_path}",
            f"--timeout={TIMEOUT}",
            f"--max-retries={MAX_RETRIES}",
        ],
        env=env,
        start_new_session=True,
    )


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if args and args[0] == "--child":
        return child_main(args[1:])
    out_path = args[0] if args else "BENCH_chaos.json"

    work_dir = Path("chaos-smoke-work")
    work_dir.mkdir(exist_ok=True)
    journal_path = work_dir / "study.jsonl"
    state_dir = work_dir / "fault-state"
    state_dir.mkdir(exist_ok=True)
    for stale in (journal_path, journal_path.with_suffix(".result.json")):
        if stale.exists():
            stale.unlink()
    for marker in state_dir.iterdir():
        marker.unlink()

    print(f"chaos smoke: {CIRCUIT} difficulty study, {TOTAL_CELLS} cells, "
          f"faults {FAULT_SPEC!r}, jobs={JOBS}")
    t0 = time.perf_counter()
    baseline = _run_study(jobs=1)
    baseline_wall = time.perf_counter() - t0
    print(f"  uninterrupted serial baseline: {baseline_wall:.2f}s")

    child = _spawn_child(journal_path, state_dir)
    records_at_kill = 0
    killed = False
    deadline = time.monotonic() + 300
    while time.monotonic() < deadline:
        records_at_kill = _journal_records(journal_path)
        if records_at_kill >= KILL_AFTER_CELLS:
            os.killpg(os.getpgid(child.pid), signal.SIGKILL)
            killed = True
            break
        if child.poll() is not None:
            break
        time.sleep(0.01)
    child.wait()
    print(f"  first run: journaled {records_at_kill} cells, "
          f"{'SIGKILLed mid-sweep' if killed else 'exited early (BUG)'}")
    if not killed:
        print("  FAILED: child completed before the kill threshold")
        return 1

    fired = sorted(p.name for p in state_dir.iterdir())
    print(f"  faults fired before kill: {fired}")

    t1 = time.perf_counter()
    resumed = _spawn_child(journal_path, state_dir)
    code = resumed.wait(timeout=300)
    resume_wall = time.perf_counter() - t1
    if code != 0:
        print(f"  FAILED: resumed child exited with status {code}")
        return 1

    final_journal = CheckpointJournal(journal_path, SPEC)
    completed = final_journal.completed_cells()
    resumed_fingerprint = json.loads(
        journal_path.with_suffix(".result.json").read_text()
    )
    identical = resumed_fingerprint == _fingerprint(baseline)
    print(f"  resume: {resume_wall:.2f}s, journal holds {completed} of "
          f"{TOTAL_CELLS} cells, bit-identical table: {identical}")

    payload = {
        "benchmark": "chaos-smoke kill-and-resume difficulty study",
        "python": platform.python_version(),
        "circuit": CIRCUIT,
        "total_cells": TOTAL_CELLS,
        "fault_spec": FAULT_SPEC,
        "faults_fired_before_kill": fired,
        "records_at_kill": records_at_kill,
        "journal_cells_after_resume": completed,
        "baseline_wall_seconds": round(baseline_wall, 3),
        "resume_wall_seconds": round(resume_wall, 3),
        "killed_mid_run": killed,
        "results_identical": identical,
    }
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"  wrote {out_path}")

    return 0 if identical and completed == TOTAL_CELLS else 1


if __name__ == "__main__":
    raise SystemExit(main())
