"""Benchmark: regenerate Table I (Rent's-rule block-size thresholds)."""

from repro.core.rent import format_table_one
from repro.experiments.reporting import emit
from repro.experiments.table1 import run_table1, shape_checks


def test_bench_table1(benchmark):
    rows = benchmark(run_table1)
    emit(format_table_one(rows), name="bench_table1", quiet=True)
    for label, ok in shape_checks(rows):
        assert ok, label
