"""Tracing overhead benchmark: the observe layer's cost contract.

Measures the instrumented engines in three modes:

* **uninstrumented** -- the engine body called directly (``_run``),
  bypassing even the recorder check: the pre-instrumentation baseline;
* **disabled** -- the public ``run()`` under the default null recorder:
  what every user pays all the time;
* **enabled** -- ``run()`` under a live :class:`TraceRecorder`: what a
  ``--trace`` run pays.

and gates (exit status) on the layer's two promises:

* results are **bit-identical** in all three modes (tracing is purely
  observational);
* the **disabled** path stays within ``DISABLED_RATIO_MAX`` wall time
  of the uninstrumented baseline (the disabled path is one attribute
  read per engine run plus shared no-op spans on coarse call sites).

The enabled-path ratio is recorded, and only gated against the very
loose ``ENABLED_RATIO_MAX`` backstop -- full tracing is allowed to
cost real time, it is not allowed to silently become pathological.
A dispatch microbenchmark (ns per disabled-path primitive) is recorded
so the per-call cost underlying the ratio gate is visible directly.

Not collected by pytest (no ``test_`` prefix); run directly:

    PYTHONPATH=src python benchmarks/observe_overhead.py [out.json] [ci|quick|full]
"""

from __future__ import annotations

import gc
import json
import platform
import random
import sys
import time
from typing import Dict, List, Tuple

from repro.hypergraph.generators import CircuitSpec, generate_circuit
from repro.partition.balance import relative_bipartition_balance
from repro.partition.fm import FMBipartitioner, FMConfig
from repro.partition.multilevel import (
    MultilevelBipartitioner,
    MultilevelConfig,
)
from repro.runtime import observe
from repro.runtime.observe import TraceRecorder
from repro.runtime.observe.recorder import use

DISABLED_RATIO_MAX = 1.25
"""Gate: disabled-recorder wall time / uninstrumented wall time."""

ENABLED_RATIO_MAX = 5.0
"""Backstop gate: enabled-recorder wall time / disabled wall time."""

REPS = {"ci": 5, "quick": 5, "full": 7}
CELLS = {"ci": 600, "quick": 1200, "full": 2400}
STARTS = {"ci": 4, "quick": 4, "full": 6}


def _time_best(run_all, reps: int) -> Tuple[float, list]:
    """Minimum wall time of ``reps`` executions (noise-robust: every
    mode is deterministic, so repeats do identical work)."""
    best = float("inf")
    results = None
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(reps):
            t0 = time.perf_counter()
            results = run_all()
            elapsed = time.perf_counter() - t0
            if elapsed < best:
                best = elapsed
    finally:
        if gc_was_enabled:
            gc.enable()
    return best, results


def _fm_fingerprint(results) -> Tuple:
    return tuple(
        (
            r.initial_cut,
            r.solution.cut,
            tuple(r.solution.parts),
            tuple(r.passes),
        )
        for r in results
    )


def _ml_fingerprint(results) -> Tuple:
    return tuple(
        (
            r.solution.cut,
            tuple(r.solution.parts),
            r.num_levels,
            r.refinement_passes,
        )
        for r in results
    )


def _bench_fm(graph, num_starts: int, reps: int, seed: int) -> Dict:
    """FM engine: all three modes over identical random starts."""
    balance = relative_bipartition_balance(graph.total_area, 0.1)
    engine = FMBipartitioner(
        graph, balance, config=FMConfig(policy="clip")
    )
    rng = random.Random(seed)
    starts = [
        [rng.randint(0, 1) for _ in range(graph.num_vertices)]
        for _ in range(num_starts)
    ]

    bare_s, bare = _time_best(
        lambda: [engine._run(parts) for parts in starts], reps
    )
    disabled_s, disabled = _time_best(
        lambda: [engine.run(parts) for parts in starts], reps
    )

    def _enabled():
        with use(TraceRecorder()):
            return [engine.run(parts) for parts in starts]

    enabled_s, enabled = _time_best(_enabled, reps)

    identical = (
        _fm_fingerprint(bare)
        == _fm_fingerprint(disabled)
        == _fm_fingerprint(enabled)
    )
    return _entry(
        "fm", bare_s, disabled_s, enabled_s, identical,
        starts=num_starts,
        cuts=[r.solution.cut for r in disabled],
    )


def _bench_multilevel(graph, num_starts: int, reps: int) -> Dict:
    """Multilevel engine (coarsening + refinement): same three modes.

    The ``_run`` baseline here bypasses the outer wrapper; the inner
    coarsen/refine call sites keep their shared no-op spans, whose
    per-call cost the dispatch microbenchmark bounds directly.
    """
    balance = relative_bipartition_balance(graph.total_area, 0.1)
    engine = MultilevelBipartitioner(
        graph, balance, config=MultilevelConfig(initial_starts=2)
    )
    seeds = list(range(num_starts))

    bare_s, bare = _time_best(
        lambda: [engine._run(seed) for seed in seeds], reps
    )
    disabled_s, disabled = _time_best(
        lambda: [engine.run(seed) for seed in seeds], reps
    )

    def _enabled():
        with use(TraceRecorder()):
            return [engine.run(seed) for seed in seeds]

    enabled_s, enabled = _time_best(_enabled, reps)

    identical = (
        _ml_fingerprint(bare)
        == _ml_fingerprint(disabled)
        == _ml_fingerprint(enabled)
    )
    return _entry(
        "multilevel", bare_s, disabled_s, enabled_s, identical,
        starts=num_starts,
        cuts=[r.solution.cut for r in disabled],
    )


def _entry(
    engine: str,
    bare_s: float,
    disabled_s: float,
    enabled_s: float,
    identical: bool,
    **extra,
) -> Dict:
    disabled_ratio = disabled_s / bare_s if bare_s > 0 else 0.0
    enabled_ratio = enabled_s / disabled_s if disabled_s > 0 else 0.0
    return {
        "engine": engine,
        "uninstrumented_seconds": round(bare_s, 4),
        "disabled_seconds": round(disabled_s, 4),
        "enabled_seconds": round(enabled_s, 4),
        "disabled_ratio": round(disabled_ratio, 4),
        "enabled_ratio": round(enabled_ratio, 4),
        "disabled_within_bound": disabled_ratio <= DISABLED_RATIO_MAX,
        "enabled_within_bound": enabled_ratio <= ENABLED_RATIO_MAX,
        "results_identical": identical,
        **extra,
    }


def _dispatch_nanoseconds() -> Dict[str, float]:
    """ns per disabled-path primitive (the costs the ratio gate bounds)."""
    n = 200_000

    def _ns(fn) -> float:
        t0 = time.perf_counter()
        fn()
        return 1e9 * (time.perf_counter() - t0) / n

    def _active_check():
        active = observe.active
        for _ in range(n):
            rec = active()
            if rec.enabled:  # pragma: no cover - null recorder
                raise AssertionError

    def _null_span():
        rec = observe.active()
        for _ in range(n):
            with rec.span("x", k=1) as sp:
                sp.set(v=2)

    def _null_count():
        rec = observe.active()
        for _ in range(n):
            rec.count("x")

    return {
        "active_plus_enabled_check_ns": round(_ns(_active_check), 1),
        "null_span_with_set_ns": round(_ns(_null_span), 1),
        "null_count_ns": round(_ns(_null_count), 1),
    }


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    out_path = args[0] if args else "BENCH_observe.json"
    profile = args[1] if len(args) > 1 else "quick"
    if profile not in ("ci", "quick", "full"):
        raise SystemExit(f"unknown profile {profile!r}; use ci|quick|full")

    graph = generate_circuit(
        CircuitSpec(num_cells=CELLS[profile]), seed=5
    ).graph
    print(
        f"circuit-{CELLS[profile]}: {graph.num_vertices} vertices, "
        f"{graph.num_nets} nets, {graph.num_pins} pins"
    )

    entries: List[Dict] = [
        _bench_fm(graph, STARTS[profile], REPS[profile], seed=42),
        _bench_multilevel(graph, max(2, STARTS[profile] // 2),
                          REPS[profile]),
    ]
    for entry in entries:
        print(
            f"  {entry['engine']}: uninstrumented "
            f"{entry['uninstrumented_seconds']:.3f}s, disabled "
            f"{entry['disabled_seconds']:.3f}s "
            f"({entry['disabled_ratio']:.3f}x), enabled "
            f"{entry['enabled_seconds']:.3f}s "
            f"({entry['enabled_ratio']:.3f}x of disabled), "
            f"identical={entry['results_identical']}"
        )

    dispatch = _dispatch_nanoseconds()
    print(
        "  disabled-path primitives: "
        + ", ".join(f"{k}={v}" for k, v in dispatch.items())
    )

    ok = all(
        e["results_identical"]
        and e["disabled_within_bound"]
        and e["enabled_within_bound"]
        for e in entries
    )
    payload = {
        "benchmark": "observe overhead",
        "profile": profile,
        "python": platform.python_version(),
        "disabled_ratio_max": DISABLED_RATIO_MAX,
        "enabled_ratio_max": ENABLED_RATIO_MAX,
        "dispatch_ns": dispatch,
        "entries": entries,
        "ok": ok,
    }
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {out_path}")
    print(f"overhead contract: {'OK' if ok else 'VIOLATED'}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
